"""Ablation: sizing the history ring beyond the core count.

With round-robin spraying, N = k slots are necessary and sufficient in the
loss-free case (§3.1), and give recovery a window of exactly one
inter-visit gap.  A larger ring (like the NetFPGA's fixed 16/32/… rows,
§3.3.2) costs bytes on every packet but widens the recovery window: a
sequence is only *skipped* when it is absent from every core's log, which
requires all N of its carriers lost.  This bench measures both sides —
skip probability under bursty loss vs per-packet byte overhead — across
ring sizes.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.core import ScrFunctionalEngine, ScrPacketCodec
from repro.programs import make_program
from repro.traffic import synthesize_trace, univ_dc_flow_sizes

CORES = 4
RING_SIZES = [4, 8, 16, 32]
LOSS_RATES = [0.08, 0.30]


@pytest.mark.benchmark(group="ablation-window")
def test_ablation_ring_size_vs_recovery_robustness(benchmark):
    trace = synthesize_trace(
        univ_dc_flow_sizes(), 30, seed=15, max_packets=2500,
        mean_flow_interarrival_ns=500,
    )
    meta = make_program("ddos").metadata_size

    def run():
        rows = []
        for loss in LOSS_RATES:
            for slots in RING_SIZES:
                engine = ScrFunctionalEngine(
                    make_program("ddos"), CORES, num_slots=slots,
                    with_recovery=True, loss_rate=loss, seed=77,
                )
                result = engine.run(trace)
                assert result.replicas_consistent
                overhead = ScrPacketCodec(meta, slots, dummy_eth=True).overhead_bytes
                rows.append({
                    "loss": loss,
                    "slots": slots,
                    "lost": len(result.lost_seqs),
                    "recovered": result.recovered,
                    "skipped": len(result.skipped_seqs),
                    "overhead": overhead,
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["loss", "ring slots", "injected losses", "peer-log recoveries",
         "skipped seqs", "bytes/packet overhead"],
        [
            [f"{r['loss']:.0%}", r["slots"], r["lost"], r["recovered"],
             r["skipped"], r["overhead"]]
            for r in rows
        ],
        title=f"Ablation — ring size vs recovery robustness ({CORES} cores)",
    ))

    def pick(loss, slots):
        return next(r for r in rows if r["loss"] == loss and r["slots"] == slots)

    for loss in LOSS_RATES:
        # Wider rings shift recovery from cross-core log reads to the
        # core's own in-window history: peer-log recoveries fall
        # monotonically with ring size.
        recs = [pick(loss, s)["recovered"] for s in RING_SIZES]
        assert all(b <= a for a, b in zip(recs, recs[1:]))
        assert recs[-1] < recs[0]
    # Skips (sequence lost at every core) need all N carriers lost: visible
    # at 30 % loss with the minimal ring, gone with a 16-slot ring.
    assert pick(0.30, 4)["skipped"] > 0
    assert pick(0.30, 16)["skipped"] == 0
    # The price is linear byte overhead.
    assert pick(0.08, 32)["overhead"] - pick(0.08, 4)["overhead"] == 28 * meta
