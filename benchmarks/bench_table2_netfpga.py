"""Table 2: NetFPGA sequencer resource usage vs history rows."""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.sequencer import PUBLISHED_SYNTHESIS, NetFpgaSequencerModel


@pytest.mark.benchmark(group="table2")
def test_table2_netfpga_synthesis(benchmark):
    def run():
        rows = []
        for n in sorted(PUBLISHED_SYNTHESIS):
            model = NetFpgaSequencerModel(n)
            luts, logic, ffs = model.synthesis_row()
            rows.append({
                "rows": n,
                "luts": luts,
                "logic": logic,
                "lut_pct": model.lut_utilization_pct(),
                "ffs": ffs,
                "ff_pct": model.ff_utilization_pct(),
                "est_luts": model.estimated_luts(),
                "est_ffs": model.estimated_ffs(),
                "timing": model.meets_timing(),
                "bw": model.bandwidth_gbps(),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["rows", "LUT usage", "LUT logic", "LUT %", "FF usage", "FF %",
         "est LUT", "est FF"],
        [
            [r["rows"], r["luts"], r["logic"], f"{r['lut_pct']:.3f}",
             r["ffs"], f"{r['ff_pct']:.3f}", r["est_luts"], r["est_ffs"]]
            for r in rows
        ],
        title="Table 2 — NetFPGA-PLUS sequencer synthesis (250 MHz)",
    ))

    by_rows = {r["rows"]: r for r in rows}
    # Verbatim Table 2 values.
    assert by_rows[16]["luts"] == 1045 and by_rows[16]["ffs"] == 2369
    assert by_rows[128]["luts"] == 3390 and by_rows[128]["ffs"] == 7786
    assert by_rows[16]["lut_pct"] == pytest.approx(0.060, abs=0.001)
    assert by_rows[128]["ff_pct"] == pytest.approx(0.226, abs=0.001)
    # Structural estimator tracks synthesis within 5 %.
    for r in rows:
        assert r["est_luts"] == pytest.approx(r["luts"], rel=0.05)
        assert r["est_ffs"] == pytest.approx(r["ffs"], rel=0.05)
    # All sizes meet timing at 250 MHz with > 200 Gbit/s of bandwidth.
    assert all(r["timing"] for r in rows)
    assert all(r["bw"] > 200 for r in rows)
