"""Figure 10a: SCR's byte overhead makes the NIC the bottleneck first.

Token bucket on the univ-DC trace with all packets truncated to 64 bytes;
SCR alone adds its history metadata before the NIC (ToR-switch sequencer),
the other techniques feed bare 64-byte frames.  Paper result: beyond ~11
cores the wire, not the CPU, caps SCR — but SCR still saturates far above
every other technique.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_scaling_series
from repro.core import ScrPacketCodec
from repro.cpu import TABLE4_PARAMS
from repro.nic.nic import ETHERNET_OVERHEAD_BYTES
from repro.programs import make_program

TECHNIQUES = ["scr", "shared", "rss", "rss++"]
#: swept past the paper's 14 cores to show the wire ceiling clearly; our
#: calibration puts the CPU/wire crossover at ~15 cores vs the paper's ~11
#: (their sequencer header is leaner than our 22-byte one).
CORES = [1, 2, 4, 7, 10, 12, 14, 16, 18]


@pytest.mark.benchmark(group="fig10a")
def test_fig10a_64B_packets_nic_bottleneck(benchmark, runner):
    def run():
        return {
            tech: [
                (
                    k,
                    runner.mlffr_point(
                        "token_bucket", "univ_dc", tech, k, packet_size=64
                    ).mlffr_mpps,
                )
                for k in CORES
            ]
            for tech in TECHNIQUES
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_scaling_series(
        series,
        title="Figure 10a — token bucket, 64 B packets, SCR-only metadata (Mpps)",
    ))

    scr = dict(series["scr"])
    costs = TABLE4_PARAMS["token_bucket"]
    meta = make_program("token_bucket").metadata_size

    # Compute where CPU capacity crosses the 100G wire ceiling for SCR's
    # inflated frames — the saturation point the figure shows (~11 cores).
    def cpu_mpps(k):
        return k / (costs.t + (k - 1) * costs.c2) * 1e3

    def wire_mpps(k):
        overhead = ScrPacketCodec(meta, k, dummy_eth=True).overhead_bytes
        frame = 64 + overhead + ETHERNET_OVERHEAD_BYTES
        return 100e9 / (frame * 8) / 1e6

    crossover = next(k for k in range(2, 32) if cpu_mpps(k) > wire_mpps(k))
    emit(f"CPU/wire crossover at {crossover} cores "
         f"(cpu {cpu_mpps(crossover):.1f} vs wire {wire_mpps(crossover):.1f} Mpps)")

    # The wire binds somewhere around the paper's ~11 cores (ours: ~15, the
    # header-size difference shifts the corner, not the mechanism).
    assert 8 <= crossover <= 17
    # Beyond the crossover, adding cores buys ~nothing: the NIC is the
    # bottleneck.  CPU-only scaling 14 → 18 cores would be ~1.2x.
    assert scr[18] < scr[14] * 1.08
    # At 18 cores the measured rate sits at the wire ceiling (±MLFFR's 4 %
    # loss allowance), well below what the CPUs could do.
    assert scr[18] < cpu_mpps(18) * 0.90
    assert scr[18] == pytest.approx(wire_mpps(18), rel=0.15)
    # SCR still saturates far above every other technique.
    for tech in ("shared", "rss", "rss++"):
        assert scr[14] > dict(series[tech])[14]
