"""Table 1: the evaluated-program inventory, regenerated from the code."""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.programs import make_program, table1_rows

#: Table 1 as printed in the paper.
EXPECTED = {
    "ddos": (4, "src & dst IP", "Atomic HW"),
    "heavy_hitter": (18, "5-tuple", "Atomic HW"),
    "conntrack": (30, "5-tuple (symmetric)", "Locks"),
    "token_bucket": (18, "5-tuple", "Locks"),
    "port_knocking": (8, "src & dst IP", "Locks"),
}

STATE_DESCRIPTIONS = {
    "ddos": ("source IP", "count"),
    "heavy_hitter": ("5-tuple", "flow size"),
    "conntrack": ("5-tuple", "TCP state, timestamp, seq #"),
    "token_bucket": ("5-tuple", "last packet timestamp, # tokens"),
    "port_knocking": ("source IP", "knocking state (e.g. OPEN)"),
}


@pytest.mark.benchmark(group="table1")
def test_table1_program_inventory(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    emit(render_table(
        ["program", "state key", "state value", "metadata (B/pkt)", "RSS fields",
         "atomics vs locks"],
        [
            [
                r["program"],
                STATE_DESCRIPTIONS[r["program"]][0],
                STATE_DESCRIPTIONS[r["program"]][1],
                r["metadata_bytes"],
                r["rss_fields"],
                r["atomics_or_locks"],
            ]
            for r in rows
        ],
        title="Table 1 — evaluated packet-processing programs",
    ))

    generated = {
        r["program"]: (r["metadata_bytes"], r["rss_fields"], r["atomics_or_locks"])
        for r in rows
    }
    assert generated == EXPECTED

    # metadata sizes come from the actual struct layouts, not constants
    for name, (size, _, _) in EXPECTED.items():
        assert make_program(name).metadata_cls.size() == size
