"""Figure 10b: cost of SCR's loss-recovery algorithm.

Port-knocking firewall on the univ-DC trace.  Paper result: merely enabling
recovery (logging) costs some throughput; higher injected loss rates cost
more (log reads + catch-up); but SCR with recovery at 1 % loss still
outperforms and outscales shared state and sharding.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_scaling_series

CORES = [1, 2, 4, 7, 10, 14]
LOSS_RATES = [0.0, 0.0001, 0.001, 0.01]


@pytest.mark.benchmark(group="fig10b")
def test_fig10b_loss_recovery_overhead(benchmark, runner):
    def run():
        series = {}
        base = {"count_wire_overhead": False}  # 192 B frames budget history
        series["scr (no recovery)"] = [
            (
                k,
                runner.mlffr_point(
                    "port_knocking", "univ_dc", "scr", k, engine_kwargs=base
                ).mlffr_mpps,
            )
            for k in CORES
        ]
        for loss in LOSS_RATES:
            label = f"scr+rec {loss:.2%} loss"
            series[label] = [
                (
                    k,
                    runner.mlffr_point(
                        "port_knocking", "univ_dc", "scr", k,
                        engine_kwargs={**base, "with_recovery": True, "loss_rate": loss},
                    ).mlffr_mpps,
                )
                for k in CORES
            ]
        for tech in ("shared", "rss", "rss++"):
            series[tech] = [
                (k, runner.mlffr_point("port_knocking", "univ_dc", tech, k).mlffr_mpps)
                for k in CORES
            ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_scaling_series(
        series, title="Figure 10b — port knocking with loss recovery (Mpps)"
    ))

    plain = dict(series["scr (no recovery)"])
    rec0 = dict(series["scr+rec 0.00% loss"])
    rec1pct = dict(series["scr+rec 1.00% loss"])

    # Logging alone costs throughput even with zero loss.
    assert rec0[14] < plain[14]
    # Higher loss degrades further (within MLFFR tolerance).
    assert rec1pct[14] <= rec0[14] + 0.5
    # Recovery-enabled SCR still beats every existing technique.
    for tech in ("shared", "rss", "rss++"):
        assert rec1pct[14] > dict(series[tech])[14], tech
    # And still scales monotonically.
    values = [rec1pct[k] for k in CORES]
    assert all(b >= a * 0.97 for a, b in zip(values, values[1:]))
