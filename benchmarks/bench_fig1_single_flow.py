"""Figure 1: scaling a SINGLE TCP connection's conntrack throughput.

Paper result: shared state degrades beyond 2 cores; RSS/RSS++ cannot exceed
one core; SCR scales linearly.
"""

import pytest

from benchmarks.conftest import CORES_7, emit
from repro.bench import render_scaling_series

TECHNIQUES = ["scr", "shared", "rss", "rss++"]


@pytest.mark.benchmark(group="fig1")
def test_fig1_single_tcp_connection(benchmark, runner):
    def run():
        series = {}
        scr_kwargs = {"count_wire_overhead": False}  # 256 B frames budget history
        for tech in TECHNIQUES:
            series[tech] = [
                (
                    k,
                    runner.mlffr_point(
                        "conntrack", "single-flow", tech, k,
                        engine_kwargs=scr_kwargs if tech == "scr" else None,
                    ).mlffr_mpps,
                )
                for k in CORES_7
            ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_scaling_series(
        series,
        title="Figure 1 — conntrack, single TCP connection (Mpps)",
    ))

    scr = dict(series["scr"])
    rss = dict(series["rss"])
    rsspp = dict(series["rss++"])
    shared = dict(series["shared"])
    # SCR: linear scale-up on one flow.
    assert scr[7] > 2.5 * scr[1]
    # Sharding: pinned to a single core regardless of core count.
    assert rss[7] < 1.3 * rss[1]
    assert rsspp[7] < 1.3 * rsspp[1]
    # Shared locks: degraded beyond 2 cores.
    assert shared[7] < shared[2]
    # SCR wins outright at 7 cores.
    assert scr[7] > max(rss[7], rsspp[7], shared[7])
