"""Figure 6: throughput vs cores for four programs × two traces × four
techniques (the paper's main result grid).

Paper result: SCR is the only technique that scales monotonically in every
panel; lock-based sharing collapses at ≥3 cores; sharding (RSS/RSS++) is
capped near a single core's rate by the heaviest flows; SCR beats hardware
atomics for the counter programs.

Panel definitions live in ``repro.bench.figures`` (shared with the
``scr-repro reproduce`` CLI).
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_scaling_series
from repro.bench.figures import FIGURE_PRESETS, run_preset

PANELS = ["6a", "6b", "6c", "6d", "6e", "6f", "6g", "6h"]


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("panel", PANELS)
def test_fig6_panel(benchmark, runner, panel):
    preset = FIGURE_PRESETS[panel]

    series = benchmark.pedantic(
        run_preset, args=(preset, runner), rounds=1, iterations=1
    )
    emit(render_scaling_series(
        series, title=f"Figure {panel} — {preset.program} on {preset.trace} (Mpps)"
    ))

    cores = list(preset.cores)
    scr = dict(series["scr"])
    shared = dict(series["shared"])
    rss = dict(series["rss"])
    kmax = cores[-1]

    # SCR scales monotonically (±3 % MLFFR noise) in every panel.
    values = [scr[k] for k in cores]
    assert all(b >= a * 0.97 for a, b in zip(values, values[1:])), panel
    assert scr[kmax] > 2.5 * scr[1]
    # SCR is the best technique at the highest core count.
    assert scr[kmax] >= max(shared[kmax], rss[kmax], dict(series["rss++"])[kmax])
    # Sharding is capped by the heaviest flow: far from linear.
    assert rss[kmax] < 0.5 * kmax * rss[1]
    # Lock-based sharing collapses with cores; atomics stay sublinear.
    if preset.program in ("token_bucket", "port_knocking"):
        assert shared[kmax] < shared[2], panel
