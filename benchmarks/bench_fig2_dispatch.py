"""Figure 2: the nature of per-packet CPU work (stateless forwarder, 1 core).

Paper result: packets/second is flat across packet sizes while the CPU is
the bottleneck (~14 Mpps); at 1024 B the 100 Gbit/s NIC becomes the limit;
XDP program latency is ~14 ns — so dispatch, not compute, dominates.
A second RX queue improves throughput slightly via batching.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import find_mlffr, render_table
from repro.cpu import TABLE4_PARAMS, CostParams, PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ShardedRssEngine
from repro.programs import make_program
from repro.traffic import Trace

PACKET_SIZES = [64, 128, 256, 512, 1024, 1518]
#: A second RX queue amortizes descriptor work slightly (Fig. 2's 2-RXQ
#: curve sits a few percent above 1 RXQ); modeled as a dispatch discount.
TWO_RXQ_DISPATCH_SCALE = 0.93


def forwarder_costs(rxqs: int) -> CostParams:
    base = TABLE4_PARAMS["forwarder"]
    scale = TWO_RXQ_DISPATCH_SCALE if rxqs == 2 else 1.0
    d = base.d * scale
    return CostParams(t=d + base.c1, c2=0.0, d=d, c1=base.c1)


@pytest.mark.benchmark(group="fig2")
def test_fig2_throughput_vs_packet_size(benchmark):
    def run():
        rows = []
        for size in PACKET_SIZES:
            pkts = [make_udp_packet(i % 40 + 1, 2, 3, 4) for i in range(3000)]
            pt = PerfTrace.from_trace(
                Trace(pkts).truncated(size), make_program("forwarder")
            )
            row = {"size": size}
            for rxqs in (1, 2):
                prog = make_program("forwarder")
                engine = ShardedRssEngine(prog, 1, costs=forwarder_costs(rxqs))
                res = find_mlffr(pt, engine)
                row[f"mpps_{rxqs}rxq"] = res.mlffr_mpps
                row[f"gbps_{rxqs}rxq"] = res.mlffr_pps * size * 8 / 1e9
            row["latency_ns"] = TABLE4_PARAMS["forwarder"].c1
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["size (B)", "Mpps 1rxq", "Mpps 2rxq", "Gbit/s 2rxq", "XDP latency (ns)"],
        [
            [
                r["size"],
                f"{r['mpps_1rxq']:.2f}",
                f"{r['mpps_2rxq']:.2f}",
                f"{r['gbps_2rxq']:.1f}",
                f"{r['latency_ns']:.0f}",
            ]
            for r in rows
        ],
        title="Figure 2 — stateless forwarder on one core",
    ))

    by_size = {r["size"]: r for r in rows}
    # (a) pps flat while CPU-bound: 64..512 B within 10 %.
    cpu_bound = [by_size[s]["mpps_2rxq"] for s in (64, 128, 256, 512)]
    assert max(cpu_bound) - min(cpu_bound) < 0.1 * max(cpu_bound)
    # ~14 Mpps single-core forwarding rate (1 RXQ; 2 RXQ runs a bit hotter).
    assert by_size[64]["mpps_1rxq"] == pytest.approx(14.0, rel=0.1)
    # (b) at 1024 B the NIC is the bottleneck: pps drops below the plateau,
    # and bits/s approaches line rate.
    assert by_size[1024]["mpps_2rxq"] < 0.9 * cpu_bound[0]
    assert by_size[1024]["gbps_2rxq"] > 85
    # 2 RXQs beat 1 RXQ slightly.
    assert by_size[64]["mpps_2rxq"] > by_size[64]["mpps_1rxq"]
    # (c) compute latency is tiny vs the 71 ns/packet service time: the gap
    # between 1/latency (~71 Mpps) and achieved (~14 Mpps) is dispatch.
    ideal_mpps = 1e3 / by_size[64]["latency_ns"]
    assert ideal_mpps > 4 * by_size[64]["mpps_2rxq"]
