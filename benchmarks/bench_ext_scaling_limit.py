"""Extension experiment: how far can SCR scale? (Principle #3 at 44 cores)

§4.3 notes the Tofino sequencer can feed the DDoS mitigator over 44 cores.
The paper's testbed stops at 14; the Appendix A model says scaling tapers
as (k-1)·c2 grows against t.  This bench pushes the simulator to the full
Tofino capacity and checks the taper against both the analytic model and
``linear_scaling_limit`` (the core count where per-core efficiency halves).
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import (
    find_mlffr,
    linear_scaling_limit,
    predicted_scr_mpps,
    render_table,
)
from repro.cpu import TABLE4_PARAMS, PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine
from repro.programs import make_program
from repro.sequencer import TofinoSequencerModel
from repro.traffic import Trace

CORES = [1, 2, 4, 8, 16, 24, 32, 44]


@pytest.mark.benchmark(group="ext-limit")
def test_ext_scaling_to_tofino_capacity(benchmark):
    tofino = TofinoSequencerModel()
    assert tofino.max_cores(make_program("ddos")) == 44

    pkts = [make_udp_packet(1 + i % 40, 2, 3, 4) for i in range(4000)]
    pt = PerfTrace.from_trace(Trace(pkts).truncated(192), make_program("ddos"))

    def run():
        out = {}
        for k in CORES:
            engine = ScrEngine(make_program("ddos"), k, count_wire_overhead=False)
            out[k] = find_mlffr(pt, engine, max_pps=800e6).mlffr_mpps
        return out

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    costs = TABLE4_PARAMS["ddos"]
    rows = []
    for k in CORES:
        model = predicted_scr_mpps(costs, k)
        per_core_eff = measured[k] / (k * measured[1])
        rows.append([k, f"{model:.1f}", f"{measured[k]:.1f}", f"{per_core_eff:.2f}"])
    emit(render_table(
        ["cores", "model (Mpps)", "measured (Mpps)", "per-core efficiency"],
        rows,
        title="DDoS mitigator to the Tofino sequencer's 44-core capacity",
    ))
    half_limit = linear_scaling_limit(costs, efficiency=0.5)
    emit(f"analytic 50%-efficiency point: {half_limit} cores")

    # Still monotone all the way out...
    values = [measured[k] for k in CORES]
    assert all(b >= a * 0.97 for a, b in zip(values, values[1:]))
    # ...matching the model...
    for k in CORES:
        assert measured[k] == pytest.approx(predicted_scr_mpps(costs, k), rel=0.2)
    # ...with efficiency dropping through ~50% near the analytic limit.
    eff_at_limit = measured[CORES[-1]] / (CORES[-1] * measured[1])
    assert eff_at_limit < 0.65
    assert 4 <= half_limit <= 44
