"""Table 3: Tofino sequencer resource usage and per-program core capacity."""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.programs import make_program
from repro.sequencer import TofinoSequencerModel

#: Table 3 as printed in the paper (average % across stages).
EXPECTED_USAGE = {
    "exact_crossbar_bytes": 23.31,
    "vliw": 9.11,
    "stateful_alus": 93.75,
    "logical_tables": 23.96,
    "srams": 9.69,
    "tcams": 0.00,
    "map_rams": 15.62,
    "gateways": 23.44,
}

#: §4.3: cores each program can be parallelized over with 44 32-bit fields.
EXPECTED_CORES = {
    "ddos": 44,
    "port_knocking": 22,
    "heavy_hitter": 9,
    "token_bucket": 9,
    "conntrack": 5,
}


@pytest.mark.benchmark(group="table3")
def test_table3_tofino_resources(benchmark):
    model = TofinoSequencerModel()
    usage = benchmark.pedantic(model.resource_usage, rounds=1, iterations=1)

    emit(render_table(
        ["resource", "avg % (model)", "avg % (paper)"],
        [[k, f"{usage[k]:.2f}", f"{EXPECTED_USAGE[k]:.2f}"] for k in EXPECTED_USAGE],
        title="Table 3 — Tofino sequencer resource usage",
    ))
    emit(render_table(
        ["program", "max cores"],
        [[n, model.max_cores(make_program(n))] for n in EXPECTED_CORES],
        title="Tofino history capacity: 44 32-bit fields → cores per program",
    ))

    assert model.history_fields == 44
    for key, pct in EXPECTED_USAGE.items():
        assert usage[key] == pytest.approx(pct, abs=0.1), key
    for name, cores in EXPECTED_CORES.items():
        assert model.max_cores(make_program(name)) == cores, name
