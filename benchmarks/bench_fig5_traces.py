"""Figure 5: flow-size distributions of the three evaluation traces.

Regenerates the CDF series (log-x) for the university DC, CAIDA backbone,
and hyperscalar-DC workloads, plus summary skew statistics of the actual
synthesized traces.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.traffic import TRACE_DISTRIBUTIONS, synthesize_trace


@pytest.mark.benchmark(group="fig5")
def test_fig5_flow_size_distributions(benchmark):
    def run():
        out = {}
        for name, factory in TRACE_DISTRIBUTIONS.items():
            dist = factory()
            xs, ys = dist.cdf_series(points=12)
            sizes = dist.sample_packets(np.random.default_rng(0), 3000)
            trace = synthesize_trace(
                dist, 50, seed=7, max_packets=3000,
                mean_flow_interarrival_ns=3000, flow_duration_ns=200_000,
            )
            out[name] = {
                "cdf": list(zip(xs, ys)),
                "mean_pkts": float(np.mean(sizes)),
                "median_pkts": float(np.median(sizes)),
                "p99_pkts": float(np.percentile(sizes, 99)),
                "top_share": trace.stats().top_flow_share,
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, d in data.items():
        emit(render_table(
            ["flow size (bytes)", "CDF"],
            [[f"{x:,.0f}", f"{y:.3f}"] for x, y in d["cdf"]],
            title=f"Figure 5 — {name} flow-size CDF",
        ))
    emit(render_table(
        ["trace", "mean pkts/flow", "median", "p99", "top-flow share"],
        [
            [n, f"{d['mean_pkts']:.1f}", f"{d['median_pkts']:.1f}",
             f"{d['p99_pkts']:.0f}", f"{d['top_share']:.2f}"]
            for n, d in data.items()
        ],
        title="Synthesized trace skew summary",
    ))

    for name, d in data.items():
        # Heavy tail: mean well above median, p99 far above mean.
        assert d["mean_pkts"] > 1.5 * d["median_pkts"], name
        assert d["p99_pkts"] > 3 * d["mean_pkts"], name
        # In-window skew: the top flow carries a sizeable share.
        assert d["top_share"] > 0.15, name
        # CDFs reach 1 and are monotone.
        ys = [y for _, y in d["cdf"]]
        assert all(b >= a - 1e-9 for a, b in zip(ys, ys[1:]))
