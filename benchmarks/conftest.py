"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures: it prints the
same rows/series the paper reports (absolute numbers come from the
simulator, shapes should match the paper) and asserts the qualitative
result.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output.
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.bench import ExperimentRunner

#: The pinned trace-synthesis seed.  All benchmark workloads derive from
#: it (the perf suite's repetition i uses BENCH_BASE_SEED + i), so
#: repeated runs produce identical traces and stable medians; bench
#: artifacts record the policy under ``seed_policy``.  Must match
#: ``repro.perf.suite.BASE_SEED`` — asserted below and in
#: ``tests/perf/test_seed_policy.py``.
BENCH_BASE_SEED = 7

#: Core counts swept in the figures.  The paper plots every count up to
#: 7 (or 14); benches default to a subset for runtime.  Set
#: ``SCR_FULL_SWEEP=1`` to sweep every core count like the paper does
#: (roughly triples the benchmark runtime).
if os.environ.get("SCR_FULL_SWEEP"):
    CORES_7 = list(range(1, 8))
    CORES_14 = list(range(1, 15))
else:
    CORES_7 = [1, 2, 4, 7]
    CORES_14 = [1, 2, 4, 7, 10, 14]


@pytest.fixture(autouse=True)
def _pinned_global_rngs():
    """Pin the process-global RNGs before every bench.

    Workload synthesis must draw only from ``np.random.default_rng(seed)``
    with an explicit seed; seeding the global streams too means any
    accidental global draw is at least reproducible rather than a source
    of run-to-run median jitter.
    """
    random.seed(BENCH_BASE_SEED)
    np.random.seed(BENCH_BASE_SEED)
    yield


@pytest.fixture(scope="session")
def runner():
    from repro.perf.suite import BASE_SEED

    assert BASE_SEED == BENCH_BASE_SEED, (
        "benchmark seed policy drifted: repro.perf.suite.BASE_SEED "
        f"({BASE_SEED}) != benchmarks BENCH_BASE_SEED ({BENCH_BASE_SEED})"
    )
    # SCR_CACHE_DIR reuses synthesized traces across bench runs via the
    # content-addressed cache; cache hits are byte-identical reloads, so
    # the medians cannot change (see docs/BENCHMARKS.md).
    cache = None
    cache_dir = os.environ.get("SCR_CACHE_DIR")
    if cache_dir:
        from repro.scenario import TraceCache

        cache = TraceCache(cache_dir)
    r = ExperimentRunner(num_flows=50, max_packets=3000,
                         seed=BENCH_BASE_SEED, cache=cache)
    assert r.seed == BENCH_BASE_SEED
    return r


def emit(text: str) -> None:
    """Print a rendered table with surrounding whitespace (shown with -s)."""
    print("\n" + text + "\n")
