"""Shared benchmark fixtures.

Every bench regenerates one of the paper's tables or figures: it prints the
same rows/series the paper reports (absolute numbers come from the
simulator, shapes should match the paper) and asserts the qualitative
result.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
rendered output.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import ExperimentRunner

#: Core counts swept in the figures.  The paper plots every count up to
#: 7 (or 14); benches default to a subset for runtime.  Set
#: ``SCR_FULL_SWEEP=1`` to sweep every core count like the paper does
#: (roughly triples the benchmark runtime).
if os.environ.get("SCR_FULL_SWEEP"):
    CORES_7 = list(range(1, 8))
    CORES_14 = list(range(1, 15))
else:
    CORES_7 = [1, 2, 4, 7]
    CORES_14 = [1, 2, 4, 7, 10, 14]


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(num_flows=50, max_packets=3000)


def emit(text: str) -> None:
    """Print a rendered table with surrounding whitespace (shown with -s)."""
    print("\n" + text + "\n")
