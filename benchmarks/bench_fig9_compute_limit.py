"""Figure 9: SCR scaling limits as compute latency grows (Principle #3).

A stateless program is given artificial compute latency; with SCR the
history items cost the same compute, so per-packet time is d + k·c.  While
dispatch dominates (small c), N cores give ≈N× throughput; as c grows the
relative benefit collapses toward 1.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import find_mlffr, render_table
from repro.cpu import TABLE4_PARAMS, CostParams, PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine
from repro.programs import make_program
from repro.traffic import Trace

COMPUTE_NS = [0, 25, 50, 100, 200, 400]
CORES = [1, 2, 4, 7]
TWO_RXQ_DISPATCH_SCALE = 0.93


def capacity(extra_ns, cores, rxqs=1):
    pkts = [make_udp_packet(1, 2, 3, 4) for _ in range(3000)]
    pt = PerfTrace.from_trace(Trace(pkts).truncated(64), make_program("forwarder"))
    base = TABLE4_PARAMS["forwarder"]
    d = base.d * (TWO_RXQ_DISPATCH_SCALE if rxqs == 2 else 1.0)
    costs = CostParams(t=d + base.c1, c2=base.c2, d=d, c1=base.c1)
    engine = ScrEngine(
        make_program("forwarder"), cores, costs=costs,
        extra_compute_ns=extra_ns, dummy_eth=False,
    )
    return find_mlffr(pt, engine).mlffr_mpps


@pytest.mark.benchmark(group="fig9")
def test_fig9_compute_latency_sweep(benchmark):
    def run():
        out = {}
        for rxqs in (1, 2):
            out[rxqs] = {
                c: {k: capacity(c, k, rxqs) for k in CORES} for c in COMPUTE_NS
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    for rxqs in (1, 2):
        emit(render_table(
            ["compute (ns)"] + [f"{k} cores (Mpps)" for k in CORES],
            [
                [c] + [f"{data[rxqs][c][k]:.2f}" for k in CORES]
                for c in COMPUTE_NS
            ],
            title=f"Figure 9{'a' if rxqs == 1 else 'b'} — stateless program, {rxqs} RXQ",
        ))
    emit(render_table(
        ["compute (ns)"] + [f"{k} cores (×1-core)" for k in CORES],
        [
            [c] + [f"{data[1][c][k] / data[1][c][1]:.2f}" for k in CORES]
            for c in COMPUTE_NS
        ],
        title="Figure 9c — normalized to 1 core at the same compute latency",
    ))

    d1 = data[1]
    # Small compute: near-linear scale-up (7 cores ≥ 5×).
    assert d1[0][7] / d1[0][1] > 5.0
    # Large compute: relative benefit collapses.
    assert d1[400][7] / d1[400][1] < 2.0
    # The normalized benefit decreases monotonically with compute latency.
    ratios = [d1[c][7] / d1[c][1] for c in COMPUTE_NS]
    assert all(b <= a * 1.05 for a, b in zip(ratios, ratios[1:]))
    # 2 RXQ shifts curves up slightly at low compute.
    assert data[2][0][7] > data[1][0][7]
