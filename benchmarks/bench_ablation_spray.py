"""Ablation: round-robin vs hash spraying for SCR's packet distribution.

Round-robin bounds the gap between a core's consecutive packets at exactly
k, so k-1 history slots always suffice (§3.1).  Hash-based spraying (what a
plain RSS NIC would do over the dummy Ethernet header) makes the gap a
geometric random variable with an unbounded tail: the sequencer would have
to size its ring for the *worst* gap or accept recovery work on every tail
event.  This bench measures the gap distribution for both policies.
"""

import random

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table


def gap_distribution(policy, num_cores, packets, seed=0):
    rng = random.Random(seed)
    last_seen = {}
    gaps = []
    rr = 0
    for seq in range(packets):
        if policy == "round-robin":
            core = rr
            rr = (rr + 1) % num_cores
        else:
            core = rng.randrange(num_cores)
        if core in last_seen:
            gaps.append(seq - last_seen[core])
        last_seen[core] = seq
    gaps.sort()
    return gaps


def percentile(sorted_values, q):
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


@pytest.mark.benchmark(group="ablation-spray")
def test_ablation_round_robin_vs_hash_spray(benchmark):
    def run():
        rows = []
        for k in (4, 8, 16):
            rr = gap_distribution("round-robin", k, 200_000)
            hashed = gap_distribution("hash", k, 200_000)
            rows.append({
                "cores": k,
                "rr_max": rr[-1],
                "hash_p99": percentile(hashed, 0.99),
                "hash_p999": percentile(hashed, 0.999),
                "hash_max": hashed[-1],
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["cores", "RR max gap (=ring size)", "hash p99 gap", "hash p99.9 gap",
         "hash max gap"],
        [
            [r["cores"], r["rr_max"], r["hash_p99"], r["hash_p999"], r["hash_max"]]
            for r in rows
        ],
        title="Ablation — history depth needed: round-robin vs hash spraying",
    ))

    for r in rows:
        k = r["cores"]
        # Round-robin: gap is exactly k — the ring needs k-1 usable slots.
        assert r["rr_max"] == k
        # Hash spraying: even p99 exceeds the RR bound, and the max gap is
        # several times larger — an unbounded ring requirement in practice.
        assert r["hash_p99"] > k
        assert r["hash_max"] > 3 * k
