"""Extension experiment: tail latency under skewed load (§1's motivation).

The introduction argues that elephant flows on a single core "reduce total
throughput and inflate tail latencies for all packets".  The throughput
half is Figure 6; this bench measures the latency half: per-packet sojourn
times (arrival → service completion) at the same offered load, for SCR vs
RSS sharding, on an elephant-dominated workload.

Expected: at a load one core cannot carry alone, RSS's elephant core
builds deep queues — p99 latency explodes — while SCR spreads the same
load evenly and keeps the tail flat.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.cpu import PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import make_engine
from repro.programs import make_program
from repro.traffic import Trace


def skewed_trace(n=4000):
    """90 % of packets from one source, the rest from many mice."""
    pkts = []
    for i in range(n):
        src = 1 if i % 10 else 100 + (i // 10) % 50
        pkts.append(make_udp_packet(src, 2, 3, 4))
    return Trace(pkts).truncated(192)


@pytest.mark.benchmark(group="ext-latency")
def test_ext_tail_latency_scr_vs_rss(benchmark):
    prog_name = "ddos"
    pt = PerfTrace.from_trace(skewed_trace(), make_program(prog_name))
    cores = 7
    offered = 12e6  # ~1.4x a single core's rate: fine for 7 cores, fatal for 1

    def run():
        rows = []
        for tech in ("scr", "rss", "shared"):
            engine = make_engine(tech, make_program(prog_name), cores)
            res = simulate(pt, offered, engine, collect_latency=True)
            # The log-bucketed histogram (repro.telemetry): bounded memory,
            # ~9 % quantile error — plenty for the order-of-magnitude claims.
            rows.append({
                "tech": tech,
                "p50": res.latency_p50_ns,
                "p99": res.latency_p99_ns,
                "p999": res.latency_p999_ns,
                "loss": res.loss_fraction,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["technique", "p50 (ns)", "p99 (ns)", "p99.9 (ns)", "loss"],
        [
            [r["tech"], f"{r['p50']:.0f}", f"{r['p99']:.0f}",
             f"{r['p999']:.0f}", f"{r['loss']:.3f}"]
            for r in rows
        ],
        title=f"Tail latency @ {offered/1e6:.0f} Mpps offered, {cores} cores "
              f"(90 % single-source)",
    ))

    by_tech = {r["tech"]: r for r in rows}
    # RSS's elephant core is overloaded: queues (or drops) blow up the tail.
    assert (
        by_tech["rss"]["p99"] > 10 * by_tech["scr"]["p99"]
        or by_tech["rss"]["loss"] > 0.2
    )
    # SCR's tail stays within a few service times of its median.
    assert by_tech["scr"]["p999"] < 20 * by_tech["scr"]["p50"]
    assert by_tech["scr"]["loss"] < 0.01
