"""Figure 11 + Table 4: the Appendix A throughput model vs measurement.

Prints the Table 4 parameters and, for each of the five programs, the
model-predicted vs simulator-measured SCR throughput across cores.  Paper
result: the model k/(t + (k-1)·c2) matches the measurements well.
"""

import pytest

from benchmarks.conftest import CORES_7, emit
from repro.bench import predicted_scr_mpps, render_table
from repro.cpu import TABLE4_PARAMS

PROGRAMS_TRACES = [
    ("ddos", "univ_dc"),
    ("heavy_hitter", "univ_dc"),
    ("token_bucket", "univ_dc"),
    ("port_knocking", "univ_dc"),
    ("conntrack", "hyperscalar_dc"),
]


@pytest.mark.benchmark(group="fig11")
def test_table4_parameters(benchmark):
    def run():
        return {
            name: TABLE4_PARAMS[name]
            for name, _ in PROGRAMS_TRACES
        }

    params = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["program", "t (ns)", "c2 (ns)", "d (ns)", "c1 (ns)", "t/c2"],
        [
            [n, f"{p.t:.0f}", f"{p.c2:.0f}", f"{p.d:.0f}", f"{p.c1:.0f}",
             f"{p.t / p.c2:.1f}"]
            for n, p in params.items()
        ],
        title="Table 4 — throughput model parameters",
    ))
    # The paper notes t is 4.3–9.4× c2 across programs.
    ratios = [p.t / p.c2 for p in params.values()]
    assert min(ratios) > 4.0 and max(ratios) < 10.0


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("program,trace", PROGRAMS_TRACES)
def test_fig11_predicted_vs_measured(benchmark, runner, program, trace):
    def run():
        return {
            k: runner.mlffr_point(program, trace, "scr", k).mlffr_mpps
            for k in CORES_7
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for k in CORES_7:
        predicted = predicted_scr_mpps(TABLE4_PARAMS[program], k)
        rows.append([k, f"{predicted:.2f}", f"{measured[k]:.2f}",
                     f"{measured[k] / predicted:.2f}"])
    emit(render_table(
        ["cores", "model (Mpps)", "measured (Mpps)", "ratio"],
        rows,
        title=f"Figure 11 — {program} on {trace}: model vs measured",
    ))
    for k in CORES_7:
        predicted = predicted_scr_mpps(TABLE4_PARAMS[program], k)
        assert measured[k] == pytest.approx(predicted, rel=0.17), k
