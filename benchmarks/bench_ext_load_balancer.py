"""Extension experiment: a software L4 load balancer under SCR (§1, [8,41]).

Software load balancers are the first application the paper's introduction
names.  This bench runs the Maglev-style balancer on a connection-churn
workload and reports (i) the Maglev table's two defining properties —
near-equal backend shares and minimal disruption on backend failure — and
(ii) the load balancer's MLFFR under every scaling technique, where one
hot VIP's connection table is exactly the single-flow-state problem SCR
solves.
"""

import pytest

from benchmarks.conftest import CORES_7, emit
from repro.bench import render_scaling_series, render_table
from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import TCP_ACK, TCP_FIN, TCP_SYN, make_tcp_packet
from repro.programs.load_balancer import MaglevLoadBalancer, MaglevTable
from repro.traffic import Trace

TECHNIQUES = ["scr", "shared", "rss", "rss++"]


def churn_trace(clients=60, rounds=4, data_per_conn=2, elephant_packets=2400):
    """A realistic VIP mix: churny short connections plus two long-lived
    elephant streams (e.g. video) that carry most of the packets.  The
    elephants are single connections — exactly the state sharding cannot
    split (§1) — interleaved round-robin with the churn."""
    churn = []
    for r in range(rounds):
        for c in range(1, clients + 1):
            sport = 1000 + r
            churn.append(make_tcp_packet(c, 9, sport, 80, TCP_SYN))
            for _ in range(data_per_conn):
                churn.append(make_tcp_packet(c, 9, sport, 80, TCP_ACK))
            churn.append(make_tcp_packet(c, 9, sport, 80, TCP_FIN | TCP_ACK))
    elephants = [
        make_tcp_packet(200 + (i % 2), 9, 5000, 80, TCP_ACK)
        for i in range(elephant_packets)
    ]
    # interleave: ~2 elephant packets per churn packet
    pkts = []
    e = iter(elephants)
    for pkt in churn:
        pkts.append(pkt)
        for _ in range(2):
            nxt = next(e, None)
            if nxt is not None:
                pkts.append(nxt)
    pkts.extend(e)
    return Trace(pkts, name="lb-mixed").truncated(192)


@pytest.mark.benchmark(group="ext-lb")
def test_ext_load_balancer(benchmark, runner):
    trace = churn_trace()

    def run():
        out = {}
        # -- Maglev table properties ---------------------------------------
        table = MaglevTable(list(range(10)), table_size=65537)
        shares = table.shares()
        out["share_spread"] = max(shares.values()) - min(shares.values())
        out["disruption"] = table.disruption(
            MaglevTable(list(range(9)), table_size=65537)
        )
        # -- correctness under SCR ------------------------------------------
        engine = ScrFunctionalEngine(MaglevLoadBalancer(), num_cores=4)
        result = engine.run(trace)
        _, ref_state = reference_run(MaglevLoadBalancer(), trace)
        out["consistent"] = (
            result.replicas_consistent
            and result.replica_snapshots[0] == ref_state
        )
        # -- throughput -------------------------------------------------------
        from repro.cpu import PerfTrace
        from repro.parallel import make_engine
        from repro.bench import find_mlffr

        pt = PerfTrace.from_trace(trace, MaglevLoadBalancer())
        series = {}
        for tech in TECHNIQUES:
            kwargs = {"count_wire_overhead": False} if tech == "scr" else {}
            series[tech] = [
                (
                    k,
                    find_mlffr(
                        pt, make_engine(tech, MaglevLoadBalancer(), k, **kwargs)
                    ).mlffr_mpps,
                )
                for k in CORES_7
            ]
        out["series"] = series
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(render_table(
        ["Maglev property", "value", "expectation"],
        [
            ["backend share spread", f"{out['share_spread']:.4f}", "< 0.02"],
            ["disruption, 1 of 10 removed", f"{out['disruption']:.3f}", "≈ 0.1-0.3"],
            ["SCR replicas == reference", out["consistent"], "True"],
        ],
        title="Extension — Maglev load balancer",
    ))
    emit(render_scaling_series(
        out["series"], title="Extension — load balancer MLFFR (Mpps)"
    ))

    assert out["share_spread"] < 0.02
    assert 0.05 < out["disruption"] < 0.4
    assert out["consistent"]
    scr = dict(out["series"]["scr"])
    assert scr[7] > 2.5 * scr[1]
    for tech in ("shared", "rss", "rss++"):
        assert scr[7] > dict(out["series"][tech])[7], tech
