"""Extension experiment: global state (NAT port pool) under each technique.

§2.2: "it is not always possible to avoid coordination through sharding.
There may be parts of the program state that are shared across all packets,
such as a list of free external ports in a NAT application."  This bench
makes that concrete:

* **correctness** — sharded per-core state hands the same external port to
  different flows (functional demonstration); SCR replicas stay identical
  to the single-threaded reference;
* **throughput** — SCR still scales the NAT while shared-lock collapses
  (every packet may touch the one pool entry, the worst contention case).
"""

import pytest

from benchmarks.conftest import CORES_7, emit
from repro.bench import find_mlffr, render_scaling_series, render_table
from repro.core import ScrFunctionalEngine, reference_run
from repro.cpu import PerfTrace
from repro.packet import TCP_ACK, TCP_FIN, TCP_SYN, make_tcp_packet
from repro.parallel import ScrEngine, ShardedFunctionalEngine, SharedLockEngine
from repro.programs import NatGateway
from repro.traffic import Trace


def nat_trace(flows=60, data_per_flow=3, rounds=10):
    """Churn-heavy NAT workload: short connections arriving in waves, so a
    large fraction of packets allocate/release from the global pool (real
    NAT boxes live on connection churn).  Only even-numbered sources close
    their connections, so bindings remain to inspect afterwards."""
    pkts = []
    for r in range(rounds):
        for src in range(1, flows + 1):
            sport = 100 + r
            pkts.append(make_tcp_packet(src, 9, sport, 80, TCP_SYN))
            for _ in range(data_per_flow):
                pkts.append(make_tcp_packet(src, 9, sport, 80, TCP_ACK))
            if src % 2 == 0:
                pkts.append(make_tcp_packet(src, 9, sport, 80, TCP_FIN | TCP_ACK))
    return Trace(pkts, name="nat-workload").truncated(192)


@pytest.mark.benchmark(group="ext-nat")
def test_ext_nat_correctness_and_throughput(benchmark):
    trace = nat_trace()

    def run():
        out = {}
        # -- correctness ----------------------------------------------------
        engine = ScrFunctionalEngine(NatGateway(port_count=2048), num_cores=4)
        result = engine.run(trace)
        ref_verdicts, ref_state = reference_run(NatGateway(port_count=2048), trace)
        out["scr_consistent"] = result.replicas_consistent
        out["scr_matches_ref"] = (
            result.replica_snapshots[0] == ref_state
            and result.verdicts == ref_verdicts
        )
        # Sharded execution with real RSS steering into per-core state.
        sharded = ShardedFunctionalEngine(NatGateway(port_count=2048), num_cores=4)
        sharded.run(trace)
        # Count duplicate allocations across the raw shards (merged_state()
        # would deduplicate colliding keys).
        ports = []
        for s in sharded.states:
            ports.extend(
                v for k, v in s.snapshot().items()
                if isinstance(k, tuple) and k[0] == "bind"
            )
        out["sharded_duplicate_ports"] = len(ports) - len(set(ports))

        # -- throughput -------------------------------------------------------
        pt = PerfTrace.from_trace(trace, NatGateway(port_count=2048))
        series = {"scr": [], "shared": []}
        for k in CORES_7:
            scr = ScrEngine(NatGateway(port_count=2048), k, count_wire_overhead=False)
            series["scr"].append((k, find_mlffr(pt, scr).mlffr_mpps))
            lock = SharedLockEngine(NatGateway(port_count=2048), k)
            series["shared"].append((k, find_mlffr(pt, lock).mlffr_mpps))
        out["series"] = series
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(render_table(
        ["check", "result"],
        [
            ["SCR replicas consistent", out["scr_consistent"]],
            ["SCR equals single-threaded reference", out["scr_matches_ref"]],
            ["duplicate ports under sharding", out["sharded_duplicate_ports"]],
        ],
        title="Extension — NAT with a global free-port pool: correctness",
    ))
    emit(render_scaling_series(
        out["series"], title="Extension — NAT gateway MLFFR (Mpps)"
    ))

    assert out["scr_consistent"] and out["scr_matches_ref"]
    # Sharding misallocates: the global pool cannot be split.
    assert out["sharded_duplicate_ports"] > 0
    scr = dict(out["series"]["scr"])
    shared = dict(out["series"]["shared"])
    assert scr[7] > 2.5 * scr[1]
    assert scr[7] > 1.5 * shared[7]
    # the global pool caps shared-lock scaling well below linear
    assert shared[7] < 0.5 * 7 * shared[1]
