"""Ablation: packet-history placement (§3.3.1).

The paper prefixes the history before the entire original packet rather
than splicing it between headers.  Two measurable consequences:

* **hardware write offset** — the prefix always writes at offset 0 with a
  fixed-size shift; inline insertion writes at a parse-dependent offset
  (after L2/L3), so the insertion point varies per packet;
* **software parse cost** — the prefix keeps all original bytes contiguous
  so the program's parser is untouched; inline format makes the parser skip
  a hole mid-packet.

This bench implements the rejected inline format and compares encode +
decode work on both, plus the variance of the insertion offset (a proxy for
hardware mux complexity).
"""

import statistics

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.packet import ETH_HLEN
from repro.sequencer import PacketHistorySequencer
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


class InlineCodec:
    """The rejected alternative: history spliced after the Ethernet header."""

    def __init__(self, meta_size, num_slots):
        self.meta_size = meta_size
        self.num_slots = num_slots
        self.block = num_slots * meta_size

    def encode(self, rows, original):
        # insertion offset depends on the packet: after L2 here, but a
        # VLAN/MPLS-tagged packet would shift it — variable in hardware.
        offset = ETH_HLEN
        return original[:offset] + b"".join(rows) + original[offset:]

    def decode(self, data):
        offset = ETH_HLEN
        block = data[offset : offset + self.block]
        rows = [
            block[i * self.meta_size : (i + 1) * self.meta_size]
            for i in range(self.num_slots)
        ]
        # the parser must reassemble the original from two pieces
        original = data[:offset] + data[offset + self.block :]
        return rows, original


@pytest.mark.benchmark(group="ablation-format")
def test_ablation_history_placement(benchmark):
    prog = make_program("conntrack")
    cores = 7
    seq = PacketHistorySequencer(prog, cores, dummy_eth=False)
    prefix = seq.codec
    inline = InlineCodec(prog.metadata_size, cores)
    trace = synthesize_trace(
        univ_dc_flow_sizes(), 20, seed=3, bidirectional=True, max_packets=600
    ).truncated(256)
    rows = [bytes(prog.metadata_size)] * cores

    def run():
        import timeit

        originals = [p.to_bytes() for p in trace]
        block = b"".join(rows)
        block_len = len(block)

        # Minimal splices, isolating *placement* from header/validation
        # costs (the full codec adds those identically to either layout).
        def prefix_pass():
            for raw in originals:
                data = block + raw
                history, original = data[:block_len], data[block_len:]

        def inline_pass():
            for raw in originals:
                data = raw[:ETH_HLEN] + block + raw[ETH_HLEN:]
                history = data[ETH_HLEN : ETH_HLEN + block_len]
                original = data[:ETH_HLEN] + data[ETH_HLEN + block_len:]

        t_prefix = min(timeit.repeat(prefix_pass, number=3, repeat=3))
        t_inline = min(timeit.repeat(inline_pass, number=3, repeat=3))

        # original-bytes contiguity: with the prefix format the program can
        # parse from one offset; inline needs a reassembly copy.
        reassembly_copies = len(originals)  # one per packet for inline
        return {
            "t_prefix_us": t_prefix * 1e6,
            "t_inline_us": t_inline * 1e6,
            "inline_reassembly_copies": reassembly_copies,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    # Hardware-offset proxy: the prefix write offset is a constant (0);
    # inline offsets vary with encapsulation depth.
    inline_offsets = [ETH_HLEN, ETH_HLEN + 4, ETH_HLEN + 8]  # plain/VLAN/QinQ
    emit(render_table(
        ["format", "sw encode+decode (µs/trace)", "write offset", "offset variance",
         "original bytes contiguous"],
        [
            ["prefix (paper)", f"{stats['t_prefix_us']:.0f}", "0 (fixed)", "0", "yes"],
            ["inline (rejected)", f"{stats['t_inline_us']:.0f}",
             "after L2 (varies)", f"{statistics.pvariance(inline_offsets):.1f}", "no"],
        ],
        title="Ablation — history placement (conntrack, 7 cores)",
    ))

    # The prefix format is no slower in software and strictly simpler in
    # hardware (fixed offset, no mid-packet hole).
    assert stats["t_prefix_us"] < stats["t_inline_us"] * 1.5
    assert statistics.pvariance(inline_offsets) > 0
