"""Ablation: recover lost packets by syncing HISTORY vs syncing FULL STATE.

§3.4 chooses history synchronization: losses are rare but the flow-state
table is large, so copying the peer's whole state per loss would move far
more bytes than replaying a few metadata entries.  This bench quantifies
the trade on a realistic run: bytes moved and recovery work per loss event,
as the number of tracked flows grows.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.core import ScrFunctionalEngine
from repro.cpu import STATE_ENTRY_BYTES
from repro.programs import make_program
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


@pytest.mark.benchmark(group="ablation-recovery")
def test_ablation_history_vs_state_sync(benchmark):
    def run():
        rows = []
        for flows in (20, 100, 400):
            prog = make_program("heavy_hitter")
            trace = synthesize_trace(
                univ_dc_flow_sizes(), flows, seed=9, max_packets=1500,
                mean_flow_interarrival_ns=500,
            )
            engine = ScrFunctionalEngine(
                make_program("heavy_hitter"), 4,
                with_recovery=True, loss_rate=0.02, seed=11,
            )
            result = engine.run(trace)
            assert result.replicas_consistent
            losses = max(1, len(result.lost_seqs))
            tracked = len(result.replica_snapshots[0])
            meta = prog.metadata_size
            # History sync: each recovered sequence replays one metadata
            # entry read from a peer log.
            history_bytes = result.recovered * meta / losses
            # Full-state sync: each loss event copies the peer's whole
            # table (entries × cache-line footprint).
            state_bytes = tracked * STATE_ENTRY_BYTES
            rows.append({
                "flows": tracked,
                "losses": len(result.lost_seqs),
                "recovered": result.recovered,
                "history_bytes_per_loss": history_bytes,
                "state_bytes_per_loss": state_bytes,
                "ratio": state_bytes / max(1.0, history_bytes),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["tracked flows", "losses", "recovered seqs", "history sync (B/loss)",
         "full-state sync (B/loss)", "state/history ratio"],
        [
            [r["flows"], r["losses"], r["recovered"],
             f"{r['history_bytes_per_loss']:.0f}",
             f"{r['state_bytes_per_loss']:,.0f}", f"{r['ratio']:,.0f}x"]
            for r in rows
        ],
        title="Ablation — recovery by history replay vs full-state copy",
    ))

    # History sync moves orders of magnitude fewer bytes, and the gap grows
    # with the flow count (the paper's rationale).
    assert all(r["ratio"] > 10 for r in rows)
    ratios = [r["ratio"] for r in rows]
    assert ratios[-1] > ratios[0]
