"""Figure 8: hardware performance counters for the token bucket program.

Paper result, as offered load rises at 2/4/7 cores on the univ-DC trace:
lock-based sharing shows depressed L2 hit ratios and ballooning program
latency from lock/cache-line contention; sharding shows high IPC at 2 cores
that drops (with wide min–max spread) at more cores because load is
imbalanced and idle cores poll; SCR keeps IPC consistently high, pays
higher program latency than RSS (history processing), and keeps L2 hits
high (private replicas never bounce).
"""

import pytest

from benchmarks.conftest import emit
from repro.bench import render_table
from repro.cpu import simulate
from repro.parallel import make_engine
from repro.programs import make_program

TECHNIQUES = ["scr", "shared", "rss", "rss++"]
CORE_COUNTS = [2, 4, 7]
OFFERED_MPPS = [2, 6, 10]


@pytest.mark.benchmark(group="fig8")
def test_fig8_pcm_counters(benchmark, runner):
    def run():
        prog_proto = make_program("token_bucket")
        pt = runner.perf_trace_for(prog_proto, "univ_dc")
        rows = []
        for cores in CORE_COUNTS:
            for offered in OFFERED_MPPS:
                for tech in TECHNIQUES:
                    engine = make_engine(tech, make_program("token_bucket"), cores)
                    res = simulate(pt, offered * 1e6, engine)
                    ipc_lo, ipc_hi = res.counters.ipc_wall_min_max(res.duration_ns)
                    rows.append({
                        "cores": cores,
                        "offered": offered,
                        "tech": tech,
                        "l2_hit": res.counters.mean_l2_hit_ratio(),
                        "ipc": res.counters.mean_ipc_wall(res.duration_ns),
                        "ipc_spread": ipc_hi - ipc_lo,
                        "latency": res.counters.mean_compute_latency_ns(),
                    })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["cores", "offered (Mpps)", "technique", "L2 hit", "IPC", "IPC spread", "latency (ns)"],
        [
            [r["cores"], r["offered"], r["tech"], f"{r['l2_hit']:.3f}",
             f"{r['ipc']:.2f}", f"{r['ipc_spread']:.2f}", f"{r['latency']:.0f}"]
            for r in rows
        ],
        title="Figure 8 — token bucket on univ DC: simulated PCM counters",
    ))

    def pick(cores, offered, tech):
        return next(
            r for r in rows
            if r["cores"] == cores and r["offered"] == offered and r["tech"] == tech
        )

    for offered in OFFERED_MPPS:
        for cores in CORE_COUNTS:
            scr = pick(cores, offered, "scr")
            shared = pick(cores, offered, "shared")
            rss = pick(cores, offered, "rss")
            # (a-c) locks depress L2 hit ratio vs both SCR and RSS.
            assert shared["l2_hit"] <= scr["l2_hit"] + 1e-9
            # (g-i) lock latency far above SCR; SCR above RSS (history work).
            assert shared["latency"] > scr["latency"]
            assert scr["latency"] > rss["latency"]

    # (d-f) IPC rises with offered load for SCR (cores get busier).
    for cores in CORE_COUNTS:
        series = [pick(cores, o, "scr")["ipc"] for o in OFFERED_MPPS]
        assert series[-1] > series[0]

    # Sharding's cross-core IPC spread exceeds SCR's at high core counts —
    # the imbalance signature (idle cores polling).
    assert pick(7, 10, "rss")["ipc_spread"] > pick(7, 10, "scr")["ipc_spread"]
