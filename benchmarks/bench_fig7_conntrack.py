"""Figure 7: TCP connection tracking on the hyperscalar DC trace.

Paper result: SCR scales linearly to 7 cores; shared locks collapse; RSS
and RSS++ (with symmetric hashing) are limited by flow skew.
"""

import pytest

from benchmarks.conftest import CORES_7, emit
from repro.bench import render_scaling_series

TECHNIQUES = ["scr", "shared", "rss", "rss++"]


@pytest.mark.benchmark(group="fig7")
def test_fig7_conntrack_hyperscalar(benchmark, runner):
    def run():
        scr_kwargs = {"count_wire_overhead": False}  # 256 B frames budget history
        return {
            tech: [
                (
                    k,
                    runner.mlffr_point(
                        "conntrack", "hyperscalar_dc", tech, k,
                        engine_kwargs=scr_kwargs if tech == "scr" else None,
                    ).mlffr_mpps,
                )
                for k in CORES_7
            ]
            for tech in TECHNIQUES
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_scaling_series(
        series, title="Figure 7 — conntrack on hyperscalar DC trace (Mpps)"
    ))

    scr = dict(series["scr"])
    shared = dict(series["shared"])
    rss = dict(series["rss"])
    rsspp = dict(series["rss++"])

    assert scr[7] > 2.5 * scr[1]
    assert scr[7] > max(shared[7], rss[7], rsspp[7])
    assert shared[7] < shared[2]  # lock collapse
    assert rss[7] < 0.5 * 7 * rss[1]  # skew-capped sharding
