#!/usr/bin/env python3
"""Quickstart: run a stateful program under state-compute replication.

Builds a small heavy-tailed trace, runs the port-knocking firewall across
4 replicated cores through the packet-history sequencer, and verifies the
paper's core claim: every core's private state equals a single-threaded
execution — with zero cross-core synchronization.
"""

from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import TCP_SYN, ip_to_int, make_tcp_packet
from repro.programs import make_program
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


def main() -> None:
    # 1. A workload: 25 flows with university-data-center sizes (§4.1),
    #    plus one client that knocks the secret ports 7001→7002→7003 first
    #    so its traffic is admitted by the firewall.
    trace = synthesize_trace(
        univ_dc_flow_sizes(), num_flows=25, seed=1, max_packets=2000
    )
    knocker = ip_to_int("192.168.0.42")
    server = ip_to_int("172.16.0.1")
    knocks = [
        make_tcp_packet(knocker, server, 5555, port, TCP_SYN)
        for port in (7001, 7002, 7003, 443, 443, 443)
    ]
    trace.packets = knocks + trace.packets
    stats = trace.stats()
    print(f"trace: {stats.packets} packets, {stats.flows} flows, "
          f"top flow carries {stats.top_flow_share:.0%} of packets")

    # 2. A program from Table 1 and an SCR engine with 4 cores.
    program = make_program("port_knocking")
    engine = ScrFunctionalEngine(program, num_cores=4)

    # 3. Run: the sequencer sprays packets round-robin and piggybacks the
    #    history each core missed; cores fast-forward private replicas.
    result = engine.run(trace)

    # 4. Correctness: replicas agree with each other and with a
    #    single-threaded reference run (Principles #1 and #2).
    ref_verdicts, ref_state = reference_run(make_program("port_knocking"), trace)
    assert result.replicas_consistent, "replicas diverged!"
    assert result.replica_snapshots[0] == ref_state, "state != reference!"
    assert result.verdicts == ref_verdicts, "verdicts != reference!"

    drops = sum(1 for v in result.verdicts.values() if v.name == "DROP")
    passed = result.offered - drops
    print(f"processed {result.offered} packets on 4 replicated cores")
    print(f"verdicts: {drops} dropped, {passed} forwarded "
          f"(only the knocking client's post-knock traffic passes)")
    print(f"tracked sources: {len(result.replica_snapshots[0])}")
    print("all 4 replicas identical to the single-threaded reference ✓")
    assert passed == 4  # the OPEN transition packet + three 443 packets


if __name__ == "__main__":
    main()
