#!/usr/bin/env python3
"""Scenario: surviving a single-source packet flood (§1, §2.2).

A volumetric attack concentrates traffic into one flow.  Sharding (RSS)
pins that flow — and therefore the whole attack — onto a single core, while
SCR spreads it across all cores.  This example measures the MLFFR
throughput (§4.1) of the DDoS mitigator under an attack-heavy trace for
every scaling technique, then shows the mitigator's verdicts functionally.
"""

from repro.bench import find_mlffr, render_scaling_series
from repro.core import ScrFunctionalEngine
from repro.cpu import PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import make_engine
from repro.programs import Verdict, make_program
from repro.traffic import Trace


def attack_trace(attack_packets=4000, victims=30):
    """One attacker flooding + light background traffic."""
    pkts = []
    attacker = 0x0A0000FF
    for i in range(attack_packets):
        pkts.append(make_udp_packet(attacker, 1, 53, 53))
        if i % 8 == 0:  # sprinkle legitimate flows between attack bursts
            src = 0x0A000001 + (i // 8) % victims
            pkts.append(make_udp_packet(src, 1, 1000, 80))
    return Trace(pkts, name="ddos-attack").truncated(192)


def main() -> None:
    trace = attack_trace()
    stats = trace.stats()
    print(f"attack trace: {stats.packets} packets, "
          f"attacker share {stats.top_flow_share:.0%}\n")

    # --- throughput under attack, per technique -------------------------------
    program = make_program("ddos")
    pt = PerfTrace.from_trace(trace, program)
    series = {}
    for tech in ("scr", "shared", "rss", "rss++"):
        series[tech] = []
        for cores in (1, 2, 4, 7, 14):
            engine = make_engine(tech, make_program("ddos"), cores)
            mlffr = find_mlffr(pt, engine)
            series[tech].append((cores, mlffr.mlffr_mpps))
    print(render_scaling_series(
        series, title="DDoS mitigator MLFFR under a one-source flood (Mpps)"
    ))

    scr14 = dict(series["scr"])[14]
    rss14 = dict(series["rss"])[14]
    print(f"\nSCR at 14 cores sustains {scr14:.1f} Mpps "
          f"vs {rss14:.1f} Mpps for RSS ({scr14 / rss14:.1f}x)\n")

    # --- functional check: the attacker actually gets dropped ------------------
    engine = ScrFunctionalEngine(make_program("ddos", threshold=1000), num_cores=4)
    result = engine.run(trace)
    assert result.replicas_consistent
    dropped = sum(1 for v in result.verdicts.values() if v == Verdict.DROP)
    print(f"functional run: {dropped} attack packets dropped after the "
          f"1000-packet threshold; replicas consistent across 4 cores ✓")


if __name__ == "__main__":
    main()
