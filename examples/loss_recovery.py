#!/usr/bin/env python3
"""Scenario: packet loss between the sequencer and the cores (§3.4, App. B).

If a ToR-switch sequencer feeds the server, a packet can occasionally be
lost after sequencing.  Without care, one core's replica would silently
diverge.  This example injects 2 % random loss, lets Algorithm 1's per-core
logs recover the gaps, and verifies that every replica still converges to
the reference state — then shows the throughput price of recovery.
"""

from repro.bench import find_mlffr, render_table
from repro.core import ScrFunctionalEngine, reference_run
from repro.cpu import PerfTrace
from repro.parallel import ScrEngine
from repro.programs import make_program
from repro.traffic import caida_backbone_flow_sizes, synthesize_trace


def main() -> None:
    trace = synthesize_trace(
        caida_backbone_flow_sizes(), num_flows=40, seed=5, max_packets=2500
    )

    # --- functional: inject loss, recover, verify ------------------------------
    engine = ScrFunctionalEngine(
        make_program("heavy_hitter"), num_cores=4,
        with_recovery=True, loss_rate=0.02, seed=123,
    )
    result = engine.run(trace)
    print(f"offered {result.offered} packets; "
          f"{len(result.lost_seqs)} lost between sequencer and cores")
    print(f"recovered {result.recovered} sequence entries from peer logs; "
          f"{result.skipped} skipped (lost at every core)")
    assert result.replicas_consistent
    print("replicas consistent across all 4 cores ✓")

    _, ref_state = reference_run(make_program("heavy_hitter"), trace)
    if result.skipped == 0 and not result.blocked_cores:
        assert result.replica_snapshots[0] == ref_state
        print("final state identical to the loss-free reference ✓")

    # --- performance: what does recovery cost? ---------------------------------
    pt = PerfTrace.from_trace(trace.truncated(192), make_program("heavy_hitter"))
    rows = []
    configs = [
        ("no recovery", {}),
        ("recovery, 0% loss", {"with_recovery": True}),
        ("recovery, 0.1% loss", {"with_recovery": True, "loss_rate": 0.001}),
        ("recovery, 1% loss", {"with_recovery": True, "loss_rate": 0.01}),
    ]
    for label, kwargs in configs:
        engine = ScrEngine(make_program("heavy_hitter"), 7, **kwargs)
        mlffr = find_mlffr(pt, engine)
        rows.append([label, f"{mlffr.mlffr_mpps:.2f}"])
    print()
    print(render_table(
        ["configuration", "MLFFR (Mpps, 7 cores)"], rows,
        title="Throughput cost of loss recovery (heavy hitter, CAIDA-like)",
    ))


if __name__ == "__main__":
    main()
