#!/usr/bin/env python3
"""Scenario: planning a sequencer deployment (§3.3, §4.3).

Given a program and a target core count, which hardware can host the
sequencer?  This example sizes both designs — the Tofino register pipeline
and the NetFPGA ring module — and previews the per-packet byte overhead the
history adds on the wire.
"""

from repro.bench import render_table
from repro.core import ScrPacketCodec
from repro.programs import make_program, program_names
from repro.sequencer import NetFpgaSequencerModel, TofinoSequencerModel


def main() -> None:
    tofino = TofinoSequencerModel()
    print(f"Tofino pipeline: {tofino.history_fields} 32-bit history fields, "
          f"{tofino.resource_usage()['stateful_alus']:.1f}% of stateful ALUs\n")

    rows = []
    for name in program_names(stateful_only=True):
        prog = make_program(name)
        fpga = NetFpgaSequencerModel(128)
        codec16 = ScrPacketCodec(prog.metadata_size, 16, dummy_eth=True)
        rows.append([
            name,
            prog.metadata_size,
            tofino.max_cores(prog),
            fpga.max_cores(prog.metadata_size),
            codec16.overhead_bytes,
        ])
    print(render_table(
        ["program", "metadata (B)", "Tofino max cores", "NetFPGA-128 max cores",
         "wire overhead @16 cores (B)"],
        rows,
        title="Sequencer capacity per program",
    ))

    print()
    fpga_rows = []
    for n in (16, 32, 64, 128):
        m = NetFpgaSequencerModel(n)
        luts, _, ffs = m.synthesis_row()
        fpga_rows.append([
            n, luts, ffs, f"{m.lut_utilization_pct():.3f}%",
            "yes" if m.meets_timing() else "no", f"{m.bandwidth_gbps():.0f}",
        ])
    print(render_table(
        ["history rows", "LUTs", "FFs", "LUT util", "250 MHz timing", "Gbit/s"],
        fpga_rows,
        title="NetFPGA sequencer synthesis (Alveo U250)",
    ))

    # A concrete plan: conntrack across 5 cores.
    prog = make_program("conntrack")
    k = 5
    assert tofino.fits(prog, k)
    codec = ScrPacketCodec(prog.metadata_size, k, dummy_eth=True)
    print(f"\nplan: conntrack x{k} cores on Tofino — fits "
          f"({k * prog.metadata_size} history bytes/packet, "
          f"{codec.overhead_bytes} B total prefix per packet)")


if __name__ == "__main__":
    main()
