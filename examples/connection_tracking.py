#!/usr/bin/env python3
"""Scenario: TCP connection tracking for a single elephant connection (Fig. 1).

A connection tracker must see every packet of both directions in order —
the hardest case for parallelization, since one busy connection cannot be
sharded.  This example walks one TCP conversation through the SCR pipeline,
shows the tracked state evolving identically on every core, and reproduces
the Figure 1 throughput comparison.
"""

from repro.bench import ExperimentRunner, render_scaling_series
from repro.core import ScrFunctionalEngine
from repro.programs import TcpState, make_program
from repro.traffic import single_flow_trace


def main() -> None:
    # --- functional: one connection across 3 replicated cores -----------------
    trace = single_flow_trace(num_packets=50, bidirectional=True)
    print(f"one TCP conversation: {len(trace)} packets "
          "(SYN handshake, data+ACKs, FIN teardown)")

    engine = ScrFunctionalEngine(make_program("conntrack"), num_cores=3)
    result = engine.run(trace)
    assert result.replicas_consistent

    final_state = result.replica_snapshots[0]
    print(f"after teardown the tracker reaped the entry: "
          f"{len(final_state)} connections left (expected 0)")

    # Mid-connection snapshot: stop before the FIN exchange.
    partial = single_flow_trace(num_packets=50, bidirectional=True)
    partial.packets = partial.packets[:-3]
    engine = ScrFunctionalEngine(make_program("conntrack"), num_cores=3)
    result = engine.run(partial)
    entry = next(iter(result.replica_snapshots[0].values()))
    print(f"mid-connection state on every core: {TcpState(entry.state).name}")
    assert entry.state == TcpState.FIN_WAIT or entry.state == TcpState.ESTABLISHED

    # --- performance: the Figure 1 sweep ----------------------------------------
    print("\nreproducing Figure 1 (single TCP connection, conntrack MLFFR)...")
    runner = ExperimentRunner(max_packets=3000)
    series = {}
    for tech in ("scr", "shared", "rss", "rss++"):
        kwargs = {"count_wire_overhead": False} if tech == "scr" else None
        series[tech] = [
            (
                k,
                runner.mlffr_point(
                    "conntrack", "single-flow", tech, k, engine_kwargs=kwargs
                ).mlffr_mpps,
            )
            for k in (1, 2, 4, 7)
        ]
    print(render_scaling_series(series, title="Figure 1 (Mpps)"))

    scr, rss = dict(series["scr"]), dict(series["rss"])
    print(f"\nSCR scales the single connection {scr[7] / scr[1]:.1f}x with 7 cores; "
          f"sharding stays at {rss[7] / rss[1]:.1f}x (one core's rate).")


if __name__ == "__main__":
    main()
