#!/usr/bin/env python3
"""Tutorial: write your own packet program and run it under SCR.

A program needs three pure pieces (App. C): metadata extraction ``f(p)``,
a state key, and a deterministic transition.  This example builds a small
SYN-flood detector (per-destination SYN/ACK imbalance), checks it with
``validate_program`` — the SCR-safety linter — and scales it across cores.
"""

from typing import Any, Hashable, Optional, Tuple

from repro.core import ScrFunctionalEngine, reference_run, validate_program
from repro.packet import TCP_ACK, TCP_SYN, Packet
from repro.programs import PacketMetadata, PacketProgram, Verdict
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


class SynFloodMetadata(PacketMetadata):
    """7 bytes: destination IP, TCP flags, validity."""

    FORMAT = "!IBBB"
    FIELDS = ("dst_ip", "flags", "valid", "_pad")
    __slots__ = FIELDS


class SynFloodDetector(PacketProgram):
    """Flag destinations whose half-open connection count exceeds a limit.

    State per destination IP: outstanding = SYNs seen - ACKs seen.  When
    the imbalance crosses ``limit``, further SYNs to that destination are
    dropped until the backlog drains — a classic SYN-flood defence,
    expressible as a deterministic FSM, hence SCR-parallelizable.
    """

    name = "synflood"
    metadata_cls = SynFloodMetadata
    rss_fields = "src & dst IP"
    needs_locks = True

    def __init__(self, limit: int = 100) -> None:
        self.limit = limit

    def extract_metadata(self, pkt: Packet) -> SynFloodMetadata:
        if not (pkt.is_ipv4 and pkt.is_tcp):
            return SynFloodMetadata(valid=0)
        return SynFloodMetadata(dst_ip=pkt.ip.dst, flags=pkt.l4.flags, valid=1)

    def key(self, meta: PacketMetadata) -> Hashable:
        return meta.dst_ip

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        outstanding = value or 0
        if meta.flags & TCP_SYN and not meta.flags & TCP_ACK:
            if outstanding >= self.limit:
                return outstanding, Verdict.DROP  # under attack: shed SYNs
            return outstanding + 1, Verdict.TX
        if meta.flags & TCP_ACK and not meta.flags & TCP_SYN:
            return max(0, outstanding - 1), Verdict.TX
        return outstanding, Verdict.TX


def main() -> None:
    program = SynFloodDetector(limit=50)
    trace = synthesize_trace(
        univ_dc_flow_sizes(), num_flows=20, seed=2, max_packets=1500
    )

    # 1. Lint the program for SCR safety before deploying it.
    report = validate_program(SynFloodDetector(limit=50), list(trace))
    print(f"validate_program({program.name}): "
          f"{'OK' if report.ok else report.problems} "
          f"({report.packets_checked} packets checked)")
    assert report.ok

    # 2. Run it replicated — no registry entry needed, any PacketProgram works.
    engine = ScrFunctionalEngine(program, num_cores=6)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(SynFloodDetector(limit=50), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts
    print(f"6-core SCR run over {result.offered} packets: replicas identical "
          "to single-threaded reference ✓")

    backlog = {k: v for k, v in result.replica_snapshots[0].items() if v}
    print(f"destinations with outstanding half-open connections: {len(backlog)}")


if __name__ == "__main__":
    main()
