"""Byte-exact header pack/unpack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    ETH_HLEN,
    ETH_P_IP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4_HLEN,
    TCP_ACK,
    TCP_HLEN,
    TCP_SYN,
    UDP_HLEN,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    bytes_to_mac,
    int_to_ip,
    ip_to_int,
    mac_to_bytes,
    verify_checksum,
)

ports = st.integers(min_value=0, max_value=65535)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestAddressHelpers:
    def test_ip_roundtrip(self):
        assert int_to_ip(ip_to_int("192.168.1.254")) == "192.168.1.254"

    def test_ip_edge_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"])
    def test_ip_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_int_to_ip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    def test_mac_roundtrip(self):
        assert bytes_to_mac(mac_to_bytes("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_mac_rejects_short(self):
        with pytest.raises(ValueError):
            mac_to_bytes("aa:bb:cc")

    @given(u32)
    def test_ip_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestEthernet:
    def test_pack_length(self):
        assert len(EthernetHeader().pack()) == ETH_HLEN

    def test_roundtrip(self):
        h = EthernetHeader(dst=b"\x01" * 6, src=b"\x02" * 6, ethertype=ETH_P_IP)
        assert EthernetHeader.unpack(h.pack()) == h

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 8)


class TestIPv4:
    def test_pack_length(self):
        assert len(IPv4Header().pack()) == IPV4_HLEN

    def test_checksum_valid_after_pack(self):
        raw = IPv4Header(src=1, dst=2, proto=IPPROTO_TCP, total_length=40).pack()
        assert verify_checksum(raw)

    def test_roundtrip_fields(self):
        h = IPv4Header(src=0x0A000001, dst=0xAC100001, proto=IPPROTO_UDP, ttl=17, tos=3)
        back = IPv4Header.unpack(h.pack())
        assert (back.src, back.dst, back.proto, back.ttl, back.tos) == (
            h.src, h.dst, h.proto, h.ttl, h.tos,
        )

    def test_rejects_non_ipv4_version(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (6 << 4) | 5  # claim IPv6
        with pytest.raises(ValueError):
            IPv4Header.unpack(bytes(raw))

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x45" + b"\x00" * 10)


class TestTCP:
    def test_pack_length(self):
        assert len(TCPHeader().pack()) == TCP_HLEN

    @given(ports, ports, u32, u32)
    def test_roundtrip_property(self, sport, dport, seq, ack):
        h = TCPHeader(sport=sport, dport=dport, seq=seq, ack=ack, flags=TCP_SYN | TCP_ACK)
        back = TCPHeader.unpack(h.pack())
        assert (back.sport, back.dport, back.seq, back.ack, back.flags) == (
            sport, dport, seq, ack, TCP_SYN | TCP_ACK,
        )

    def test_has_flag(self):
        h = TCPHeader(flags=TCP_SYN | TCP_ACK)
        assert h.has_flag(TCP_SYN) and h.has_flag(TCP_ACK)
        assert not h.has_flag(0x01)  # FIN

    def test_checksum_over_pseudo_header(self):
        from repro.packet import internet_checksum, pseudo_header

        h = TCPHeader(sport=1234, dport=80, seq=7, flags=TCP_ACK)
        raw = h.pack_with_checksum(0x0A000001, 0x0A000002, payload=b"hi")
        pseudo = pseudo_header(0x0A000001, 0x0A000002, IPPROTO_TCP, len(raw))
        assert internet_checksum(pseudo + raw) == 0

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            TCPHeader.unpack(b"\x00" * 12)


class TestUDP:
    def test_pack_length(self):
        assert len(UDPHeader().pack()) == UDP_HLEN

    def test_roundtrip(self):
        h = UDPHeader(sport=53, dport=5353, length=20, checksum=0xABCD)
        assert UDPHeader.unpack(h.pack()) == h

    def test_unpack_truncated(self):
        with pytest.raises(ValueError):
            UDPHeader.unpack(b"\x00" * 4)
