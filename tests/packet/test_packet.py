"""Packet object: serialization round trips, truncation, 5-tuples."""

from hypothesis import given
from hypothesis import strategies as st

from repro.packet import ETH_HLEN, TCP_SYN, Packet, make_tcp_packet, make_udp_packet

u32 = st.integers(min_value=1, max_value=0xFFFFFFFF)
port = st.integers(min_value=1, max_value=65535)


def test_tcp_roundtrip(tcp_syn_packet):
    back = Packet.from_bytes(tcp_syn_packet.to_bytes())
    assert back.is_tcp
    assert back.five_tuple() == tcp_syn_packet.five_tuple()
    assert back.l4.flags == TCP_SYN
    assert back.l4.seq == 100


def test_udp_roundtrip(udp_packet):
    back = Packet.from_bytes(udp_packet.to_bytes())
    assert back.is_udp
    assert back.payload == b"query"
    assert back.five_tuple() == udp_packet.five_tuple()


def test_non_ip_packet_keeps_payload():
    pkt = Packet(payload=b"\xde\xad\xbe\xef")
    back = Packet.from_bytes(pkt.to_bytes())
    assert not back.is_ipv4
    assert back.payload == b"\xde\xad\xbe\xef"


def test_five_tuple_of_non_ip_is_zero():
    assert Packet().five_tuple().src_ip == 0


def test_wire_len_defaults_to_serialized_length():
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN, payload=b"x" * 10)
    assert pkt.wire_len == len(pkt.to_bytes())


def test_truncated_preserves_headers():
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN, payload=b"x" * 500)
    t = pkt.truncated(64)
    assert t.is_tcp
    assert t.wire_len == 64
    assert len(t.payload) == 64 - t.header_len


def test_truncated_never_below_header_len():
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN)
    t = pkt.truncated(10)
    assert t.wire_len == t.header_len
    assert t.payload == b""


def test_truncated_records_original_when_larger():
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN, payload=b"y" * 100)
    t = pkt.truncated(192)
    assert t.wire_len == 192  # wire length is the truncation target


def test_ip_total_length_consistent_after_to_bytes():
    pkt = make_udp_packet(1, 2, 3, 4, payload=b"abc")
    raw = pkt.to_bytes()
    total_length = int.from_bytes(raw[ETH_HLEN + 2 : ETH_HLEN + 4], "big")
    assert total_length == len(raw) - ETH_HLEN


def test_from_bytes_preserves_timestamp_and_wire_len():
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN)
    back = Packet.from_bytes(pkt.to_bytes(), timestamp_ns=777, wire_len=1500)
    assert back.timestamp_ns == 777
    assert back.wire_len == 1500


@given(u32, u32, port, port, st.binary(max_size=64))
def test_tcp_byte_roundtrip_property(src, dst, sport, dport, payload):
    pkt = make_tcp_packet(src, dst, sport, dport, TCP_SYN, payload=payload)
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.five_tuple() == pkt.five_tuple()
    assert back.payload == payload
    assert back.to_bytes() == pkt.to_bytes()


@given(u32, u32, port, port, st.binary(max_size=64))
def test_udp_byte_roundtrip_property(src, dst, sport, dport, payload):
    pkt = make_udp_packet(src, dst, sport, dport, payload=payload)
    back = Packet.from_bytes(pkt.to_bytes())
    assert back.five_tuple() == pkt.five_tuple()
    assert back.payload == payload


def test_header_len_by_protocol():
    assert make_tcp_packet(1, 2, 3, 4, TCP_SYN).header_len == 14 + 20 + 20
    assert make_udp_packet(1, 2, 3, 4).header_len == 14 + 20 + 8
    assert Packet().header_len == 14
