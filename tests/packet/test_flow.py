"""Flow key identity and direction normalization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.packet import IPPROTO_TCP, FiveTuple

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
port = st.integers(min_value=0, max_value=65535)

tuples = st.builds(
    FiveTuple, src_ip=u32, dst_ip=u32, src_port=port, dst_port=port,
    proto=st.sampled_from([6, 17]),
)


def test_reversed_swaps_endpoints():
    ft = FiveTuple(1, 2, 10, 20, IPPROTO_TCP)
    r = ft.reversed()
    assert (r.src_ip, r.dst_ip, r.src_port, r.dst_port) == (2, 1, 20, 10)
    assert r.proto == ft.proto


def test_double_reverse_is_identity():
    ft = FiveTuple(1, 2, 10, 20)
    assert ft.reversed().reversed() == ft


@given(tuples)
def test_both_directions_share_normalized_key(ft):
    assert ft.normalized() == ft.reversed().normalized()


@given(tuples)
def test_normalized_is_idempotent(ft):
    assert ft.normalized().normalized() == ft.normalized()


def test_is_forward_for_sorted_endpoints():
    ft = FiveTuple(1, 2, 10, 20)
    assert ft.is_forward()
    assert not ft.reversed().is_forward()


def test_ties_on_ip_broken_by_port():
    ft = FiveTuple(5, 5, 300, 100)
    assert ft.normalized() == ft.reversed()


def test_hashable_and_usable_as_dict_key():
    d = {FiveTuple(1, 2, 3, 4): "x"}
    assert d[FiveTuple(1, 2, 3, 4)] == "x"


def test_str_renders_dotted_quads():
    s = str(FiveTuple(0x0A000001, 0x0A000002, 1, 2))
    assert "10.0.0.1:1" in s and "10.0.0.2:2" in s
