"""Internet checksum (RFC 1071) behaviour."""

from hypothesis import given
from hypothesis import strategies as st

from repro.packet import internet_checksum, pseudo_header, verify_checksum


def test_known_vector_rfc1071():
    # The classic RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
    # checksum is its complement.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == (~0xDDF2) & 0xFFFF


def test_zero_data_checksums_to_ffff():
    assert internet_checksum(b"\x00\x00") == 0xFFFF


def test_odd_length_padded():
    # Padding with a zero byte must match explicit padding.
    assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


def test_verify_roundtrip():
    data = b"\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x11"
    csum = internet_checksum(data + b"\x00\x00")
    full = data + csum.to_bytes(2, "big")
    assert verify_checksum(full)


def test_verify_detects_corruption():
    data = bytearray(b"\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x11")
    csum = internet_checksum(bytes(data) + b"\x00\x00")
    full = bytearray(bytes(data) + csum.to_bytes(2, "big"))
    full[0] ^= 0xFF
    assert not verify_checksum(bytes(full))


def test_pseudo_header_layout():
    ph = pseudo_header(0x0A000001, 0x0A000002, 6, 20)
    assert len(ph) == 12
    assert ph[:4] == b"\x0a\x00\x00\x01"
    assert ph[8] == 0  # zero byte
    assert ph[9] == 6  # protocol
    assert ph[10:12] == b"\x00\x14"


@given(st.binary(min_size=0, max_size=128))
def test_checksum_in_16bit_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=2, max_size=128).filter(lambda d: len(d) % 2 == 0))
def test_inserting_checksum_verifies(data):
    # Compute checksum over data with a zeroed trailing field, append it,
    # and the whole thing must verify.
    csum = internet_checksum(data + b"\x00\x00")
    assert verify_checksum(data + csum.to_bytes(2, "big"))
