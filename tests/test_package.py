"""Top-level package surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_quickstart_path_importable_from_top_level():
    engine = repro.ScrFunctionalEngine(repro.make_program("ddos"), 2)
    assert engine.num_cores == 2
    assert callable(repro.reference_run)
    assert callable(repro.validate_program)
    assert "conntrack" in repro.program_names()


def test_subpackages_importable():
    import repro.bench
    import repro.core
    import repro.cpu
    import repro.nic
    import repro.packet
    import repro.parallel
    import repro.programs
    import repro.sequencer
    import repro.state
    import repro.traffic
