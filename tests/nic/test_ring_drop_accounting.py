"""Pin the asymmetric wire-byte accounting for dropped packets.

SCR's piggybacked history enlarges every frame, so which drops charge
wire time decides where the Figure 10a wire ceiling lands:

* MAC-FIFO (wire) drops charge nothing — the frame never finished
  arriving.
* Ring-full and injected-fault drops happen *after* admission — their
  full (history-enlarged) byte count stays charged.
"""

from repro.faults import FaultPlan, FaultSpec, SimFaults
from repro.nic import Nic, SteeringMode
from repro.packet import make_udp_packet


def _packet(ts_ns=0, size=200):
    return make_udp_packet(1, 2, 3, 4, timestamp_ns=ts_ns, wire_len=size)


def _nic(**kwargs):
    kwargs.setdefault("mode", SteeringMode.ROUND_ROBIN)
    return Nic(1, **kwargs)


class TestRingDropCharging:
    def test_ring_full_drop_still_charges_wire_time(self):
        nic = _nic(descriptors=2)
        for _ in range(2):
            assert nic.receive(_packet()) == 0
        busy_before = nic.wire_busy_until_ns
        assert nic.receive(_packet()) is None  # ring full
        assert nic.ring_dropped == 1
        # The frame was admitted: its bytes advanced the wire clock.
        assert nic.wire_busy_until_ns > busy_before

    def test_fault_drop_still_charges_wire_time(self):
        plan = FaultPlan(FaultSpec.create(drop_indices=[1]))
        nic = _nic(faults=SimFaults(plan, num_cores=1))
        assert nic.receive(_packet()) == 0
        busy_before = nic.wire_busy_until_ns
        assert nic.receive(_packet()) is None
        assert nic.fault_dropped == 1
        assert nic.wire_busy_until_ns > busy_before

    def test_wire_drop_charges_nothing(self):
        nic = _nic()
        one_frame_ns = nic.wire_time_ns(_packet().wire_len)
        # Slam in back-to-back frames at t=0 until the MAC FIFO overflows.
        while nic.wire_dropped == 0:
            nic.receive(_packet())
        busy_before = nic.wire_busy_until_ns
        nic.receive(_packet())  # also wire-dropped
        assert nic.wire_dropped == 2
        # The overflowing frame never finished arriving: no wire time.
        assert nic.wire_busy_until_ns == busy_before
        assert busy_before > one_frame_ns

    def test_history_bytes_of_dropped_packets_count(self):
        """The SCR-specific consequence: a dropped big frame costs more
        wire time than a dropped small one, even though neither was
        processed."""
        small, big = _nic(descriptors=1), _nic(descriptors=1)
        assert small.receive(_packet(size=100)) == 0
        assert big.receive(_packet(size=100)) == 0
        assert small.receive(_packet(size=100)) is None   # ring drop
        assert big.receive(_packet(size=1200)) is None    # ring drop
        assert big.wire_busy_until_ns > small.wire_busy_until_ns

    def test_counters_reset(self):
        plan = FaultPlan(FaultSpec.create(drop_indices=[0]))
        nic = _nic(faults=SimFaults(plan, num_cores=1))
        assert nic.receive(_packet()) is None
        assert nic.fault_dropped == 1
        nic.reset_counters()
        assert nic.fault_dropped == 0
        assert nic.wire_busy_until_ns == 0.0
        # Arrival indices restart, so the same fault schedule replays.
        assert nic.receive(_packet()) is None
        assert nic.fault_dropped == 1
