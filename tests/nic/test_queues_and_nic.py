"""RX rings and the NIC model: steering, drops, line rate."""

import pytest

from repro.nic import (
    DEFAULT_DESCRIPTORS,
    ETHERNET_OVERHEAD_BYTES,
    Nic,
    RxQueue,
    SteeringMode,
)
from repro.packet import FiveTuple, make_udp_packet


class TestRxQueue:
    def test_fifo_order(self):
        q = RxQueue(4)
        for i in range(3):
            q.enqueue(i)
        assert [q.dequeue() for _ in range(3)] == [0, 1, 2]

    def test_drop_when_full(self):
        q = RxQueue(2)
        assert q.enqueue(1) and q.enqueue(2)
        assert not q.enqueue(3)
        assert q.dropped == 1
        assert q.enqueued == 2

    def test_dequeue_empty_returns_none(self):
        assert RxQueue(2).dequeue() is None

    def test_peek_does_not_consume(self):
        q = RxQueue(2)
        q.enqueue("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_default_capacity_is_256_descriptors(self):
        assert RxQueue().capacity == DEFAULT_DESCRIPTORS == 256

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RxQueue(0)


class TestSteering:
    def pkt(self, src=1, dst=2, sport=3, dport=4, ts=0):
        return make_udp_packet(src, dst, sport, dport, timestamp_ns=ts)

    def test_round_robin_cycles(self):
        nic = Nic(3, SteeringMode.ROUND_ROBIN)
        assert [nic.steer(self.pkt()) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_rss_l4_is_flow_stable(self):
        nic = Nic(4, SteeringMode.RSS_L4)
        q = nic.steer(self.pkt())
        assert all(nic.steer(self.pkt()) == q for _ in range(10))

    def test_rss_l3_ignores_ports(self):
        nic = Nic(4, SteeringMode.RSS_L3)
        assert nic.steer(self.pkt(sport=1)) == nic.steer(self.pkt(sport=9999))

    def test_rss_l4_distinguishes_ports(self):
        nic = Nic(64, SteeringMode.RSS_L4)
        queues = {nic.steer(self.pkt(sport=s)) for s in range(40)}
        assert len(queues) > 5

    def test_symmetric_mode_pins_both_directions(self):
        nic = Nic(16, SteeringMode.RSS_SYMMETRIC)
        fwd = self.pkt(src=11, dst=22, sport=33, dport=44)
        rev = self.pkt(src=22, dst=11, sport=44, dport=33)
        assert nic.steer(fwd) == nic.steer(rev)

    def test_flow_director_rule_overrides_rss(self):
        nic = Nic(4, SteeringMode.FLOW_DIRECTOR)
        ft = self.pkt().five_tuple()
        base = nic.steer(self.pkt())
        target = (base + 1) % 4
        nic.add_director_rule(ft, target)
        assert nic.steer(self.pkt()) == target

    def test_flow_director_falls_back_to_rss(self):
        nic = Nic(4, SteeringMode.FLOW_DIRECTOR)
        rss = Nic(4, SteeringMode.RSS_L4)
        assert nic.steer(self.pkt(src=77)) == rss.steer(self.pkt(src=77))

    def test_director_rule_bounds_checked(self):
        nic = Nic(2, SteeringMode.FLOW_DIRECTOR)
        with pytest.raises(IndexError):
            nic.add_director_rule(FiveTuple(1, 2, 3, 4), 5)

    def test_l2_mode_spreads_on_mac(self):
        nic = Nic(8, SteeringMode.RSS_L2)
        queues = set()
        for i in range(30):
            p = self.pkt()
            p.eth.src = bytes([i] * 6)
            queues.add(nic.steer(p))
        assert len(queues) > 2


class TestLineRate:
    def test_wire_time_includes_overhead(self):
        nic = Nic(1, line_rate_gbps=100)
        expected = (100 + ETHERNET_OVERHEAD_BYTES) * 8 / 100e9 * 1e9
        assert nic.wire_time_ns(100) == pytest.approx(expected)

    def test_minimum_frame_enforced(self):
        nic = Nic(1, line_rate_gbps=100)
        assert nic.wire_time_ns(10) == nic.wire_time_ns(60)

    def test_max_pps_shrinks_with_size(self):
        nic = Nic(1)
        assert nic.max_pps_for_wire_size(64) > nic.max_pps_for_wire_size(1500)

    def test_1024B_at_100g_is_nic_bound_below_12mpps(self):
        """The Figure 2 crossover: at 1024 B, 100 Gbit/s < CPU capacity."""
        nic = Nic(1, line_rate_gbps=100)
        assert nic.max_pps_for_wire_size(1024) < 12.5e6

    def test_receive_enqueues_and_counts(self):
        nic = Nic(2, SteeringMode.ROUND_ROBIN)
        for i in range(10):
            q = nic.receive(make_udp_packet(1, 2, 3, 4, timestamp_ns=i * 10_000))
            assert q is not None
        assert nic.delivered == 10

    def test_receive_drops_when_ring_full(self):
        nic = Nic(1, SteeringMode.ROUND_ROBIN, descriptors=4)
        drops = 0
        for i in range(10):
            if nic.receive(make_udp_packet(1, 2, 3, 4, timestamp_ns=i * 10_000)) is None:
                drops += 1
        assert drops == 6
        assert nic.ring_dropped == 6

    def test_receive_drops_when_wire_saturated(self):
        nic = Nic(4, SteeringMode.ROUND_ROBIN, line_rate_gbps=1, descriptors=4096)
        # 1500B frames at 1 Gbit/s take ~12 µs each; offering them every 1 ns
        # exceeds line rate massively.
        dropped = 0
        for i in range(200):
            p = make_udp_packet(1, 2, 3, 4, timestamp_ns=i)
            p.wire_len = 1500
            if nic.receive(p) is None:
                dropped += 1
        assert nic.wire_dropped > 0
        assert dropped == nic.wire_dropped + nic.ring_dropped

    def test_reset_counters(self):
        nic = Nic(1, SteeringMode.ROUND_ROBIN, descriptors=1)
        nic.receive(make_udp_packet(1, 2, 3, 4))
        nic.receive(make_udp_packet(1, 2, 3, 4))
        nic.reset_counters()
        assert nic.delivered == 0 and nic.ring_dropped == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Nic(0)
        with pytest.raises(ValueError):
            Nic(1, line_rate_gbps=0)
