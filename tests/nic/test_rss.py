"""Toeplitz RSS: official verification vectors, symmetry, indirection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nic import (
    SYMMETRIC_RSS_KEY,
    RssIndirection,
    hash_input_l2,
    hash_input_l3,
    hash_input_l4,
    toeplitz_hash,
    toeplitz_hash_batch,
)
from repro.packet import FiveTuple, make_udp_packet

#: Official Microsoft RSS verification suite (IPv4, with and without ports):
#: (src ip, dst ip, sport, dport, expected L3 hash, expected L4 hash).
MSFT_VECTORS = [
    # 66.9.149.187 -> 161.142.100.80
    (0x420995BB, 0xA18E6450, 2794, 1766, 0x323E8FC2, 0x51CCC178),
    # 199.92.111.2 -> 65.69.140.83
    (0xC75C6F02, 0x41458C53, 14230, 4739, 0xD718262A, 0xC626B0EA),
    # 24.19.198.95 -> 12.22.207.184
    (0x1813C65F, 0x0C16CFB8, 12898, 38024, 0xD2D0A5DE, 0x5C2B394A),
    # 38.27.205.30 -> 209.142.163.6
    (0x261BCD1E, 0xD18EA306, 48228, 2217, 0x82989176, 0xAFC7327F),
    # 153.39.163.191 -> 202.188.127.2
    (0x9927A3BF, 0xCABC7F02, 44251, 1303, 0x5D1809C5, 0x10E828A2),
]

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
port = st.integers(min_value=0, max_value=65535)


@pytest.mark.parametrize("src,dst,sport,dport,l3,l4", MSFT_VECTORS)
def test_official_l3_vectors(src, dst, sport, dport, l3, l4):
    ft = FiveTuple(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport)
    assert toeplitz_hash(hash_input_l3(ft)) == l3


@pytest.mark.parametrize("src,dst,sport,dport,l3,l4", MSFT_VECTORS)
def test_official_l4_vectors(src, dst, sport, dport, l3, l4):
    ft = FiveTuple(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport)
    assert toeplitz_hash(hash_input_l4(ft)) == l4


@given(u32, u32, port, port)
def test_symmetric_key_hashes_both_directions_equal(src, dst, sport, dport):
    """The Woo & Park property [70] the conntrack baseline needs."""
    ft = FiveTuple(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport)
    h1 = toeplitz_hash(hash_input_l4(ft), key=SYMMETRIC_RSS_KEY)
    h2 = toeplitz_hash(hash_input_l4(ft.reversed()), key=SYMMETRIC_RSS_KEY)
    assert h1 == h2


def test_default_key_is_not_symmetric():
    ft = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
    assert toeplitz_hash(hash_input_l4(ft)) != toeplitz_hash(hash_input_l4(ft.reversed()))


def test_hash_is_32bit():
    ft = FiveTuple(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFF, 0xFFFF)
    assert 0 <= toeplitz_hash(hash_input_l4(ft)) <= 0xFFFFFFFF


def test_key_too_short_rejected():
    with pytest.raises(ValueError):
        toeplitz_hash(b"\x01" * 12, key=b"\x00" * 10)


def test_l2_input_covers_ethernet_header():
    pkt = make_udp_packet(1, 2, 3, 4)
    pkt.eth.src, pkt.eth.dst = b"\x01" * 6, b"\x02" * 6
    data = hash_input_l2(pkt)
    assert len(data) == 14
    assert data[:6] == b"\x02" * 6


class TestBatchToeplitz:
    """`toeplitz_hash_batch` is the columnar twin of `toeplitz_hash`:
    bit-identical on every input shape the lowering path produces."""

    def _as_matrix(self, rows):
        return np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(
            len(rows), len(rows[0]))

    def test_official_vectors_batched(self):
        fts = [FiveTuple(s, d, sp, dp) for s, d, sp, dp, _, _ in MSFT_VECTORS]
        l3 = toeplitz_hash_batch(self._as_matrix([hash_input_l3(ft) for ft in fts]))
        l4 = toeplitz_hash_batch(self._as_matrix([hash_input_l4(ft) for ft in fts]))
        assert l3.tolist() == [v[4] for v in MSFT_VECTORS]
        assert l4.tolist() == [v[5] for v in MSFT_VECTORS]

    @given(st.lists(st.binary(min_size=1, max_size=36), min_size=1, max_size=16),
           st.sampled_from([None, SYMMETRIC_RSS_KEY]))
    def test_matches_scalar_on_random_bytes(self, blobs, key):
        """Property parity on arbitrary byte strings (per-row lengths vary,
        so batch row-by-row with width-1 matrices of each length)."""
        kw = {} if key is None else {"key": key}
        for blob in blobs:
            mat = np.frombuffer(blob, dtype=np.uint8).reshape(1, len(blob))
            assert int(toeplitz_hash_batch(mat, **kw)[0]) == toeplitz_hash(blob, **kw)

    @given(u32, u32, port, port)
    def test_matches_scalar_on_all_input_shapes(self, src, dst, sport, dport):
        """Every `hash_input_*` shape: L2 (14 B), L3 (8 B), L4 (12 B)."""
        ft = FiveTuple(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport)
        pkt = make_udp_packet(src, dst, sport, dport)
        for data in (hash_input_l2(pkt), hash_input_l3(ft), hash_input_l4(ft)):
            mat = np.frombuffer(data, dtype=np.uint8).reshape(1, len(data))
            assert int(toeplitz_hash_batch(mat)[0]) == toeplitz_hash(data)
            assert int(toeplitz_hash_batch(mat, key=SYMMETRIC_RSS_KEY)[0]) == \
                toeplitz_hash(data, key=SYMMETRIC_RSS_KEY)

    def test_l3_input_is_l4_prefix(self):
        """The lowering fast path packs one 12-byte L4 input per packet and
        hashes its first 8 bytes as the L3 input — pin that layout."""
        ft = FiveTuple(0x420995BB, 0xA18E6450, 2794, 1766)
        assert hash_input_l4(ft)[:8] == hash_input_l3(ft)
        assert toeplitz_hash(hash_input_l4(ft)[:8]) == 0x323E8FC2

    def test_empty_batch(self):
        out = toeplitz_hash_batch(np.empty((0, 12), dtype=np.uint8))
        assert out.shape == (0,)
        assert out.dtype == np.uint32

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_hash_batch(np.zeros((1, 12), dtype=np.uint8), key=b"\x00" * 10)


class TestIndirection:
    def test_default_round_robin_layout(self):
        t = RssIndirection(4, table_size=8)
        assert t.table == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_queue_of_uses_low_bits(self):
        t = RssIndirection(4, table_size=128)
        assert t.queue_of(0) == t.table[0]
        assert t.queue_of(129) == t.table[1]

    def test_migrate_moves_single_shard(self):
        t = RssIndirection(4, table_size=16)
        t.migrate(5, 3)
        assert t.table[5] == 3
        assert t.queue_of(5) == 3

    def test_shards_on(self):
        t = RssIndirection(2, table_size=8)
        assert t.shards_on(0) == [0, 2, 4, 6]
        t.migrate(0, 1)
        assert 0 not in t.shards_on(0)

    def test_migrate_bounds_checked(self):
        t = RssIndirection(2, table_size=8)
        with pytest.raises(IndexError):
            t.migrate(99, 0)
        with pytest.raises(IndexError):
            t.migrate(0, 7)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            RssIndirection(0)
        with pytest.raises(ValueError):
            RssIndirection(8, table_size=4)

    def test_non_power_of_two_table(self):
        t = RssIndirection(3, table_size=96)
        assert all(0 <= t.queue_of(h) < 3 for h in range(1000))
