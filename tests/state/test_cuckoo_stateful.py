"""Rule-based stateful testing: the cuckoo table vs a model dict under
arbitrary operation interleavings (hypothesis drives the schedule)."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.state import CuckooHashTable

keys = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcxyz", min_size=0, max_size=4),
    st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
)
values = st.integers(min_value=-(10**6), max_value=10**6)


class CuckooMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = CuckooHashTable(capacity=8, slots_per_bucket=2, allow_grow=True)
        self.model = {}

    @rule(key=keys, value=values)
    def insert(self, key, value):
        self.table.insert(key, value)
        self.model[key] = value

    @rule(key=keys)
    def delete(self, key):
        assert self.table.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys)
    def lookup(self, key):
        assert self.table.lookup(key) == self.model.get(key)

    @rule()
    def clear(self):
        self.table.clear()
        self.model.clear()

    @invariant()
    def size_matches(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def contents_match(self):
        assert dict(self.table.items()) == self.model

    @invariant()
    def load_factor_sane(self):
        assert 0.0 <= self.table.load_factor <= 1.0


TestCuckooStateful = CuckooMachine.TestCase
TestCuckooStateful.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
