"""ShardedStateMap: tenant namespacing, quotas, shard sizing."""

import pytest

from repro.state import QUOTA_DROP_CAUSE, ShardedStateMap


class TestNamespacing:
    def test_tenants_never_alias(self):
        m = ShardedStateMap(num_shards=4, capacity=64)
        m.update("flow", "a-state", tenant_id=1)
        m.update("flow", "b-state", tenant_id=2)
        assert m.lookup("flow", tenant_id=1) == "a-state"
        assert m.lookup("flow", tenant_id=2) == "b-state"
        assert m.delete("flow", tenant_id=1)
        assert m.lookup("flow", tenant_id=1) is None
        assert m.lookup("flow", tenant_id=2) == "b-state"

    def test_stored_keys_carry_tenant(self):
        m = ShardedStateMap(num_shards=2, capacity=8)
        m.update("k", 1, tenant_id=7)
        assert list(m.items()) == [((7, "k"), 1)]

    def test_shard_of_deterministic(self):
        a = ShardedStateMap(num_shards=8, capacity=64, seed=3)
        b = ShardedStateMap(num_shards=8, capacity=64, seed=3)
        for i in range(50):
            assert a.shard_of(0, f"k{i}") == b.shard_of(0, f"k{i}")

    def test_keys_spread_across_shards(self):
        m = ShardedStateMap(num_shards=8, capacity=1024)
        for i in range(400):
            m.update(f"k{i}", i)
        entries = m.stats_snapshot()["shard_entries"]
        assert sum(entries) == 400
        assert all(count > 0 for count in entries)


class TestQuota:
    def test_quota_refuses_new_entries_only(self):
        m = ShardedStateMap(num_shards=2, capacity=64, tenant_quota=2)
        assert m.update("a", 1, tenant_id=0)
        assert m.update("b", 2, tenant_id=0)
        assert not m.update("c", 3, tenant_id=0)  # new entry: refused
        assert m.update("a", 10, tenant_id=0)     # overwrite: allowed
        assert m.lookup("a") == 10
        assert m.lookup("c") is None
        assert m.quota_drops == {0: 1}

    def test_noisy_tenant_degrades_only_itself(self):
        m = ShardedStateMap(num_shards=2, capacity=64, tenant_quota=1)
        m.update("x", 1, tenant_id=0)
        for i in range(5):
            m.update(f"noise{i}", i, tenant_id=1)
        assert m.update("y", 2, tenant_id=2)
        assert m.quota_drops == {1: 4}
        assert m.tenant_entries(1) == 1

    def test_delete_returns_headroom(self):
        m = ShardedStateMap(num_shards=2, capacity=64, tenant_quota=1)
        m.update("a", 1, tenant_id=0)
        assert not m.update("b", 2, tenant_id=0)
        assert m.delete("a", tenant_id=0)
        assert m.update("b", 2, tenant_id=0)
        assert m.tenant_entries(0) == 1

    def test_drop_cause_in_snapshot(self):
        m = ShardedStateMap(num_shards=2, capacity=64, tenant_quota=1)
        m.update("a", 1, tenant_id=3)
        m.update("b", 2, tenant_id=3)
        snap = m.stats_snapshot()
        assert snap["drop_cause"] == QUOTA_DROP_CAUSE
        assert snap["quota_drops"] == {3: 1}
        assert snap["tenant_entries"] == {3: 1}


class TestSizing:
    def test_grow_events_counted(self):
        # Deliberately undersized: shards must double to hold the load.
        m = ShardedStateMap(num_shards=2, capacity=2)
        for i in range(200):
            m.update(f"k{i}", i)
        assert len(m) == 200
        assert m.grow_events > 0
        assert m.stats_snapshot()["grow_events"] == m.grow_events

    def test_well_sized_map_never_grows(self):
        m = ShardedStateMap(num_shards=4, capacity=4096)
        for i in range(100):
            m.update(f"k{i}", i)
        assert m.grow_events == 0

    def test_clear_resets_everything(self):
        m = ShardedStateMap(num_shards=2, capacity=64, tenant_quota=1)
        m.update("a", 1)
        m.update("b", 2)
        m.clear()
        assert len(m) == 0
        assert m.tenant_entries(0) == 0
        assert m.quota_drops == {}

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShardedStateMap(num_shards=0)
        with pytest.raises(ValueError):
            ShardedStateMap(num_shards=4, capacity=2)
        with pytest.raises(ValueError):
            ShardedStateMap(tenant_quota=0)
