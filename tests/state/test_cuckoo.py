"""Cuckoo hash table: correctness, displacement, growth, fixed-size mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import CuckooHashTable, CuckooInsertError


def test_insert_lookup():
    t = CuckooHashTable(capacity=64)
    t.insert("a", 1)
    assert t.lookup("a") == 1
    assert t.lookup("b") is None


def test_update_in_place():
    t = CuckooHashTable(capacity=64)
    t.insert("k", 1)
    t.insert("k", 2)
    assert t.lookup("k") == 2
    assert len(t) == 1


def test_delete():
    t = CuckooHashTable(capacity=64)
    t.insert("k", 1)
    assert t.delete("k")
    assert t.lookup("k") is None
    assert not t.delete("k")
    assert len(t) == 0


def test_get_with_default():
    t = CuckooHashTable(capacity=16)
    assert t.get("missing", 42) == 42


def test_contains():
    t = CuckooHashTable(capacity=16)
    t.insert(5, "v")
    assert 5 in t and 6 not in t


def test_many_inserts_force_displacement_and_growth():
    t = CuckooHashTable(capacity=8, allow_grow=True)
    for i in range(500):
        t.insert(i, i * 3)
    assert len(t) == 500
    for i in range(500):
        assert t.lookup(i) == i * 3


def test_fixed_size_raises_when_full():
    t = CuckooHashTable(capacity=16, allow_grow=False, max_kicks=32)
    with pytest.raises(CuckooInsertError):
        for i in range(10_000):
            t.insert(i, i)
    # Everything inserted before the failure is still intact.
    assert all(t.lookup(k) == k for k, _ in t.items())


def test_load_factor_bounds():
    t = CuckooHashTable(capacity=64)
    for i in range(40):
        t.insert(i, i)
    assert 0 < t.load_factor <= 1


def test_items_keys_values_consistent():
    t = CuckooHashTable(capacity=64)
    data = {i: i * i for i in range(30)}
    for k, v in data.items():
        t.insert(k, v)
    assert dict(t.items()) == data
    assert set(t.keys()) == set(data)
    assert sorted(t.values()) == sorted(data.values())


def test_clear():
    t = CuckooHashTable(capacity=16)
    for i in range(10):
        t.insert(i, i)
    t.clear()
    assert len(t) == 0
    assert t.lookup(3) is None


def test_mixed_key_types():
    t = CuckooHashTable(capacity=64)
    t.insert(b"bytes", 1)
    t.insert("str", 2)
    t.insert(12345, 3)
    t.insert((1, 2, 3), 4)
    assert t.lookup(b"bytes") == 1
    assert t.lookup("str") == 2
    assert t.lookup(12345) == 3
    assert t.lookup((1, 2, 3)) == 4


def test_negative_integer_keys():
    t = CuckooHashTable(capacity=16)
    t.insert(-1, "neg")
    assert t.lookup(-1) == "neg"


@pytest.mark.parametrize("bad_kwargs", [
    {"capacity": 0},
    {"slots_per_bucket": 0},
])
def test_invalid_geometry_rejected(bad_kwargs):
    with pytest.raises(ValueError):
        CuckooHashTable(**bad_kwargs)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ins", "del"]),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=200,
    )
)
def test_dict_equivalence_property(ops):
    """The cuckoo table must behave exactly like a dict under any op mix."""
    t = CuckooHashTable(capacity=16, allow_grow=True)
    model = {}
    for op, key, value in ops:
        if op == "ins":
            t.insert(key, value)
            model[key] = value
        else:
            assert t.delete(key) == (key in model)
            model.pop(key, None)
    assert dict(t.items()) == model
    assert len(t) == len(model)
    for key in range(51):
        assert t.lookup(key) == model.get(key)


def test_deterministic_across_instances():
    """Same insert sequence → same internal layout (seeded hashing)."""
    t1 = CuckooHashTable(capacity=32, seed=9)
    t2 = CuckooHashTable(capacity=32, seed=9)
    for i in range(100):
        t1.insert(i, i)
        t2.insert(i, i)
    assert list(t1.items()) == list(t2.items())
