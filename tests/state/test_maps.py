"""State map wrappers: shared bounce accounting and per-core replicas."""

import pytest

from repro.state import PerCoreStateMap, SharedStateMap, StateMap


class TestStateMap:
    def test_basic_ops(self):
        m = StateMap(capacity=32)
        m.update("k", 1)
        assert m.lookup("k") == 1
        assert "k" in m
        assert len(m) == 1
        assert m.delete("k")
        assert m.lookup("k") is None

    def test_snapshot_is_plain_dict_copy(self):
        m = StateMap()
        m.update("a", 1)
        snap = m.snapshot()
        m.update("a", 2)
        assert snap == {"a": 1}

    def test_clear(self):
        m = StateMap()
        m.update("a", 1)
        m.clear()
        assert len(m) == 0


class TestSharedStateMap:
    def test_same_core_writes_do_not_bounce(self):
        m = SharedStateMap()
        m.update_from_core(0, "k", 1)
        assert not m.update_from_core(0, "k", 2)
        assert m.bounce_count == 0

    def test_cross_core_write_bounces(self):
        m = SharedStateMap()
        m.update_from_core(0, "k", 1)
        assert m.update_from_core(1, "k", 2)
        assert m.bounce_count == 1

    def test_cross_core_read_bounces(self):
        m = SharedStateMap()
        m.update_from_core(0, "k", 1)
        assert m.lookup_from_core(1, "k") == 1
        assert m.bounce_count == 1

    def test_bounce_ratio(self):
        m = SharedStateMap()
        assert m.bounce_ratio == 0.0
        m.update_from_core(0, "k", 1)
        m.update_from_core(1, "k", 2)
        m.update_from_core(1, "k", 3)
        assert m.bounce_ratio == pytest.approx(1 / 3)

    def test_distinct_keys_on_distinct_cores_never_bounce(self):
        m = SharedStateMap()
        for core in range(4):
            for i in range(10):
                m.update_from_core(core, (core, i), i)
        assert m.bounce_count == 0


class TestPerCoreStateMap:
    def test_replicas_are_independent(self):
        m = PerCoreStateMap(3)
        m.update(0, "k", 1)
        assert m.lookup(0, "k") == 1
        assert m.lookup(1, "k") is None

    def test_consistency_check(self):
        m = PerCoreStateMap(3)
        for core in range(3):
            m.update(core, "k", 7)
        assert m.replicas_consistent()
        m.update(1, "k", 8)
        assert not m.replicas_consistent()

    def test_snapshots_length(self):
        m = PerCoreStateMap(4)
        assert len(m.snapshots()) == 4

    def test_single_core_trivially_consistent(self):
        assert PerCoreStateMap(1).replicas_consistent()

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            PerCoreStateMap(0)

    def test_replica_accessor_matches_update(self):
        m = PerCoreStateMap(2)
        m.replica(1).update("x", 5)
        assert m.lookup(1, "x") == 5

    def test_tenant_namespaced_keys_stay_isolated_per_replica(self):
        """Placement-layer keys are ``(tenant_id, key)`` tuples; replicas
        must keep them apart per core AND per tenant."""
        m = PerCoreStateMap(2)
        m.update(0, (1, "flow"), "t1@core0")
        m.update(0, (2, "flow"), "t2@core0")
        m.update(1, (1, "flow"), "t1@core1")
        assert m.lookup(0, (1, "flow")) == "t1@core0"
        assert m.lookup(0, (2, "flow")) == "t2@core0"
        assert m.lookup(1, (2, "flow")) is None
        assert not m.replicas_consistent()
        m.update(1, (2, "flow"), "t2@core0")
        assert not m.replicas_consistent()  # same tenant, different value

    def test_grow_events_sum_replicas(self):
        m = PerCoreStateMap(2, capacity=1)
        for i in range(100):
            m.update(0, f"k{i}", i)
        assert m.grow_events == m.replica(0).grow_events > 0
        assert m.replica(1).grow_events == 0


class TestSharedBounceAfterDelete:
    def test_delete_then_reinsert_still_tracks_last_writer(self):
        """Deleting an entry does not launder its cache line: the line's
        last writer survives the delete, so a reinsert from another core
        is still a bounce (delete itself dirties the line)."""
        m = SharedStateMap()
        m.update_from_core(0, "k", 1)
        assert m.delete("k")
        assert m.update_from_core(1, "k", 2)
        assert m.bounce_count == 1

    def test_same_core_reinsert_never_bounces(self):
        m = SharedStateMap()
        m.update_from_core(0, "k", 1)
        assert m.delete("k")
        assert not m.update_from_core(0, "k", 2)
        assert m.bounce_count == 0
