"""Rule-based stateful testing of the conntrack FSM: arbitrary packet
sequences can never crash the tracker, corrupt its invariants, or make SCR
replicas diverge from single-threaded execution."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import ScrCoreRuntime
from repro.packet import TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, make_tcp_packet
from repro.programs import ConnectionTracker, TcpState
from repro.sequencer import PacketHistorySequencer
from repro.state import StateMap

C_IP, S_IP = 0x0A000001, 0xAC100001
FLAG_CHOICES = [
    TCP_SYN,
    TCP_SYN | TCP_ACK,
    TCP_ACK,
    TCP_FIN | TCP_ACK,
    TCP_RST,
    TCP_FIN,
]


class ConntrackMachine(RuleBasedStateMachine):
    """Fires arbitrary flag/direction/port packets at the tracker, with an
    SCR 3-core deployment shadowing the single-threaded reference."""

    def __init__(self):
        super().__init__()
        self.prog = ConnectionTracker()
        self.reference = StateMap()
        self.cores = 3
        self.sequencer = PacketHistorySequencer(self.prog, self.cores)
        self.runtimes = [
            ScrCoreRuntime(self.prog, core_id=i, codec=self.sequencer.codec,
                           state=StateMap())
            for i in range(self.cores)
        ]
        self.ts = 0

    @rule(
        flags=st.sampled_from(FLAG_CHOICES),
        from_client=st.booleans(),
        port=st.integers(min_value=1, max_value=3),
        seq=st.integers(min_value=0, max_value=10_000),
    )
    def packet(self, flags, from_client, port, seq):
        self.ts += 100
        if from_client:
            pkt = make_tcp_packet(C_IP, S_IP, 40_000 + port, 443, flags,
                                  seq=seq, timestamp_ns=self.ts)
        else:
            pkt = make_tcp_packet(S_IP, C_IP, 443, 40_000 + port, flags,
                                  seq=seq, timestamp_ns=self.ts)
        ref_verdict = self.prog.process(self.reference, pkt)
        sp = self.sequencer.process(pkt)
        outcomes = self.runtimes[sp.core].receive(sp.data)
        assert len(outcomes) == 1
        assert outcomes[0][1] == ref_verdict

    @invariant()
    def entries_have_legal_states(self):
        for entry in self.reference.snapshot().values():
            assert entry.state in TcpState
            # closing bookkeeping is consistent with the state
            if entry.state in (TcpState.SYN_SENT, TcpState.SYN_RECV,
                               TcpState.ESTABLISHED):
                assert not (entry.fin_from_orig or entry.fin_from_resp) or \
                    entry.state is TcpState.ESTABLISHED
            if entry.state is TcpState.CLOSING:
                assert entry.fin_from_orig and entry.fin_from_resp

    @invariant()
    def up_to_date_core_matches_reference(self):
        """The core that processed the latest packet holds the reference
        state exactly (others lag ≤ k-1 packets by design)."""
        latest = max(self.runtimes, key=lambda r: r.last_seq)
        if latest.last_seq == 0:
            return
        assert latest.state.snapshot() == self.reference.snapshot()


TestConntrackStateful = ConntrackMachine.TestCase
TestConntrackStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None
)
