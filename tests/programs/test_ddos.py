"""DDoS mitigator semantics."""

import pytest

from repro.packet import TCP_SYN, Packet, make_tcp_packet, make_udp_packet
from repro.programs import DDoSMetadata, DDoSMitigator, Verdict
from repro.state import StateMap


@pytest.fixture
def prog():
    return DDoSMitigator(threshold=3)


def pkt_from(src):
    return make_udp_packet(src, 99, 1, 2)


def test_metadata_size_matches_table1(prog):
    assert prog.metadata_size == 4


def test_counts_per_source(prog):
    state = StateMap()
    prog.process(state, pkt_from(1))
    prog.process(state, pkt_from(1))
    prog.process(state, pkt_from(2))
    assert state.lookup(1) == 2
    assert state.lookup(2) == 1


def test_drops_above_threshold(prog):
    state = StateMap()
    verdicts = [prog.process(state, pkt_from(7)) for _ in range(5)]
    assert verdicts[:3] == [Verdict.TX] * 3
    assert verdicts[3:] == [Verdict.DROP] * 2


def test_threshold_is_per_source(prog):
    state = StateMap()
    for _ in range(4):
        prog.process(state, pkt_from(1))
    # source 2 is unaffected by source 1 crossing the threshold
    assert prog.process(state, pkt_from(2)) == Verdict.TX


def test_non_ipv4_passes_without_state(prog):
    state = StateMap()
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_tcp_and_udp_both_counted(prog):
    state = StateMap()
    prog.process(state, make_tcp_packet(9, 1, 2, 3, TCP_SYN))
    prog.process(state, make_udp_packet(9, 1, 2, 3))
    assert state.lookup(9) == 2


def test_metadata_roundtrip(prog):
    meta = prog.extract_metadata(pkt_from(0xDEADBEEF))
    assert DDoSMetadata.unpack(meta.pack()) == meta
    assert meta.src_ip == 0xDEADBEEF


def test_transition_is_pure(prog):
    meta = DDoSMetadata(src_ip=5)
    v1 = prog.transition(2, meta)
    v2 = prog.transition(2, meta)
    assert v1 == v2 == (3, Verdict.TX)


def test_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        DDoSMitigator(threshold=0)


def test_needs_no_locks():
    assert not DDoSMitigator().needs_locks
