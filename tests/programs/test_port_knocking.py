"""Port-knocking firewall — the App. C state machine."""

import pytest

from repro.packet import TCP_SYN, Packet, make_tcp_packet, make_udp_packet
from repro.programs import KnockState, PortKnockingFirewall, Verdict
from repro.state import StateMap

SRC = 0x0A000001
P1, P2, P3 = 7001, 7002, 7003


@pytest.fixture
def prog():
    return PortKnockingFirewall(ports=(P1, P2, P3))


@pytest.fixture
def state():
    return StateMap()


def knock(prog, state, dport, src=SRC):
    return prog.process(state, make_tcp_packet(src, 99, 1234, dport, TCP_SYN))


def test_metadata_size_matches_table1(prog):
    assert prog.metadata_size == 8


def test_correct_sequence_opens(prog, state):
    assert knock(prog, state, P1) == Verdict.DROP
    assert knock(prog, state, P2) == Verdict.DROP
    assert knock(prog, state, P3) == Verdict.TX  # transition to OPEN permits
    assert state.lookup(SRC) == KnockState.OPEN


def test_open_stays_open_for_any_port(prog, state):
    for p in (P1, P2, P3):
        knock(prog, state, p)
    assert knock(prog, state, 80) == Verdict.TX
    assert knock(prog, state, 22) == Verdict.TX
    assert state.lookup(SRC) == KnockState.OPEN


def test_wrong_knock_resets_to_closed1(prog, state):
    knock(prog, state, P1)
    knock(prog, state, P3)  # out of order
    assert state.lookup(SRC) == KnockState.CLOSED_1
    # must start over
    assert knock(prog, state, P2) == Verdict.DROP
    assert state.lookup(SRC) == KnockState.CLOSED_1


def test_repeat_of_first_port_mid_sequence_resets(prog, state):
    knock(prog, state, P1)
    knock(prog, state, P2)
    knock(prog, state, 12345)
    assert state.lookup(SRC) == KnockState.CLOSED_1


def test_per_source_automata_independent(prog, state):
    knock(prog, state, P1, src=1)
    knock(prog, state, P2, src=1)
    assert state.lookup(1) == KnockState.CLOSED_3
    assert knock(prog, state, P3, src=2) == Verdict.DROP
    assert state.lookup(2) == KnockState.CLOSED_1


def test_non_tcp_dropped_without_state_change(prog, state):
    knock(prog, state, P1)
    assert prog.process(state, make_udp_packet(SRC, 99, 1, P2)) == Verdict.DROP
    assert prog.process(state, Packet()) == Verdict.DROP
    assert state.lookup(SRC) == KnockState.CLOSED_2  # untouched


def test_next_state_matches_appendix_c_listing(prog):
    ns = prog.next_state
    assert ns(KnockState.CLOSED_1, P1) == KnockState.CLOSED_2
    assert ns(KnockState.CLOSED_2, P2) == KnockState.CLOSED_3
    assert ns(KnockState.CLOSED_3, P3) == KnockState.OPEN
    assert ns(KnockState.OPEN, 1) == KnockState.OPEN
    assert ns(KnockState.CLOSED_2, P1) == KnockState.CLOSED_1
    assert ns(KnockState.CLOSED_1, P2) == KnockState.CLOSED_1


def test_rejects_duplicate_ports():
    with pytest.raises(ValueError):
        PortKnockingFirewall(ports=(1, 1, 2))


def test_rejects_wrong_port_count():
    with pytest.raises(ValueError):
        PortKnockingFirewall(ports=(1, 2))


def test_metadata_carries_control_dependency(prog):
    valid = prog.extract_metadata(make_tcp_packet(SRC, 9, 1, P1, TCP_SYN))
    invalid = prog.extract_metadata(make_udp_packet(SRC, 9, 1, P1))
    assert valid.valid == 1
    assert invalid.valid == 0
