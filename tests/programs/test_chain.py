"""NF service chains: composition semantics + the §2.2 sharding-granularity
infeasibility they expose."""

import pytest

from repro.core import ScrFunctionalEngine, reference_run, validate_program
from repro.packet import TCP_SYN, Packet, make_tcp_packet, make_udp_packet
from repro.parallel.functional import ShardedFunctionalEngine
from repro.programs import (
    DDoSMitigator,
    NatGateway,
    PortKnockingFirewall,
    TokenBucketPolicer,
    Verdict,
)
from repro.programs.chain import ProgramChain
from repro.programs.ddos import VictimMonitor
from repro.state import StateMap
from repro.traffic import Trace, synthesize_trace, univ_dc_flow_sizes


def pkt(src=1, dst=9, sport=100, dport=80):
    return make_udp_packet(src, dst, sport, dport)


class TestChainSemantics:
    def test_metadata_concatenates(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        assert chain.metadata_size == 4 + 4
        meta = chain.extract_metadata(pkt(src=5, dst=7))
        assert meta.stages[0].src_ip == 5
        assert meta.stages[1].dst_ip == 7

    def test_metadata_roundtrip(self):
        chain = ProgramChain([DDoSMitigator(), TokenBucketPolicer()])
        meta = chain.extract_metadata(pkt())
        back = chain.metadata_cls.unpack(meta.pack())
        assert back == meta
        assert len(meta.pack()) == chain.metadata_size

    def test_stages_update_namespaced_state(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        state = StateMap()
        chain.process(state, pkt(src=5, dst=5))  # same value, different stages
        assert state.lookup((0, 5)) == 1
        assert state.lookup((1, 5)) == 1
        assert chain.stage_state(state, 0) == {5: 1}

    def test_drop_short_circuits_later_stages(self):
        chain = ProgramChain([DDoSMitigator(threshold=1), VictimMonitor()])
        state = StateMap()
        assert chain.process(state, pkt()) == Verdict.TX
        assert chain.process(state, pkt()) == Verdict.DROP  # over threshold
        # the victim monitor never saw the dropped packet
        assert state.lookup((1, 9)) == 1

    def test_all_pass_yields_pass(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        state = StateMap()
        assert chain.process(state, Packet()) == Verdict.PASS

    def test_properties_aggregate(self):
        chain = ProgramChain([DDoSMitigator(), TokenBucketPolicer()])
        assert chain.needs_locks  # token bucket needs locks
        assert not ProgramChain([DDoSMitigator(), VictimMonitor()]).needs_locks
        assert "src & dst IP" in chain.rss_fields

    def test_rejects_empty_and_apply_overriders(self):
        with pytest.raises(ValueError):
            ProgramChain([])
        with pytest.raises(ValueError, match="apply"):
            ProgramChain([NatGateway()])

    def test_firewall_then_policer_realistic_chain(self):
        knock = PortKnockingFirewall(ports=(7001, 7002, 7003))
        chain = ProgramChain([knock, TokenBucketPolicer(rate_pps=1000, burst=2)])
        state = StateMap()
        # knock open, then the policer takes over as the limiting stage
        for port in (7001, 7002, 7003):
            chain.process(state, make_tcp_packet(1, 9, 5, port, TCP_SYN))
        verdicts = [
            chain.process(state, make_tcp_packet(1, 9, 5, 443, TCP_SYN))
            for _ in range(4)
        ]
        assert verdicts[0] == Verdict.TX
        assert Verdict.DROP in verdicts  # bucket drained


class TestChainUnderScr:
    def test_chain_is_scr_safe(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        trace = synthesize_trace(univ_dc_flow_sizes(), 10, seed=3, max_packets=300)
        assert validate_program(chain, list(trace)).ok

    def test_chain_replicates_correctly(self):
        def fresh():
            return ProgramChain(
                [DDoSMitigator(threshold=50), VictimMonitor(),
                 TokenBucketPolicer(rate_pps=5000, burst=8)]
            )

        trace = synthesize_trace(univ_dc_flow_sizes(), 12, seed=7, max_packets=600)
        engine = ScrFunctionalEngine(fresh(), num_cores=4)
        result = engine.run(trace)
        ref_verdicts, ref_state = reference_run(fresh(), trace)
        assert result.replicas_consistent
        assert result.replica_snapshots[0] == ref_state
        assert result.verdicts == ref_verdicts


class TestShardingGranularityInfeasibility:
    """§2.2: per-source AND per-destination state cannot both be sharded by
    one RSS configuration — the chain makes this concrete."""

    def make_trace(self):
        # many sources fanning in to many destinations, crosswise: any
        # core split by source scatters each destination and vice versa.
        pkts = []
        for r in range(12):
            for src in range(1, 9):
                for dst in range(101, 109):
                    pkts.append(pkt(src=src, dst=dst, sport=r + 1))
        return Trace(pkts)

    def test_rss_misplaces_one_stage(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        trace = self.make_trace()
        sharded = ShardedFunctionalEngine(chain, num_cores=4)
        sharded.run(trace)
        _, ref_state = reference_run(
            ProgramChain([DDoSMitigator(), VictimMonitor()]), trace
        )
        # per-destination entries are scattered across cores: the shards
        # overlap on stage-1 keys and the merged state is wrong.
        assert not sharded.shards_are_disjoint()
        assert sharded.merged_state() != ref_state

    def test_scr_places_both_stages(self):
        chain = ProgramChain([DDoSMitigator(), VictimMonitor()])
        trace = self.make_trace()
        engine = ScrFunctionalEngine(
            ProgramChain([DDoSMitigator(), VictimMonitor()]), num_cores=4
        )
        result = engine.run(trace)
        _, ref_state = reference_run(
            ProgramChain([DDoSMitigator(), VictimMonitor()]), trace
        )
        assert result.replicas_consistent
        assert result.replica_snapshots[0] == ref_state
