"""Telemetry sampler (extension): deterministic randomness (§3.4)."""

import pytest

from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import Packet, make_udp_packet
from repro.programs import SampleStats, TelemetrySampler, Verdict, make_program
from repro.state import StateMap
from repro.traffic import caida_backbone_flow_sizes, synthesize_trace


def pkt(i, src=1):
    p = make_udp_packet(src, 2, 3, 4)
    p.ip.ident = i & 0xFFFF
    p.timestamp_ns = i * 1000
    return p


@pytest.fixture
def prog():
    return TelemetrySampler(rate=8, seed=7)


def test_sampling_rate_approximately_one_in_n(prog):
    state = StateMap()
    n = 4000
    for i in range(n):
        prog.process(state, pkt(i))
    stats = state.lookup(pkt(0).five_tuple())
    assert stats.packets == n
    assert n / 8 * 0.7 < stats.sampled < n / 8 * 1.3


def test_sampled_packets_pass_rest_forward(prog):
    state = StateMap()
    verdicts = [prog.process(state, pkt(i)) for i in range(200)]
    assert verdicts.count(Verdict.PASS) == state.lookup(pkt(0).five_tuple()).sampled
    assert Verdict.TX in verdicts


def test_decision_is_per_packet_not_per_flow(prog):
    """Different packets of one flow can differ in the coin flip."""
    decisions = {prog.should_sample(prog.extract_metadata(pkt(i))) for i in range(100)}
    assert decisions == {True, False}


def test_decision_deterministic_across_instances():
    """§3.4: fixed seed → identical decisions on every replica."""
    a, b = TelemetrySampler(rate=8, seed=7), TelemetrySampler(rate=8, seed=7)
    for i in range(100):
        meta = a.extract_metadata(pkt(i))
        assert a.should_sample(meta) == b.should_sample(meta)


def test_seed_changes_decisions():
    a, b = TelemetrySampler(rate=8, seed=1), TelemetrySampler(rate=8, seed=2)
    diffs = sum(
        a.should_sample(a.extract_metadata(pkt(i)))
        != b.should_sample(b.extract_metadata(pkt(i)))
        for i in range(300)
    )
    assert diffs > 0


def test_non_ipv4_passes_untracked(prog):
    state = StateMap()
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_rate_one_samples_everything():
    prog = TelemetrySampler(rate=1)
    state = StateMap()
    assert all(prog.process(state, pkt(i)) == Verdict.PASS for i in range(20))


def test_rejects_bad_rate():
    with pytest.raises(ValueError):
        TelemetrySampler(rate=0)


def test_registered():
    assert make_program("sampler").name == "sampler"


def test_scr_replicas_agree_despite_randomness():
    """The §3.4 headline: a 'random' program replicates correctly because
    its randomness is a deterministic function of the packet."""
    trace = synthesize_trace(
        caida_backbone_flow_sizes(), 25, seed=19, max_packets=900
    )
    engine = ScrFunctionalEngine(TelemetrySampler(rate=4, seed=3), num_cores=5)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(TelemetrySampler(rate=4, seed=3), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts


def test_sample_stats_value_type():
    assert SampleStats(3, 1).packets == 3
    assert SampleStats(3, 1).sampled == 1
    assert SampleStats(3, 1) == SampleStats(3, 1)
