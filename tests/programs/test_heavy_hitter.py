"""Heavy-hitter monitor: accounting and flagging."""

import pytest

from repro.packet import Packet, make_udp_packet
from repro.programs import FlowStats, HeavyHitterMonitor, Verdict
from repro.state import StateMap


@pytest.fixture
def prog():
    return HeavyHitterMonitor(threshold_bytes=1000)


def pkt(size, src=1, sport=10):
    p = make_udp_packet(src, 2, sport, 20)
    p.wire_len = size
    return p


def test_metadata_size_matches_table1(prog):
    assert prog.metadata_size == 18


def test_always_forwards(prog):
    state = StateMap()
    for _ in range(5):
        assert prog.process(state, pkt(600)) == Verdict.TX


def test_accumulates_packets_and_bytes(prog):
    state = StateMap()
    prog.process(state, pkt(300))
    prog.process(state, pkt(200))
    stats = list(state.snapshot().values())[0]
    assert stats.packets == 2
    assert stats.nbytes == 500
    assert not stats.is_heavy


def test_flags_heavy_flow_over_threshold(prog):
    state = StateMap()
    prog.process(state, pkt(600))
    prog.process(state, pkt(600))
    stats = list(state.snapshot().values())[0]
    assert stats.is_heavy


def test_threshold_is_strict(prog):
    state = StateMap()
    prog.process(state, pkt(1000))
    assert not list(state.snapshot().values())[0].is_heavy
    prog.process(state, pkt(1))
    assert list(state.snapshot().values())[0].is_heavy


def test_flows_keyed_by_full_five_tuple(prog):
    state = StateMap()
    prog.process(state, pkt(100, sport=10))
    prog.process(state, pkt(100, sport=11))
    assert len(state) == 2


def test_heavy_hitters_query(prog):
    state = StateMap()
    for _ in range(3):
        prog.process(state, pkt(600, src=7))
    prog.process(state, pkt(50, src=8))
    heavy = prog.heavy_hitters(state)
    assert len(heavy) == 1
    assert heavy[0].src_ip == 7


def test_non_ipv4_passes_untracked(prog):
    state = StateMap()
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_uses_wire_len_not_captured_len(prog):
    """Truncated traces must still account original sizes."""
    state = StateMap()
    p = make_udp_packet(1, 2, 3, 4, payload=b"xy")
    p.wire_len = 1500
    prog.process(state, p)
    assert list(state.snapshot().values())[0].nbytes == 1500


def test_flowstats_is_value_type():
    assert FlowStats(1, 2, False) == FlowStats(1, 2, False)
    assert hash(FlowStats(1, 2, True)) == hash(FlowStats(1, 2, True))


def test_rejects_bad_threshold():
    with pytest.raises(ValueError):
        HeavyHitterMonitor(threshold_bytes=0)
