"""TCP connection tracker FSM."""

import pytest

from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    Packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.programs import ConnectionTracker, ConntrackMetadata, TcpState, Verdict
from repro.state import StateMap

C_IP, S_IP, C_PORT, S_PORT = 0x0A000001, 0xAC100001, 40000, 443


@pytest.fixture
def prog():
    return ConnectionTracker()


@pytest.fixture
def state():
    return StateMap()


def client(flags, seq=0, ack=0):
    return make_tcp_packet(C_IP, S_IP, C_PORT, S_PORT, flags, seq=seq, ack=ack)


def server(flags, seq=0, ack=0):
    return make_tcp_packet(S_IP, C_IP, S_PORT, C_PORT, flags, seq=seq, ack=ack)


def entry(state):
    values = list(state.snapshot().values())
    assert len(values) == 1
    return values[0]


def handshake(prog, state):
    prog.process(state, client(TCP_SYN, seq=100))
    prog.process(state, server(TCP_SYN | TCP_ACK, seq=500, ack=101))
    prog.process(state, client(TCP_ACK, seq=101, ack=501))


def test_metadata_size_matches_table1(prog):
    assert prog.metadata_size == 30


def test_three_way_handshake(prog, state):
    assert prog.process(state, client(TCP_SYN, seq=100)) == Verdict.TX
    assert entry(state).state == TcpState.SYN_SENT
    assert prog.process(state, server(TCP_SYN | TCP_ACK, seq=500, ack=101)) == Verdict.TX
    assert entry(state).state == TcpState.SYN_RECV
    assert prog.process(state, client(TCP_ACK, seq=101, ack=501)) == Verdict.TX
    assert entry(state).state == TcpState.ESTABLISHED


def test_both_directions_share_one_entry(prog, state):
    handshake(prog, state)
    assert len(state) == 1


def test_state_key_is_normalized(prog):
    m1 = prog.extract_metadata(client(TCP_SYN))
    m2 = prog.extract_metadata(server(TCP_SYN | TCP_ACK))
    assert prog.key(m1) == prog.key(m2)


def test_midstream_packet_without_state_dropped(prog, state):
    assert prog.process(state, client(TCP_ACK, seq=5)) == Verdict.DROP
    assert len(state) == 0


def test_syn_retransmission_tolerated(prog, state):
    prog.process(state, client(TCP_SYN, seq=100))
    assert prog.process(state, client(TCP_SYN, seq=100)) == Verdict.TX
    assert entry(state).state == TcpState.SYN_SENT


def test_synack_retransmission_tolerated(prog, state):
    prog.process(state, client(TCP_SYN, seq=100))
    prog.process(state, server(TCP_SYN | TCP_ACK, seq=500, ack=101))
    assert prog.process(state, server(TCP_SYN | TCP_ACK, seq=500, ack=101)) == Verdict.TX
    assert entry(state).state == TcpState.SYN_RECV


def test_established_data_flows(prog, state):
    handshake(prog, state)
    assert prog.process(state, client(TCP_ACK, seq=101)) == Verdict.TX
    assert prog.process(state, server(TCP_ACK, seq=501)) == Verdict.TX
    assert entry(state).state == TcpState.ESTABLISHED


def test_full_teardown_deletes_entry(prog, state):
    handshake(prog, state)
    prog.process(state, client(TCP_FIN | TCP_ACK, seq=200))
    assert entry(state).state == TcpState.FIN_WAIT
    prog.process(state, server(TCP_FIN | TCP_ACK, seq=600))
    assert entry(state).state == TcpState.CLOSING
    assert prog.process(state, client(TCP_ACK, seq=201)) == Verdict.TX
    assert len(state) == 0  # closed connections are reaped (§4.1 replay)


def test_half_close_keeps_entry(prog, state):
    handshake(prog, state)
    prog.process(state, client(TCP_FIN | TCP_ACK, seq=200))
    prog.process(state, server(TCP_ACK, seq=600))  # ACK of FIN, no FIN yet
    assert entry(state).state == TcpState.FIN_WAIT


def test_rst_tears_down_immediately(prog, state):
    handshake(prog, state)
    assert prog.process(state, client(TCP_RST)) == Verdict.TX
    assert len(state) == 0


def test_rst_without_state_is_harmless(prog, state):
    assert prog.process(state, client(TCP_RST)) == Verdict.TX
    assert len(state) == 0


def test_non_tcp_passes_untracked(prog, state):
    assert prog.process(state, make_udp_packet(1, 2, 3, 4)) == Verdict.PASS
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_unexpected_packet_in_syn_sent_dropped(prog, state):
    prog.process(state, client(TCP_SYN, seq=100))
    # plain data from the client before the handshake completes
    assert prog.process(state, client(TCP_ACK, seq=101)) == Verdict.DROP
    assert entry(state).state == TcpState.SYN_SENT


def test_connection_reusable_after_close(prog, state):
    handshake(prog, state)
    prog.process(state, client(TCP_FIN | TCP_ACK, seq=200))
    prog.process(state, server(TCP_FIN | TCP_ACK, seq=600))
    prog.process(state, client(TCP_ACK, seq=201))
    # same 5-tuple starts afresh — what makes trace replay work
    assert prog.process(state, client(TCP_SYN, seq=900)) == Verdict.TX
    assert entry(state).state == TcpState.SYN_SENT


def test_metadata_roundtrip_carries_timestamp(prog):
    pkt = client(TCP_SYN, seq=100)
    pkt.timestamp_ns = 123456789
    meta = prog.extract_metadata(pkt)
    back = ConntrackMetadata.unpack(meta.pack())
    assert back.timestamp == 123456789
    assert back.flags == TCP_SYN
    assert back.seq == 100


def test_orig_direction_tracked(prog, state):
    prog.process(state, client(TCP_SYN, seq=100))
    e = entry(state)
    assert (e.orig_src_ip, e.orig_src_port) == (C_IP, C_PORT)


def test_requires_symmetric_rss():
    prog = ConnectionTracker()
    assert prog.bidirectional
    assert "symmetric" in prog.rss_fields
