"""pack()/unpack() round-trip for every registered program's metadata.

The runtime twin of scrlint's SCR003: the sequencer stores and piggybacks
exactly ``size()`` bytes per packet (Table 1's "metadata size"), so every
metadata class must (a) round-trip losslessly through its own FORMAT and
(b) report a size that matches ``struct.calcsize``.  A drifting FORMAT or a
FIELDS/FORMAT arity mismatch corrupts every history row that crosses cores.
"""

import struct

import pytest

from repro.programs import make_program, program_names

#: distinct, width-safe test values: field i gets i+1 (every struct code the
#: zoo uses holds at least 8 bits unsigned, so values stay representable).
def sample_kwargs(metadata_cls):
    return {name: i + 1 for i, name in enumerate(metadata_cls.FIELDS)}


@pytest.mark.parametrize("name", program_names())
def test_metadata_roundtrip(name):
    program = make_program(name)
    cls = program.metadata_cls
    meta = cls(**sample_kwargs(cls))
    packed = meta.pack()
    assert len(packed) == cls.size()
    restored = cls.unpack(packed)
    assert restored == meta
    assert restored.astuple() == meta.astuple()


@pytest.mark.parametrize("name", program_names())
def test_metadata_size_matches_calcsize(name):
    program = make_program(name)
    cls = program.metadata_cls
    assert cls.size() == struct.calcsize(cls.FORMAT)
    # Table 1's "metadata size" is reported straight off the class.
    assert program.metadata_size == cls.size()


@pytest.mark.parametrize("name", program_names())
def test_format_fields_arity_agrees(name):
    program = make_program(name)
    cls = program.metadata_cls
    width = struct.calcsize(cls.FORMAT)
    values = struct.unpack(cls.FORMAT, bytes(width))
    assert len(values) == len(cls.FIELDS), (
        f"{cls.__name__}: FORMAT packs {len(values)} values but FIELDS "
        f"declares {len(cls.FIELDS)}"
    )


@pytest.mark.parametrize("name", program_names())
def test_format_is_network_order(name):
    cls = make_program(name).metadata_cls
    assert cls.FORMAT.startswith("!"), (
        f"{cls.__name__}.FORMAT must pin network byte order so history "
        "rows are layout-identical across hosts"
    )


def test_defaulted_fields_pack_as_zero():
    # Constructing with no kwargs must produce an all-zero row: history
    # slots start zeroed and unpack must tolerate that.
    for name in program_names():
        cls = make_program(name).metadata_cls
        meta = cls()
        assert meta.pack() == bytes(cls.size())
