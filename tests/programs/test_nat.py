"""NAT gateway (extension): per-flow bindings + the global port pool."""

import pytest

from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
    Packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.programs import NatGateway, Verdict
from repro.state import StateMap
from repro.traffic import Trace


@pytest.fixture
def prog():
    return NatGateway(port_base=50000, port_count=4)


@pytest.fixture
def state():
    return StateMap()


def syn(src=1, sport=100):
    return make_tcp_packet(src, 9, sport, 80, TCP_SYN)


def data(src=1, sport=100):
    return make_tcp_packet(src, 9, sport, 80, TCP_ACK)


def fin(src=1, sport=100):
    return make_tcp_packet(src, 9, sport, 80, TCP_FIN | TCP_ACK)


def test_syn_allocates_binding(prog, state):
    assert prog.process(state, syn()) == Verdict.TX
    bindings = prog.bindings(state)
    assert list(bindings.values()) == [50000]


def test_distinct_flows_get_distinct_ports(prog, state):
    prog.process(state, syn(src=1))
    prog.process(state, syn(src=2))
    prog.process(state, syn(src=3))
    ports = list(prog.bindings(state).values())
    assert len(set(ports)) == 3


def test_existing_binding_reused_for_data(prog, state):
    prog.process(state, syn())
    before = prog.bindings(state)
    assert prog.process(state, data()) == Verdict.TX
    assert prog.bindings(state) == before
    assert prog.ports_in_use(state) == 1


def test_midstream_without_binding_dropped(prog, state):
    assert prog.process(state, data()) == Verdict.DROP
    assert prog.ports_in_use(state) == 0


def test_fin_releases_port(prog, state):
    prog.process(state, syn())
    assert prog.process(state, fin()) == Verdict.TX
    assert prog.ports_in_use(state) == 0
    assert prog.bindings(state) == {}


def test_rst_releases_port(prog, state):
    prog.process(state, syn())
    prog.process(state, make_tcp_packet(1, 9, 100, 80, TCP_RST))
    assert prog.ports_in_use(state) == 0


def test_released_port_reused_lifo(prog, state):
    prog.process(state, syn(src=1))  # 50000
    prog.process(state, syn(src=2))  # 50001
    prog.process(state, fin(src=1))  # releases 50000
    prog.process(state, syn(src=3))
    assert prog.bindings(state)[syn(src=3).five_tuple()] == 50000


def test_pool_exhaustion_drops(prog, state):
    for src in range(1, 5):
        assert prog.process(state, syn(src=src)) == Verdict.TX
    assert prog.process(state, syn(src=99)) == Verdict.DROP
    assert prog.ports_in_use(state) == 4


def test_non_tcp_passes_untouched(prog, state):
    assert prog.process(state, make_udp_packet(1, 2, 3, 4)) == Verdict.PASS
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_metadata_roundtrip(prog):
    meta = prog.extract_metadata(syn())
    assert type(meta).unpack(meta.pack()) == meta
    assert prog.metadata_size == 15


def test_transition_not_directly_usable(prog):
    with pytest.raises(NotImplementedError):
        prog.transition(None, prog.extract_metadata(syn()))


def test_rejects_bad_port_range():
    with pytest.raises(ValueError):
        NatGateway(port_count=0)
    with pytest.raises(ValueError):
        NatGateway(port_base=65000, port_count=2000)


class TestNatUnderScr:
    """The point of the extension: global state replicates correctly."""

    def make_trace(self):
        pkts = []
        for src in range(1, 9):
            pkts.append(syn(src=src))
            pkts.append(data(src=src))
        for src in range(1, 5):
            pkts.append(fin(src=src))
        for src in range(20, 24):
            pkts.append(syn(src=src))  # reuse released ports
        return Trace(pkts)

    def test_scr_replicates_the_global_pool(self):
        trace = self.make_trace()
        engine = ScrFunctionalEngine(NatGateway(port_count=16), num_cores=4)
        result = engine.run(trace)
        ref_verdicts, ref_state = reference_run(NatGateway(port_count=16), trace)
        assert result.replicas_consistent
        assert result.replica_snapshots[0] == ref_state
        assert result.verdicts == ref_verdicts

    def test_no_duplicate_allocations_across_cores(self):
        trace = self.make_trace()
        prog = NatGateway(port_count=16)
        engine = ScrFunctionalEngine(prog, num_cores=4)
        result = engine.run(trace)
        for snap in result.replica_snapshots:
            ports = [v for k, v in snap.items()
                     if isinstance(k, tuple) and k[0] == "bind"]
            assert len(ports) == len(set(ports))

    def test_sharded_cores_would_collide(self):
        """The §2.2 failure mode, demonstrated: independent per-core state
        (what sharding gives you) allocates the SAME external port to
        different flows on different cores."""
        trace = self.make_trace()
        prog = NatGateway(port_count=16)
        core_states = [StateMap(), StateMap()]
        for i, pkt in enumerate(trace):
            core = pkt.five_tuple().src_ip % 2  # a stand-in for RSS
            prog.process(core_states[core], pkt)
        all_ports = []
        for s in core_states:
            all_ports.extend(
                v for k, v in s.snapshot().items()
                if isinstance(k, tuple) and k[0] == "bind"
            )
        assert len(all_ports) != len(set(all_ports))  # collision!
