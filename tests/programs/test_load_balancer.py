"""Maglev load balancer: table properties and connection affinity."""

import pytest

from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    Packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.programs import Verdict, make_program
from repro.programs.load_balancer import MaglevLoadBalancer, MaglevTable
from repro.state import StateMap
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


class TestMaglevTable:
    def test_every_slot_assigned(self):
        t = MaglevTable([10, 20, 30], table_size=101)
        assert all(b in (10, 20, 30) for b in t.table)

    def test_shares_nearly_equal(self):
        """The Maglev property: backends differ by at most ~1-2 % of slots."""
        t = MaglevTable(list(range(1, 8)), table_size=65537)
        shares = t.shares()
        assert len(shares) == 7
        assert max(shares.values()) - min(shares.values()) < 0.02

    def test_deterministic(self):
        a = MaglevTable([1, 2, 3], table_size=251)
        b = MaglevTable([1, 2, 3], table_size=251)
        assert a.table == b.table

    def test_minimal_disruption_on_backend_removal(self):
        """Removing 1 of 10 backends remaps ≈ 1/10 of slots, not all."""
        before = MaglevTable(list(range(10)), table_size=65537)
        after = MaglevTable(list(range(9)), table_size=65537)
        disruption = before.disruption(after)
        assert 0.08 < disruption < 0.35

    def test_lookup_in_backends(self):
        t = MaglevTable([5, 6], table_size=11)
        assert all(t.lookup(h) in (5, 6) for h in range(100))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            MaglevTable([])
        with pytest.raises(ValueError):
            MaglevTable([1, 1])
        with pytest.raises(ValueError):
            MaglevTable([1, 2, 3], table_size=2)

    def test_disruption_requires_same_size(self):
        with pytest.raises(ValueError):
            MaglevTable([1], table_size=11).disruption(MaglevTable([1], table_size=13))


class TestLoadBalancerProgram:
    def syn(self, sport):
        return make_tcp_packet(1, 9, sport, 80, TCP_SYN)

    def data(self, sport):
        return make_tcp_packet(1, 9, sport, 80, TCP_ACK)

    def fin(self, sport):
        return make_tcp_packet(1, 9, sport, 80, TCP_FIN | TCP_ACK)

    def test_syn_creates_binding(self):
        prog = MaglevLoadBalancer()
        state = StateMap()
        assert prog.process(state, self.syn(100)) == Verdict.TX
        assert len(state) == 1

    def test_connection_affinity(self):
        prog = MaglevLoadBalancer()
        state = StateMap()
        prog.process(state, self.syn(100))
        backend = list(state.snapshot().values())[0]
        for _ in range(5):
            prog.process(state, self.data(100))
        assert list(state.snapshot().values())[0] == backend

    def test_fin_reaps_entry(self):
        prog = MaglevLoadBalancer()
        state = StateMap()
        prog.process(state, self.syn(100))
        prog.process(state, self.fin(100))
        assert len(state) == 0

    def test_midstream_without_state_forwards_statelessly(self):
        prog = MaglevLoadBalancer()
        state = StateMap()
        assert prog.process(state, self.data(100)) == Verdict.TX
        assert len(state) == 0

    def test_flows_spread_across_backends(self):
        prog = MaglevLoadBalancer(backends=(1, 2, 3, 4), table_size=251)
        state = StateMap()
        for sport in range(1000, 1200):
            prog.process(state, self.syn(sport))
        counts = prog.connections_per_backend(state)
        assert len(counts) == 4
        assert max(counts.values()) < 3 * min(counts.values())

    def test_backend_choice_is_deterministic(self):
        a, b = MaglevLoadBalancer(), MaglevLoadBalancer()
        meta = a.extract_metadata(self.syn(77))
        assert a.pick_backend(meta) == b.pick_backend(meta)

    def test_non_tcp_passes(self):
        prog = MaglevLoadBalancer()
        state = StateMap()
        assert prog.process(state, make_udp_packet(1, 2, 3, 4)) == Verdict.PASS
        assert prog.process(state, Packet()) == Verdict.PASS


def test_registered_and_scr_safe():
    from repro.core import validate_program

    prog = make_program("load_balancer")
    trace = synthesize_trace(univ_dc_flow_sizes(), 12, seed=5, max_packets=400)
    assert validate_program(prog, list(trace)).ok


def test_scr_replication_of_connection_table():
    trace = synthesize_trace(univ_dc_flow_sizes(), 15, seed=9, max_packets=700)
    engine = ScrFunctionalEngine(MaglevLoadBalancer(), num_cores=5)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(MaglevLoadBalancer(), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts
