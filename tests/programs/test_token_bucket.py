"""Token-bucket policer: refill math, burst limits, timestamp determinism."""

import pytest

from repro.packet import Packet, make_udp_packet
from repro.programs import BucketState, TokenBucketPolicer, Verdict
from repro.state import StateMap


def pkt(ts_us, src=1):
    p = make_udp_packet(src, 2, 3, 4)
    p.timestamp_ns = ts_us * 1000
    return p


@pytest.fixture
def prog():
    # 1000 pps, burst of 2 → one refill per millisecond.
    return TokenBucketPolicer(rate_pps=1000, burst=2)


def test_metadata_size_matches_table1(prog):
    assert prog.metadata_size == 18


def test_new_flow_starts_full_and_spends_one(prog):
    state = StateMap()
    assert prog.process(state, pkt(0)) == Verdict.TX
    value = state.lookup(list(state.snapshot())[0])
    assert value.milli_tokens == 1000  # burst 2 → 2000 milli, minus one token


def test_burst_allows_consecutive_packets(prog):
    state = StateMap()
    assert prog.process(state, pkt(0)) == Verdict.TX
    assert prog.process(state, pkt(0)) == Verdict.TX  # second of the burst
    assert prog.process(state, pkt(0)) == Verdict.DROP  # bucket empty


def test_refill_after_interval(prog):
    state = StateMap()
    for _ in range(3):
        prog.process(state, pkt(0))  # drain the bucket
    assert prog.process(state, pkt(500)) == Verdict.DROP  # only half a token
    assert prog.process(state, pkt(1500)) == Verdict.TX  # 1.5 tokens accrued


def test_refill_caps_at_burst(prog):
    state = StateMap()
    prog.process(state, pkt(0))
    # a long silence cannot accumulate more than the burst capacity
    prog.process(state, pkt(10_000_000))
    value = list(state.snapshot().values())[0]
    assert value.milli_tokens == 2000 - 1000  # full (2000) minus this packet


def test_sustained_rate_enforced(prog):
    state = StateMap()
    sent = sum(
        1
        for i in range(100)
        if prog.process(state, pkt(i * 100)) == Verdict.TX  # offered at 10x rate
    )
    # 10 ms elapsed at 1000 pps → ~10 refills + burst of 2.
    assert 10 <= sent <= 13


def test_flows_policed_independently(prog):
    state = StateMap()
    for _ in range(3):
        prog.process(state, pkt(0, src=1))
    assert prog.process(state, pkt(0, src=2)) == Verdict.TX


def test_timestamp_wraparound_treated_as_elapsed(prog):
    state = StateMap()
    max_us = (1 << 32) - 1
    prog.process(state, pkt(max_us - 1))
    for _ in range(2):
        prog.process(state, pkt(max_us - 1))
    # timestamp wraps to small value; modular elapsed = 2001 us → 2 tokens
    assert prog.process(state, pkt(2000)) == Verdict.TX


def test_non_ipv4_passes(prog):
    state = StateMap()
    assert prog.process(state, Packet()) == Verdict.PASS
    assert len(state) == 0


def test_integer_arithmetic_is_deterministic(prog):
    s1, s2 = StateMap(), StateMap()
    for i in range(50):
        prog.process(s1, pkt(i * 317))
        prog.process(s2, pkt(i * 317))
    assert s1.snapshot() == s2.snapshot()


def test_bucket_state_tuple_accessors():
    b = BucketState(42, 1500)
    assert b.last_ts_us == 42
    assert b.milli_tokens == 1500


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        TokenBucketPolicer(rate_pps=0)
    with pytest.raises(ValueError):
        TokenBucketPolicer(burst=0)
