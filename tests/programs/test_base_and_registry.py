"""Program abstractions: metadata framework, registry, Table 1 inventory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import TCP_SYN, make_tcp_packet
from repro.programs import (
    PROGRAM_FACTORIES,
    ForwarderMetadata,
    StatelessForwarder,
    Verdict,
    make_program,
    program_names,
    table1_rows,
)
from repro.state import StateMap

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
port = st.integers(min_value=0, max_value=65535)

#: the paper's Table 1 metadata sizes, byte for byte.
TABLE1_METADATA_BYTES = {
    "ddos": 4,
    "heavy_hitter": 18,
    "conntrack": 30,
    "token_bucket": 18,
    "port_knocking": 8,
}


@pytest.mark.parametrize("name,size", sorted(TABLE1_METADATA_BYTES.items()))
def test_metadata_sizes_match_table1(name, size):
    assert make_program(name).metadata_size == size


@pytest.mark.parametrize("name", sorted(TABLE1_METADATA_BYTES))
def test_metadata_pack_unpack_roundtrip(name):
    prog = make_program(name)
    pkt = make_tcp_packet(0x01020304, 0x05060708, 1111, 2222, TCP_SYN, seq=9)
    pkt.timestamp_ns = 5_000_000
    meta = prog.extract_metadata(pkt)
    assert prog.metadata_cls.unpack(meta.pack()) == meta
    assert len(meta.pack()) == prog.metadata_size


@pytest.mark.parametrize("name", sorted(TABLE1_METADATA_BYTES))
def test_transition_determinism(name):
    """The replication prerequisite: same (state, meta) → same output (§3.1)."""
    prog = make_program(name)
    pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN)
    meta = prog.extract_metadata(pkt)
    first = prog.transition(None, meta)
    for _ in range(3):
        assert prog.transition(None, meta) == first


def test_atomics_vs_locks_split_matches_table1():
    rows = {r["program"]: r["atomics_or_locks"] for r in table1_rows()}
    assert rows["ddos"] == "Atomic HW"
    assert rows["heavy_hitter"] == "Atomic HW"
    assert rows["conntrack"] == "Locks"
    assert rows["token_bucket"] == "Locks"
    assert rows["port_knocking"] == "Locks"


def test_rss_fields_match_table1():
    rows = {r["program"]: r["rss_fields"] for r in table1_rows()}
    assert rows["ddos"] == "src & dst IP"
    assert rows["port_knocking"] == "src & dst IP"
    assert rows["heavy_hitter"] == "5-tuple"
    assert rows["token_bucket"] == "5-tuple"
    assert "symmetric" in rows["conntrack"]


def test_registry_contains_all_programs():
    assert set(PROGRAM_FACTORIES) == {
        "ddos", "heavy_hitter", "conntrack", "token_bucket",
        "port_knocking", "forwarder", "nat", "sampler", "load_balancer",
        "victim_monitor", "peak_meter", "spreader",
    }


def test_program_names_stateful_filter():
    """stateful_only yields exactly the Table 1 set — no forwarder, and no
    extension programs like NAT."""
    assert program_names(stateful_only=True) == [
        "conntrack", "ddos", "heavy_hitter", "port_knocking", "token_bucket",
    ]
    assert "forwarder" in program_names()
    assert "nat" in program_names()


def test_make_program_unknown_name():
    with pytest.raises(KeyError, match="unknown program"):
        make_program("nope")


def test_make_program_passes_kwargs():
    prog = make_program("ddos", threshold=5)
    assert prog.threshold == 5


class TestForwarder:
    def test_stateless(self):
        prog = StatelessForwarder()
        state = StateMap()
        pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN)
        assert prog.process(state, pkt) == Verdict.TX
        assert len(state) == 0

    def test_zero_metadata(self):
        assert StatelessForwarder().metadata_size == 0
        meta = ForwarderMetadata()
        assert meta.pack() == b""
        assert ForwarderMetadata.unpack(b"") == meta

    def test_mac_swap(self):
        prog = StatelessForwarder()
        pkt = make_tcp_packet(1, 2, 3, 4, TCP_SYN)
        pkt.eth.src, pkt.eth.dst = b"\x01" * 6, b"\x02" * 6
        out = prog.forward(pkt)
        assert out.eth.src == b"\x02" * 6
        assert out.eth.dst == b"\x01" * 6

    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError):
            StatelessForwarder(extra_compute_ns=-1)


@given(u32, u32, port, port)
def test_metadata_roundtrip_property_all_programs(src, dst, sport, dport):
    pkt = make_tcp_packet(src, dst, sport, dport, TCP_SYN)
    for name in TABLE1_METADATA_BYTES:
        prog = make_program(name)
        meta = prog.extract_metadata(pkt)
        back = prog.metadata_cls.unpack(meta.pack())
        assert back == meta
        assert prog.key(back) == prog.key(meta)
