"""Integration: the paper's qualitative results as assertions.

These are the claims EXPERIMENTS.md records against — who wins, the shape of
each curve, where the crossovers fall.  Absolute Mpps differ from the paper's
testbed; orderings and monotonicity must not.
"""

import pytest

from repro.bench import ExperimentRunner, predicted_scr_mpps
from repro.cpu import TABLE4_PARAMS

CORES = [1, 2, 4, 7]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(num_flows=50, max_packets=3000)


def sweep(runner, program, trace, technique, cores=CORES):
    return {
        k: runner.mlffr_point(program, trace, technique, k).mlffr_mpps for k in cores
    }


@pytest.mark.parametrize(
    "program,trace",
    [
        ("ddos", "univ_dc"),
        ("token_bucket", "univ_dc"),
        ("port_knocking", "caida"),
        ("heavy_hitter", "caida"),
        ("conntrack", "hyperscalar_dc"),
    ],
)
def test_scr_scales_monotonically_everywhere(runner, program, trace):
    """Goal 3 (§2.3): performance never degrades with more cores."""
    caps = sweep(runner, program, trace, "scr")
    values = [caps[k] for k in CORES]
    assert all(b >= a * 0.98 for a, b in zip(values, values[1:]))
    assert caps[7] > 2.5 * caps[1]


@pytest.mark.parametrize("program,trace", [("ddos", "univ_dc"), ("conntrack", "hyperscalar_dc")])
def test_scr_beats_all_baselines_at_seven_cores(runner, program, trace):
    scr = sweep(runner, program, trace, "scr", cores=[7])[7]
    for technique in ("shared", "rss", "rss++"):
        other = sweep(runner, program, trace, technique, cores=[7])[7]
        assert scr > other, technique


@pytest.mark.parametrize("program", ["token_bucket", "port_knocking"])
def test_shared_lock_collapses_beyond_two_cores(runner, program):
    """'The performance of lock-based sharing falls off catastrophically
    with 3 or more cores' (§4.2)."""
    caps = sweep(runner, program, "univ_dc", "shared", cores=[2, 7])
    assert caps[7] < caps[2]


def test_sharding_flat_under_skew(runner):
    """RSS cannot split an elephant: throughput stays near one core's."""
    caps = sweep(runner, "ddos", "univ_dc", "rss")
    assert caps[7] < 2.0 * caps[1]


def test_scr_single_connection_scales_where_sharding_cannot(runner):
    """Figure 1: a single TCP connection."""
    scr = sweep(runner, "conntrack", "single-flow", "scr")
    rss = sweep(runner, "conntrack", "single-flow", "rss")
    assert scr[7] > 2.5 * scr[1]
    assert rss[7] < 1.3 * rss[1]


def test_scr_measurements_match_appendix_a_model(runner):
    """Figure 11: predicted vs measured within ~15 %."""
    for program, trace in (("ddos", "univ_dc"), ("token_bucket", "univ_dc")):
        caps = sweep(runner, program, trace, "scr")
        for k in CORES:
            predicted = predicted_scr_mpps(TABLE4_PARAMS[program], k)
            assert caps[k] == pytest.approx(predicted, rel=0.17), (program, k)


def test_loss_recovery_costs_but_still_wins(runner):
    """Figure 10b ordering: SCR with recovery at 1% loss still beats RSS."""
    plain = runner.mlffr_point("port_knocking", "univ_dc", "scr", 7).mlffr_mpps
    recovered = runner.mlffr_point(
        "port_knocking", "univ_dc", "scr", 7,
        engine_kwargs={"with_recovery": True, "loss_rate": 0.01},
    ).mlffr_mpps
    rss = runner.mlffr_point("port_knocking", "univ_dc", "rss", 7).mlffr_mpps
    assert recovered < plain
    assert recovered > rss
