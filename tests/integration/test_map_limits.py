"""The eBPF map-size constraint (§4.1) and the sampling workaround.

The paper's programs run inside eBPF, whose maps are fixed-size; the CAIDA
trace had to be flow-sampled to fit.  These tests exercise that regime:
fixed-size maps fail loudly when overrun, and the distribution-preserving
sampler brings a trace under the limit.
"""

import pytest

from repro.core import ScrFunctionalEngine
from repro.programs import make_program
from repro.state import CuckooInsertError, StateMap
from repro.traffic import caida_backbone_flow_sizes, sample_flows, synthesize_trace


@pytest.fixture(scope="module")
def wide_trace():
    """More concurrent flows than a small fixed map can hold."""
    return synthesize_trace(
        caida_backbone_flow_sizes(), 400, seed=44, max_packets=3000,
        mean_flow_interarrival_ns=100,
    )


def count_distinct_keys(trace, program):
    keys = set()
    for pkt in trace:
        keys.add(program.key(program.extract_metadata(pkt)))
    return len(keys)


def test_fixed_map_overrun_fails_loudly(wide_trace):
    prog = make_program("heavy_hitter")
    state = StateMap(capacity=64, allow_grow=False)
    with pytest.raises(CuckooInsertError):
        for pkt in wide_trace:
            prog.process(state, pkt)


def test_growing_map_absorbs_the_same_trace(wide_trace):
    prog = make_program("heavy_hitter")
    state = StateMap(capacity=64, allow_grow=True)
    for pkt in wide_trace:
        prog.process(state, pkt)
    assert len(state) == count_distinct_keys(wide_trace, prog)


def test_sampling_brings_trace_under_map_limit(wide_trace):
    """The paper's CAIDA preparation: sample flows until the state fits."""
    prog = make_program("heavy_hitter")
    limit = 128
    sampled = sample_flows(wide_trace, max_packets=len(wide_trace) // 4, seed=3)
    while count_distinct_keys(sampled, prog) > int(limit * 0.8):
        sampled = sample_flows(sampled, max_packets=len(sampled) // 2, seed=3)
    state = StateMap(capacity=limit, allow_grow=False)
    for pkt in sampled:
        prog.process(state, pkt)  # never raises
    assert 0 < len(state) <= limit


def test_scr_engine_respects_state_capacity(wide_trace):
    """Per-core replicas inherit the fixed-size regime: a too-small
    capacity fails identically on every core (determinism even in
    failure)."""
    engine = ScrFunctionalEngine(
        make_program("heavy_hitter"), 2, state_capacity=1 << 16
    )
    result = engine.run(wide_trace)
    assert result.replicas_consistent
