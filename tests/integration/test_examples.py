"""Smoke tests: the fast examples must run clean as scripts."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

#: the examples that finish in a few seconds (the others run MLFFR sweeps
#: and are exercised through the benchmarks instead).
FAST_EXAMPLES = [
    "quickstart.py",
    "custom_program.py",
    "sequencer_capacity_planning.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_quickstart_reports_verification():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "identical to the single-threaded reference" in proc.stdout


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "ddos_mitigation.py",
        "connection_tracking.py",
        "loss_recovery.py",
        "sequencer_capacity_planning.py",
        "custom_program.py",
    } <= present
