"""Integration: functional SCR over realistic traces, larger scale, and the
property-based sweep over randomly generated workloads."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ScrFunctionalEngine, reference_run
from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
    Packet,
    make_tcp_packet,
    make_udp_packet,
)
from repro.programs import make_program
from repro.traffic import Trace, caida_backbone_flow_sizes, synthesize_trace


def test_caida_like_workload_all_programs_consistent():
    trace = synthesize_trace(
        caida_backbone_flow_sizes(), 40, seed=31, max_packets=1200,
        flow_duration_ns=100_000, mean_flow_interarrival_ns=2_000,
    )
    for name in ("ddos", "heavy_hitter", "token_bucket", "port_knocking"):
        engine = ScrFunctionalEngine(make_program(name), 6)
        result = engine.run(trace)
        ref_verdicts, ref_state = reference_run(make_program(name), trace)
        assert result.replicas_consistent, name
        assert result.replica_snapshots[0] == ref_state, name
        assert result.verdicts == ref_verdicts, name


def test_fourteen_cores_ddos():
    """The paper parallelizes the DDoS mitigator over 14 cores (§4.2)."""
    trace = synthesize_trace(
        caida_backbone_flow_sizes(), 30, seed=37, max_packets=1000
    )
    engine = ScrFunctionalEngine(make_program("ddos"), 14)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program("ddos"), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state


packet_strategy = st.one_of(
    st.builds(
        make_tcp_packet,
        src_ip=st.integers(min_value=1, max_value=6),
        dst_ip=st.integers(min_value=1, max_value=3),
        src_port=st.integers(min_value=1, max_value=4),
        dst_port=st.sampled_from([80, 7001, 7002, 7003]),
        flags=st.sampled_from([TCP_SYN, TCP_ACK, TCP_SYN | TCP_ACK, TCP_FIN | TCP_ACK]),
        seq=st.integers(min_value=0, max_value=1000),
        ack=st.integers(min_value=0, max_value=1000),
    ),
    st.builds(
        make_udp_packet,
        src_ip=st.integers(min_value=1, max_value=6),
        dst_ip=st.integers(min_value=1, max_value=3),
        src_port=st.integers(min_value=1, max_value=4),
        dst_port=st.integers(min_value=1, max_value=4),
    ),
    st.just(Packet()),
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pkts=st.lists(packet_strategy, min_size=1, max_size=120),
    cores=st.integers(min_value=1, max_value=6),
    program=st.sampled_from(["ddos", "conntrack", "port_knocking", "heavy_hitter"]),
)
def test_replication_equals_reference_on_arbitrary_traffic(pkts, cores, program):
    """Property: for ANY packet sequence, any core count, and any program,
    SCR replicas converge to exactly the single-threaded state and verdicts
    (Principles #1 + #2 as a universally quantified statement)."""
    for i, p in enumerate(pkts):
        p.timestamp_ns = i * 1000
    trace = Trace(list(pkts))
    engine = ScrFunctionalEngine(make_program(program), cores)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(program), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    pkts=st.lists(packet_strategy, min_size=20, max_size=100),
    cores=st.integers(min_value=2, max_value=5),
    loss_seed=st.integers(min_value=0, max_value=10_000),
)
def test_recovery_keeps_replicas_consistent_on_arbitrary_traffic(
    pkts, cores, loss_seed
):
    """Property: under random loss on arbitrary traffic, replicas of all
    unblocked cores agree (Appendix B, Theorem 1)."""
    for i, p in enumerate(pkts):
        p.timestamp_ns = i * 1000
    trace = Trace(list(pkts))
    engine = ScrFunctionalEngine(
        make_program("ddos"), cores, with_recovery=True, loss_rate=0.15,
        seed=loss_seed,
    )
    result = engine.run(trace)
    assert result.replicas_consistent
