"""Cross-layer consistency: the functional and performance layers must
agree on the quantities they both model, and the wire format must be
robust to corruption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScrPacketCodec
from repro.cpu import PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine
from repro.programs import make_program, program_names
from repro.sequencer import PacketHistorySequencer
from repro.traffic import Trace


@pytest.mark.parametrize("name", ["ddos", "conntrack", "heavy_hitter"])
@pytest.mark.parametrize("cores", [2, 5, 9])
def test_functional_and_perf_layers_agree_on_overhead(name, cores):
    """The ScrEngine's wire-length model must equal the actual byte
    overhead the functional sequencer produces."""
    prog = make_program(name)
    seq = PacketHistorySequencer(prog, cores)
    engine = ScrEngine(make_program(name), cores)
    pkt = make_udp_packet(1, 2, 3, 4)
    sp = seq.process(pkt)
    actual_overhead = len(sp.data) - len(pkt.to_bytes())
    assert engine.codec.overhead_bytes == actual_overhead == seq.overhead_bytes

    trace = Trace([pkt])
    pp = PerfTrace.from_trace(trace, prog).records[0]
    assert engine.wire_len(pp) == pkt.wire_len + actual_overhead


@pytest.mark.parametrize("name", sorted(set(program_names()) - {"forwarder"}))
def test_history_items_match_functional_fast_forwards(name):
    """The perf layer charges (k-1)·c2 per packet in steady state; the
    functional layer must actually apply exactly k-1 history items."""
    from repro.core import ScrCoreRuntime
    from repro.state import StateMap

    cores = 4
    prog = make_program(name)
    seq = PacketHistorySequencer(prog, cores)
    runtimes = [
        ScrCoreRuntime(prog, core_id=i, codec=seq.codec, state=StateMap())
        for i in range(cores)
    ]
    n = 40
    for i in range(n):
        sp = seq.process(make_udp_packet(1 + i % 3, 2, 3, 4, timestamp_ns=i * 1000))
        runtimes[sp.core].receive(sp.data)
    # Steady state: each processed packet beyond the warmup fast-forwarded
    # exactly cores-1 history items.
    total_processed = sum(r.packets_processed for r in runtimes)
    total_history = sum(r.history_applied for r in runtimes)
    warmup_deficit = (cores - 1) * cores // 2  # fewer items while filling
    assert total_processed == n
    assert total_history == (cores - 1) * n - warmup_deficit


class TestDecodeRobustness:
    """Corrupted SCR packets must fail loudly, never mis-parse silently."""

    def setup_method(self):
        self.codec = ScrPacketCodec(meta_size=4, num_slots=3, dummy_eth=True)
        rows = [bytes([i]) * 4 for i in range(3)]
        self.valid = self.codec.encode(5, 1000, rows, 1, b"ORIGINAL")

    @settings(max_examples=120, deadline=None)
    @given(
        pos=st.integers(min_value=0, max_value=47),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_single_bit_flips_never_crash(self, pos, bit):
        data = bytearray(self.valid)
        data[pos % len(data)] ^= 1 << bit
        try:
            header, rows, original = self.codec.decode(bytes(data))
        except ValueError:
            return  # loud rejection is fine
        # Accepted: then the structural fields must still be coherent.
        assert header.num_slots == 3 and header.meta_size == 4
        assert len(rows) == 3

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=47))
    def test_truncations_never_crash(self, cut):
        data = self.valid[:cut]
        with pytest.raises(ValueError):
            self.codec.decode(data)

    @settings(max_examples=60, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=80))
    def test_random_junk_rejected(self, junk):
        try:
            self.codec.decode(junk)
        except ValueError:
            return
        # A random accept requires the magic + geometry to match — possible
        # only if hypothesis found a valid packet, which is fine.
        assert junk[14:16] == b"\x5c\x12"
