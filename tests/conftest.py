"""Shared fixtures: small deterministic traces and program instances."""

from __future__ import annotations

import pytest

from repro.packet import TCP_SYN, ip_to_int, make_tcp_packet, make_udp_packet
from repro.programs import make_program, program_names
from repro.traffic import single_flow_trace, synthesize_trace, univ_dc_flow_sizes

#: programs with state (Table 1), exercised across many suites.
STATEFUL_PROGRAMS = [n for n in program_names(stateful_only=True)]


@pytest.fixture
def tcp_syn_packet():
    return make_tcp_packet(
        ip_to_int("10.0.0.1"), ip_to_int("172.16.0.1"), 40000, 443, TCP_SYN, seq=100
    )


@pytest.fixture
def udp_packet():
    return make_udp_packet(
        ip_to_int("10.0.0.2"), ip_to_int("172.16.0.2"), 5353, 53, payload=b"query"
    )


@pytest.fixture(scope="session")
def small_unidir_trace():
    """~800 packets, 20 unidirectional flows, heavy-tailed sizes."""
    return synthesize_trace(
        univ_dc_flow_sizes(), 20, seed=11, bidirectional=False, max_packets=800
    )


@pytest.fixture(scope="session")
def small_bidir_trace():
    """~800 packets, 12 full TCP conversations (handshake/data/teardown)."""
    return synthesize_trace(
        univ_dc_flow_sizes(), 12, seed=13, bidirectional=True, max_packets=800
    )


@pytest.fixture(scope="session")
def elephant_trace():
    """One big bidirectional TCP connection (the Figure 1 workload)."""
    return single_flow_trace(300, bidirectional=True)


def trace_for_program(program, **kwargs):
    """A small trace matching the program's directionality."""
    defaults = dict(seed=17, max_packets=600)
    defaults.update(kwargs)
    return synthesize_trace(
        univ_dc_flow_sizes(), 15, bidirectional=program.bidirectional, **defaults
    )


@pytest.fixture(params=STATEFUL_PROGRAMS)
def stateful_program(request):
    return make_program(request.param)
