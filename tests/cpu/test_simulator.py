"""The discrete-event simulator: capacity, drops, wire limits."""

import pytest

from repro.cpu import PerfTrace, simulate
from repro.cpu.counters import CoreCounters, SystemCounters
from repro.packet import make_udp_packet
from repro.programs import make_program
from repro.traffic import Trace


class FixedServiceEngine:
    """Minimal engine: round-robin, constant service time."""

    name = "fixed"

    def __init__(self, num_cores, service_ns, extra_wire=0):
        self.num_cores = num_cores
        self._service = service_ns
        self._extra_wire = extra_wire
        self.counters = SystemCounters()
        self._rr = 0

    def reset(self):
        self.counters.cores = [CoreCounters(core_id=i) for i in range(self.num_cores)]
        self._rr = 0

    def wire_len(self, pp):
        return pp.wire_len + self._extra_wire

    def steer(self, pp):
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core

    def pre_enqueue(self, pp, core):
        return True

    def service_ns(self, core, pp, start_ns):
        self.counters.cores[core].charge_packet(dispatch_ns=self._service, compute_ns=0)
        return self._service


def make_perf_trace(n=3000, wire_len=192):
    pkts = [make_udp_packet(i % 50 + 1, 2, 3, 4) for i in range(n)]
    trace = Trace(pkts).truncated(wire_len)
    return PerfTrace.from_trace(trace, make_program("ddos"))


@pytest.fixture(scope="module")
def perf_trace():
    return make_perf_trace()


def test_below_capacity_no_loss(perf_trace):
    engine = FixedServiceEngine(1, service_ns=100)  # capacity 10 Mpps
    res = simulate(perf_trace, 5e6, engine)
    assert res.loss_fraction == 0.0
    assert res.processed == res.offered


def test_above_capacity_loses(perf_trace):
    engine = FixedServiceEngine(1, service_ns=100)
    res = simulate(perf_trace, 20e6, engine)
    # at 2x overload roughly half the packets can't be processed in time
    assert res.loss_fraction > 0.3


def test_loss_scales_with_overload(perf_trace):
    engine = FixedServiceEngine(1, service_ns=100)
    mild = simulate(perf_trace, 12e6, engine).loss_fraction
    severe = simulate(perf_trace, 40e6, engine).loss_fraction
    assert severe > mild > 0


def test_more_cores_raise_capacity(perf_trace):
    one = FixedServiceEngine(1, service_ns=100)
    four = FixedServiceEngine(4, service_ns=100)
    rate = 30e6
    assert simulate(perf_trace, rate, four).loss_fraction < simulate(
        perf_trace, rate, one
    ).loss_fraction


def test_per_core_packets_balanced_round_robin(perf_trace):
    engine = FixedServiceEngine(4, service_ns=50)
    res = simulate(perf_trace, 1e6, engine)
    assert max(res.per_core_packets) - min(res.per_core_packets) <= 1


def test_wire_saturation_drops(perf_trace):
    """Huge frames at a tiny line rate: the wire, not the CPU, drops."""
    engine = FixedServiceEngine(8, service_ns=1, extra_wire=1400)
    res = simulate(perf_trace, 5e6, engine, line_rate_gbps=1.0)
    assert res.wire_dropped > 0


def test_wire_headroom_no_drops(perf_trace):
    engine = FixedServiceEngine(1, service_ns=100)
    res = simulate(perf_trace, 5e6, engine, line_rate_gbps=100.0)
    assert res.wire_dropped == 0


def test_ring_capacity_limits_backlog(perf_trace):
    engine = FixedServiceEngine(1, service_ns=1000)
    res = simulate(perf_trace, 100e6, engine, ring_capacity=16)
    assert res.ring_dropped > 0


def test_achieved_rate_capped_at_capacity(perf_trace):
    engine = FixedServiceEngine(2, service_ns=100)  # 20 Mpps total
    res = simulate(perf_trace, 100e6, engine)
    assert res.achieved_mpps <= 21


def test_burst_mode_runs(perf_trace):
    engine = FixedServiceEngine(2, service_ns=100)
    res = simulate(perf_trace, 5e6, engine, burst_size=8)
    assert res.processed > 0


def test_rejects_bad_rate(perf_trace):
    with pytest.raises(ValueError):
        simulate(perf_trace, 0, FixedServiceEngine(1, 100))


def test_result_accounting_consistent(perf_trace):
    engine = FixedServiceEngine(1, service_ns=500)
    res = simulate(perf_trace, 50e6, engine)
    assert (
        res.processed + res.wire_dropped + res.ring_dropped
        + res.injected_lost + res.unfinished + res.pcie_dropped
        == res.offered
    )


def test_pcie_saturation_drops(perf_trace):
    """A narrow host interconnect drops before the CPUs do."""
    engine = FixedServiceEngine(8, service_ns=1, extra_wire=1400)
    res = simulate(perf_trace, 5e6, engine, line_rate_gbps=100.0, pcie_rate_gbps=1.0)
    assert res.pcie_dropped > 0


def test_pcie_default_headroom(perf_trace):
    engine = FixedServiceEngine(1, service_ns=100)
    res = simulate(perf_trace, 5e6, engine)
    assert res.pcie_dropped == 0


class TestPerfTrace:
    def test_lowering_counts_unique_keys(self, perf_trace):
        assert perf_trace.unique_keys == 50

    def test_records_carry_hashes_and_wire_len(self, perf_trace):
        pp = perf_trace.records[0]
        assert pp.wire_len == 192
        assert pp.hash_l3 != pp.hash_l4
        assert pp.valid

    def test_invalid_packet_flagged(self):
        from repro.packet import Packet

        trace = Trace([Packet()])
        pt = PerfTrace.from_trace(trace, make_program("ddos"))
        assert not pt.records[0].valid
