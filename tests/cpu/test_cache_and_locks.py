"""Cache (L2 + bounce) and serialization-point models."""

import pytest

from repro.cpu import BounceTracker, L2Model, SerializationTable


class TestL2Model:
    def test_first_touch_is_compulsory_miss(self):
        l2 = L2Model(1)
        miss, stall = l2.access(0, "k")
        assert miss == 1.0
        assert stall > 0

    def test_repeat_access_hits_when_resident(self):
        l2 = L2Model(1)
        l2.access(0, "k")
        miss, stall = l2.access(0, "k")
        assert miss == 0.0 and stall == 0.0

    def test_cores_have_private_residency(self):
        l2 = L2Model(2)
        l2.access(0, "k")
        miss, _ = l2.access(1, "k")
        assert miss == 1.0  # core 1 never saw it

    def test_capacity_spill_kicks_in(self):
        l2 = L2Model(1, l2_bytes=960, entry_bytes=96)  # 10 entries fit
        for i in range(50):
            l2.access(0, i)
        miss, stall = l2.access(0, 0)
        assert 0 < miss < 1
        assert stall == pytest.approx(miss * l2.spill_ns)

    def test_no_spill_under_capacity(self):
        l2 = L2Model(1, l2_bytes=96_000, entry_bytes=96)
        for i in range(100):
            l2.access(0, i)
        assert l2.access(0, 5) == (0.0, 0.0)

    def test_resident_entries_counted(self):
        l2 = L2Model(1)
        for i in range(7):
            l2.access(0, i)
        assert l2.resident_entries(0) == 7

    def test_reset(self):
        l2 = L2Model(1)
        l2.access(0, "k")
        l2.reset()
        assert l2.resident_entries(0) == 0

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            L2Model(0)


class TestBounceTracker:
    def test_first_access_never_bounces(self):
        bt = BounceTracker()
        assert bt.access(0, "k") == (False, 0.0)

    def test_same_core_never_bounces(self):
        bt = BounceTracker()
        bt.access(0, "k")
        assert bt.access(0, "k") == (False, 0.0)

    def test_cross_core_bounces_with_transfer(self):
        bt = BounceTracker(transfer_ns=70)
        bt.access(0, "k")
        bounced, stall = bt.access(1, "k")
        assert bounced and stall == 70

    def test_ping_pong_counts_every_bounce(self):
        bt = BounceTracker()
        for i in range(10):
            bt.access(i % 2, "k")
        assert bt.bounces == 9
        assert bt.accesses == 10

    def test_forget_clears_ownership(self):
        bt = BounceTracker()
        bt.access(0, "k")
        bt.forget("k")
        assert bt.access(1, "k") == (False, 0.0)

    def test_reset(self):
        bt = BounceTracker()
        bt.access(0, "k")
        bt.access(1, "k")
        bt.reset()
        assert bt.bounces == 0 and bt.accesses == 0


class TestSerializationTable:
    def test_uncontended_no_wait(self):
        t = SerializationTable()
        assert t.acquire("k", 100.0, 50.0) == 0.0

    def test_back_to_back_waits(self):
        t = SerializationTable()
        t.acquire("k", 100.0, 50.0)  # free at 150
        assert t.acquire("k", 120.0, 50.0) == 30.0  # waits till 150

    def test_throughput_cap_is_one_over_hold(self):
        """N acquisitions at time 0 serialize: last waits (N-1)*hold."""
        t = SerializationTable()
        waits = [t.acquire("k", 0.0, 70.0) for _ in range(10)]
        assert waits[-1] == pytest.approx(9 * 70.0)

    def test_distinct_keys_independent(self):
        t = SerializationTable()
        t.acquire("a", 0.0, 100.0)
        assert t.acquire("b", 0.0, 100.0) == 0.0

    def test_contention_ratio(self):
        t = SerializationTable()
        t.acquire("k", 0.0, 50.0)
        t.acquire("k", 10.0, 50.0)
        t.acquire("k", 1000.0, 50.0)
        assert t.contention_ratio == pytest.approx(1 / 3)

    def test_rejects_negative_hold(self):
        with pytest.raises(ValueError):
            SerializationTable().acquire("k", 0.0, -1.0)

    def test_reset(self):
        t = SerializationTable()
        t.acquire("k", 0.0, 50.0)
        t.reset()
        assert t.acquisitions == 0
        assert t.acquire("k", 0.0, 50.0) == 0.0
