"""Table 4 cost parameters and contention constants."""

import pytest

from repro.cpu import CPU_FREQ_GHZ, DEFAULT_CONTENTION, TABLE4_PARAMS
from repro.programs import program_names


def test_table4_values_verbatim():
    """The measured parameters from Appendix A, Table 4 (nanoseconds)."""
    expected = {
        "ddos": (114, 15, 104, 10),
        "heavy_hitter": (145, 15, 110, 35),
        "token_bucket": (156, 21, 104, 53),
        "port_knocking": (107, 18, 97, 11),
        "conntrack": (152, 35, 80, 73),
    }
    for name, (t, c2, d, c1) in expected.items():
        p = TABLE4_PARAMS[name]
        assert (p.t, p.c2, p.d, p.c1) == (t, c2, d, c1)


def test_every_program_has_cost_params():
    for name in program_names():
        assert name in TABLE4_PARAMS


def test_t_approximately_d_plus_c1():
    """Table 4's t is within rounding of d + c1."""
    for p in TABLE4_PARAMS.values():
        assert abs(p.t - (p.d + p.c1)) <= 1.0


def test_c2_smaller_than_c1_for_stateful():
    """The state-transition snippet is a subset of full packet processing."""
    for name, p in TABLE4_PARAMS.items():
        if name == "forwarder":
            continue
        assert p.c2 < p.c1 or name in ("ddos", "port_knocking",
                                       "victim_monitor")
        # For tiny-compute programs c2 can exceed c1 slightly; the paper's
        # own table has c2 > c1 for ddos (15 vs 10) and port knocking, and
        # the victim monitor is the ddos row's per-destination dual.


def test_dispatch_dominates_compute():
    """The premise of Principle #2: d ≫ c2 (paper: t is 4.3-9.4x c2)."""
    for name, p in TABLE4_PARAMS.items():
        if name == "forwarder":
            continue
        assert 4.0 <= p.t / p.c2 <= 10.0


def test_scr_service_formula():
    p = TABLE4_PARAMS["ddos"]
    assert p.scr_service_ns(0) == p.t
    assert p.scr_service_ns(6) == p.t + 6 * p.c2


def test_scr_service_rejects_negative_history():
    with pytest.raises(ValueError):
        TABLE4_PARAMS["ddos"].scr_service_ns(-1)


def test_cpu_frequency_matches_testbed():
    assert CPU_FREQ_GHZ == 3.6


class TestContention:
    def test_uncontended_lock_hold(self):
        hold = DEFAULT_CONTENTION.lock_hold_ns(c1=50, contenders=1)
        assert hold == DEFAULT_CONTENTION.lock_ns + 50

    def test_contended_hold_includes_transfer(self):
        hold = DEFAULT_CONTENTION.lock_hold_ns(c1=50, contenders=2)
        assert hold >= DEFAULT_CONTENTION.lock_ns + 50 + DEFAULT_CONTENTION.line_transfer_ns

    def test_hold_grows_with_contenders(self):
        holds = [DEFAULT_CONTENTION.lock_hold_ns(50, k) for k in range(2, 8)]
        assert holds == sorted(holds)
        assert holds[-1] > holds[0]

    def test_rejects_zero_contenders(self):
        with pytest.raises(ValueError):
            DEFAULT_CONTENTION.lock_hold_ns(50, 0)

    def test_atomic_hold_is_one_transfer(self):
        assert DEFAULT_CONTENTION.atomic_hold_ns() == DEFAULT_CONTENTION.line_transfer_ns
