"""Simulated performance counters (the Fig. 8 metrics)."""

import pytest

from repro.cpu import (
    CPU_FREQ_GHZ,
    INSNS_PER_DISPATCH,
    POLL_IPC,
    CoreCounters,
    SystemCounters,
)


def test_charge_accumulates_buckets():
    c = CoreCounters()
    c.charge_packet(dispatch_ns=100, compute_ns=50, wait_ns=20, transfer_ns=10)
    assert c.packets == 1
    assert c.busy_ns == 180
    assert c.dispatch_ns == 100


def test_program_latency_defaults_to_compute_plus_stalls():
    c = CoreCounters()
    c.charge_packet(dispatch_ns=100, compute_ns=50, wait_ns=20, transfer_ns=10)
    assert c.mean_compute_latency_ns == 80


def test_explicit_program_latency():
    c = CoreCounters()
    c.charge_packet(dispatch_ns=100, compute_ns=50, program_ns=333)
    assert c.mean_compute_latency_ns == 333


def test_l2_hit_ratio():
    c = CoreCounters()
    c.charge_packet(100, 50, state_accesses=1, l2_misses=0)
    c.charge_packet(100, 50, state_accesses=1, l2_misses=1)
    assert c.l2_hit_ratio == pytest.approx(0.5)


def test_l2_hit_ratio_with_no_accesses_is_one():
    assert CoreCounters().l2_hit_ratio == 1.0


def test_ipc_drops_with_stalls():
    fast, slow = CoreCounters(), CoreCounters()
    fast.charge_packet(dispatch_ns=100, compute_ns=50)
    slow.charge_packet(dispatch_ns=100, compute_ns=50, wait_ns=200)
    assert slow.ipc < fast.ipc


def test_instructions_model():
    c = CoreCounters()
    c.charge_packet(dispatch_ns=100, compute_ns=10)
    assert c.instructions == INSNS_PER_DISPATCH + 30


def test_ipc_wall_includes_idle_polling():
    c = CoreCounters()
    c.charge_packet(dispatch_ns=100, compute_ns=0)
    # Core busy 100 ns of a 1000 ns window: the other 900 ns poll at POLL_IPC.
    ipc = c.ipc_wall(1000)
    busy_insns = INSNS_PER_DISPATCH
    expected = (busy_insns + 900 * CPU_FREQ_GHZ * POLL_IPC) / (1000 * CPU_FREQ_GHZ)
    assert ipc == pytest.approx(expected)


def test_idle_core_wall_ipc_is_poll_rate():
    assert CoreCounters().ipc_wall(1000) == pytest.approx(POLL_IPC)


def test_busy_core_higher_wall_ipc_than_idle():
    busy, idle = CoreCounters(), CoreCounters()
    for _ in range(9):
        busy.charge_packet(dispatch_ns=100, compute_ns=10)
    assert busy.ipc_wall(1000) > idle.ipc_wall(1000)


class TestSystemCounters:
    def make(self):
        sc = SystemCounters(cores=[CoreCounters(core_id=i) for i in range(3)])
        sc.cores[0].charge_packet(100, 50)
        sc.cores[1].charge_packet(100, 50, wait_ns=300)
        return sc

    def test_mean_ipc_over_active_cores(self):
        sc = self.make()
        assert 0 < sc.mean_ipc() < 2

    def test_min_max_spread(self):
        sc = self.make()
        lo, hi = sc.ipc_min_max()
        assert lo < hi

    def test_wall_variants_include_idle_core(self):
        sc = self.make()
        lo, hi = sc.ipc_wall_min_max(10_000)
        assert lo == pytest.approx(POLL_IPC, rel=0.2)
        assert sc.mean_ipc_wall(10_000) > 0

    def test_total_packets(self):
        assert self.make().total_packets() == 2

    def test_mean_latency(self):
        sc = self.make()
        # core 0: 50, core 1: 350 → mean 200
        assert sc.mean_compute_latency_ns() == pytest.approx(200)

    def test_empty_system(self):
        sc = SystemCounters()
        assert sc.mean_ipc() == 0.0
        assert sc.mean_l2_hit_ratio() == 1.0
