"""FaultPlan injection through the discrete-event simulator."""

import pytest

from repro.cpu import simulate
from repro.faults import FaultPlan, FaultSpec

from .test_simulator import FixedServiceEngine, make_perf_trace


@pytest.fixture(scope="module")
def perf_trace():
    return make_perf_trace(n=2000)


def _run(perf_trace, spec, num_cores=2, rate=2e6, **kwargs):
    engine = FixedServiceEngine(num_cores, service_ns=100)
    return simulate(perf_trace, rate, engine,
                    faults=FaultPlan(spec), **kwargs)


class TestInjection:
    def test_clean_plan_reports_no_fault_stats(self, perf_trace):
        res = _run(perf_trace, FaultSpec.create())
        assert res.fault_stats is None

    def test_drops_become_loss(self, perf_trace):
        res = _run(perf_trace, FaultSpec.create(seed=7, drop_rate=0.05))
        clean = simulate(perf_trace, 2e6, FixedServiceEngine(2, 100))
        assert res.fault_stats["fault_dropped"] > 0
        assert res.processed < clean.processed
        assert res.loss_fraction > clean.loss_fraction

    def test_pop_drops_and_duplicates_fire(self, perf_trace):
        res = _run(perf_trace, FaultSpec.create(
            seed=7, pop_drop_rate=0.03, duplicate_rate=0.03))
        assert res.fault_stats["fault_pop_dropped"] > 0
        assert res.fault_stats["fault_duplicated"] > 0
        # A duplicate is dispatched but never counted as forwarded.
        assert res.processed <= res.offered

    def test_reorder_fires(self, perf_trace):
        # Reordering needs ring backlog to swap against, so offer the
        # stream above capacity.
        res = _run(perf_trace, FaultSpec.create(
            seed=7, reorder_rate=0.1, reorder_window=3), rate=30e6)
        assert res.fault_stats["fault_reordered"] > 0

    def test_stalls_add_latency_not_loss_at_low_rate(self, perf_trace):
        spec = FaultSpec.create(core_stalls=[(0, 100, 50_000.0)])
        res = _run(perf_trace, spec, rate=1e6)
        assert res.fault_stats["stalls_fired"] == 1
        assert res.fault_stats["stall_ns_total"] == 50_000.0

    def test_killed_core_abandons_its_ring(self, perf_trace):
        spec = FaultSpec.create(core_kills=[(1, 100)])
        res = _run(perf_trace, spec, num_cores=2, rate=2e6)
        assert res.fault_stats["killed_cores"] == [1]
        # Half the round-robin stream lands on the dead core and is lost.
        assert res.loss_fraction > 0.3
        clean = simulate(perf_trace, 2e6, FixedServiceEngine(2, 100))
        assert res.processed < clean.processed


class TestProbeRateIndependence:
    def test_fault_schedule_keyed_on_index_not_rate(self, perf_trace):
        """The MLFFR invariant: the same packets are dropped at every
        probe rate, so binary search never sees a moving target."""
        spec = FaultSpec.create(seed=7, drop_rate=0.04)
        slow = _run(perf_trace, spec, rate=1e6)
        fast = _run(perf_trace, spec, rate=3e6)
        assert (slow.fault_stats["fault_dropped"]
                == fast.fault_stats["fault_dropped"])

    def test_identical_runs_identical_results(self, perf_trace):
        spec = FaultSpec.create(seed=7, drop_rate=0.03, duplicate_rate=0.02)
        a = _run(perf_trace, spec)
        b = _run(perf_trace, spec)
        assert a.processed == b.processed
        assert a.fault_stats == b.fault_stats
