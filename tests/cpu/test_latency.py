"""Per-packet latency sampling in the simulator."""

import pytest

from repro.cpu import PerfTrace, simulate
from repro.cpu.counters import CoreCounters, SystemCounters
from repro.packet import make_udp_packet
from repro.programs import make_program
from repro.traffic import Trace


class FixedServiceEngine:
    name = "fixed"

    def __init__(self, num_cores, service_ns):
        self.num_cores = num_cores
        self._service = service_ns
        self.counters = SystemCounters()

    def reset(self):
        self.counters.cores = [CoreCounters(core_id=i) for i in range(self.num_cores)]
        self._rr = 0

    def wire_len(self, pp):
        return pp.wire_len

    def steer(self, pp):
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core

    def pre_enqueue(self, pp, core):
        return True

    def service_ns(self, core, pp, start_ns):
        self.counters.cores[core].charge_packet(self._service, 0)
        return self._service


@pytest.fixture(scope="module")
def pt():
    pkts = [make_udp_packet(i % 10 + 1, 2, 3, 4) for i in range(2000)]
    return PerfTrace.from_trace(Trace(pkts).truncated(192), make_program("ddos"))


def test_disabled_by_default(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(1, 100))
    assert res.latency_samples_ns is None
    with pytest.raises(ValueError, match="collect_latency"):
        res.latency_percentile_ns(0.5)


def test_unloaded_latency_equals_service_time(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(2, 100), collect_latency=True)
    assert res.latency_percentile_ns(0.5) == pytest.approx(100)
    assert res.latency_percentile_ns(0.99) == pytest.approx(100)


def test_sample_count_matches_processed(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(2, 100), collect_latency=True)
    assert len(res.latency_samples_ns) == res.processed


def test_queueing_inflates_tail(pt):
    # Deterministic arrivals below capacity never queue (D/D/1); bursts do:
    # the 16th packet of a burst waits 15 service times.
    res = simulate(
        pt, 8e6, FixedServiceEngine(1, 100), burst_size=16, collect_latency=True
    )
    assert res.latency_percentile_ns(0.99) > 5 * res.latency_percentile_ns(0.10)


def test_overload_latency_bounded_by_ring(pt):
    # With a 16-deep ring, worst sojourn ~ 17 service times (+grace).
    res = simulate(
        pt, 100e6, FixedServiceEngine(1, 100),
        ring_capacity=16, collect_latency=True,
    )
    assert res.latency_percentile_ns(1.0) <= 17 * 100 + 1


def test_percentile_validates_q(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(1, 100), collect_latency=True)
    with pytest.raises(ValueError):
        res.latency_percentile_ns(1.5)


def test_more_cores_cut_queueing_latency(pt):
    rate = 9e6
    one = simulate(pt, rate, FixedServiceEngine(1, 100), collect_latency=True)
    four = simulate(pt, rate, FixedServiceEngine(4, 100), collect_latency=True)
    assert four.latency_percentile_ns(0.99) <= one.latency_percentile_ns(0.99)


# -- the log-bucketed histogram view (repro.telemetry) ---------------------------


def test_histogram_disabled_by_default(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(1, 100))
    assert res.latency_histogram is None
    with pytest.raises(ValueError, match="collect_latency"):
        res.latency_percentiles_ns()


def test_histogram_tracks_samples(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(2, 100), collect_latency=True)
    assert res.latency_histogram.count == res.processed
    # Bucketed percentiles stay within the buckets' ~9 % relative error of
    # the exact (sorted-samples) answer.
    assert res.latency_p50_ns == pytest.approx(
        res.latency_percentile_ns(0.5), rel=0.10
    )
    assert res.latency_p99_ns == pytest.approx(
        res.latency_percentile_ns(0.99), rel=0.10
    )


def test_histogram_percentile_properties_ordered(pt):
    res = simulate(
        pt, 8e6, FixedServiceEngine(1, 100), burst_size=16, collect_latency=True
    )
    assert (res.latency_p50_ns <= res.latency_p90_ns
            <= res.latency_p99_ns <= res.latency_p999_ns)


def test_histogram_percentiles_dict_keys(pt):
    res = simulate(pt, 1e6, FixedServiceEngine(1, 100), collect_latency=True)
    assert set(res.latency_percentiles_ns()) == {"p50", "p90", "p99", "p99_9"}
