"""Columnar hot path vs the scalar event loop: bit-identical or nothing.

The scalar loop in ``repro.cpu.simulator`` is the reference oracle; the
columnar driver in ``repro.cpu.columnar`` must reproduce every observable
of every run it claims — SimResult fields, counters, per-core packet
counts, latency samples and histogram state — *exactly*, across the whole
program zoo, every eligible technique, underload and overload, clean and
faulted, serial and multi-process.  Anything less falls back.
"""

import numpy as np
import pytest

from repro.cpu import PerfTrace, simulate
from repro.cpu.columnar import resolve_hotpath, use_hotpath
from repro.faults import FaultPlan, FaultSpec
from repro.parallel import COLUMNAR_TECHNIQUES, TECHNIQUES, make_engine
from repro.programs import make_program, program_names
from repro.scenario import Scenario, ScenarioExecutor, build_perf_trace, scenario_grid
from repro.telemetry import EventTracer

_TRACE_KW = dict(num_flows=12, max_packets=500)

#: Under 4-core SCR capacity for every program / comfortably above it.
_UNDERLOAD_PPS = 2e6
_OVERLOAD_PPS = 4e7


def _perf_trace(program):
    return build_perf_trace(
        Scenario.create(program, "univ_dc", "scr", 1, **_TRACE_KW))


@pytest.fixture(scope="module")
def traces():
    return {name: _perf_trace(name) for name in program_names()}


def _state_of(obj):
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return d
    return {s: getattr(obj, s) for s in type(obj).__slots__}


def _assert_deep_equal(a, b, path=""):
    """Field-wise bitwise equality for SimResult and everything hanging
    off it (counters, histograms, numpy arrays, floats compared by ==)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b)), path
        return
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), path
        for k in a:
            _assert_deep_equal(a[k], b[k], f"{path}.{k}")
        return
    if isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_deep_equal(x, y, f"{path}[{i}]")
        return
    if isinstance(a, (int, float, str, bool, bytes, type(None))):
        assert a == b, f"{path}: {a!r} != {b!r}"
        return
    assert type(a) is type(b), path
    _assert_deep_equal(_state_of(a), _state_of(b), path)


def _run_pair(trace, technique, cores=4, rate=_UNDERLOAD_PPS, engine_kw=None,
              **sim_kw):
    program = make_program(trace.program_name)
    out = []
    for mode in ("scalar", "columnar"):
        engine = make_engine(technique, program, cores, **(engine_kw or {}))
        with use_hotpath(mode):
            out.append(simulate(trace, rate, engine, **sim_kw))
    return out


class TestResolveHotpath:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOTPATH", raising=False)
        assert resolve_hotpath() == "columnar"

    def test_explicit_beats_env(self):
        with use_hotpath("columnar"):
            assert resolve_hotpath("scalar") == "scalar"

    def test_env_var(self):
        with use_hotpath("scalar"):
            assert resolve_hotpath() == "scalar"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_hotpath("vectorized")
        with pytest.raises(ValueError):
            use_hotpath("vectorized").__enter__()


class TestProgramZooParity:
    """All 12 programs x every columnar-eligible technique x both load
    regimes: SimResult (with counters, latency, histogram) bit-identical."""

    @pytest.mark.parametrize("program", program_names())
    @pytest.mark.parametrize("technique", COLUMNAR_TECHNIQUES)
    @pytest.mark.parametrize("rate", [_UNDERLOAD_PPS, _OVERLOAD_PPS])
    def test_parity(self, traces, program, technique, rate):
        scalar, columnar = _run_pair(
            traces[program], technique, rate=rate,
            grace_fraction=0.1, collect_latency=True)
        _assert_deep_equal(scalar, columnar, f"{program}/{technique}")

    @pytest.mark.parametrize("technique", [t for t in TECHNIQUES
                                           if t not in COLUMNAR_TECHNIQUES])
    def test_ineligible_techniques_unaffected(self, traces, technique):
        """shared / rss++ always run the scalar loop; the dispatch layer
        must be a no-op for them."""
        scalar, columnar = _run_pair(
            traces["ddos"], technique, collect_latency=True)
        _assert_deep_equal(scalar, columnar, technique)


class TestVariantParity:
    def test_bursts_and_grace(self, traces):
        scalar, columnar = _run_pair(
            traces["heavy_hitter"], "scr", burst_size=4,
            grace_fraction=0.2, grace_min_ns=5_000.0, collect_latency=True)
        _assert_deep_equal(scalar, columnar)

    def test_scr_with_recovery_logging(self, traces):
        scalar, columnar = _run_pair(
            traces["token_bucket"], "scr",
            engine_kw=dict(with_recovery=True), collect_latency=True)
        _assert_deep_equal(scalar, columnar)

    def test_scr_in_frame_history(self, traces):
        scalar, columnar = _run_pair(
            traces["ddos"], "scr",
            engine_kw=dict(count_wire_overhead=False), collect_latency=True)
        _assert_deep_equal(scalar, columnar)

    def test_relaxed_scr_keeps_pruned_history(self, traces):
        scalar, columnar = _run_pair(
            traces["ddos"], "relaxed_scr", cores=7, collect_latency=True)
        _assert_deep_equal(scalar, columnar)

    def test_single_core(self, traces):
        scalar, columnar = _run_pair(
            traces["conntrack"], "scr", cores=1, collect_latency=True)
        _assert_deep_equal(scalar, columnar)


class TestFallbackPaths:
    def test_faults_fall_back_and_match(self, traces):
        """A fault plan forces the scalar loop; both modes must agree
        (they run the same code) and report fault stats."""
        plan_kw = dict(faults=FaultPlan(FaultSpec.create(seed=3, drop_rate=0.05)))
        scalar, columnar = _run_pair(traces["ddos"], "scr",
                                     collect_latency=True, **plan_kw)
        assert columnar.fault_stats is not None
        assert columnar.fault_stats["fault_dropped"] > 0
        _assert_deep_equal(scalar, columnar)

    def test_tracer_falls_back_with_identical_events(self, traces):
        """Per-packet telemetry is scalar-only; the event stream must not
        depend on the requested mode."""
        streams = []
        program = make_program("ddos")
        for mode in ("scalar", "columnar"):
            tracer = EventTracer()
            engine = make_engine("scr", program, 4, tracer=tracer)
            with use_hotpath(mode):
                simulate(traces["ddos"], _UNDERLOAD_PPS, engine, tracer=tracer)
            streams.append([e.to_dict() for e in tracer.events()])
        assert streams[0] == streams[1]
        assert len(streams[0]) > 0

    def test_overload_drops_fall_back_and_match(self, traces):
        """Above MLFFR the rings back up and packets drop — speculation
        fails, the event loop answers, and results still match."""
        scalar, columnar = _run_pair(
            traces["ddos"], "scr", rate=2e8, collect_latency=True)
        assert scalar.wire_dropped + scalar.ring_dropped > 0
        _assert_deep_equal(scalar, columnar)

    def test_loss_rate_disqualifies_scr(self, traces):
        scalar, columnar = _run_pair(
            traces["ddos"], "scr",
            engine_kw=dict(loss_rate=0.01, with_recovery=True))
        _assert_deep_equal(scalar, columnar)


class TestMlffrParity:
    @pytest.mark.parametrize("technique", COLUMNAR_TECHNIQUES)
    def test_search_trajectory_identical(self, traces, technique):
        from repro.bench.mlffr import find_mlffr

        program = make_program("ddos")
        results = []
        for mode in ("scalar", "columnar"):
            engine = make_engine(technique, program, 4)
            with use_hotpath(mode):
                results.append(find_mlffr(traces["ddos"], engine))
        assert results[0].mlffr_pps == results[1].mlffr_pps
        assert results[0].probes == results[1].probes


class TestExecutorParity:
    def test_parallel_columnar_matches_serial_scalar(self):
        """jobs=2 columnar == jobs=1 scalar: worker processes inherit the
        mode via the environment and stay bit-identical."""
        grid = scenario_grid("ddos", "caida", ["scr", "rss"], [1, 2],
                             num_flows=10, max_packets=400)

        def series(results):
            return [(r.scenario.technique, r.scenario.cores,
                     r.mlffr_mpps, r.probes) for r in results]

        with use_hotpath("scalar"):
            serial = ScenarioExecutor(jobs=1).run(grid)
        with use_hotpath("columnar"):
            parallel = ScenarioExecutor(jobs=2).run(grid)
        assert series(serial) == series(parallel)


class TestColumnarTrace:
    """PerfTrace as a struct-of-arrays container."""

    def test_columns_match_records(self, traces):
        pt = traces["ddos"]
        records = pt.records
        assert len(pt) == len(records)
        assert pt.wire_lens.tolist() == [r.wire_len for r in records]
        assert pt.valid.tolist() == [r.valid for r in records]
        assert pt.hash_l4.tolist() == [r.hash_l4 for r in records]
        assert pt.hash_l3.tolist() == [r.hash_l3 for r in records]
        assert pt.hash_sym.tolist() == [r.hash_sym for r in records]
        assert [pt.key_table[i] for i in pt.key_ids.tolist()] == \
            [r.key for r in records]

    def test_columns_are_read_only(self, traces):
        with pytest.raises(ValueError):
            traces["ddos"].key_ids[0] = 7

    def test_unique_keys_lazy_and_cached(self):
        pt = _perf_trace("ddos")
        assert pt._unique_keys is None
        expected = len({r.key for r in pt.records if r.valid})
        assert pt.unique_keys == expected
        assert pt._unique_keys == expected  # memoized

    def test_scalar_and_columnar_lowering_agree(self):
        spec_trace = Scenario.create("conntrack", "caida", "scr", 1,
                                     num_flows=8, max_packets=300)
        from repro.scenario.build import StackBuilder

        builder = StackBuilder(None)
        raw = builder.trace(spec_trace.trace)
        program = make_program("conntrack")
        a = PerfTrace.from_trace(raw, program, hotpath="scalar")
        b = PerfTrace.from_trace(raw, program, hotpath="columnar")
        for col in ("key_ids", "hash_l3", "hash_l4", "hash_sym",
                    "wire_lens", "valid", "touches_global"):
            assert np.array_equal(getattr(a, col), getattr(b, col)), col
        assert a.key_table == b.key_table
