"""BENCH artifact schema: stats helpers, round-trip, provenance."""

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    BenchArtifact,
    BenchPoint,
    BenchSeries,
    bench_filename,
    mad,
    median,
)


class TestStats:
    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_mad(self):
        assert mad([1.0, 2.0, 3.0]) == 1.0
        assert mad([5.0, 5.0, 5.0]) == 0.0

    def test_point_from_reps(self):
        p = BenchPoint.from_reps(4, [10.0, 12.0, 11.0])
        assert p.median == 11.0
        assert p.mad == 1.0
        assert p.reps == [10.0, 12.0, 11.0]


class TestSeries:
    def test_direction_validated(self):
        with pytest.raises(ValueError):
            BenchSeries(name="s", unit="mpps", direction="sideways")

    def test_point_lookup(self):
        s = BenchSeries(name="s", unit="mpps")
        s.points.append(BenchPoint.from_reps(2, [1.0]))
        assert s.point(2).median == 1.0
        assert s.point(99) is None


def make_artifact(name="fig6_scaling", value=10.0):
    art = BenchArtifact.create(
        name,
        config={"program": "ddos"},
        seed_policy={"base_seed": 7, "rep_seeds": [7, 8, 9]},
        programs=["ddos"],
    )
    s = art.add_series(BenchSeries(name="scr", unit="mpps",
                                   noise_floor=0.4))
    s.points.append(BenchPoint.from_reps(1, [value, value]))
    s.points.append(BenchPoint.from_reps(2, [value * 2, value * 2]))
    return art


class TestArtifact:
    def test_schema_and_provenance_stamped(self):
        art = make_artifact()
        assert art.schema == BENCH_SCHEMA
        assert art.python
        assert art.platform
        assert art.created_utc
        # Only the programs in effect carry their Table 4 rows.
        assert set(art.table4_params) == {"ddos"}
        assert art.table4_params["ddos"]["t"] == 114.0
        assert art.seed_policy["rep_seeds"] == [7, 8, 9]

    def test_save_load_round_trip(self, tmp_path):
        art = make_artifact()
        path = art.save(tmp_path)
        assert path.name == bench_filename("fig6_scaling") == \
            "BENCH_fig6_scaling.json"
        loaded = BenchArtifact.load(path)
        assert loaded.to_dict() == art.to_dict()
        assert loaded.series["scr"].points[0].median == 10.0
        assert loaded.series["scr"].noise_floor == 0.4

    def test_artifact_is_valid_json(self, tmp_path):
        path = make_artifact().save(tmp_path)
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert data["series"]["scr"]["points"][0]["x"] == 1

    def test_model_fit_and_profile_round_trip(self, tmp_path):
        art = make_artifact()
        art.model_fit = {"program": "ddos",
                         "residuals": {"1": {"residual": 0.02}}}
        art.profile = {"totals": {"coverage": 1.0}}
        loaded = BenchArtifact.load(art.save(tmp_path))
        assert loaded.model_fit["residuals"]["1"]["residual"] == 0.02
        assert loaded.profile["totals"]["coverage"] == 1.0
