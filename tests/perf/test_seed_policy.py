"""Seed policy: pinned seeds, deterministic synthesis, stable medians."""

from repro.perf.suite import BASE_SEED, SuiteParams
from repro.traffic.distributions import TRACE_DISTRIBUTIONS
from repro.traffic.synthesis import synthesize_trace


def test_suite_seed_matches_benchmarks_pin():
    from benchmarks.conftest import BENCH_BASE_SEED

    assert BASE_SEED == BENCH_BASE_SEED == 7


def test_trace_synthesis_is_seed_deterministic():
    def synth(seed):
        trace = synthesize_trace(TRACE_DISTRIBUTIONS["caida"](), 20,
                                 seed=seed, max_packets=500)
        return [(p.wire_len, p.five_tuple()) for p in trace]

    assert synth(7) == synth(7)
    assert synth(7) != synth(8)


def test_runner_clone_preserves_config_changes_seed():
    from repro.bench.runner import ExperimentRunner

    base = ExperimentRunner(num_flows=12, max_packets=345, seed=BASE_SEED)
    clone = base.clone_with_seed(BASE_SEED + 2)
    assert clone.seed == BASE_SEED + 2
    assert (clone.num_flows, clone.max_packets) == (12, 345)
    # Caches are per-runner: clones never reuse another seed's trace.
    assert clone._traces is not base._traces


def test_repeated_suite_medians_are_identical():
    # The acceptance loop: same code + same seeds -> identical medians.
    params = SuiteParams(reps=2, quick=True)
    runs = []
    for _ in range(2):
        runners = params.runners()
        vals = [r.mlffr_point("ddos", "caida", "scr", 2).mlffr_mpps
                for r in runners]
        runs.append(vals)
    assert runs[0] == runs[1]


def test_artifact_records_seed_policy():
    params = SuiteParams(reps=3, base_seed=BASE_SEED)
    policy = params.seed_policy()
    assert policy["rep_seeds"] == [7, 8, 9]
    assert "base_seed + i" in policy["policy"]
