"""Compare-engine semantics: the noise-aware regression gate."""

import pytest

from repro.perf import (
    BenchArtifact,
    BenchPoint,
    BenchSeries,
    CompareError,
    compare_artifacts,
    compare_paths,
    markdown_report,
)


def artifact(values, name="fig6_scaling", series="scr", mads=None,
             direction="higher_better", noise_floor=0.4):
    """values: {x: median}; mads: {x: mad} (default 0)."""
    art = BenchArtifact.create(name, config={}, seed_policy={})
    s = art.add_series(BenchSeries(name=series, unit="mpps",
                                   direction=direction,
                                   noise_floor=noise_floor))
    for x, v in values.items():
        p = BenchPoint(x=x, median=v, mad=(mads or {}).get(x, 0.0),
                       reps=[v])
        s.points.append(p)
    return art


BASE = {1: 9.0, 2: 16.0, 4: 26.0}


class TestVerdicts:
    def test_identical_is_neutral(self):
        res = compare_artifacts(artifact(BASE), artifact(BASE))
        assert res.verdict == "neutral"
        assert all(p.verdict == "neutral" for p in res.points)

    def test_ten_percent_regression_detected(self):
        worse = {x: v * 0.9 for x, v in BASE.items()}
        res = compare_artifacts(artifact(BASE), artifact(worse))
        assert res.verdict == "regression"
        assert len(res.regressions) == 3

    def test_within_noise_jitter_is_neutral(self):
        # 3 % wiggle under a 5 % relative band: no verdict either way.
        jitter = {x: v * 1.03 for x, v in BASE.items()}
        res = compare_artifacts(artifact(BASE), artifact(jitter))
        assert res.verdict == "neutral"

    def test_mad_widens_the_band(self):
        # An 8 % drop beats the 5 % band but not 3×(mad_old+mad_new).
        worse = {1: 9.0 * 0.92}
        old = artifact({1: 9.0}, mads={1: 0.3})
        new = artifact(worse, mads={1: 0.3})
        res = compare_artifacts(old, new)
        assert res.points[0].verdict == "neutral"
        # With tight MADs the same drop is a regression.
        res = compare_artifacts(artifact({1: 9.0}), artifact(worse))
        assert res.points[0].verdict == "regression"

    def test_noise_floor_absorbs_small_absolute_moves(self):
        # 0.3 Mpps below a 0.4 Mpps floor: neutral even though it is >5 %.
        res = compare_artifacts(artifact({1: 1.0}), artifact({1: 0.7}))
        assert res.points[0].verdict == "neutral"

    def test_improvement_detected(self):
        better = {x: v * 1.2 for x, v in BASE.items()}
        res = compare_artifacts(artifact(BASE), artifact(better))
        assert res.verdict == "improvement"

    def test_lower_better_direction_flips(self):
        old = artifact({1: 1000.0}, direction="lower_better", noise_floor=0.0)
        worse = artifact({1: 1200.0}, direction="lower_better",
                         noise_floor=0.0)
        better = artifact({1: 800.0}, direction="lower_better",
                          noise_floor=0.0)
        assert compare_artifacts(old, worse).verdict == "regression"
        assert compare_artifacts(old, better).verdict == "improvement"


class TestStructuralErrors:
    def test_missing_series_rejected(self):
        new = artifact(BASE)
        del new.series["scr"]
        new.add_series(BenchSeries(name="other", unit="mpps"))
        with pytest.raises(CompareError, match="missing from NEW"):
            compare_artifacts(artifact(BASE), new)

    def test_missing_point_rejected(self):
        new = artifact({1: 9.0, 2: 16.0})  # x=4 dropped
        with pytest.raises(CompareError, match="x=4"):
            compare_artifacts(artifact(BASE), new)

    def test_schema_mismatch_rejected(self):
        new = artifact(BASE)
        new.schema = "scr-repro/bench-artifact/v0"
        with pytest.raises(CompareError, match="schema"):
            compare_artifacts(artifact(BASE), new)
        old = artifact(BASE)
        old.schema = "something/else"
        with pytest.raises(CompareError, match="schema"):
            compare_artifacts(old, artifact(BASE))

    def test_name_mismatch_rejected(self):
        with pytest.raises(CompareError, match="names differ"):
            compare_artifacts(artifact(BASE),
                              artifact(BASE, name="engine_mlffr"))

    def test_extra_series_in_new_reported_not_fatal(self):
        new = artifact(BASE)
        new.add_series(BenchSeries(name="extra", unit="mpps"))
        res = compare_artifacts(artifact(BASE), new)
        assert res.new_series == ["extra"]
        assert res.verdict == "neutral"


class TestComparePaths:
    def test_file_pair(self, tmp_path):
        old = artifact(BASE).save(tmp_path / "old")
        new = artifact(BASE).save(tmp_path / "new")
        results, extra = compare_paths(old, new)
        assert len(results) == 1 and extra == []
        assert results[0].verdict == "neutral"

    def test_directory_pair_with_extra(self, tmp_path):
        artifact(BASE).save(tmp_path / "old")
        artifact(BASE).save(tmp_path / "new")
        artifact(BASE, name="engine_mlffr").save(tmp_path / "new")
        results, extra = compare_paths(tmp_path / "old", tmp_path / "new")
        assert len(results) == 1
        assert extra == ["BENCH_engine_mlffr.json"]

    def test_baseline_without_counterpart_rejected(self, tmp_path):
        artifact(BASE).save(tmp_path / "old")
        (tmp_path / "new").mkdir()
        with pytest.raises(CompareError, match="no counterpart"):
            compare_paths(tmp_path / "old", tmp_path / "new")

    def test_missing_path_rejected(self, tmp_path):
        artifact(BASE).save(tmp_path / "old")
        with pytest.raises(CompareError, match="does not exist"):
            compare_paths(tmp_path / "old", tmp_path / "nope")

    def test_empty_old_directory_rejected(self, tmp_path):
        (tmp_path / "old").mkdir()
        (tmp_path / "new").mkdir()
        with pytest.raises(CompareError, match="no BENCH_"):
            compare_paths(tmp_path / "old", tmp_path / "new")

    def test_mixed_file_and_dir_rejected(self, tmp_path):
        path = artifact(BASE).save(tmp_path / "old")
        (tmp_path / "new").mkdir()
        with pytest.raises(CompareError, match="both"):
            compare_paths(path, tmp_path / "new")


class TestMarkdownReport:
    def test_report_contains_verdicts_and_deltas(self):
        worse = {x: v * 0.9 for x, v in BASE.items()}
        res = compare_artifacts(artifact(BASE), artifact(worse))
        report = markdown_report([res])
        assert "Overall: REGRESSION" in report
        assert "| scr | 1 |" in report
        assert "-10.0%" in report
        assert "regression" in report

    def test_neutral_report(self):
        res = compare_artifacts(artifact(BASE), artifact(BASE))
        report = markdown_report([res], extra_artifacts=["BENCH_x.json"])
        assert "Overall: NEUTRAL" in report
        assert "BENCH_x.json" in report


class TestRunMetadata:
    def test_compare_captures_both_sides(self):
        old, new = artifact(BASE), artifact(BASE)
        old.git_sha, new.git_sha = "a" * 40, "b" * 40
        old.python, new.python = "3.9.1", "3.11.2"
        res = compare_artifacts(old, new)
        assert res.old_meta["git_sha"] == "a" * 40
        assert res.new_meta["git_sha"] == "b" * 40
        assert res.old_meta["python"] == "3.9.1"
        assert res.new_meta["platform"] == new.platform

    def test_markdown_shows_old_and_new_provenance(self):
        old, new = artifact(BASE), artifact(BASE)
        old.git_sha, new.git_sha = "a" * 40, "b" * 40
        old.python, new.python = "3.9.1", "3.11.2"
        report = markdown_report([compare_artifacts(old, new)])
        assert f"**OLD**: `{'a' * 12}`" in report
        assert f"**NEW**: `{'b' * 12}`" in report
        assert "python 3.9.1" in report and "python 3.11.2" in report

    def test_markdown_graceful_without_meta_fields(self):
        # Artifacts predating the python/platform stamp still render.
        old, new = artifact(BASE), artifact(BASE)
        for art in (old, new):
            art.python = art.platform = art.created_utc = ""
        report = markdown_report([compare_artifacts(old, new)])
        assert "**OLD**:" in report and "**NEW**:" in report
