"""Cycle-attribution profiler: coverage, c1/c2 split, model residuals."""

import pytest

from repro.bench.mlffr import find_mlffr
from repro.bench.runner import ExperimentRunner
from repro.cpu.costmodel import TABLE4_PARAMS
from repro.parallel.registry import make_engine
from repro.perf import attribute_result, attribution_from_snapshot, model_residuals
from repro.programs.registry import make_program


def scr_result(cores=4, technique="scr", program="ddos"):
    runner = ExperimentRunner(num_flows=30, max_packets=1000)
    prog = make_program(program)
    perf_trace = runner.perf_trace_for(prog, "caida")
    engine = make_engine(technique, prog, cores,
                         **({"count_wire_overhead": False}
                            if technique == "scr" else {}))
    res = find_mlffr(perf_trace, engine)
    return res.result_at_mlffr


class TestAttribution:
    def test_scr_coverage_complete(self):
        attr = attribute_result(scr_result(cores=4))
        # Acceptance bar is >= 95 %; the built-in engines charge every
        # nanosecond into a bucket, so coverage is exactly 1.
        assert attr.coverage >= 0.95
        assert attr.coverage == pytest.approx(1.0)
        for core in attr.cores:
            assert core.coverage == pytest.approx(1.0)

    def test_scr_history_split(self):
        attr = attribute_result(scr_result(cores=4))
        totals = attr.totals()
        # With 4 cores SCR fast-forwards ~3 history items per packet at
        # c2=15 vs c1=10: history time dominates current compute.
        assert totals["history_ns"] > totals["current_compute_ns"]
        assert totals["dispatch_ns"] > 0
        # history is carved out of compute, never double counted.
        for core in attr.cores:
            assert core.history_ns <= core.busy_ns

    def test_single_core_has_no_history_time(self):
        attr = attribute_result(scr_result(cores=1))
        assert attr.totals()["history_ns"] == 0.0

    def test_shared_engine_charges_contention(self):
        attr = attribute_result(scr_result(cores=4, technique="shared"))
        assert attr.totals()["contention_ns"] > 0
        assert attr.coverage == pytest.approx(1.0)

    def test_utilization_bounded(self):
        attr = attribute_result(scr_result(cores=4))
        assert attr.duration_ns > 0
        for core in attr.cores:
            assert 0.0 <= core.utilization <= 1.0

    def test_snapshot_round_trip_matches_live(self):
        res = scr_result(cores=2)
        live = attribute_result(res)
        via_snapshot = attribution_from_snapshot(res.counters.snapshot(),
                                                 res.duration_ns)
        assert via_snapshot.to_dict() == live.to_dict()

    def test_snapshot_without_history_key_defaults_to_zero(self):
        # Artifacts written before the c1/c2 split still attribute fully.
        snap = {"cores": [{"core_id": 0, "packets": 10, "busy_ns": 100.0,
                           "dispatch_ns": 60.0, "compute_ns": 40.0,
                           "wait_ns": 0.0, "transfer_ns": 0.0}]}
        attr = attribution_from_snapshot(snap, duration_ns=200.0)
        assert attr.cores[0].history_ns == 0.0
        assert attr.cores[0].current_compute_ns == 40.0
        assert attr.coverage == pytest.approx(1.0)

    def test_to_dict_json_safe(self):
        import json

        json.dumps(attribute_result(scr_result(cores=2)).to_dict())


class TestModelResiduals:
    def test_perfect_prediction_zero_residual(self):
        costs = TABLE4_PARAMS["ddos"]
        from repro.bench.model import predicted_scr_mpps

        measured = [(k, predicted_scr_mpps(costs, k)) for k in (1, 2, 4)]
        out = model_residuals("ddos", measured)
        assert set(out) == {"1", "2", "4"}
        for row in out.values():
            assert row["residual"] == pytest.approx(0.0)

    def test_residual_sign_and_magnitude(self):
        from repro.bench.model import predicted_scr_mpps

        costs = TABLE4_PARAMS["ddos"]
        pred = predicted_scr_mpps(costs, 2)
        out = model_residuals("ddos", [(2, pred * 1.1)])
        assert out["2"]["residual"] == pytest.approx(0.1)
        assert out["2"]["predicted_mpps"] == pytest.approx(pred)

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            model_residuals("not_a_program", [(1, 1.0)])
