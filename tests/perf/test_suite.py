"""Suite runs: artifact shape, determinism, acceptance-criteria checks."""

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    SuiteParams,
    compare_artifacts,
    run_suite,
    suite_names,
)


#: One repetition keeps suite tests fast; median-of-1 is the value itself.
PARAMS = SuiteParams(reps=1, quick=True)


def test_suite_names_stable():
    assert suite_names() == [
        "advisor_validation", "engine_mlffr", "faults_recovery",
        "fig11_model_fit", "fig6_scaling", "hostwall", "hotpath",
        "multitenant", "obs_overhead", "tail_latency",
    ]


def test_unknown_suite_rejected():
    with pytest.raises(KeyError, match="unknown bench suite"):
        run_suite("nope", PARAMS)


def test_rep_seeds_derive_from_base():
    p = SuiteParams(reps=3, base_seed=11)
    assert p.rep_seeds == [11, 12, 13]
    assert p.seed_policy()["base_seed"] == 11


@pytest.fixture(scope="module")
def fig11():
    return run_suite("fig11_model_fit", PARAMS)


def test_fig11_artifact_shape(fig11):
    assert fig11.schema == BENCH_SCHEMA
    assert fig11.seed_policy["rep_seeds"] == [7]
    assert "token_bucket" in fig11.table4_params
    scr = fig11.series["scr"]
    assert scr.unit == "mpps"
    assert scr.noise_floor == pytest.approx(0.4)
    assert [p.x for p in scr.points] == [1, 2, 4]
    assert all(p.median > 0 for p in scr.points)


def test_fig11_residuals_reported_per_core_count(fig11):
    residuals = fig11.model_fit["residuals"]
    assert set(residuals) == {"1", "2", "4"}
    for row in residuals.values():
        # Simulator and analytic model agree within the MLFFR window.
        assert abs(row["residual"]) < 0.10
    drift = fig11.series["abs_model_residual"]
    assert drift.direction == "lower_better"
    assert [p.x for p in drift.points] == [1, 2, 4]


def test_fig11_deterministic_repeat_compares_neutral(fig11):
    again = run_suite("fig11_model_fit", PARAMS)
    for name, series in fig11.series.items():
        assert [p.reps for p in again.series[name].points] == \
            [p.reps for p in series.points]
    res = compare_artifacts(fig11, again)
    assert res.verdict == "neutral"


def test_advisor_validation_agreement():
    art = run_suite("advisor_validation", PARAMS)
    agreement = art.series["agreement"]
    assert agreement.unit == "bool"
    # Acceptance: the advisor's pick matches measurement for >= 10 of the
    # 12 registered programs (it currently matches all 12).
    agreed = sum(p.median for p in agreement.points)
    assert agreed >= 10, art.config["predicted"]
    assert len(agreement.points) == len(art.config["predicted"]) == 12
    # Every measured technique series carries real throughput numbers.
    for name in ("scr", "shared"):
        assert all(p.median > 0 for p in art.series[name].points)


def test_fig6_profile_and_residuals():
    art = run_suite("fig6_scaling", PARAMS)
    assert set(art.series) == {"scr", "shared", "rss", "rss++"}
    # Acceptance: >= 95 % of busy time attributed to d/c1/c2/contention.
    totals = art.profile["totals"]
    attributed = (totals["dispatch_ns"] + totals["current_compute_ns"]
                  + totals["history_ns"] + totals["contention_ns"])
    assert attributed / totals["busy_ns"] >= 0.95
    assert totals["coverage"] >= 0.95
    # Acceptance: SCR residual vs Appendix A reported per core count.
    assert set(art.model_fit["residuals"]) == \
        {str(k) for k in art.config["cores"]}
    # SCR still scales in the quick grid (the shape the gate protects).
    scr = {p.x: p.median for p in art.series["scr"].points}
    assert scr[4] > 2.0 * scr[1]


def test_fig6_parallel_identical_to_serial(tmp_path):
    """Acceptance: fig6_scaling with --jobs 4 matches --jobs 1 exactly."""
    serial = run_suite("fig6_scaling", PARAMS)
    par = run_suite(
        "fig6_scaling",
        SuiteParams(reps=1, quick=True, jobs=4,
                    cache_dir=str(tmp_path / "cache")),
    )
    for name, series in serial.series.items():
        assert [(p.x, p.median, p.reps) for p in par.series[name].points] == \
            [(p.x, p.median, p.reps) for p in series.points], name
    assert par.model_fit == serial.model_fit
    assert par.profile == serial.profile


def test_save_uses_bench_naming(tmp_path, fig11):
    path = fig11.save(tmp_path)
    assert path.name == "BENCH_fig11_model_fit.json"
