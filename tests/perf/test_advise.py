"""The measurement-side advisor glue (repro.perf.advise)."""

import pytest

from repro.perf.advise import (
    REPORT_SCHEMA,
    advice_report,
    advise_programs,
    costs_for,
    load_bench_costs,
    measured_techniques,
    program_facts,
    workload_profile,
)
from repro.programs import make_program, program_names
from repro.scenario import StackBuilder, TraceSpec


def test_program_facts_resolve_for_every_registered_program():
    for name in program_names():
        facts = program_facts(name)
        assert facts.program_name == name


def test_costs_prefer_bench_table4_over_builtin():
    row = {"ddos": {"t": 200.0, "c2": 20.0, "d": 180.0, "c1": 20.0}}
    assert costs_for("ddos", row).t == 200.0
    assert costs_for("ddos").t != 200.0  # builtin Table 4 untouched


def test_costs_unknown_program_raises():
    with pytest.raises(KeyError, match="no Table 4"):
        costs_for("mystery")


def test_load_bench_costs_round_trips(tmp_path):
    from repro.perf.artifact import BenchArtifact

    art = BenchArtifact.create("x", config={}, seed_policy={},
                               programs=["ddos"])
    path = art.save(tmp_path)
    table4 = load_bench_costs(str(path))
    assert costs_for("ddos", table4) == costs_for("ddos")


def test_workload_profile_many_flows_spreads_rss():
    prog = make_program("ddos")
    spec = TraceSpec(workload="univ_dc", num_flows=40, max_packets=1500,
                     seed=7, packet_size=192)
    pt = StackBuilder().perf_trace("ddos", spec)
    profile = workload_profile(prog, pt, cores=(1, 2, 4))
    assert 0 < profile.hot_key_share < 1
    assert profile.global_fraction == 0.0
    # With 40 flows the busiest of 4 cores holds less than everything,
    # but at least a perfect quarter.
    assert 0.25 <= profile.rss_share(4) < 1.0


def test_workload_profile_single_flow_pins_one_core():
    prog = make_program("ddos")
    spec = TraceSpec(workload="single-flow", num_flows=1, max_packets=400,
                     seed=7, packet_size=192)
    pt = StackBuilder().perf_trace("ddos", spec)
    profile = workload_profile(prog, pt, cores=(4,))
    assert profile.hot_key_share == 1.0
    assert profile.rss_share(4) == 1.0


def test_measured_techniques_follow_facts():
    # hybrid is advised but not validation-measured (its win is workload-
    # dependent; the multitenant suite gates it on the zipf sweep instead).
    assert measured_techniques(program_facts("ddos")) == (
        "scr", "relaxed_scr", "rss", "shared",
    )
    assert measured_techniques(program_facts("token_bucket")) == (
        "scr", "rss", "shared",
    )
    assert measured_techniques(program_facts("nat")) == ("scr", "shared")


def test_advise_programs_expected_winners():
    """The headline prediction: relaxed SCR exactly for the commutative
    family, strict SCR elsewhere (RSS can't hold the elephant, shared
    state can't scale)."""
    advices = {a.program: a for a in advise_programs()}
    commutative = {"ddos", "victim_monitor", "heavy_hitter", "sampler",
                   "peak_meter", "spreader"}
    for name, advice in advices.items():
        expected = "relaxed_scr" if name in commutative else "scr"
        assert advice.recommended == expected, name


def test_advise_programs_rejects_unknown():
    with pytest.raises(ValueError, match="unknown program"):
        advise_programs(["mystery"])


def test_scr_wins_ties_at_two_cores():
    """At k=2 both SCR flavors fast-forward exactly one history item, so
    they tie — and the tie goes to plain SCR (no relaxation needed)."""
    (advice,) = advise_programs(["ddos"], cores=(1, 2))
    assert advice.recommended == "scr"


def test_advice_report_schema():
    advices = advise_programs(["ddos"], cores=(1, 4))
    report = advice_report(advices, {"workload": "univ_dc"})
    assert report["schema"] == REPORT_SCHEMA
    assert report["recommendations"] == {"ddos": "relaxed_scr"}
    assert report["programs"][0]["decision_cores"] == 4
