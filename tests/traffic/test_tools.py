"""Trace tools: validation, burst shaping, flow sampling."""

import pytest

from repro.packet import TCP_ACK, TCP_SYN, make_tcp_packet, make_udp_packet
from repro.traffic import (
    ParetoFlowSizes,
    Trace,
    burstify,
    sample_flows,
    synthesize_trace,
    validate_trace,
)


@pytest.fixture(scope="module")
def good_trace():
    # no packet cap: every flow runs to completion (SYN..FIN), the §4.1
    # invariant validate_trace checks.
    return synthesize_trace(ParetoFlowSizes(max_packets=100), 15, seed=3)


class TestValidate:
    def test_synthesized_traces_are_valid(self, good_trace):
        assert validate_trace(good_trace).ok

    def test_bidirectional_traces_are_valid(self):
        trace = synthesize_trace(
            ParetoFlowSizes(max_packets=60), 8, seed=4, bidirectional=True
        )
        assert validate_trace(trace, bidirectional=True).ok

    def test_detects_missing_syn(self):
        trace = Trace([make_tcp_packet(1, 2, 3, 4, TCP_ACK)])
        problems = validate_trace(trace)
        assert not problems.ok
        assert len(problems.flows_not_starting_with_syn) == 1

    def test_detects_missing_fin(self):
        trace = Trace([make_tcp_packet(1, 2, 3, 4, TCP_SYN)])
        problems = validate_trace(trace)
        assert len(problems.flows_not_ending_with_fin) == 1

    def test_detects_time_disorder(self):
        trace = Trace([
            make_udp_packet(1, 2, 3, 4, timestamp_ns=100),
            make_udp_packet(1, 2, 3, 4, timestamp_ns=50),
        ])
        assert validate_trace(trace).out_of_order == 1

    def test_non_tcp_ignored_for_flags(self):
        trace = Trace([make_udp_packet(1, 2, 3, 4)])
        assert validate_trace(trace).ok

    def test_truncated_trace_caps_still_validate(self, good_trace):
        """max_packets can cut flows mid-life; validate reports it."""
        cut = Trace(good_trace.packets[: len(good_trace) // 2])
        problems = validate_trace(cut)
        assert problems.flows_not_ending_with_fin  # some flows were cut


class TestBurstify:
    def test_groups_into_bursts(self, good_trace):
        bursty = burstify(good_trace, burst_size=16, burst_gap_ns=100_000,
                          intra_burst_gap_ns=10)
        ts = [p.timestamp_ns for p in bursty]
        # within a burst: tiny gaps; between bursts: the big one
        assert ts[1] - ts[0] == 10
        assert ts[16] - ts[15] == 100_000

    def test_preserves_order_and_count(self, good_trace):
        bursty = burstify(good_trace, burst_size=8)
        assert len(bursty) == len(good_trace)
        assert [p.five_tuple() for p in bursty] == [
            p.five_tuple() for p in good_trace
        ]

    def test_timestamps_monotone(self, good_trace):
        ts = [p.timestamp_ns for p in burstify(good_trace, burst_size=4)]
        assert ts == sorted(ts)

    def test_original_untouched(self, good_trace):
        before = [p.timestamp_ns for p in good_trace]
        burstify(good_trace, burst_size=4)
        assert [p.timestamp_ns for p in good_trace] == before

    def test_rejects_bad_burst(self, good_trace):
        with pytest.raises(ValueError):
            burstify(good_trace, burst_size=0)


class TestSampleFlows:
    def test_respects_budget(self, good_trace):
        sampled = sample_flows(good_trace, max_packets=300, seed=1)
        assert len(sampled) <= 300

    def test_keeps_whole_flows(self, good_trace):
        sampled = sample_flows(good_trace, max_packets=300, seed=1)
        orig_sizes = good_trace.flow_sizes()
        for ft, size in sampled.flow_sizes().items():
            assert size == orig_sizes[ft]

    def test_under_budget_returns_everything(self, good_trace):
        sampled = sample_flows(good_trace, max_packets=10**9)
        assert len(sampled) == len(good_trace)

    def test_preserves_skew(self):
        # elephants bounded below the budget so preserving the mix is
        # possible at all (a flow larger than the budget cannot be kept)
        trace = synthesize_trace(
            ParetoFlowSizes(alpha=1.05, max_packets=600), 400, seed=9,
            mean_flow_interarrival_ns=500,
        )
        assert len(trace) > 2100  # the budget must actually bind
        sampled = sample_flows(trace, max_packets=2000, seed=2)
        # heavy-tailed before and after: mean >> median
        import numpy as np

        def skew(t):
            sizes = list(t.flow_sizes().values())
            return np.mean(sizes) / max(1, np.median(sizes))

        assert skew(trace) > 2
        assert skew(sampled) > 0.4 * skew(trace)

    def test_deterministic(self, good_trace):
        a = sample_flows(good_trace, 300, seed=5)
        b = sample_flows(good_trace, 300, seed=5)
        assert [p.to_bytes() for p in a] == [p.to_bytes() for p in b]

    def test_empty_trace(self):
        assert len(sample_flows(Trace([]), 100)) == 0

    def test_rejects_bad_budget(self, good_trace):
        with pytest.raises(ValueError):
            sample_flows(good_trace, 0)
