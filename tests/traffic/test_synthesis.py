"""Trace synthesis: TCP framing invariants and interleaving."""

import pytest

from repro.packet import TCP_ACK, TCP_FIN, TCP_SYN
from repro.traffic import (
    FlowSpec,
    ParetoFlowSizes,
    flow_packets,
    single_flow_trace,
    synthesize_trace,
    univ_dc_flow_sizes,
)

SPEC = FlowSpec(src_ip=1, dst_ip=2, src_port=10, dst_port=80, data_packets=5, start_ns=0)


class TestFlowPackets:
    def test_unidirectional_starts_syn_ends_fin(self):
        pkts = flow_packets(SPEC, bidirectional=False)
        assert pkts[0].l4.has_flag(TCP_SYN)
        assert pkts[-1].l4.has_flag(TCP_FIN)
        assert not any(p.l4.has_flag(TCP_FIN) for p in pkts[1:-1])

    def test_unidirectional_packet_count(self):
        assert len(flow_packets(SPEC, bidirectional=False)) == 5

    def test_unidirectional_single_direction(self):
        pkts = flow_packets(SPEC, bidirectional=False)
        assert all(p.ip.src == 1 for p in pkts)

    def test_bidirectional_full_exchange(self):
        pkts = flow_packets(SPEC, bidirectional=True)
        # handshake 3 + (data+ack)*5 + teardown 3
        assert len(pkts) == 3 + 10 + 3
        assert pkts[0].l4.flags == TCP_SYN
        assert pkts[1].l4.flags == TCP_SYN | TCP_ACK
        assert pkts[-1].l4.flags == TCP_ACK

    def test_bidirectional_both_directions_present(self):
        pkts = flow_packets(SPEC, bidirectional=True)
        assert any(p.ip.src == 1 for p in pkts)
        assert any(p.ip.src == 2 for p in pkts)

    def test_bidirectional_fins_from_both_sides(self):
        pkts = flow_packets(SPEC, bidirectional=True)
        fins = [p for p in pkts if p.l4.has_flag(TCP_FIN)]
        assert {p.ip.src for p in fins} == {1, 2}

    def test_timestamps_nondecreasing(self):
        pkts = flow_packets(SPEC, bidirectional=True)
        ts = [p.timestamp_ns for p in pkts]
        assert ts == sorted(ts)

    def test_rejects_empty_flow(self):
        bad = FlowSpec(1, 2, 3, 4, data_packets=0, start_ns=0)
        with pytest.raises(ValueError):
            flow_packets(bad)

    def test_data_seq_numbers_advance(self):
        pkts = flow_packets(SPEC, bidirectional=False, payload_size=100)
        seqs = [p.l4.seq for p in pkts]
        assert seqs == sorted(seqs)


class TestSynthesizeTrace:
    def test_every_flow_begins_syn_ends_fin(self):
        """The §4.1 replayability property."""
        trace = synthesize_trace(ParetoFlowSizes(max_packets=50), 10, seed=1)
        by_flow = {}
        for pkt in trace:
            by_flow.setdefault(pkt.five_tuple(), []).append(pkt)
        for pkts in by_flow.values():
            assert pkts[0].l4.has_flag(TCP_SYN)
            assert pkts[-1].l4.has_flag(TCP_FIN)

    def test_globally_time_ordered(self):
        trace = synthesize_trace(univ_dc_flow_sizes(), 20, seed=2, max_packets=1000)
        ts = [p.timestamp_ns for p in trace]
        assert ts == sorted(ts)

    def test_flows_interleave(self):
        """Consecutive packets are not all from one flow — states churn (§4.1)."""
        trace = synthesize_trace(
            univ_dc_flow_sizes(), 20, seed=3,
            mean_flow_interarrival_ns=1000, max_packets=500,
        )
        flows_in_order = [p.five_tuple() for p in trace]
        switches = sum(1 for a, b in zip(flows_in_order, flows_in_order[1:]) if a != b)
        assert switches > len(flows_in_order) / 10

    def test_deterministic_given_seed(self):
        t1 = synthesize_trace(univ_dc_flow_sizes(), 10, seed=4, max_packets=300)
        t2 = synthesize_trace(univ_dc_flow_sizes(), 10, seed=4, max_packets=300)
        assert [p.to_bytes() for p in t1] == [p.to_bytes() for p in t2]

    def test_seed_changes_trace(self):
        t1 = synthesize_trace(univ_dc_flow_sizes(), 10, seed=4, max_packets=300)
        t2 = synthesize_trace(univ_dc_flow_sizes(), 10, seed=5, max_packets=300)
        assert [p.to_bytes() for p in t1] != [p.to_bytes() for p in t2]

    def test_max_packets_cap(self):
        trace = synthesize_trace(univ_dc_flow_sizes(), 30, seed=1, max_packets=123)
        assert len(trace) == 123

    def test_flow_duration_normalizes_elephant_rate(self):
        """With flow_duration_ns, big flows send faster — in-window share
        tracks size share (what keeps synthesized windows skewed)."""
        trace = synthesize_trace(
            univ_dc_flow_sizes(), 30, seed=7,
            mean_flow_interarrival_ns=3000, flow_duration_ns=200_000,
            max_packets=2000,
        )
        stats = trace.stats()
        assert stats.top_flow_share > 0.2

    def test_bidirectional_flag_produces_two_sided_flows(self):
        trace = synthesize_trace(
            univ_dc_flow_sizes(), 5, seed=8, bidirectional=True, max_packets=400
        )
        uni = trace.stats(bidirectional=False).flows
        bidi = trace.stats(bidirectional=True).flows
        assert uni == 2 * bidi

    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            synthesize_trace(univ_dc_flow_sizes(), 0)


class TestLazyFlowAdmission:
    """The heap merge admits flows lazily; semantics must not change."""

    def test_merged_trace_is_time_ordered(self):
        trace = synthesize_trace(univ_dc_flow_sizes(), 300, seed=3,
                                 max_packets=2000)
        stamps = [p.timestamp_ns for p in trace]
        assert stamps == sorted(stamps)

    def test_deterministic_across_runs(self):
        a = synthesize_trace(univ_dc_flow_sizes(), 200, seed=9,
                             max_packets=1000)
        b = synthesize_trace(univ_dc_flow_sizes(), 200, seed=9,
                             max_packets=1000)
        assert [p.to_bytes() for p in a] == [p.to_bytes() for p in b]
        assert [p.timestamp_ns for p in a] == [p.timestamp_ns for p in b]

    def test_max_packets_cap_is_exact(self):
        trace = synthesize_trace(univ_dc_flow_sizes(), 500, seed=1,
                                 max_packets=777)
        assert len(trace) == 777

    def test_huge_flow_spec_truncated_cheaply(self):
        """A million-flow spec capped at a small window must not pay for
        the flows past the cap (the lazy-admission point)."""
        import time
        t0 = time.perf_counter()
        trace = synthesize_trace(univ_dc_flow_sizes(), 1_000_000, seed=7,
                                 max_packets=500)
        assert len(trace) == 500
        # Eager materialization took minutes; lazy admission is seconds
        # even on a slow machine (sampling 10^6 flow sizes dominates).
        assert time.perf_counter() - t0 < 60


class TestSingleFlowTrace:
    def test_single_connection(self, elephant_trace):
        assert elephant_trace.stats(bidirectional=True).flows == 1

    def test_packet_count_bidirectional(self):
        trace = single_flow_trace(100, bidirectional=True)
        assert len(trace) == 3 + 200 + 3

    def test_unidirectional_variant(self):
        trace = single_flow_trace(100, bidirectional=False)
        assert len(trace) == 100
        assert trace.stats(bidirectional=False).flows == 1

    def test_rejects_zero_packets(self):
        with pytest.raises(ValueError):
            single_flow_trace(0)
