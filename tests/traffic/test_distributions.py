"""Flow-size distributions: CDF math and sampler behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    TRACE_DISTRIBUTIONS,
    EmpiricalCDF,
    LognormalFlowSizes,
    ParetoFlowSizes,
    ZipfFlowSizes,
    caida_backbone_flow_sizes,
    hyperscalar_dc_flow_sizes,
    univ_dc_flow_sizes,
)


class TestEmpiricalCDF:
    def setup_method(self):
        self.cdf = EmpiricalCDF([(10, 0.2), (100, 0.6), (1000, 1.0)])

    def test_cdf_at_anchor_points(self):
        assert self.cdf.cdf(10) == pytest.approx(0.2)
        assert self.cdf.cdf(100) == pytest.approx(0.6)
        assert self.cdf.cdf(1000) == pytest.approx(1.0)

    def test_cdf_clamps_outside_range(self):
        assert self.cdf.cdf(1) == pytest.approx(0.2)
        assert self.cdf.cdf(10_000) == 1.0

    def test_quantile_inverts_cdf(self):
        for u in (0.25, 0.4, 0.6, 0.9):
            assert self.cdf.cdf(self.cdf.quantile(u)) == pytest.approx(u, abs=1e-9)

    def test_quantile_below_first_prob_returns_min(self):
        assert self.cdf.quantile(0.1) == pytest.approx(10)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            self.cdf.quantile(1.5)

    @pytest.mark.parametrize("points", [
        [(10, 0.5)],  # too few
        [(10, 0.5), (5, 1.0)],  # not increasing values
        [(10, 0.9), (20, 0.1)],  # decreasing probs
        [(10, 0.5), (20, 0.9)],  # doesn't end at 1
        [(0, 0.5), (20, 1.0)],  # non-positive value
    ])
    def test_rejects_malformed_points(self, points):
        with pytest.raises(ValueError):
            EmpiricalCDF(points)

    def test_sampling_respects_bounds(self):
        rng = np.random.default_rng(0)
        samples = self.cdf.sample(rng, 500)
        assert all(10 <= s <= 1000 for s in samples)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_monotone(self, u):
        lower = self.cdf.quantile(max(0.0, u - 0.05))
        assert self.cdf.quantile(u) >= lower - 1e-9


class TestEvaluationWorkloads:
    @pytest.mark.parametrize("factory", sorted(TRACE_DISTRIBUTIONS))
    def test_samplers_produce_positive_packet_counts(self, factory):
        dist = TRACE_DISTRIBUTIONS[factory]()
        sizes = dist.sample_packets(np.random.default_rng(1), 200)
        assert len(sizes) == 200
        assert all(s >= 1 for s in sizes)

    @pytest.mark.parametrize("factory", sorted(TRACE_DISTRIBUTIONS))
    def test_cdf_series_monotone(self, factory):
        xs, ys = TRACE_DISTRIBUTIONS[factory]().cdf_series()
        assert xs == sorted(xs)
        assert all(b >= a - 1e-12 for a, b in zip(ys, ys[1:]))
        assert ys[-1] == pytest.approx(1.0, abs=1e-6)

    def test_workloads_are_heavy_tailed(self):
        """Mean far above median — the skew every claim rests on (Fig. 5)."""
        rng = np.random.default_rng(2)
        for factory in (univ_dc_flow_sizes, caida_backbone_flow_sizes,
                        hyperscalar_dc_flow_sizes):
            sizes = factory().sample_packets(rng, 2000)
            assert np.mean(sizes) > 2 * np.median(sizes)

    def test_hyperscalar_flows_are_bigger_than_caida(self):
        rng = np.random.default_rng(3)
        hyper = hyperscalar_dc_flow_sizes().sample_packets(rng, 1000)
        caida = caida_backbone_flow_sizes().sample_packets(rng, 1000)
        assert np.median(hyper) > np.median(caida)


class TestPrimitives:
    def test_pareto_bounds(self):
        dist = ParetoFlowSizes(alpha=1.1, min_packets=2, max_packets=500)
        sizes = dist.sample_packets(np.random.default_rng(0), 1000)
        assert all(2 <= s <= 500 for s in sizes)

    def test_pareto_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ParetoFlowSizes(alpha=0)
        with pytest.raises(ValueError):
            ParetoFlowSizes(min_packets=10, max_packets=5)

    def test_lognormal_bounds(self):
        dist = LognormalFlowSizes(max_packets=100)
        sizes = dist.sample_packets(np.random.default_rng(0), 500)
        assert all(1 <= s <= 100 for s in sizes)

    def test_zipf_is_deterministic_total(self):
        dist = ZipfFlowSizes(exponent=1.0, total_packets=10_000)
        s1 = dist.sample_packets(np.random.default_rng(5), 20)
        s2 = dist.sample_packets(np.random.default_rng(5), 20)
        assert sorted(s1) == sorted(s2)

    def test_zipf_has_one_dominant_flow(self):
        dist = ZipfFlowSizes(exponent=1.2, total_packets=10_000)
        sizes = sorted(dist.sample_packets(np.random.default_rng(0), 50))
        # rank-1 vs rank-2 ratio is 2^s ≈ 2.3 for s=1.2
        assert sizes[-1] > 2 * sizes[-2]

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            ZipfFlowSizes(exponent=-1)

    def test_zipf_per_flow_budget_scales_with_flow_count(self):
        dist = ZipfFlowSizes(exponent=1.1, packets_per_flow=50)
        small = dist.sample_packets(np.random.default_rng(0), 100)
        large = dist.sample_packets(np.random.default_rng(0), 10_000)
        assert sum(small) >= 50 * 100 * 0.9
        assert sum(large) >= 50 * 10_000 * 0.9
        # The elephant share survives the flow-count change: the rank-1
        # flow keeps roughly the same *fraction* of the total.
        assert max(large) / sum(large) > 0.3 * max(small) / sum(small)

    def test_zipf_registered_as_trace_distribution(self):
        dist = TRACE_DISTRIBUTIONS["zipf"]()
        assert isinstance(dist, ZipfFlowSizes)
        assert dist.packets_per_flow == 50

    def test_cdf_series_of_primitives_monotone(self):
        for dist in (ParetoFlowSizes(), LognormalFlowSizes(), ZipfFlowSizes()):
            xs, ys = dist.cdf_series(points=30)
            assert all(b >= a - 1e-9 for a, b in zip(ys, ys[1:]))
