"""Rate-controlled replay."""

import pytest

from repro.packet import make_udp_packet
from repro.traffic import Replayer, Trace, replay_at_rate


@pytest.fixture
def trace():
    return Trace([make_udp_packet(1, 2, 3, 4, timestamp_ns=i * 777) for i in range(10)])


def test_rate_sets_even_spacing(trace):
    out = replay_at_rate(trace, rate_pps=1e6)  # 1000 ns apart
    ts = [p.timestamp_ns for p in out]
    assert ts == [i * 1000 for i in range(10)]


def test_original_trace_unmodified(trace):
    replay_at_rate(trace, rate_pps=1e6)
    assert trace[1].timestamp_ns == 777


def test_order_preserved(trace):
    out = replay_at_rate(trace, rate_pps=5e6)
    assert [p.five_tuple() for p in out] == [p.five_tuple() for p in trace]


def test_burst_mode_groups_timestamps(trace):
    out = replay_at_rate(trace, rate_pps=1e6, burst_size=4)
    ts = [p.timestamp_ns for p in out]
    assert ts[0] == ts[1] == ts[2] == ts[3] == 0
    assert ts[4] == ts[7] == 4000  # next burst at mean-rate spacing
    assert ts[8] == 8000


def test_burst_preserves_long_run_rate(trace):
    out = replay_at_rate(trace, rate_pps=2e6, burst_size=2)
    # 10 packets at 2 Mpps → last burst starts at 4 * 2 * 500 = 4000 ns
    assert out[-1].timestamp_ns == 4000


def test_loop_count_repeats_trace(trace):
    r = Replayer(trace, loop_count=3)
    out = list(r.offered_packets(1e6))
    assert len(out) == 30
    assert r.total_packets() == 30
    ts = [p.timestamp_ns for p in out]
    assert ts == sorted(ts)


def test_rejects_bad_rate(trace):
    with pytest.raises(ValueError):
        replay_at_rate(trace, rate_pps=0)


def test_rejects_bad_burst(trace):
    with pytest.raises(ValueError):
        replay_at_rate(trace, 1e6, burst_size=0)


def test_rejects_bad_loop_count(trace):
    with pytest.raises(ValueError):
        Replayer(trace, loop_count=0)
