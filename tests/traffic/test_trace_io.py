"""Trace container, SCRT binary format, and pcap interop."""

import struct

import pytest

from repro.packet import TCP_SYN, make_tcp_packet, make_udp_packet
from repro.traffic import Trace, read_pcap, write_pcap


@pytest.fixture
def trace():
    pkts = [
        make_tcp_packet(1, 2, 3, 4, TCP_SYN, timestamp_ns=100, payload=b"a" * 20),
        make_udp_packet(5, 6, 7, 8, payload=b"bb", timestamp_ns=250),
        make_tcp_packet(1, 2, 3, 4, TCP_SYN, timestamp_ns=999),
    ]
    return Trace(pkts, name="t")


class TestTrace:
    def test_len_iter_getitem(self, trace):
        assert len(trace) == 3
        assert list(trace)[1].is_udp
        assert trace[0].timestamp_ns == 100

    def test_flow_sizes(self, trace):
        sizes = trace.flow_sizes()
        assert sizes[trace[0].five_tuple()] == 2

    def test_stats(self, trace):
        st = trace.stats()
        assert st.packets == 3
        assert st.flows == 2
        assert st.max_flow_packets == 2
        assert st.duration_ns == 899
        assert st.top_flow_share == pytest.approx(2 / 3)

    def test_empty_trace_stats(self):
        st = Trace().stats()
        assert st.packets == 0 and st.flows == 0 and st.top_flow_share == 0.0

    def test_truncated_applies_to_all(self, trace):
        t = trace.truncated(64)
        assert all(p.wire_len == 64 for p in t)
        assert len(t) == 3

    def test_sort_by_time(self):
        t = Trace([
            make_udp_packet(1, 2, 3, 4, timestamp_ns=500),
            make_udp_packet(1, 2, 3, 4, timestamp_ns=100),
        ])
        t.sort_by_time()
        assert [p.timestamp_ns for p in t] == [100, 500]


class TestScrtFormat:
    def test_save_load_roundtrip(self, trace, tmp_path):
        path = tmp_path / "x.scrt"
        trace.save(path)
        back = Trace.load(path)
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a.to_bytes() == b.to_bytes()
            assert a.timestamp_ns == b.timestamp_ns
            assert a.wire_len == b.wire_len

    def test_truncated_wire_len_preserved(self, trace, tmp_path):
        path = tmp_path / "x.scrt"
        trace.truncated(192).save(path)
        back = Trace.load(path)
        assert all(p.wire_len == 192 for p in back)

    def test_load_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.scrt"
        path.write_bytes(b"XXXX" + b"\x00" * 20)
        with pytest.raises(ValueError, match="not an SCRT"):
            Trace.load(path)

    def test_load_rejects_truncated_file(self, trace, tmp_path):
        path = tmp_path / "x.scrt"
        trace.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(ValueError, match="truncated"):
            Trace.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v.scrt"
        path.write_bytes(struct.pack("!4sHI", b"SCRT", 99, 0))
        with pytest.raises(ValueError, match="version"):
            Trace.load(path)


class TestPcap:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "x.pcap"
        write_pcap(trace, path)
        back = read_pcap(path)
        assert len(back) == len(trace)
        for a, b in zip(trace, back):
            assert a.to_bytes() == b.to_bytes()
            assert a.wire_len == b.wire_len

    def test_timestamps_preserved_to_microseconds(self, tmp_path):
        t = Trace([make_udp_packet(1, 2, 3, 4, timestamp_ns=3_000_001_000)])
        path = tmp_path / "ts.pcap"
        write_pcap(t, path)
        assert read_pcap(path)[0].timestamp_ns == 3_000_001_000

    def test_global_header_magic(self, trace, tmp_path):
        path = tmp_path / "x.pcap"
        write_pcap(trace, path)
        assert path.read_bytes()[:4] == b"\xd4\xc3\xb2\xa1"

    def test_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "no.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(ValueError, match="not a classic pcap"):
            read_pcap(path)

    def test_rejects_truncated_record(self, trace, tmp_path):
        path = tmp_path / "x.pcap"
        write_pcap(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 3])
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(path)
