"""Behavioural sequencer: spraying, history alignment, overheads."""

import pytest

from repro.core import ScrPacketCodec
from repro.packet import make_udp_packet
from repro.programs import make_program
from repro.sequencer import PacketHistorySequencer


def pkt(src, ts=0):
    return make_udp_packet(src, 2, 3, 4, timestamp_ns=ts)


def test_round_robin_spray():
    seq = PacketHistorySequencer(make_program("ddos"), 3)
    cores = [seq.process(pkt(i)).core for i in range(7)]
    assert cores == [0, 1, 2, 0, 1, 2, 0]


def test_sequence_numbers_increment_from_one():
    seq = PacketHistorySequencer(make_program("ddos"), 2)
    assert [seq.process(pkt(1)).seq for _ in range(3)] == [1, 2, 3]
    assert seq.next_seq == 4


def test_slots_default_to_core_count():
    seq = PacketHistorySequencer(make_program("ddos"), 5)
    assert seq.num_slots == 5


def test_history_holds_previous_packets_not_current():
    """The ring dump reflects the state before the current packet (§3.3.2)."""
    prog = make_program("ddos")
    seq = PacketHistorySequencer(prog, 2)
    seq.process(pkt(0xAA))
    sp = seq.process(pkt(0xBB))
    _, rows, original = seq.codec.decode(sp.data)
    metas = [prog.metadata_cls.unpack(r) for r in rows]
    assert metas[-1].src_ip == 0xAA  # newest history row = previous packet
    assert 0xBB not in [m.src_ip for m in metas]


def test_history_rows_chronological_alignment():
    """Row m of packet seq j holds sequence j - num_slots + m."""
    prog = make_program("ddos")
    seq = PacketHistorySequencer(prog, 3)
    srcs = [0x10, 0x20, 0x30, 0x40, 0x50]
    packets = [seq.process(pkt(s)) for s in srcs]
    _, rows, _ = seq.codec.decode(packets[4].data)  # seq 5
    metas = [prog.metadata_cls.unpack(r).src_ip for r in rows]
    assert metas == [0x20, 0x30, 0x40]  # seqs 2, 3, 4


def test_timestamp_stamped_into_header():
    seq = PacketHistorySequencer(make_program("token_bucket"), 2)
    sp = seq.process(pkt(1, ts=987654))
    header, _, _ = seq.codec.decode(sp.data)
    assert header.timestamp_ns == 987654


def test_original_packet_embedded_verbatim():
    p = pkt(7, ts=5)
    raw = p.to_bytes()
    seq = PacketHistorySequencer(make_program("ddos"), 2)
    sp = seq.process(p)
    _, _, original = seq.codec.decode(sp.data)
    assert original == raw


def test_overhead_bytes_matches_codec():
    prog = make_program("conntrack")
    seq = PacketHistorySequencer(prog, 4)
    expected = ScrPacketCodec(prog.metadata_size, 4, dummy_eth=True).overhead_bytes
    assert seq.overhead_bytes == expected
    sp = seq.process(pkt(1))
    assert len(sp.data) == expected + len(pkt(1).to_bytes())


def test_overhead_grows_with_cores():
    prog = make_program("heavy_hitter")
    o2 = PacketHistorySequencer(prog, 2).overhead_bytes
    o7 = PacketHistorySequencer(prog, 7).overhead_bytes
    assert o7 - o2 == 5 * prog.metadata_size


def test_nic_mode_drops_dummy_eth():
    on_switch = PacketHistorySequencer(make_program("ddos"), 2, dummy_eth=True)
    on_nic = PacketHistorySequencer(make_program("ddos"), 2, dummy_eth=False)
    assert on_switch.overhead_bytes - on_nic.overhead_bytes == 14


def test_reset():
    seq = PacketHistorySequencer(make_program("ddos"), 2)
    seq.process(pkt(1))
    seq.reset()
    assert seq.next_seq == 1
    sp = seq.process(pkt(2))
    assert sp.core == 0 and sp.seq == 1


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        PacketHistorySequencer(make_program("ddos"), 0)
    with pytest.raises(ValueError):
        PacketHistorySequencer(make_program("ddos"), 4, num_slots=2)
