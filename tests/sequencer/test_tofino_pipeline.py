"""Functional Tofino pipeline: stage-accurate datapath equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScrCoreRuntime, reference_run
from repro.packet import TCP_SYN, make_tcp_packet, make_udp_packet
from repro.programs import make_program
from repro.sequencer import PacketHistorySequencer
from repro.sequencer.tofino_pipeline import TofinoPipeline
from repro.state import StateMap
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


def pkt(src, ts=0):
    return make_udp_packet(src, 2, 3, 4, timestamp_ns=ts)


class TestEquivalence:
    @pytest.mark.parametrize("name,cores", [
        ("ddos", 3), ("ddos", 14), ("port_knocking", 7),
        ("heavy_hitter", 5), ("conntrack", 5), ("token_bucket", 9),
    ])
    def test_bit_identical_to_behavioural_sequencer(self, name, cores):
        """Both implementations must emit exactly the same SCR packets."""
        prog = make_program(name)
        pipeline = TofinoPipeline(make_program(name), cores)
        behavioural = PacketHistorySequencer(make_program(name), cores)
        for i in range(cores * 4 + 3):
            p = make_tcp_packet(
                1 + i % 5, 9, 1000 + i % 3, 80, TCP_SYN, seq=i,
                timestamp_ns=i * 1000,
            )
            core_a, data_a, seq_a = pipeline.process(p)
            sp = behavioural.process(p)
            assert (core_a, seq_a) == (sp.core, sp.seq)
            assert data_a == sp.data, f"packet {i} differs"

    @settings(max_examples=20, deadline=None)
    @given(
        srcs=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=40),
        cores=st.integers(min_value=1, max_value=8),
    )
    def test_equivalence_property(self, srcs, cores):
        pipeline = TofinoPipeline(make_program("ddos"), cores)
        behavioural = PacketHistorySequencer(make_program("ddos"), cores)
        for i, src in enumerate(srcs):
            p = pkt(src, ts=i)
            _, data_a, _ = pipeline.process(p)
            assert data_a == behavioural.process(p).data


class TestDatapath:
    def test_capacity_check_matches_section_43(self):
        # conntrack (30 B → 8 words) over 5 cores = 40 fields: fits (44).
        TofinoPipeline(make_program("conntrack"), 5)
        with pytest.raises(ValueError, match="32-bit fields"):
            TofinoPipeline(make_program("conntrack"), 6)

    def test_ddos_44_cores_fits_exactly(self):
        pipeline = TofinoPipeline(make_program("ddos"), 44)
        assert pipeline.stateful_alus_used() == 45  # 44 history + index

    def test_byte_packed_register_count(self):
        """Items pack back-to-back: 8 x 18 B = 144 B → 36 words + index."""
        pipeline = TofinoPipeline(make_program("heavy_hitter"), 8)
        assert pipeline.stateful_alus_used() == 37

    def test_byte_packing_reaches_section_43_capacities(self):
        """The packed layout achieves exactly the paper's core counts."""
        for name, cores in [
            ("ddos", 44), ("port_knocking", 22), ("heavy_hitter", 9),
            ("token_bucket", 9), ("conntrack", 5),
        ]:
            TofinoPipeline(make_program(name), cores)  # fits
            with pytest.raises(ValueError):
                TofinoPipeline(make_program(name), cores + 1)

    def test_index_pointer_lives_in_stage_zero(self):
        pipeline = TofinoPipeline(make_program("ddos"), 4)
        assert pipeline.index_action.register.stage == 0
        assert all(a.register.stage >= 1 for a in pipeline.history_actions)

    def test_registers_start_zeroed_and_rotate(self):
        pipeline = TofinoPipeline(make_program("ddos"), 2)
        _, data, _ = pipeline.process(pkt(0xAA))
        header, rows, _ = pipeline.codec.decode(data)
        assert rows == [b"\x00" * 4, b"\x00" * 4]  # dump precedes write
        _, data, _ = pipeline.process(pkt(0xBB))
        _, rows, _ = pipeline.codec.decode(data)
        assert rows[-1] == (0xAA).to_bytes(4, "big")

    def test_reset(self):
        pipeline = TofinoPipeline(make_program("ddos"), 2)
        pipeline.process(pkt(1))
        pipeline.reset()
        assert pipeline.index_action.register.value == 0
        _, data, seq = pipeline.process(pkt(2))
        assert seq == 1


def test_end_to_end_scr_through_hardware_pipeline():
    """Cores fed by the hardware pipeline replicate correctly — the full
    switch + server deployment in miniature."""
    prog = make_program("port_knocking")
    cores = 4
    pipeline = TofinoPipeline(prog, cores)
    runtimes = [
        ScrCoreRuntime(prog, core_id=i, codec=pipeline.codec, state=StateMap())
        for i in range(cores)
    ]
    trace = synthesize_trace(univ_dc_flow_sizes(), 10, seed=8, max_packets=400)
    verdicts = {}
    for p in trace:
        core, data, seq = pipeline.process(p)
        for s, v in runtimes[core].receive(data):
            verdicts[s] = v
    ref_verdicts, _ = reference_run(make_program("port_knocking"), trace)
    assert verdicts == ref_verdicts
