"""P4 and Verilog emitters: structure mirrors the models' arithmetic."""

import re

import pytest

from repro.programs import make_program
from repro.sequencer import NetFpgaSequencerModel
from repro.sequencer.p4_emitter import emit_p4
from repro.sequencer.tofino_pipeline import TofinoPipeline
from repro.sequencer.verilog_emitter import emit_verilog


class TestP4Emitter:
    def test_one_register_action_per_history_word(self):
        src = emit_p4(make_program("ddos"), 8)
        pipeline = TofinoPipeline(make_program("ddos"), 8)
        assert src.count("RegisterAction<") == 1 + len(pipeline.history_actions)
        assert len(re.findall(r"Register<bit<32>, bit<1>>", src)) == (
            1 + len(pipeline.history_actions)
        )

    def test_header_fields_match_wire_format(self):
        src = emit_p4(make_program("conntrack"), 5)
        assert "bit<16> magic" in src
        assert "bit<64> seq" in src
        assert "bit<64> timestamp_ns" in src
        assert "num_slots  = 5" in src
        assert "meta_size  = 30" in src

    def test_history_bits_match_geometry(self):
        prog = make_program("port_knocking")  # 8 B metadata
        src = emit_p4(prog, 4)
        assert f"bit<{4 * 8 * 8}> rows" in src  # 4 slots x 8 B

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            emit_p4(make_program("conntrack"), 6)

    def test_index_pointer_wraps_at_slot_count(self):
        src = emit_p4(make_program("ddos"), 7)
        assert "value >= 6" in src  # wraps after slot 6

    def test_stage_assignment_advances(self):
        src = emit_p4(make_program("ddos"), 8)
        stages = [int(m) for m in re.findall(r"---- stage (\d+): history", src)]
        assert stages[0] == 1
        assert stages == sorted(stages)
        assert max(stages) == 2  # 8 words over 4 ALUs/stage → stages 1-2

    def test_dummy_ethertype_constant(self):
        src = emit_p4(make_program("ddos"), 4)
        assert "0x88B5" in src  # matches repro.packet.ETH_P_SCR


class TestVerilogEmitter:
    def test_geometry_parameters(self):
        src = emit_verilog(NetFpgaSequencerModel(16))
        assert "parameter ROWS        = 16" in src
        assert "parameter ROW_BITS    = 112" in src
        assert "parameter PTR_BITS    = 4" in src
        assert f"parameter PREFIX_BITS = {16 * 112 + 4}" in src

    def test_prefix_bits_match_model(self):
        for rows in (16, 32, 128):
            model = NetFpgaSequencerModel(rows)
            src = emit_verilog(model)
            assert f"PREFIX_BITS = {model.prefix_bits}" in src

    def test_bus_and_clock_match_platform(self):
        src = emit_verilog(NetFpgaSequencerModel(16))
        assert "1024-bit AXIS datapath @ 250 MHz" in src
        assert "parameter BUS_BITS    = 1024" in src

    def test_memory_and_pointer_logic_present(self):
        src = emit_verilog(NetFpgaSequencerModel(32))
        assert "reg [ROW_BITS-1:0] history_mem [0:ROWS-1]" in src
        assert "history_mem[index_ptr] <= parsed_fields" in src
        assert "index_ptr + 1'b1" in src

    def test_module_structure_sane(self):
        src = emit_verilog(NetFpgaSequencerModel(64))
        assert src.count("module scr_sequencer") == 1
        assert src.count("endmodule") == 1
        assert src.count("\n    generate") == src.count("endgenerate") == 1
        assert src.count("always @") == 1
