"""Tofino and NetFPGA sequencer models vs Tables 2 and 3."""

import pytest

from repro.programs import make_program
from repro.sequencer import (
    PUBLISHED_SYNTHESIS,
    NetFpgaSequencerModel,
    TofinoSequencerModel,
)


class TestTofino:
    def setup_method(self):
        self.model = TofinoSequencerModel()

    def test_44_history_fields(self):
        """The paper's design holds 44 32-bit fields (§4.3)."""
        assert self.model.history_fields == 44
        assert self.model.history_bits == 44 * 32

    @pytest.mark.parametrize("name,cores", [
        ("ddos", 44),
        ("port_knocking", 22),
        ("heavy_hitter", 9),
        ("token_bucket", 9),
        ("conntrack", 5),
    ])
    def test_per_program_core_capacity_matches_paper(self, name, cores):
        assert self.model.max_cores(make_program(name)) == cores

    def test_stateless_program_unbounded(self):
        assert self.model.max_cores(make_program("forwarder")) > 1000

    def test_fits(self):
        assert self.model.fits(make_program("conntrack"), 5)
        assert not self.model.fits(make_program("conntrack"), 6)

    def test_resource_usage_matches_table3(self):
        usage = self.model.resource_usage()
        expected = {
            "stateful_alus": 93.75,
            "logical_tables": 23.96,
            "gateways": 23.44,
            "map_rams": 15.62,
            "srams": 9.69,
            "tcams": 0.0,
            "vliw": 9.11,
            "exact_crossbar_bytes": 23.31,
        }
        for key, pct in expected.items():
            assert usage[key] == pytest.approx(pct, abs=0.05), key

    def test_stateful_alus_are_the_bottleneck(self):
        usage = self.model.resource_usage()
        assert usage["stateful_alus"] == max(usage.values())


class TestNetFpga:
    @pytest.mark.parametrize("rows", sorted(PUBLISHED_SYNTHESIS))
    def test_published_rows_reproduced(self, rows):
        model = NetFpgaSequencerModel(rows)
        assert model.synthesis_row() == PUBLISHED_SYNTHESIS[rows]

    @pytest.mark.parametrize("rows,lut_pct,ff_pct", [
        (16, 0.060, 0.069),
        (32, 0.107, 0.091),
        (64, 0.153, 0.136),
        (128, 0.196, 0.225),
    ])
    def test_utilization_percentages_match_table2(self, rows, lut_pct, ff_pct):
        model = NetFpgaSequencerModel(rows)
        assert model.lut_utilization_pct() == pytest.approx(lut_pct, abs=0.001)
        assert model.ff_utilization_pct() == pytest.approx(ff_pct, abs=0.001)

    @pytest.mark.parametrize("rows", sorted(PUBLISHED_SYNTHESIS))
    def test_estimator_within_5pct_of_synthesis(self, rows):
        model = NetFpgaSequencerModel(rows)
        luts, _, ffs = PUBLISHED_SYNTHESIS[rows]
        assert model.estimated_luts() == pytest.approx(luts, rel=0.05)
        assert model.estimated_ffs() == pytest.approx(ffs, rel=0.05)

    def test_estimator_interpolates_unpublished_sizes(self):
        m48 = NetFpgaSequencerModel(48)
        m32, m64 = NetFpgaSequencerModel(32), NetFpgaSequencerModel(64)
        assert m32.estimated_luts() < m48.estimated_luts() < m64.estimated_luts()
        assert m32.estimated_ffs() < m48.estimated_ffs() < m64.estimated_ffs()

    def test_prefix_bits(self):
        model = NetFpgaSequencerModel(16)
        assert model.prefix_bits == 16 * 112 + 4

    def test_row_capacity_112_bits_fits_4tuple_plus_16(self):
        """A row holds a TCP 4-tuple (96 bits) plus a 16-bit value (§4.3)."""
        assert NetFpgaSequencerModel(16).spec.row_bits == 96 + 16

    def test_max_cores_by_metadata_size(self):
        model = NetFpgaSequencerModel(128)
        assert model.max_cores(14) == 128  # one row per item
        assert model.max_cores(18) == 64  # two rows per item
        assert model.max_cores(30) == 42  # three rows per item

    def test_meets_timing_up_to_128_rows(self):
        assert NetFpgaSequencerModel(128).meets_timing()
        assert not NetFpgaSequencerModel(256).meets_timing()

    def test_bandwidth_exceeds_200g(self):
        """250 MHz × 1024-bit bus > 200 Gbit/s (§4.3)."""
        assert NetFpgaSequencerModel(16).bandwidth_gbps() > 200

    def test_utilization_is_negligible(self):
        for rows in PUBLISHED_SYNTHESIS:
            model = NetFpgaSequencerModel(rows)
            assert model.lut_utilization_pct() < 0.25
            assert model.ff_utilization_pct() < 0.25

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            NetFpgaSequencerModel(0)
