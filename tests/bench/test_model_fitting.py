"""Appendix A inverted: fitting (t, c2) from throughput measurements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import find_mlffr
from repro.bench.model import fit_cost_params, predicted_scr_pps
from repro.cpu import TABLE4_PARAMS, CostParams, PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine
from repro.programs import make_program
from repro.traffic import Trace


def test_exact_model_points_recover_parameters():
    true = TABLE4_PARAMS["conntrack"]
    points = [(k, predicted_scr_pps(true, k)) for k in (1, 2, 4, 7)]
    fitted = fit_cost_params(points)
    assert fitted.t == pytest.approx(true.t, rel=1e-6)
    assert fitted.c2 == pytest.approx(true.c2, rel=1e-6)


def test_noisy_points_recover_approximately():
    true = TABLE4_PARAMS["ddos"]
    noise = [1.02, 0.97, 1.03, 0.99]
    points = [
        (k, predicted_scr_pps(true, k) * noise[i])
        for i, k in enumerate((1, 2, 4, 7))
    ]
    fitted = fit_cost_params(points)
    assert fitted.t == pytest.approx(true.t, rel=0.1)
    assert fitted.c2 == pytest.approx(true.c2, rel=0.5)


def test_fit_from_simulated_mlffr():
    """The calibration loop a user of a new program would run: measure SCR
    MLFFR at a few core counts, fit, predict the rest."""
    pkts = [make_udp_packet(1, 2, 3, 4) for _ in range(3000)]
    pt = PerfTrace.from_trace(Trace(pkts).truncated(192), make_program("token_bucket"))
    measured = []
    for k in (1, 2, 4, 7):
        engine = ScrEngine(make_program("token_bucket"), k, count_wire_overhead=False)
        measured.append((k, find_mlffr(pt, engine).mlffr_pps))
    fitted = fit_cost_params(measured)
    true = TABLE4_PARAMS["token_bucket"]
    assert fitted.t == pytest.approx(true.t, rel=0.10)
    assert fitted.c2 == pytest.approx(true.c2, rel=0.35)
    # and the fit predicts an unmeasured core count well
    predicted_10 = predicted_scr_pps(fitted, 10)
    engine = ScrEngine(make_program("token_bucket"), 10, count_wire_overhead=False)
    measured_10 = find_mlffr(pt, engine).mlffr_pps
    assert measured_10 == pytest.approx(predicted_10, rel=0.15)


def test_dispatch_fraction_split():
    points = [(1, 1e9 / 100), (2, 2e9 / 120)]
    fitted = fit_cost_params(points, dispatch_fraction=0.8)
    assert fitted.d == pytest.approx(fitted.t * 0.8)
    assert fitted.c1 == pytest.approx(fitted.t * 0.2)


def test_rejects_insufficient_points():
    with pytest.raises(ValueError):
        fit_cost_params([(1, 1e6)])


def test_rejects_degenerate_core_counts():
    with pytest.raises(ValueError, match="span"):
        fit_cost_params([(2, 1e6), (2, 2e6)])


def test_rejects_invalid_measurements():
    with pytest.raises(ValueError):
        fit_cost_params([(0, 1e6), (2, 1e6)])
    with pytest.raises(ValueError):
        fit_cost_params([(1, 0), (2, 1e6)])


@settings(max_examples=30, deadline=None)
@given(
    t=st.floats(min_value=50, max_value=300),
    c2=st.floats(min_value=1, max_value=40),
)
def test_fit_inverts_model_property(t, c2):
    """For any (t, c2), fitting exact model output recovers them."""
    costs = CostParams(t=t, c2=c2, d=t * 0.7, c1=t * 0.3)
    points = [(k, predicted_scr_pps(costs, k)) for k in (1, 3, 5, 8)]
    fitted = fit_cost_params(points)
    assert fitted.t == pytest.approx(t, rel=1e-6)
    assert fitted.c2 == pytest.approx(c2, rel=1e-6)
