"""MLFFR binary search methodology (§4.1)."""

import pytest

from repro.bench import LOSS_THRESHOLD, SEARCH_TOLERANCE_PPS, find_mlffr
from repro.cpu import PerfTrace
from repro.cpu.counters import CoreCounters, SystemCounters
from repro.packet import make_udp_packet
from repro.programs import make_program
from repro.traffic import Trace


class FixedServiceEngine:
    name = "fixed"

    def __init__(self, num_cores, service_ns):
        self.num_cores = num_cores
        self._service = service_ns
        self.counters = SystemCounters()

    def reset(self):
        self.counters.cores = [CoreCounters(core_id=i) for i in range(self.num_cores)]
        self._rr = 0

    def wire_len(self, pp):
        return pp.wire_len

    def steer(self, pp):
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core

    def pre_enqueue(self, pp, core):
        return True

    def service_ns(self, core, pp, start_ns):
        self.counters.cores[core].charge_packet(self._service, 0)
        return self._service


@pytest.fixture(scope="module")
def pt():
    pkts = [make_udp_packet(i % 20 + 1, 2, 3, 4) for i in range(4000)]
    return PerfTrace.from_trace(Trace(pkts).truncated(192), make_program("ddos"))


def test_defaults_match_paper():
    assert LOSS_THRESHOLD == 0.04
    assert SEARCH_TOLERANCE_PPS == 0.4e6


def test_converges_to_known_capacity(pt):
    # 100 ns service on one core → 10 Mpps capacity.
    res = find_mlffr(pt, FixedServiceEngine(1, 100))
    assert res.mlffr_mpps == pytest.approx(10.0, rel=0.08)


def test_scales_with_cores(pt):
    res = find_mlffr(pt, FixedServiceEngine(4, 100))
    assert res.mlffr_mpps == pytest.approx(40.0, rel=0.08)


def test_search_interval_tolerance(pt):
    res = find_mlffr(pt, FixedServiceEngine(1, 100))
    # the final bracket is within the 0.4 Mpps stopping interval
    feasible = [r for r, loss in res.probes if loss <= LOSS_THRESHOLD]
    infeasible = [r for r, loss in res.probes if loss > LOSS_THRESHOLD]
    gap = min(infeasible) - max(feasible)
    assert 0 < gap <= SEARCH_TOLERANCE_PPS + 1


def test_start_above_capacity_searches_down(pt):
    res = find_mlffr(pt, FixedServiceEngine(1, 100), start_pps=80e6)
    assert res.mlffr_mpps == pytest.approx(10.0, rel=0.1)


def test_result_carries_best_simulation(pt):
    res = find_mlffr(pt, FixedServiceEngine(2, 100))
    assert res.result_at_mlffr is not None
    assert res.result_at_mlffr.loss_fraction <= LOSS_THRESHOLD


def test_iterations_counted(pt):
    res = find_mlffr(pt, FixedServiceEngine(1, 100))
    assert res.iterations == len(res.probes) > 3


def test_max_rate_cap(pt):
    # a nearly-free service hits the max_pps ceiling
    res = find_mlffr(pt, FixedServiceEngine(8, 1), max_pps=50e6)
    assert res.mlffr_pps == pytest.approx(50e6)


def test_repeatability(pt):
    """MLFFR is a stable metric (§4.1): same inputs, same answer."""
    a = find_mlffr(pt, FixedServiceEngine(2, 150)).mlffr_pps
    b = find_mlffr(pt, FixedServiceEngine(2, 150)).mlffr_pps
    assert a == b


def test_rejects_bad_start(pt):
    with pytest.raises(ValueError):
        find_mlffr(pt, FixedServiceEngine(1, 100), start_pps=0)
