"""Figure presets shared between benchmarks and the CLI."""


from repro.bench import ExperimentRunner
from repro.bench.figures import FIGURE_PRESETS, run_preset


def test_all_fig6_panels_defined():
    assert {f"6{c}" for c in "abcdefgh"} <= set(FIGURE_PRESETS)


def test_presets_reference_known_programs_and_traces():
    from repro.programs import program_names

    for preset in FIGURE_PRESETS.values():
        assert preset.program in program_names()
        assert preset.trace in ("univ_dc", "caida", "hyperscalar_dc", "single-flow")
        assert preset.cores == tuple(sorted(preset.cores))


def test_conntrack_panels_use_symmetric_capable_cores():
    # conntrack metadata (30 B) caps at 7 cores in a 256 B frame (§4.2)
    for name in ("1", "7"):
        assert max(FIGURE_PRESETS[name].cores) <= 7


def test_run_preset_structure():
    runner = ExperimentRunner(num_flows=25, max_packets=1200)
    series = run_preset(FIGURE_PRESETS["6g"], runner)
    assert set(series) == {"scr", "shared", "rss", "rss++"}
    for points in series.values():
        assert [k for k, _ in points] == list(FIGURE_PRESETS["6g"].cores)
        assert all(v > 0 for _, v in points)


def test_describe():
    assert FIGURE_PRESETS["7"].describe() == "Figure 7: conntrack on hyperscalar_dc"
