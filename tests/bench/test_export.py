"""CSV export."""

import csv

from repro.bench import ScalingPoint
from repro.bench.export import scaling_points_to_csv, series_to_csv, write_csv


def read_back(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


def test_write_csv_roundtrip(tmp_path):
    path = write_csv(tmp_path / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
    rows = read_back(path)
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_csv_creates_parent_dirs(tmp_path):
    path = write_csv(tmp_path / "deep" / "dir" / "x.csv", ["h"], [[1]])
    assert path.exists()


def test_scaling_points_csv(tmp_path):
    points = [
        ScalingPoint("scr", 1, 8.77, iterations=10),
        ScalingPoint("scr", 2, 15.5, iterations=11),
        ScalingPoint("rss", 1, 8.77, iterations=9),
    ]
    rows = read_back(scaling_points_to_csv(points, tmp_path / "p.csv"))
    assert rows[0] == ["technique", "cores", "mlffr_mpps", "search_iterations"]
    assert rows[1] == ["scr", "1", "8.7700", "10"]
    assert len(rows) == 4


def test_series_csv_wide_format(tmp_path):
    series = {"scr": [(1, 8.0), (2, 16.0)], "rss": [(1, 8.0)]}
    rows = read_back(series_to_csv(series, tmp_path / "s.csv"))
    assert rows[0] == ["cores", "scr", "rss"]
    assert rows[1] == ["1", "8.0000", "8.0000"]
    assert rows[2] == ["2", "16.0000", ""]  # missing point stays blank
