"""The calibration contract: measured SCR throughput must track the
Appendix A model within MLFFR's loss allowance, for any program and core
count — the property every figure in EXPERIMENTS.md leans on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import find_mlffr, predicted_scr_pps
from repro.cpu import TABLE4_PARAMS, PerfTrace
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine
from repro.programs import make_program
from repro.traffic import Trace

_PT_CACHE = {}


def perf_trace(program_name):
    if program_name not in _PT_CACHE:
        pkts = [make_udp_packet(1 + i % 30, 2, 3, 4) for i in range(3000)]
        _PT_CACHE[program_name] = PerfTrace.from_trace(
            Trace(pkts).truncated(192), make_program(program_name)
        )
    return _PT_CACHE[program_name]


@settings(max_examples=12, deadline=None)
@given(
    program=st.sampled_from(["ddos", "heavy_hitter", "token_bucket",
                             "port_knocking"]),
    cores=st.integers(min_value=1, max_value=10),
)
def test_scr_mlffr_tracks_model_property(program, cores):
    engine = ScrEngine(make_program(program), cores, count_wire_overhead=False)
    measured = find_mlffr(perf_trace(program), engine).mlffr_pps
    predicted = predicted_scr_pps(TABLE4_PARAMS[program], cores)
    # MLFFR's < 4 % loss allowance and 0.4 Mpps window bound the gap.
    assert measured == pytest.approx(predicted, rel=0.12), (program, cores)


def test_mlffr_never_exceeds_loss_allowance_over_capacity():
    """Even at its most generous, MLFFR stays within ~6 % of capacity."""
    for program in ("ddos", "conntrack"):
        for cores in (1, 4, 7):
            engine = ScrEngine(make_program(program), cores,
                               count_wire_overhead=False)
            measured = find_mlffr(perf_trace(program), engine).mlffr_pps
            predicted = predicted_scr_pps(TABLE4_PARAMS[program], cores)
            assert measured <= predicted * 1.08
