"""Analytic model (App. A), experiment runner, and report rendering."""

import pytest

from repro.bench import (
    PACKET_SIZE_CONNTRACK,
    PACKET_SIZE_DEFAULT,
    ExperimentRunner,
    linear_scaling_limit,
    predicted_scr_mpps,
    predicted_series,
    render_scaling_series,
    render_table,
)
from repro.cpu import TABLE4_PARAMS, CostParams


class TestModel:
    def test_single_core_is_one_over_t(self):
        p = TABLE4_PARAMS["ddos"]
        assert predicted_scr_mpps(p, 1) == pytest.approx(1e3 / p.t)

    def test_linear_when_c2_zero(self):
        p = CostParams(t=100, c2=0, d=90, c1=10)
        assert predicted_scr_mpps(p, 8) == pytest.approx(8 * predicted_scr_mpps(p, 1))

    def test_sublinear_with_history_cost(self):
        p = TABLE4_PARAMS["conntrack"]
        assert predicted_scr_mpps(p, 8) < 8 * predicted_scr_mpps(p, 1)

    def test_monotone_in_cores(self):
        p = TABLE4_PARAMS["token_bucket"]
        series = [predicted_scr_mpps(p, k) for k in range(1, 15)]
        assert series == sorted(series)

    def test_predicted_series_shape(self):
        series = predicted_series("ddos", [1, 2, 4])
        assert [k for k, _ in series] == [1, 2, 4]

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            predicted_scr_mpps(TABLE4_PARAMS["ddos"], 0)

    def test_scaling_limit_orders_programs(self):
        """Programs with heavier per-history cost taper earlier."""
        conntrack = linear_scaling_limit(TABLE4_PARAMS["conntrack"])
        ddos = linear_scaling_limit(TABLE4_PARAMS["ddos"])
        assert conntrack < ddos

    def test_stateless_never_tapers(self):
        assert linear_scaling_limit(TABLE4_PARAMS["forwarder"]) > 10**6

    def test_limit_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            linear_scaling_limit(TABLE4_PARAMS["ddos"], efficiency=1.5)


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(num_flows=25, max_packets=1500)

    def test_packet_sizes_match_section_4_2(self, runner):
        assert runner.packet_size_for("conntrack") == PACKET_SIZE_CONNTRACK == 256
        assert runner.packet_size_for("ddos") == PACKET_SIZE_DEFAULT == 192

    def test_trace_cached(self, runner):
        t1 = runner.trace_for("univ_dc", False, 192)
        t2 = runner.trace_for("univ_dc", False, 192)
        assert t1 is t2

    def test_trace_truncated_to_packet_size(self, runner):
        t = runner.trace_for("caida", False, 192)
        assert all(p.wire_len == 192 for p in t)

    def test_single_flow_trace_supported(self, runner):
        t = runner.trace_for("single-flow", True, 256)
        assert t.stats(bidirectional=True).flows == 1

    def test_mlffr_point_end_to_end(self, runner):
        res = runner.mlffr_point("ddos", "univ_dc", "scr", 2)
        assert 10 < res.mlffr_mpps < 25

    def test_scaling_sweep_structure(self, runner):
        points = runner.scaling_sweep("ddos", "univ_dc", ["scr", "rss"], [1, 2])
        assert len(points) == 4
        assert {p.technique for p in points} == {"scr", "rss"}
        assert all(p.mlffr_mpps > 0 for p in points)


class TestReport:
    def test_render_table_aligns(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_scaling_series(self):
        out = render_scaling_series(
            {"scr": [(1, 8.0), (2, 16.0)], "rss": [(1, 8.0)]}, title="fig"
        )
        assert "scr (Mpps)" in out
        assert "16.00" in out
        assert "-" in out  # missing rss point at 2 cores
