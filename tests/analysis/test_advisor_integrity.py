"""SCR007 — SCR_COMMUTATIVE_FIELDS cross-checked against dataflow facts."""

from repro.analysis import get_rule, lint_paths

from .conftest import fixture_path

RULE = [get_rule("SCR007")]


def lint_fixture(name):
    return lint_paths([fixture_path(name)], rules=RULE)


def test_unsound_declaration_flagged():
    report = lint_fixture("fixture_scr007.py")
    unsound = [f for f in report.findings
               if f.symbol == "UnsoundDeclaration.SCR_COMMUTATIVE_FIELDS"]
    assert len(unsound) == 1
    assert "overwrite" in unsound[0].message
    assert unsound[0].detail["field"] == "value"


def test_stale_declaration_flagged():
    report = lint_fixture("fixture_scr007.py")
    stale = [f for f in report.findings
             if f.symbol == "StaleDeclaration.SCR_COMMUTATIVE_FIELDS"]
    assert len(stale) == 1
    assert "never writes" in stale[0].message
    assert stale[0].detail["field"] == "packtes"


def test_sound_declaration_clean():
    report = lint_fixture("fixture_scr007.py")
    assert not any(f.symbol.startswith("SoundDeclaration")
                   for f in report.findings)


def test_undeclared_programs_are_not_required_to_declare():
    # No claim, no cross-check: the rmw fixture declares nothing and is clean.
    report = lint_fixture("fixture_scr005.py")
    assert report.ok


def test_shipped_zoo_is_scr007_clean():
    report = lint_paths(["src/repro/programs"], rules=RULE)
    assert report.ok, [f.message for f in report.findings]


def test_finding_points_at_the_declaration_line():
    report = lint_fixture("fixture_scr007.py")
    source = open(fixture_path("fixture_scr007.py")).read().splitlines()
    for finding in report.findings:
        assert "SCR_COMMUTATIVE_FIELDS" in source[finding.line - 1]
