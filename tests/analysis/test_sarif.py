"""SARIF 2.1.0 rendering of lint reports."""

import io
import json

from repro.analysis import (
    all_rules,
    format_sarif,
    get_rule,
    lint_paths,
    report_to_sarif,
)
from repro.analysis.runner import LintReport
from repro.analysis.sarif import SARIF_SCHEMA_URI, SARIF_VERSION
from repro.cli import main

from .conftest import fixture_path


def test_sarif_log_shape():
    report = lint_paths([fixture_path("fixture_scr005.py")])
    log = report_to_sarif(report)
    assert log["version"] == SARIF_VERSION
    assert log["$schema"] == SARIF_SCHEMA_URI
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "scrlint"
    assert len(run["results"]) == len(report.findings)
    assert run["properties"]["filesChecked"] == 1


def test_sarif_rules_describe_every_registered_rule():
    log = report_to_sarif(LintReport())
    ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
    assert ids == [rule.id for rule in all_rules()]
    for descriptor in log["runs"][0]["tool"]["driver"]["rules"]:
        assert descriptor["shortDescription"]["text"]


def test_sarif_result_location_is_one_based():
    report = lint_paths([fixture_path("fixture_scr005.py")])
    log = report_to_sarif(report)
    finding = sorted(report.findings)[0]
    result = log["runs"][0]["results"][0]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert result["ruleId"] == finding.rule
    assert region["startLine"] == finding.line
    assert region["startColumn"] == finding.col + 1  # SARIF is 1-based


def test_sarif_respects_rule_selection():
    report = lint_paths([fixture_path("fixture_scr007.py")],
                        rules=[get_rule("SCR007")])
    log = report_to_sarif(report, rules=[get_rule("SCR007")])
    ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
    assert ids == ["SCR007"]
    assert all(r["ruleId"] == "SCR007" for r in log["runs"][0]["results"])


def test_cli_lint_format_sarif_parses_and_fails_on_findings():
    out = io.StringIO()
    code = main(["lint", "--format", "sarif",
                 fixture_path("fixture_scr007.py")], out=out)
    assert code == 1  # findings present
    log = json.loads(out.getvalue())
    assert log["version"] == SARIF_VERSION
    assert log["runs"][0]["results"]
