"""Shared helpers for the scrlint test suite."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


def fixture_path(name: str) -> str:
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return str(path)
