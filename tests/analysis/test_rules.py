"""Per-rule firing/non-firing tests against the deliberately-broken fixtures.

Every rule SCR001–SCR005 must (a) fire on its bad fixture classes and
(b) stay silent on the clean twin in the same file — the acceptance bar for
the analyzer being a usable admission gate rather than a noise source.
"""

from repro.analysis import lint_paths

from .conftest import fixture_path


def findings_for(name):
    report = lint_paths([fixture_path(name)])
    return report, report.findings


def rules_by_symbol(findings):
    out = {}
    for f in findings:
        out.setdefault(f.symbol, set()).add(f.rule)
    return out


# -- SCR001 nondeterminism ---------------------------------------------------

def test_scr001_fires_on_wall_clock_transition():
    _, findings = findings_for("fixture_scr001.py")
    sym = rules_by_symbol(findings)
    assert "SCR001" in sym.get("WallClockProgram.transition", set())


def test_scr001_follows_self_helper_closure():
    _, findings = findings_for("fixture_scr001.py")
    helper = [f for f in findings
              if f.symbol == "HiddenRngProgram._coin_flip" and f.rule == "SCR001"]
    # uuid4() and random.randrange() both live in the helper.
    assert len(helper) >= 2
    origins = {f.detail.get("origin") for f in helper}
    assert "uuid.uuid4" in origins
    assert "random.randrange" in origins


def test_scr001_flags_mutable_global_read():
    _, findings = findings_for("fixture_scr001.py")
    hits = [f for f in findings
            if f.rule == "SCR001" and f.detail.get("name") == "_FLOW_CACHE"]
    assert hits and hits[0].symbol == "GlobalReaderProgram.transition"


def test_scr001_silent_on_clean_twin():
    _, findings = findings_for("fixture_scr001.py")
    assert not [f for f in findings if f.symbol.startswith("CleanCounterProgram")]


# -- SCR002 purity -----------------------------------------------------------

def test_scr002_fires_on_self_mutation():
    _, findings = findings_for("fixture_scr002.py")
    hits = [f for f in findings
            if f.rule == "SCR002" and f.symbol == "SelfMutatingProgram.transition"]
    # one for the attribute assignment, one for the .add() mutator
    assert len(hits) >= 2


def test_scr002_fires_on_io():
    _, findings = findings_for("fixture_scr002.py")
    assert any(f.rule == "SCR002" and f.symbol == "IoProgram.transition"
               for f in findings)


def test_scr002_fires_on_statemap_reach():
    _, findings = findings_for("fixture_scr002.py")
    assert any(f.rule == "SCR002"
               and f.symbol == "StateReachingProgram.transition"
               for f in findings)


def test_scr002_silent_on_clean_twin():
    _, findings = findings_for("fixture_scr002.py")
    assert not [f for f in findings if f.symbol.startswith("CleanPureProgram")]


# -- SCR003 metadata ---------------------------------------------------------

def test_scr003_fires_on_format_fields_arity_mismatch():
    _, findings = findings_for("fixture_scr003.py")
    assert any(f.rule == "SCR003" and f.symbol == "ArityMismatchMetadata"
               for f in findings)


def test_scr003_fires_on_native_byte_order():
    _, findings = findings_for("fixture_scr003.py")
    assert any(f.rule == "SCR003" and f.symbol == "NativeOrderMetadata"
               for f in findings)


def test_scr003_fires_on_undeclared_meta_read():
    _, findings = findings_for("fixture_scr003.py")
    hits = [f for f in findings
            if f.rule == "SCR003" and f.detail.get("field") == "dst_port"]
    assert hits and hits[0].symbol == "UndeclaredReadProgram.transition"


def test_scr003_fires_on_typo_ctor_kwarg():
    _, findings = findings_for("fixture_scr003.py")
    assert any(f.rule == "SCR003" and f.detail.get("field") == "source_ip"
               for f in findings)


def test_scr003_silent_on_clean_twin():
    _, findings = findings_for("fixture_scr003.py")
    assert not [f for f in findings
                if f.symbol.startswith("CleanMetadataProgram")
                or f.symbol == "NarrowMetadata"]


# -- SCR004 engines ----------------------------------------------------------

def test_scr004_fires_on_wall_clock_and_rng():
    _, findings = findings_for("fixture_scr004.py")
    origins = {f.detail.get("origin") for f in findings if f.rule == "SCR004"}
    assert "time.perf_counter" in origins
    assert "random.randint" in origins
    assert "random.Random" in origins  # the unseeded construction


def test_scr004_fires_on_hidden_mutable_state():
    _, findings = findings_for("fixture_scr004.py")
    names = {f.detail.get("name") for f in findings if f.rule == "SCR004"}
    assert "_MIGRATION_LOG" in names  # module-level
    assert "scratch" in names  # class-body


def test_scr004_allows_seeded_instance_rng():
    _, findings = findings_for("fixture_scr004.py")
    clean_lines = [f for f in findings if "CleanSeededEngine" in f.symbol]
    assert not clean_lines
    # random.Random(seed) calls inside CleanSeededEngine must not fire:
    assert all(f.detail.get("origin") != "random.Random" or f.line < 30
               for f in findings)


def test_scr004_silent_on_shipped_engines():
    report = lint_paths(["src/repro/parallel"])
    assert report.ok, [str(f) for f in report.findings]


# -- SCR005 floats -----------------------------------------------------------

def test_scr005_fires_on_float_literals():
    _, findings = findings_for("fixture_scr005.py")
    hits = [f for f in findings
            if f.rule == "SCR005" and f.symbol == "FloatEwmaProgram.transition"]
    assert len(hits) >= 2  # 0.0 seed + the EWMA weights


def test_scr005_fires_on_division_and_math_in_helper():
    _, findings = findings_for("fixture_scr005.py")
    helper = [f for f in findings
              if f.rule == "SCR005" and f.symbol == "DivisionProgram._mean"]
    assert len(helper) >= 2  # the / and the math.sqrt


def test_scr005_silent_on_integer_twin():
    _, findings = findings_for("fixture_scr005.py")
    assert not [f for f in findings if f.symbol.startswith("CleanIntegerProgram")]


# -- SCR006 fault-handler hygiene --------------------------------------------

def test_scr006_fires_on_wall_clock_in_recovery_class():
    _, findings = findings_for("fixture_scr006.py")
    hits = [f for f in findings
            if f.rule == "SCR006" and f.symbol == "WallClockRecovery"]
    origins = {f.detail.get("origin") for f in hits}
    assert "time.monotonic" in origins
    assert "time.time_ns" in origins


def test_scr006_fires_on_rngs_even_seeded():
    _, findings = findings_for("fixture_scr006.py")
    hits = [f for f in findings
            if f.rule == "SCR006" and f.symbol == "ShuffledCheckpointer"]
    origins = {f.detail.get("origin") for f in hits}
    assert "random.Random" in origins  # seeded is still order-dependent
    assert "random.choice" in origins


def test_scr006_silent_on_pure_hash_twin():
    _, findings = findings_for("fixture_scr006.py")
    assert not [f for f in findings if f.symbol == "CleanPlanRecovery"]


def test_scr006_covers_faults_package_modules():
    # Path-scope: any module under a faults/ directory is in scope whole.
    from repro.analysis import lint_source

    report = lint_source(
        "import time\n\ndef when():\n    return time.time()\n",
        path="src/repro/faults/example.py",
    )
    assert any(f.rule == "SCR006" for f in report.findings)


# -- the shipped tree is the ultimate non-firing fixture ---------------------

def test_default_paths_are_clean():
    report = lint_paths()
    assert report.ok, [str(f) for f in report.findings]
    assert report.files_checked >= 15
