"""The lint runner API and the ``scr-repro lint`` CLI surface."""

import io
import json

import pytest

from repro.analysis import (
    Finding,
    LintReport,
    all_rules,
    format_json,
    format_text,
    get_rule,
    lint_paths,
    lint_source,
    rule_ids,
)
from repro.cli import main

from .conftest import fixture_path


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# -- registry ----------------------------------------------------------------

def test_core_rules_registered():
    assert rule_ids() == ["SCR001", "SCR002", "SCR003", "SCR004", "SCR005",
                          "SCR006", "SCR007"]
    for rule in all_rules():
        assert rule.title
        assert rule.paper_ref


def test_get_rule_round_trips_and_rejects_unknown():
    assert get_rule("scr001").id == "SCR001"
    with pytest.raises(KeyError):
        get_rule("SCR999")


def test_get_rule_suggests_zero_padded_near_miss():
    with pytest.raises(KeyError, match=r"did you mean SCR007\?"):
        get_rule("scr7")
    with pytest.raises(KeyError, match=r"did you mean SCR001\?"):
        get_rule("SCR01")


def test_get_rule_suggests_close_matches():
    with pytest.raises(KeyError, match="did you mean SCR00"):
        get_rule("SRC001")  # transposition still lands near the family


# -- runner ------------------------------------------------------------------

def test_lint_source_parse_error_is_a_finding():
    report = lint_source("def broken(:\n", path="oops.py")
    assert not report.ok
    assert report.findings[0].rule == "SCR000"


def test_lint_paths_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        lint_paths(["/no/such/dir"])


def test_findings_sort_by_location():
    report = lint_paths([fixture_path("fixture_scr001.py")])
    locations = [(f.path, f.line, f.col) for f in report.findings]
    assert locations == sorted(locations)


def test_format_text_summarizes():
    clean = format_text(LintReport(files_checked=3))
    assert "clean: 3 file(s)" in clean
    dirty = format_text(LintReport(
        findings=[Finding("p.py", 1, 0, "SCR001", "X.y", "msg")],
        files_checked=1,
    ))
    assert "p.py:1:0: SCR001 [X.y] msg" in dirty
    assert "SCR001: 1" in dirty


def test_format_json_schema():
    report = lint_paths([fixture_path("fixture_scr005.py")])
    payload = json.loads(format_json(report))
    assert payload["schema"] == "scr-repro/lint-report/v1"
    assert payload["files_checked"] == 1
    assert payload["findings"]
    first = payload["findings"][0]
    assert {"path", "line", "col", "rule", "symbol", "message"} <= set(first)


# -- CLI ---------------------------------------------------------------------

def test_cli_lint_shipped_tree_exits_zero():
    code, text = run_cli(["lint"])
    assert code == 0
    assert "clean" in text


def test_cli_lint_fixture_exits_one_with_scr001():
    # The acceptance-criteria case: a transition calling time.time().
    code, text = run_cli(["lint", fixture_path("fixture_scr001.py")])
    assert code == 1
    assert "SCR001" in text
    assert "WallClockProgram.transition" in text


def test_cli_lint_json_format():
    code, text = run_cli([
        "lint", "--format", "json", fixture_path("fixture_scr004.py"),
    ])
    assert code == 1
    payload = json.loads(text)
    assert any(f["rule"] == "SCR004" for f in payload["findings"])


def test_cli_lint_unknown_path_exits_two():
    code, text = run_cli(["lint", "/no/such/path.py"])
    assert code == 2
    assert "lint error" in text


def test_cli_list_rules():
    code, text = run_cli(["lint", "--list-rules"])
    assert code == 0
    for rule_id in ("SCR001", "SCR002", "SCR003", "SCR004", "SCR005"):
        assert rule_id in text


def test_cli_lint_select_runs_only_named_rules():
    # The SCR001 fixture is clean under SCR005 alone.
    code, text = run_cli([
        "lint", "--select", "SCR005", fixture_path("fixture_scr001.py"),
    ])
    assert code == 0 and "clean" in text
    code, text = run_cli([
        "lint", "--select", "scr001,scr005", fixture_path("fixture_scr001.py"),
    ])
    assert code == 1 and "SCR001" in text


def test_cli_lint_ignore_drops_named_rules():
    code, text = run_cli([
        "lint", "--ignore", "SCR001", fixture_path("fixture_scr001.py"),
    ])
    assert "SCR001" not in text


def test_cli_lint_select_near_miss_suggests():
    code, text = run_cli([
        "lint", "--select", "scr7", fixture_path("fixture_scr001.py"),
    ])
    assert code == 2
    assert "did you mean SCR007?" in text


def test_cli_lint_select_and_ignore_cannot_cancel_out():
    code, text = run_cli([
        "lint", "--select", "SCR001", "--ignore", "SCR001",
        fixture_path("fixture_scr001.py"),
    ])
    assert code == 2
    assert "no rules" in text
