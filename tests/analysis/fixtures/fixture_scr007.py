"""SCR007 fixture: unsound / stale SCR_COMMUTATIVE_FIELDS declarations.

Deliberately broken — parsed by scrlint, never imported.
"""

from repro.programs.base import PacketMetadata, PacketProgram, Verdict


class CounterMetadata(PacketMetadata):
    FORMAT = "!II"
    FIELDS = ("src_ip", "pkt_len")
    __slots__ = FIELDS


class UnsoundDeclaration(PacketProgram):
    """Declares an overwrite commutative: relaxed SCR would merge wrongly."""

    name = "bad_unsound_decl"
    metadata_cls = CounterMetadata
    SCR_COMMUTATIVE_FIELDS = ("value",)  # VIOLATION: overwrite, not add

    def extract_metadata(self, pkt):
        return CounterMetadata(src_ip=0, pkt_len=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return meta.pkt_len, Verdict.TX  # last-writer-wins overwrite


class StaleDeclaration(PacketProgram):
    """Declares a field the transition never writes (misspelled/stale)."""

    name = "bad_stale_decl"
    metadata_cls = CounterMetadata
    SCR_COMMUTATIVE_FIELDS = ("value", "packtes")  # VIOLATION: typo field

    def extract_metadata(self, pkt):
        return CounterMetadata(src_ip=0, pkt_len=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return (value or 0) + 1, Verdict.TX


class SoundDeclaration(PacketProgram):
    """A correct declaration: add-accumulate, declared, no findings."""

    name = "good_decl"
    metadata_cls = CounterMetadata
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def extract_metadata(self, pkt):
        return CounterMetadata(src_ip=0, pkt_len=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return (value or 0) + meta.pkt_len, Verdict.TX
