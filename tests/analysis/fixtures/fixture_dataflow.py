"""Dataflow-classifier fixtures: one program per access category.

Parsed by the analyzer, never imported — each class isolates one shape
the classifier must recognize: a commutative counter, a non-commutative
read-modify-write, a cross-flow (per-source) key, and a monotonic max.
"""

from repro.programs.base import PacketMetadata, PacketProgram, Verdict


class FlowMetadata(PacketMetadata):
    FORMAT = "!IIHHBI"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "pkt_len")
    __slots__ = FIELDS


class CommutativeCounter(PacketProgram):
    """Pure accumulate-add on the full 5-tuple key: flow-local, commutative."""

    name = "fx_counter"
    metadata_cls = FlowMetadata
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def extract_metadata(self, pkt):
        return FlowMetadata(src_ip=0, dst_ip=0, src_port=0, dst_port=0,
                            proto=0, pkt_len=0)

    def key(self, meta):
        return (meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                meta.proto)

    def transition(self, value, meta):
        count = (value or 0) + meta.pkt_len
        return count, Verdict.TX


class NonCommutativeRmw(PacketProgram):
    """State depends on old state *and* packet in an order-sensitive way."""

    name = "fx_rmw"
    metadata_cls = FlowMetadata

    def extract_metadata(self, pkt):
        return FlowMetadata(src_ip=0, dst_ip=0, src_port=0, dst_port=0,
                            proto=0, pkt_len=0)

    def key(self, meta):
        return (meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                meta.proto)

    def transition(self, value, meta):
        old = value or 0
        # Order-sensitive: doubling then adding is not add-commutative.
        return old * 2 + meta.pkt_len, Verdict.TX


class CrossFlowKey(PacketProgram):
    """Keyed by source IP only: one entry aggregates many flows."""

    name = "fx_cross_flow"
    metadata_cls = FlowMetadata
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def extract_metadata(self, pkt):
        return FlowMetadata(src_ip=0, dst_ip=0, src_port=0, dst_port=0,
                            proto=0, pkt_len=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return (value or 0) + 1, Verdict.TX


class MonotonicMax(PacketProgram):
    """max-accumulate: commutative and monotonic, never decreases."""

    name = "fx_max"
    metadata_cls = FlowMetadata
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def extract_metadata(self, pkt):
        return FlowMetadata(src_ip=0, dst_ip=0, src_port=0, dst_port=0,
                            proto=0, pkt_len=0)

    def key(self, meta):
        return (meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                meta.proto)

    def transition(self, value, meta):
        return max(value or 0, meta.pkt_len), Verdict.TX
