"""SCR006 fixture: fault/recovery machinery with clocks and process RNGs.

Deliberately broken — parsed by scrlint, never imported.  The classes
live outside a ``faults`` package, so the rule's class-name scope
(``Fault*``/``*Recovery*``/``*Checkpoint*``...) is what picks them up.
"""

import random
import time


class WallClockRecovery:
    """Resync decisions keyed on host time — unreplayable from the seed."""

    def should_resync(self, core):
        return time.monotonic() > 1.0  # VIOLATION: wall clock

    def stamp(self):
        return time.time_ns()  # VIOLATION: wall clock


class ShuffledCheckpointer:
    """Stateful RNGs: draws depend on call order, serial != --jobs."""

    def __init__(self, seed):
        self._rng = random.Random(seed)  # VIOLATION: even seeded is stateful

    def pick_epoch(self, epochs):
        return random.choice(epochs)  # VIOLATION: process-wide RNG


class CleanPlanRecovery:
    """The sanctioned pattern: a pure per-index hash, no RNG objects."""

    def __init__(self, seed):
        self.seed = seed

    def _unit(self, tag, index):
        # splitmix64-style mix: pure function of (seed, tag, index).
        x = (self.seed * 0x9E3779B97F4A7C15 + hash(tag) + index) & (2**64 - 1)
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & (2**64 - 1)
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & (2**64 - 1)
        return (x ^ (x >> 31)) / 2**64

    def should_resync(self, index):
        return self._unit("resync", index) < 0.5
