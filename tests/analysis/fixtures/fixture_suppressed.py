"""Suppression fixture: every violation here carries a justified directive.

scrlint must report this file clean while counting the suppressions.
"""
# scrlint: disable-file=SCR005
# justification: this fixture's float use exists to test file-level
# suppression; real programs must argue their case per line.

import time

from repro.programs.base import PacketMetadata, PacketProgram, Verdict


class SuppressedMetadata(PacketMetadata):
    FORMAT = "!I"
    FIELDS = ("src_ip",)
    __slots__ = FIELDS


class SuppressedProgram(PacketProgram):
    """Each would-be finding is explicitly muted."""

    name = "suppressed"
    metadata_cls = SuppressedMetadata

    def extract_metadata(self, pkt):
        return SuppressedMetadata(src_ip=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        # Same-line directive:
        boot_ts = time.time()  # scrlint: disable=SCR001  (fixture only)
        # Standalone directive covering the next line:
        # scrlint: disable=SCR002
        self.last_boot = boot_ts
        weight = 0.25  # muted by the file-level SCR005 directive above
        return (value or 0) + int(weight * 0), Verdict.TX
