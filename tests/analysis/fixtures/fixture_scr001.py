"""SCR001 fixture: a program whose transition reads clocks/RNGs/globals.

Deliberately broken — parsed by scrlint, never imported (an import would
fail: there is no real packet here).  Each violation is keyed to an assert
in ``tests/analysis/test_rules.py``.
"""

import random
import time
from uuid import uuid4

from repro.programs.base import PacketMetadata, PacketProgram, Verdict

_FLOW_CACHE = {}  # mutable module global the bad program consults


class ClockMetadata(PacketMetadata):
    FORMAT = "!I"
    FIELDS = ("src_ip",)
    __slots__ = FIELDS


class WallClockProgram(PacketProgram):
    """Reads the local clock — the exact §3.4 anti-pattern."""

    name = "bad_wall_clock"
    metadata_cls = ClockMetadata

    def extract_metadata(self, pkt):
        return ClockMetadata(src_ip=pkt.ip.src if pkt.is_ipv4 else 0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        now = time.time()  # VIOLATION: local clock, not sequencer timestamp
        return (value or 0) + int(now), Verdict.TX


class HiddenRngProgram(PacketProgram):
    """Hides the RNG inside a helper; the closure walk must find it."""

    name = "bad_hidden_rng"
    metadata_cls = ClockMetadata

    def extract_metadata(self, pkt):
        return ClockMetadata(src_ip=0)

    def key(self, meta):
        return meta.src_ip

    def _coin_flip(self):
        token = uuid4()  # VIOLATION: uuid draws from os randomness
        return random.randrange(2) or token.int % 2  # VIOLATION: RNG

    def transition(self, value, meta):
        if self._coin_flip():
            return value, Verdict.DROP
        return value, Verdict.TX


class GlobalReaderProgram(PacketProgram):
    """Consults a module-level dict — hidden unreplicated state."""

    name = "bad_global_reader"
    metadata_cls = ClockMetadata

    def extract_metadata(self, pkt):
        return ClockMetadata(src_ip=0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        cached = _FLOW_CACHE.get(meta.src_ip)  # VIOLATION: mutable global
        return cached, Verdict.TX


class CleanCounterProgram(PacketProgram):
    """The determinism-respecting twin: everything from (value, meta)."""

    name = "clean_counter"
    metadata_cls = ClockMetadata

    def extract_metadata(self, pkt):
        return ClockMetadata(src_ip=pkt.ip.src if pkt.is_ipv4 else 0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        if meta.src_ip == 0:
            return value, Verdict.PASS
        return (value or 0) + 1, Verdict.TX
