"""SCR002 fixture: impure transitions (self-mutation, I/O, StateMap).

Deliberately broken — parsed by scrlint, never imported.
"""

from repro.programs.base import PacketMetadata, PacketProgram, Verdict
from repro.state.maps import StateMap


class PureMetadata(PacketMetadata):
    FORMAT = "!IB"
    FIELDS = ("src_ip", "valid")
    __slots__ = FIELDS


class SelfMutatingProgram(PacketProgram):
    """Keeps a per-core tally on self — state the sequencer never sees."""

    name = "bad_self_mutator"
    metadata_cls = PureMetadata

    def extract_metadata(self, pkt):
        return PureMetadata(src_ip=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        self.total = (getattr(self, "total", 0)) + 1  # VIOLATION: mutates self
        self.seen_ips.add(meta.src_ip)  # VIOLATION: mutates container on self
        return value, Verdict.TX


class IoProgram(PacketProgram):
    """Logs per packet — I/O inside the replicated hot path."""

    name = "bad_io"
    metadata_cls = PureMetadata

    def extract_metadata(self, pkt):
        return PureMetadata(src_ip=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        print("packet from", meta.src_ip)  # VIOLATION: I/O per packet
        return value, Verdict.TX


class StateReachingProgram(PacketProgram):
    """Bypasses the value argument and touches a StateMap directly."""

    name = "bad_state_reacher"
    metadata_cls = PureMetadata

    def __init__(self):
        self.shadow_state = StateMap(capacity=64)

    def extract_metadata(self, pkt):
        return PureMetadata(src_ip=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        old = self.shadow_state.lookup(meta.src_ip)  # VIOLATION: StateMap
        return old, Verdict.TX


class CleanPureProgram(PacketProgram):
    """The pure twin: value in, (value, verdict) out, nothing else."""

    name = "clean_pure"
    metadata_cls = PureMetadata

    def extract_metadata(self, pkt):
        return PureMetadata(src_ip=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        if not meta.valid:
            return value, Verdict.PASS
        return (value or 0) + 1, Verdict.TX
