"""SCR004 fixture: engines with hidden clocks / hidden shared state.

Deliberately broken — parsed by scrlint, never imported.
"""

import random
import time

from repro.parallel.base import BaseEngine

_MIGRATION_LOG = []  # VIOLATION: shared across instances, survives reset()


class WallClockEngine(BaseEngine):
    """Service time depends on the host clock — runs are irreproducible."""

    name = "bad_wall_clock_engine"
    scratch = {}  # VIOLATION: class-body mutable shared by all instances

    def steer(self, pp):
        if time.perf_counter() > 1.0:  # VIOLATION: wall clock
            return 0
        return random.randint(0, self.num_cores - 1)  # VIOLATION: global RNG

    def service_ns(self, core, pp, start_ns):
        rng = random.Random()  # VIOLATION: unseeded
        _MIGRATION_LOG.append(core)
        return 100.0 + rng.random()


class CleanSeededEngine(BaseEngine):
    """The sanctioned pattern: explicit seed, instance state, reset() rebuilds."""

    name = "clean_seeded_engine"

    def __init__(self, *args, seed=0, **kwargs):
        super().__init__(*args, **kwargs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._rr = 0

    def reset(self):
        super().reset()
        self._rng = random.Random(self.seed)
        self._rr = 0

    def steer(self, pp):
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        return core

    def service_ns(self, core, pp, start_ns):
        return 100.0
