"""SCR005 fixture: float arithmetic inside transitions.

Deliberately broken — parsed by scrlint, never imported.
"""

import math

from repro.programs.base import PacketMetadata, PacketProgram, Verdict


class RateMetadata(PacketMetadata):
    FORMAT = "!IIB"
    FIELDS = ("src_ip", "pkt_len", "valid")
    __slots__ = FIELDS


class FloatEwmaProgram(PacketProgram):
    """Keeps an EWMA in floats — replicas drift in the last ulp."""

    name = "bad_float_ewma"
    metadata_cls = RateMetadata

    def extract_metadata(self, pkt):
        return RateMetadata(src_ip=0, pkt_len=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        old = value or 0.0  # VIOLATION: float literal seeds the state
        ewma = old * 0.9 + meta.pkt_len * 0.1  # VIOLATION: float weights
        return ewma, Verdict.TX


class DivisionProgram(PacketProgram):
    """True division sneaks floats into integer-looking code."""

    name = "bad_division"
    metadata_cls = RateMetadata

    def extract_metadata(self, pkt):
        return RateMetadata(src_ip=0, pkt_len=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def _mean(self, total, count):
        return math.sqrt(total / count)  # VIOLATION: / and math.sqrt

    def transition(self, value, meta):
        packets, nbytes = value or (0, 0)
        if packets and self._mean(nbytes, packets) > 512:
            return (packets + 1, nbytes + meta.pkt_len), Verdict.DROP
        return (packets + 1, nbytes + meta.pkt_len), Verdict.TX


class CleanIntegerProgram(PacketProgram):
    """The TokenBucketPolicer pattern: scaled integer arithmetic only."""

    name = "clean_integer"
    metadata_cls = RateMetadata

    def extract_metadata(self, pkt):
        return RateMetadata(src_ip=0, pkt_len=0, valid=1)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        packets, milli_mean = value or (0, 0)
        # EWMA with integer milli-units: new = old*9/10 + len*1/10, scaled.
        milli_mean = (milli_mean * 9 + meta.pkt_len * 1000) // 10
        return (packets + 1, milli_mean), Verdict.TX
