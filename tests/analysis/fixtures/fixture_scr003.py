"""SCR003 fixture: metadata layout and completeness violations.

Deliberately broken — parsed by scrlint, never imported.
"""

from repro.programs.base import PacketMetadata, PacketProgram, Verdict


class ArityMismatchMetadata(PacketMetadata):
    """FORMAT packs two values; FIELDS declares three — unpack() explodes."""

    FORMAT = "!IH"  # VIOLATION: 2 packed values
    FIELDS = ("src_ip", "dst_port", "proto")  # ... but 3 declared fields
    __slots__ = FIELDS


class NativeOrderMetadata(PacketMetadata):
    """No explicit byte order — layout differs across hosts."""

    FORMAT = "IH"  # VIOLATION: native order/alignment
    FIELDS = ("src_ip", "dst_port")
    __slots__ = FIELDS


class NarrowMetadata(PacketMetadata):
    """Consistent on its own, but the program below outgrows it."""

    FORMAT = "!I"
    FIELDS = ("src_ip",)
    __slots__ = FIELDS


class UndeclaredReadProgram(PacketProgram):
    """Transition branches on a packet field f(p) never captured."""

    name = "bad_undeclared_read"
    metadata_cls = NarrowMetadata

    def extract_metadata(self, pkt):
        return NarrowMetadata(src_ip=pkt.ip.src)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        if meta.dst_port == 443:  # VIOLATION: dst_port is not in FIELDS
            return value, Verdict.DROP
        return value, Verdict.TX


class TypoKwargProgram(PacketProgram):
    """Passes a kwarg FIELDS does not declare; it silently packs as zero."""

    name = "bad_typo_kwarg"
    metadata_cls = NarrowMetadata

    def extract_metadata(self, pkt):
        # VIOLATION: 'source_ip' is not a declared field
        return NarrowMetadata(source_ip=pkt.ip.src)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return value, Verdict.TX


class CleanMetadataProgram(PacketProgram):
    """The completeness-respecting twin."""

    name = "clean_metadata"
    metadata_cls = NarrowMetadata

    def extract_metadata(self, pkt):
        return NarrowMetadata(src_ip=pkt.ip.src if pkt.is_ipv4 else 0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        if meta.src_ip == 0:
            return value, Verdict.PASS
        return (value or 0) + 1, Verdict.TX
