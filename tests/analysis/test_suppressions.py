"""Suppression directives: same-line, standalone-above, and file-level."""

from repro.analysis import SuppressionIndex, lint_paths, lint_source

from .conftest import fixture_path


def test_suppressed_fixture_reports_clean_but_counts():
    report = lint_paths([fixture_path("fixture_suppressed.py")])
    assert report.ok, [str(f) for f in report.findings]
    # time.time (SCR001) + self-assign (SCR002) + the 0.25 literal (SCR005)
    assert report.suppressed >= 3


def test_same_line_directive_scopes_to_its_rule():
    source = (
        "from repro.programs.base import PacketMetadata, PacketProgram, Verdict\n"
        "import time\n"
        "class M(PacketMetadata):\n"
        "    FORMAT = '!I'\n"
        "    FIELDS = ('src_ip',)\n"
        "class P(PacketProgram):\n"
        "    metadata_cls = M\n"
        "    def extract_metadata(self, pkt):\n"
        "        return M(src_ip=0)\n"
        "    def key(self, meta):\n"
        "        return meta.src_ip\n"
        "    def transition(self, value, meta):\n"
        "        t = time.time()  # scrlint: disable=SCR002\n"
        "        return value, Verdict.TX\n"
    )
    report = lint_source(source, path="p.py")
    # the directive names the wrong rule: SCR001 must still fire
    assert any(f.rule == "SCR001" for f in report.findings)
    assert report.suppressed == 0


def test_disable_all_on_line():
    source = (
        "from repro.programs.base import PacketMetadata, PacketProgram, Verdict\n"
        "import time\n"
        "class M(PacketMetadata):\n"
        "    FORMAT = '!I'\n"
        "    FIELDS = ('src_ip',)\n"
        "class P(PacketProgram):\n"
        "    metadata_cls = M\n"
        "    def extract_metadata(self, pkt):\n"
        "        return M(src_ip=0)\n"
        "    def key(self, meta):\n"
        "        return meta.src_ip\n"
        "    def transition(self, value, meta):\n"
        "        t = time.time()  # scrlint: disable=all\n"
        "        return value, Verdict.TX\n"
    )
    report = lint_source(source, path="p.py")
    assert report.ok
    assert report.suppressed == 1


def test_index_parses_kinds():
    idx = SuppressionIndex(
        "# scrlint: disable-file=SCR003\n"
        "x = 1  # scrlint: disable=SCR001,SCR005\n"
    )
    assert idx.file_rules == {"SCR003"}
    assert idx.line_rules[2] == frozenset({"SCR001", "SCR005"})


def test_suppressions_do_not_leak_to_other_lines():
    source = (
        "from repro.programs.base import PacketMetadata, PacketProgram, Verdict\n"
        "import time\n"
        "class M(PacketMetadata):\n"
        "    FORMAT = '!I'\n"
        "    FIELDS = ('src_ip',)\n"
        "class P(PacketProgram):\n"
        "    metadata_cls = M\n"
        "    def extract_metadata(self, pkt):\n"
        "        return M(src_ip=0)\n"
        "    def key(self, meta):\n"
        "        return meta.src_ip\n"
        "    def transition(self, value, meta):\n"
        "        a = time.time()  # scrlint: disable=SCR001\n"
        "        b = time.time()\n"
        "        return value, Verdict.TX\n"
    )
    report = lint_source(source, path="p.py")
    assert report.suppressed == 1
    assert len([f for f in report.findings if f.rule == "SCR001"]) == 1
