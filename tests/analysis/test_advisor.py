"""The pure technique advisor (repro.analysis.advisor)."""

import pytest

from repro.analysis.advisor import (
    ADVICE_SCHEMA,
    ADVISOR_TECHNIQUES,
    WorkloadProfile,
    advise_program,
    eligible_techniques,
)
from repro.analysis.dataflow import FieldFacts, ProgramFacts
from repro.cpu import TABLE4_PARAMS


def make_facts(**overrides):
    base = dict(
        class_name="X", program_name="x", path="x.py", line=1,
        key_locality="flow_local",
        key_fields=("src_ip", "dst_ip", "src_port", "dst_port", "proto"),
        metadata_bytes=8, bidirectional=False, has_global_state=False,
        needs_locks=False, multi_key=False,
        fields=(FieldFacts(field="value", kinds=("add",), reads_old=True),),
        declared_commutative=("value",),
    )
    base.update(overrides)
    return ProgramFacts(**base)


COSTS = TABLE4_PARAMS["ddos"]


def test_eligibility_drops_rss_for_global_and_multikey_state():
    # eligible_techniques covers the *measurable* purebreds; hybrid's
    # workload-dependent eligibility is decided inside advise_program.
    assert eligible_techniques(make_facts()) == \
        tuple(t for t in ADVISOR_TECHNIQUES if t != "hybrid")
    for kwargs in ({"has_global_state": True}, {"multi_key": True}):
        eligible = eligible_techniques(make_facts(**kwargs))
        assert "rss" not in eligible
        assert set(eligible) == {"scr", "relaxed_scr", "shared"}


def test_hybrid_needs_flow_placeable_state():
    # Global/multi-entry state rules out the RSS half of the hybrid.
    advice = advise_program(make_facts(has_global_state=True), COSTS,
                            workload=WorkloadProfile(flow_count=10_000))
    hybrid = advice.score("hybrid")
    assert not hybrid.eligible
    assert "rss" in hybrid.reason.lower() or "state" in hybrid.reason.lower()


def test_hybrid_needs_enough_concurrent_flows():
    advice = advise_program(make_facts(), COSTS,
                            workload=WorkloadProfile(flow_count=46))
    hybrid = advice.score("hybrid")
    assert not hybrid.eligible
    assert "46" in hybrid.reason


def test_hybrid_wins_zipf_many_flow_workloads():
    """Mice-heavy traffic at high core counts: the hybrid's predicted
    curve must beat pure SCR (it skips the mice's history replay)."""
    workload = WorkloadProfile(hot_key_share=0.2, flow_count=100_000)
    advice = advise_program(make_facts(), COSTS, workload=workload,
                            cores=(1, 2, 4, 8))
    hybrid, scr = advice.score("hybrid"), advice.score("scr")
    assert hybrid.eligible
    assert hybrid.mlffr_mpps[-1] > scr.mlffr_mpps[-1]


def test_scr_curve_matches_appendix_a():
    advice = advise_program(make_facts(), COSTS, cores=(1, 2, 4, 8))
    scr = advice.score("scr")
    for k, mpps in zip(scr.cores, scr.mlffr_mpps):
        assert mpps == pytest.approx(k * 1e3 / (COSTS.t + (k - 1) * COSTS.c2))


def test_relaxed_curve_prunes_history_when_commutative():
    advice = advise_program(make_facts(), COSTS, cores=(1, 2, 8))
    relaxed = advice.score("relaxed_scr")
    for k, mpps in zip(relaxed.cores, relaxed.mlffr_mpps):
        expected = k * 1e3 / (COSTS.t + min(k - 1, 1) * COSTS.c2)
        assert mpps == pytest.approx(expected)
    assert relaxed.at(8) > advice.score("scr").at(8)


def test_relaxed_degenerates_for_non_commutative_state():
    facts = make_facts(
        fields=(FieldFacts(field="value", kinds=("rmw",), reads_old=True),),
        declared_commutative=None,
    )
    advice = advise_program(facts, COSTS, cores=(1, 4, 8))
    assert advice.score("relaxed_scr").mlffr_mpps == \
        advice.score("scr").mlffr_mpps
    assert "degenerates" in advice.score("relaxed_scr").reason


def test_rss_gated_by_busiest_core_share():
    balanced = WorkloadProfile(rss_core_shares={4: 0.25})
    elephant = WorkloadProfile(rss_core_shares={4: 1.0})
    a_bal = advise_program(make_facts(), COSTS, balanced, cores=(1, 4))
    a_ele = advise_program(make_facts(), COSTS, elephant, cores=(1, 4))
    per_pkt = COSTS.d + COSTS.c1
    assert a_bal.score("rss").at(4) == pytest.approx(1e3 / (0.25 * per_pkt))
    assert a_ele.score("rss").at(4) == pytest.approx(1e3 / per_pkt)


def test_rss_share_floors_at_perfect_balance():
    w = WorkloadProfile(rss_core_shares={8: 0.01})
    assert w.rss_share(8) == pytest.approx(1.0 / 8)
    assert w.rss_share(1) == 1.0
    # Missing entries fall back to the elephant worst case.
    assert WorkloadProfile(hot_key_share=0.9).rss_share(4) == 0.9


def test_winner_decided_at_largest_core_count():
    advice = advise_program(make_facts(), COSTS, cores=(4, 1, 2))
    assert advice.decision_cores == 4
    assert advice.recommended == max(
        (s for s in advice.scores if s.eligible), key=lambda s: s.at(4)
    ).technique


def test_shared_curve_zero_hot_share_has_no_serialization_bound():
    # A stateless-ish profile must not divide by zero.
    facts = make_facts(needs_locks=False)
    advice = advise_program(
        facts, COSTS, WorkloadProfile(hot_key_share=0.0), cores=(1, 4)
    )
    assert advice.score("shared").at(4) > 0


def test_invalid_cores_rejected():
    with pytest.raises(ValueError):
        advise_program(make_facts(), COSTS, cores=())
    with pytest.raises(ValueError):
        advise_program(make_facts(), COSTS, cores=(0, 2))


def test_to_dict_shape():
    advice = advise_program(make_facts(), COSTS, cores=(1, 2))
    payload = advice.to_dict()
    assert payload["schema"] == ADVICE_SCHEMA
    assert payload["recommended"] == advice.recommended
    assert {s["technique"] for s in payload["scores"]} == set(ADVISOR_TECHNIQUES)
    assert payload["facts"]["program"] == "x"
