"""The AST module model: imports, classification, layouts, closures."""

from repro.analysis import ModuleModel
from repro.programs.base import SCR_DETERMINISTIC_METHODS, SCR_PURE_METHODS


def model(source: str) -> ModuleModel:
    return ModuleModel.from_source("m.py", source)


def test_import_table_resolves_aliases():
    m = model(
        "import time as t\n"
        "from os import urandom\n"
        "import numpy.random\n"
    )
    assert m.imports["t"] == "time"
    assert m.imports["urandom"] == "os.urandom"
    # ``import numpy.random`` binds the top-level package name.
    assert m.imports["numpy"] == "numpy.random"


def test_origin_of_resolves_through_aliases():
    import ast

    m = model("import time as t\nx = t.monotonic()\n")
    call = next(n for n in ast.walk(m.tree) if isinstance(n, ast.Call))
    assert m.call_origin(call) == "time.monotonic"


def test_program_classification_follows_in_module_chain():
    m = model(
        "from repro.programs.base import PacketProgram\n"
        "class A(PacketProgram):\n"
        "    pass\n"
        "class B(A):\n"
        "    pass\n"
        "class C:\n"
        "    pass\n"
    )
    names = {c.name for c in m.program_classes()}
    assert names == {"A", "B"}


def test_metadata_layout_inherits_from_in_module_parent():
    m = model(
        "from repro.programs.base import PacketMetadata\n"
        "class Parent(PacketMetadata):\n"
        "    FORMAT = '!IH'\n"
        "    FIELDS = ('a', 'b')\n"
        "class Child(Parent):\n"
        "    pass\n"
    )
    child = m.classes["Child"]
    fmt, fields = m.metadata_layout(child)
    assert fmt == "!IH"
    assert fields == ("a", "b")


def test_method_closure_walks_self_calls():
    m = model(
        "from repro.programs.base import PacketProgram\n"
        "class P(PacketProgram):\n"
        "    def transition(self, value, meta):\n"
        "        return self._a(value)\n"
        "    def _a(self, v):\n"
        "        return self._b(v)\n"
        "    def _b(self, v):\n"
        "        return v\n"
        "    def unrelated(self):\n"
        "        return 0\n"
    )
    closure = m.method_closure(m.classes["P"], SCR_PURE_METHODS)
    assert [meth.name for meth in closure] == ["transition", "_a", "_b"]


def test_mutable_globals_skip_constants_and_dunders():
    m = model(
        "__all__ = ['x']\n"
        "LIMIT = 5\n"
        "NAMES = ('a',)\n"
        "_cache = {}\n"
        "_log = list()\n"
    )
    assert set(m.mutable_globals()) == {"_cache", "_log"}


def test_contract_markers_cover_the_three_pure_pieces():
    # The machine-readable contract in programs/base.py is what the rules
    # consume; losing a method there silently weakens the analyzer.
    assert {"extract_metadata", "key", "transition"} <= set(
        SCR_DETERMINISTIC_METHODS
    )
    assert "transition" in SCR_PURE_METHODS
