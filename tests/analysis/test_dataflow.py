"""The state-access dataflow classifier (repro.analysis.dataflow)."""

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_path
from repro.analysis.dataflow import FACTS_SCHEMA, FieldFacts, facts_report
from repro.perf.advise import all_program_facts, program_facts

from .conftest import fixture_path

GOLDEN = Path(__file__).parent / "golden_state_facts.json"


@pytest.fixture(scope="module")
def fixture_facts():
    facts = analyze_path(fixture_path("fixture_dataflow.py"))
    return {f.program_name: f for f in facts}


# -- fixture pairs: one per access category ----------------------------------


def test_commutative_counter(fixture_facts):
    f = fixture_facts["fx_counter"]
    assert f.key_locality == "flow_local"
    assert f.written_fields == ("value",)
    assert f.field("value").kinds == ("add",)
    assert f.all_commutative
    assert f.declared_commutative == ("value",)


def test_non_commutative_rmw(fixture_facts):
    f = fixture_facts["fx_rmw"]
    assert f.field("value").kinds == ("rmw",)
    assert not f.all_commutative


def test_cross_flow_key(fixture_facts):
    f = fixture_facts["fx_cross_flow"]
    assert f.key_locality == "cross_flow"
    assert f.key_fields == ("src_ip",)
    assert f.all_commutative


def test_monotonic_max(fixture_facts):
    f = fixture_facts["fx_max"]
    assert f.field("value").kinds == ("max",)
    assert f.field("value").monotonic
    assert f.all_commutative
    assert f.key_locality == "flow_local"


# -- field-level properties ---------------------------------------------------


def test_identity_only_field_not_commutative():
    # A field that is only ever carried over unchanged was never *written*
    # commutatively; declaring it commutative would be vacuous.
    f = FieldFacts(field="x", kinds=("identity",), reads_old=True)
    assert not f.commutative and not f.monotonic


def test_mixed_kinds_join_to_non_commutative():
    f = FieldFacts(field="x", kinds=("add", "overwrite"), reads_old=True)
    assert not f.commutative


def test_facts_report_schema():
    report = facts_report([fixture_path("fixture_dataflow.py")])
    assert report["schema"] == FACTS_SCHEMA
    assert {p["program"] for p in report["programs"]} == {
        "fx_counter", "fx_rmw", "fx_cross_flow", "fx_max",
    }


# -- the real zoo against the committed golden facts --------------------------


def _normalized(facts):
    d = facts.to_dict()
    d.pop("path")
    d.pop("line")
    return d


def test_zoo_matches_golden_state_facts():
    """Any change to a program's derived facts must be a conscious one:
    regenerate the golden file when the classification legitimately moves."""
    golden = json.loads(GOLDEN.read_text())
    assert golden["schema"] == FACTS_SCHEMA
    derived = {
        name: _normalized(f) for name, f in all_program_facts().items()
    }
    golden_rows = {row["program"]: row for row in golden["programs"]}
    assert set(derived) == set(golden_rows)
    for name in sorted(derived):
        assert derived[name] == golden_rows[name], name


def test_declared_commutative_matches_derived_for_zoo():
    """Every shipped declaration is provable (SCR007's clean-state case)."""
    for name, facts in all_program_facts().items():
        if facts.declared_commutative is None:
            continue
        assert set(facts.declared_commutative) == {
            f.field for f in facts.fields if f.commutative
        }, name


def test_program_facts_unknown_name():
    with pytest.raises(Exception):
        program_facts("no_such_program")
