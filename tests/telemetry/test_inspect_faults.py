"""The inspect fault/divergence/recovery section, including graceful
degradation on telemetry directories written before fault events existed."""

from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EV_DIVERGENCE,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_SPRAY,
    EV_UNRECOVERABLE,
)
from repro.telemetry.inspect import summarize_artifact


def _write(tmp_path, emit):
    tele = Telemetry()
    emit(tele.tracer)
    tele.write_artifact(tmp_path, command="chaos", num_cores=4)


class TestFaultSection:
    def test_fault_events_summarized(self, tmp_path):
        def emit(tracer):
            tracer.emit("fault.drop", ts_ns=1.0, index=3)
            tracer.emit("fault.drop", ts_ns=2.0, index=9)
            tracer.emit(EV_QUARANTINE, ts_ns=3.0, core=1, seq=10,
                        missing=2, invalid_rows=0)
            tracer.emit(EV_RESYNC, ts_ns=4.0, core=1, seq=10,
                        checkpoint_seq=0, replayed=9)
            tracer.emit(EV_DIVERGENCE, ts_ns=5.0, index=15, cores=[2],
                        blast_radius=1, first=True)
            tracer.emit(EV_UNRECOVERABLE, ts_ns=6.0, core=3, seq=20)

        _write(tmp_path, emit)
        text = summarize_artifact(tmp_path)
        assert "fault injection & recovery" in text
        assert "fault.drop" in text and "2" in text
        assert "first divergence: packet index 15" in text
        assert "core 1: 1 round(s), 9 pkts replayed" in text
        assert "unrecoverable cores: 3" in text

    def test_no_fault_events_no_section(self, tmp_path):
        _write(tmp_path, lambda tracer: tracer.emit(EV_SPRAY, ts_ns=1.0,
                                                    core=0, seq=1))
        text = summarize_artifact(tmp_path)
        assert "fault injection" not in text

    def test_missing_events_file_is_graceful(self, tmp_path):
        # A hand-rolled or truncated artifact dir: manifest only.
        _write(tmp_path, lambda tracer: None)
        (tmp_path / "events.jsonl").unlink()
        text = summarize_artifact(tmp_path)  # must not raise
        assert "fault injection" not in text

    def test_malformed_event_lines_skipped(self, tmp_path):
        def emit(tracer):
            tracer.emit(EV_QUARANTINE, ts_ns=1.0, core=0, seq=5,
                        missing=1, invalid_rows=0)

        _write(tmp_path, emit)
        events = tmp_path / "events.jsonl"
        events.write_text(events.read_text() + "not json\n\n{broken\n")
        text = summarize_artifact(tmp_path)
        assert "fault injection & recovery" in text
