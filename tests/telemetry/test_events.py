"""Event tracer: ring retention, whole-run counts, no-op mode."""

from repro.telemetry.events import (
    EV_RING_DROP,
    EV_SPRAY,
    NULL_TRACER,
    Event,
    EventTracer,
)


def test_emit_and_read_back():
    tr = EventTracer()
    tr.emit(EV_SPRAY, ts_ns=10.0, core=2, seq=7)
    (ev,) = tr.events()
    assert ev.kind == EV_SPRAY
    assert ev.core == 2
    assert ev.fields["seq"] == 7
    d = ev.to_dict()
    assert d["ts_ns"] == 10.0 and d["seq"] == 7


def test_ring_bounds_retention_but_not_counts():
    tr = EventTracer(capacity=10)
    for i in range(100):
        tr.emit(EV_RING_DROP, ts_ns=float(i), core=0)
    assert len(tr.events()) == 10
    assert tr.emitted == 100
    assert tr.dropped == 90
    # Whole-run type counts are independent of ring retention.
    assert tr.type_counts[EV_RING_DROP] == 100


def test_virtual_clock_ratchets():
    tr = EventTracer()
    tr.emit(EV_SPRAY)                 # tick 1
    tr.emit(EV_SPRAY, ts_ns=500.0)    # real timestamp advances the clock
    tr.emit(EV_SPRAY)                 # tick 501
    ts = [e.ts_ns for e in tr.events()]
    assert ts == sorted(ts)
    assert ts[-1] > 500.0


def test_disabled_tracer_retains_nothing():
    tr = EventTracer(enabled=False)
    for _ in range(50):
        tr.emit(EV_SPRAY, core=1)
    assert tr.events() == []
    assert tr.emitted == 0
    assert tr.type_counts == {}


def test_null_tracer_is_disabled():
    assert not NULL_TRACER.enabled
    NULL_TRACER.emit(EV_SPRAY)  # harmless
    assert NULL_TRACER.events() == []


def test_cores_seen():
    tr = EventTracer()
    tr.emit(EV_SPRAY, core=0)
    tr.emit(EV_SPRAY, core=3)
    tr.emit(EV_SPRAY)  # systemwide, no core
    assert tr.cores_seen() == [0, 3]


def test_clear():
    tr = EventTracer()
    tr.emit(EV_SPRAY, core=0)
    tr.clear()
    assert tr.events() == [] and tr.emitted == 0


def test_event_slots():
    ev = Event(1.0, EV_SPRAY, 0, None, {})
    assert not hasattr(ev, "__dict__")
