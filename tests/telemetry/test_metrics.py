"""Metrics registry: instruments, percentile accuracy, exporters."""

import json

import pytest

from repro.telemetry.metrics import (
    NOOP_COUNTER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3.0}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_percentile_accuracy_uniform(self):
        h = Histogram("lat")
        for v in range(1, 10001):
            h.observe(float(v))
        # Log-bucketed: any quantile within the bucket growth's relative error.
        for q in (0.5, 0.9, 0.99):
            exact = q * 10000
            assert h.percentile(q) == pytest.approx(exact, rel=0.10)

    def test_endpoints_exact(self):
        h = Histogram("lat")
        for v in (3.0, 77.0, 1234.0):
            h.observe(v)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 1234.0

    def test_percentiles_keys(self):
        h = Histogram("lat")
        h.observe(5.0)
        ps = h.percentiles()
        assert set(ps) == {"p50", "p90", "p99", "p99_9"}

    def test_bounded_memory(self):
        h = Histogram("lat")
        for i in range(100_000):
            h.observe(1.0 + (i % 5000))
        # 1..5001 ns spans ~13 doublings -> ~8 buckets each at 2^(1/8).
        assert len(h.buckets) < 120

    def test_merge(self):
        a, b = Histogram("lat"), Histogram("lat")
        for v in (10.0, 20.0):
            a.observe(v)
        for v in (30.0, 40.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == 100.0
        assert a.min == 10.0 and a.max == 40.0

    def test_merge_growth_mismatch(self):
        with pytest.raises(ValueError):
            Histogram("a").merge(Histogram("b", growth=2.0))

    def test_empty(self):
        h = Histogram("lat")
        assert h.percentile(0.5) == 0.0
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["min"] == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram("lat").observe(-1.0)


class TestRegistry:
    def test_create_or_get(self):
        reg = MetricsRegistry()
        c1 = reg.counter("drops")
        c1.inc()
        assert reg.counter("drops") is c1
        assert reg.counter("drops").value == 1

    def test_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_disabled_hands_out_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("drops")
        assert c is NOOP_COUNTER
        c.inc(1000)  # no-op, no error
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_snapshot_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("drops").inc(3)
        reg.histogram("lat").observe(42.0)
        parsed = json.loads(reg.to_json())
        assert parsed["drops"]["value"] == 3
        assert parsed["lat"]["count"] == 1

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.gauge('mlffr_mpps{technique="scr",cores="4"}', help="rate").set(26.5)
        reg.histogram("lat").observe(100.0)
        text = reg.to_prometheus()
        assert '# TYPE mlffr_mpps gauge' in text
        assert 'mlffr_mpps{technique="scr",cores="4"} 26.5' in text
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert 'lat_count 1' in text

    def test_prometheus_histogram_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (10.0, 100.0, 1000.0):
            h.observe(v)
        lines = [l for l in reg.to_prometheus().splitlines()
                 if l.startswith("lat_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3


class TestPrometheusExposition:
    """Exposition-spec conformance: one HELP/TYPE block per base metric
    regardless of labelled children, and label-value escaping."""

    def test_type_and_help_once_per_base_with_labelled_children(self):
        reg = MetricsRegistry()
        reg.gauge('mlffr_mpps{technique="scr",cores="2"}', help="rate").set(16.0)
        reg.gauge('mlffr_mpps{technique="scr",cores="4"}').set(26.5)
        reg.gauge('mlffr_mpps{technique="so",cores="4"}').set(9.0)
        text = reg.to_prometheus()
        assert text.count("# TYPE mlffr_mpps gauge") == 1
        assert text.count("# HELP mlffr_mpps rate") == 1
        # All three children sample under the single block.
        assert text.count("mlffr_mpps{") == 3

    def test_help_precedes_type_precedes_first_sample(self):
        reg = MetricsRegistry()
        reg.counter('drops{cause="ring"}', help="drop count").inc(2)
        reg.counter('drops{cause="wire"}').inc(1)
        lines = reg.to_prometheus().splitlines()
        assert lines[0] == "# HELP drops drop count"
        assert lines[1] == "# TYPE drops counter"
        assert all(l.startswith("drops{") for l in lines[2:4])

    def test_help_taken_from_any_child_that_has_one(self):
        reg = MetricsRegistry()
        reg.counter('drops{cause="ring"}').inc(1)
        reg.counter('drops{cause="wire"}', help="drop count").inc(1)
        assert "# HELP drops drop count" in reg.to_prometheus()

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter('hits{path="C:\\\\dir",note="say \\"hi\\"\\nbye"}').inc(1)
        text = reg.to_prometheus()
        # Backslash, quote, and newline survive as their escaped forms --
        # the sample line itself must stay a single physical line.
        line = next(l for l in text.splitlines() if l.startswith("hits{"))
        assert '\\\\' in line and '\\"' in line and "\\n" in line
        assert "\n" not in line

    def test_help_text_escapes_newline_and_backslash(self):
        reg = MetricsRegistry()
        reg.gauge("g", help="line one\nline \\ two").set(1.0)
        text = reg.to_prometheus()
        assert "# HELP g line one\\nline \\\\ two" in text

    def test_histogram_children_share_one_block_with_le_labels(self):
        reg = MetricsRegistry()
        reg.histogram('lat{core="0"}').observe(10.0)
        reg.histogram('lat{core="1"}').observe(20.0)
        text = reg.to_prometheus()
        assert text.count("# TYPE lat histogram") == 1
        assert 'lat_bucket{core="0",le="+Inf"} 1' in text
        assert 'lat_bucket{core="1",le="+Inf"} 1' in text
        assert 'lat_count{core="0"} 1' in text


class TestMergeSnapshot:
    """Cross-process aggregation: merging a snapshot == merging the
    registry that produced it (the scenario executor's telemetry path)."""

    @staticmethod
    def _worker_registry():
        reg = MetricsRegistry()
        reg.counter("iters").inc(5)
        reg.gauge('mlffr_mpps{cores="2"}').set(16.25)
        h = reg.histogram("lat")
        for v in (10.0, 42.0, 42.0, 9000.0):
            h.observe(v)
        return reg

    def test_merge_into_empty_equals_source(self):
        src = self._worker_registry()
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_counters_accumulate_and_histograms_fold(self):
        dst = MetricsRegistry()
        dst.merge_snapshot(self._worker_registry().snapshot())
        dst.merge_snapshot(self._worker_registry().snapshot())
        snap = dst.snapshot()
        assert snap["iters"]["value"] == 10
        assert snap["lat"]["count"] == 8
        assert snap["lat"]["min"] == 10.0 and snap["lat"]["max"] == 9000.0
        # every bucket count exactly doubled
        single = self._worker_registry().snapshot()["lat"]["buckets"]
        assert snap["lat"]["buckets"] == [[ub, n * 2] for ub, n in single]

    def test_gauge_takes_latest(self):
        dst = MetricsRegistry()
        dst.gauge("g").set(1.0)
        src = MetricsRegistry()
        src.gauge("g").set(7.0)
        dst.merge_snapshot(src.snapshot())
        assert dst.gauge("g").value == 7.0

    def test_histogram_growth_mismatch_rejected(self):
        src = MetricsRegistry()
        src.histogram("lat", growth=4.0).observe(10.0)
        dst = MetricsRegistry()
        dst.histogram("lat")  # default growth
        with pytest.raises(ValueError):
            dst.merge_snapshot(src.snapshot())

    def test_disabled_registry_ignores(self):
        dst = MetricsRegistry(enabled=False)
        dst.merge_snapshot(self._worker_registry().snapshot())
        assert len(dst) == 0
