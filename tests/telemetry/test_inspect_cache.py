"""``scr-repro inspect`` section 2c: trace-cache effectiveness counters."""

import io

from repro.cli import main
from repro.telemetry import Telemetry
from repro.telemetry.inspect import summarize_artifact


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def _artifact(tmp_path, with_counters):
    tele = Telemetry()
    if with_counters:
        reg = tele.registry
        reg.counter("trace_cache_hits", help="").inc(3)
        reg.counter("trace_cache_misses", help="").inc(1)
        reg.counter("trace_cache_corrupt_evictions", help="").inc(0)
    out = tmp_path / "art"
    tele.write_artifact(out, command="test", config={}, num_cores=2)
    return out


class TestInspectCacheSection:
    def test_counters_shown(self, tmp_path):
        text = summarize_artifact(_artifact(tmp_path, with_counters=True))
        assert "trace cache: 3 hits, 1 misses (75% hit rate), " \
            "0 corrupt evictions" in text

    def test_graceful_note_when_absent(self, tmp_path):
        art = _artifact(tmp_path, with_counters=False)
        code, text = run_cli(["inspect", str(art)])
        assert code == 0  # graceful, never fatal
        assert "trace cache: counters not recorded" in text

    def test_mlffr_with_cache_dir_records_counters(self, tmp_path):
        code, _ = run_cli([
            "mlffr", "--packets", "400", "--cores", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--telemetry", str(tmp_path / "tele"),
        ])
        assert code == 0
        text = summarize_artifact(tmp_path / "tele")
        assert "trace cache:" in text
        assert "counters not recorded" not in text
        # first run on an empty cache: misses, no hits
        assert "misses" in text

    def test_without_cache_dir_notes_absence(self, tmp_path):
        code, _ = run_cli([
            "mlffr", "--packets", "400", "--cores", "2",
            "--telemetry", str(tmp_path / "tele"),
        ])
        assert code == 0
        text = summarize_artifact(tmp_path / "tele")
        assert "trace cache: counters not recorded" in text
