"""Exporter round-trips: JSONL and the Chrome trace_event format."""

import json

from repro.telemetry.events import EV_MLFFR_PROBE, EV_RING_DROP, EV_SERVICE, EventTracer
from repro.telemetry.exporters import (
    SYSTEM_TRACK,
    chrome_trace_dict,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
)


def sample_tracer():
    tr = EventTracer()
    tr.emit(EV_SERVICE, ts_ns=100.0, core=0, dur_ns=50.0, index=1)
    tr.emit(EV_RING_DROP, ts_ns=90.0, core=1, depth=256)
    tr.emit(EV_SERVICE, ts_ns=200.0, core=1, dur_ns=60.0, index=2)
    tr.emit(EV_MLFFR_PROBE, ts_ns=300.0, rate_pps=1e6, loss=0.0)
    return tr


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        tr = sample_tracer()
        path = events_to_jsonl(tr.events(), tmp_path / "ev.jsonl")
        rows = list(read_jsonl(path))
        assert len(rows) == 4
        assert {r["kind"] for r in rows} == {
            EV_SERVICE, EV_RING_DROP, EV_MLFFR_PROBE
        }
        # Custom fields flatten into the record.
        drop = next(r for r in rows if r["kind"] == EV_RING_DROP)
        assert drop["depth"] == 256 and drop["core"] == 1

    def test_every_line_is_valid_json(self, tmp_path):
        path = events_to_jsonl(sample_tracer().events(), tmp_path / "ev.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on malformed output

    def test_sorted_by_timestamp(self, tmp_path):
        # The ring drop was emitted second but timestamped earliest.
        path = events_to_jsonl(sample_tracer().events(), tmp_path / "ev.jsonl")
        ts = [r["ts_ns"] for r in read_jsonl(path)]
        assert ts == sorted(ts)
        assert ts[0] == 90.0


class TestChromeTrace:
    def test_file_is_valid_json(self, tmp_path):
        path = events_to_chrome_trace(
            sample_tracer().events(), tmp_path / "trace.json", num_cores=2
        )
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_one_track_per_core(self):
        doc = chrome_trace_dict(sample_tracer().events(), num_cores=4)
        names = {
            r["tid"]: r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        # One named track per simulated core plus the system track --
        # including idle cores 2 and 3 that emitted nothing.
        assert names == {
            SYSTEM_TRACK: "system",
            0: "core 0", 1: "core 1", 2: "core 2", 3: "core 3",
        }

    def test_spans_and_instants(self):
        doc = chrome_trace_dict(sample_tracer().events())
        body = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
        spans = [r for r in body if r["ph"] == "X"]
        instants = [r for r in body if r["ph"] == "i"]
        assert len(spans) == 2 and len(instants) == 2
        # ts/dur are microseconds in the trace_event format.
        svc = next(r for r in spans if r["tid"] == 0)
        assert svc["ts"] == 0.1 and svc["dur"] == 0.05

    def test_uncored_events_on_system_track(self):
        doc = chrome_trace_dict(sample_tracer().events())
        probe = next(
            r for r in doc["traceEvents"] if r["name"] == EV_MLFFR_PROBE
        )
        assert probe["tid"] == SYSTEM_TRACK

    def test_category_is_kind_prefix(self):
        doc = chrome_trace_dict(sample_tracer().events())
        cats = {r["name"]: r["cat"] for r in doc["traceEvents"] if "cat" in r}
        assert cats[EV_RING_DROP] == "nic"
        assert cats[EV_SERVICE] == "core"
