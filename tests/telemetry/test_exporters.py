"""Exporter round-trips: JSONL and the Chrome trace_event format."""

import json

from repro.telemetry.events import EV_MLFFR_PROBE, EV_RING_DROP, EV_SERVICE, EventTracer
from repro.telemetry.exporters import (
    SEQUENCER_TRACK,
    SYSTEM_TRACK,
    chrome_trace_dict,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
)


def sample_tracer():
    tr = EventTracer()
    tr.emit(EV_SERVICE, ts_ns=100.0, core=0, dur_ns=50.0, index=1)
    tr.emit(EV_RING_DROP, ts_ns=90.0, core=1, depth=256)
    tr.emit(EV_SERVICE, ts_ns=200.0, core=1, dur_ns=60.0, index=2)
    tr.emit(EV_MLFFR_PROBE, ts_ns=300.0, rate_pps=1e6, loss=0.0)
    return tr


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        tr = sample_tracer()
        path = events_to_jsonl(tr.events(), tmp_path / "ev.jsonl")
        rows = list(read_jsonl(path))
        assert len(rows) == 4
        assert {r["kind"] for r in rows} == {
            EV_SERVICE, EV_RING_DROP, EV_MLFFR_PROBE
        }
        # Custom fields flatten into the record.
        drop = next(r for r in rows if r["kind"] == EV_RING_DROP)
        assert drop["depth"] == 256 and drop["core"] == 1

    def test_every_line_is_valid_json(self, tmp_path):
        path = events_to_jsonl(sample_tracer().events(), tmp_path / "ev.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on malformed output

    def test_sorted_by_timestamp(self, tmp_path):
        # The ring drop was emitted second but timestamped earliest.
        path = events_to_jsonl(sample_tracer().events(), tmp_path / "ev.jsonl")
        ts = [r["ts_ns"] for r in read_jsonl(path)]
        assert ts == sorted(ts)
        assert ts[0] == 90.0


class TestChromeTrace:
    def test_file_is_valid_json(self, tmp_path):
        path = events_to_chrome_trace(
            sample_tracer().events(), tmp_path / "trace.json", num_cores=2
        )
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc

    def test_one_track_per_core(self):
        doc = chrome_trace_dict(sample_tracer().events(), num_cores=4)
        names = {
            r["tid"]: r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        # One named track per simulated core plus the system track --
        # including idle cores 2 and 3 that emitted nothing.
        assert names == {
            SYSTEM_TRACK: "system",
            0: "core 0", 1: "core 1", 2: "core 2", 3: "core 3",
        }

    def test_spans_and_instants(self):
        doc = chrome_trace_dict(sample_tracer().events())
        body = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
        spans = [r for r in body if r["ph"] == "X"]
        instants = [r for r in body if r["ph"] == "i"]
        assert len(spans) == 2 and len(instants) == 2
        # ts/dur are microseconds in the trace_event format.
        svc = next(r for r in spans if r["tid"] == 0)
        assert svc["ts"] == 0.1 and svc["dur"] == 0.05

    def test_uncored_events_on_system_track(self):
        doc = chrome_trace_dict(sample_tracer().events())
        probe = next(
            r for r in doc["traceEvents"] if r["name"] == EV_MLFFR_PROBE
        )
        assert probe["tid"] == SYSTEM_TRACK

    def test_category_is_kind_prefix(self):
        doc = chrome_trace_dict(sample_tracer().events())
        cats = {r["name"]: r["cat"] for r in doc["traceEvents"] if "cat" in r}
        assert cats[EV_RING_DROP] == "nic"
        assert cats[EV_SERVICE] == "core"


def flow_tracer():
    tr = EventTracer()
    tr.emit("scr.spray", ts_ns=100.0, index=1, core=2)
    tr.emit(EV_SERVICE, ts_ns=150.0, core=2, dur_ns=40.0, index=1)
    tr.emit("scr.spray", ts_ns=200.0, index=2, core=0)  # dropped: no service
    tr.emit(EV_SERVICE, ts_ns=250.0, core=1, dur_ns=40.0, index=7)  # no spray
    return tr


class TestDispatchFlows:
    def test_spray_renders_on_the_sequencer_track(self):
        doc = chrome_trace_dict(flow_tracer().events())
        sprays = [r for r in doc["traceEvents"] if r["name"] == "scr.spray"]
        assert sprays and all(r["tid"] == SEQUENCER_TRACK for r in sprays)
        names = {
            r["tid"]: r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        assert names[SEQUENCER_TRACK] == "sequencer"

    def test_flow_pair_links_spray_to_service(self):
        doc = chrome_trace_dict(flow_tracer().events())
        flows = [r for r in doc["traceEvents"] if r.get("cat") == "flow"]
        assert len(flows) == 2  # one start + one finish, for index 1 only
        start = next(r for r in flows if r["ph"] == "s")
        finish = next(r for r in flows if r["ph"] == "f")
        assert start["id"] == finish["id"] == 1
        assert start["name"] == finish["name"] == "scr.dispatch"
        assert start["tid"] == SEQUENCER_TRACK
        # The arrowhead binds to the enclosing service slice on core 2.
        assert finish["tid"] == 2 and finish["bp"] == "e"
        assert start["ts"] == 0.1 and finish["ts"] == 0.15

    def test_unmatched_halves_produce_no_arrow(self):
        tr = EventTracer()
        tr.emit("scr.spray", ts_ns=100.0, index=5, core=0)
        tr.emit(EV_SERVICE, ts_ns=150.0, core=0, dur_ns=10.0, index=6)
        doc = chrome_trace_dict(tr.events())
        assert not [r for r in doc["traceEvents"] if r.get("cat") == "flow"]

    def test_no_sequencer_track_without_sprays(self):
        doc = chrome_trace_dict(sample_tracer().events())
        tids = {r["tid"] for r in doc["traceEvents"]}
        assert SEQUENCER_TRACK not in tids
