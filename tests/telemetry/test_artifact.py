"""Run artifacts: the manifest round-trip and the full instrumented stack."""

import json

from repro.bench.runner import ExperimentRunner
from repro.telemetry import (
    EVENTS_NAME,
    MANIFEST_NAME,
    NULL_TELEMETRY,
    PROM_NAME,
    TRACE_NAME,
    RunArtifact,
    Telemetry,
)
from repro.telemetry.events import EV_SPRAY
from repro.telemetry.inspect import summarize_artifact


class TestTelemetryBundle:
    def test_write_and_load(self, tmp_path):
        tele = Telemetry()
        tele.registry.counter("drops").inc(3)
        tele.tracer.emit(EV_SPRAY, ts_ns=1.0, core=0, seq=1)
        art = tele.write_artifact(
            tmp_path, command="test", config={"cores": 2}, num_cores=2
        )
        for name in (MANIFEST_NAME, EVENTS_NAME, TRACE_NAME, PROM_NAME):
            assert (tmp_path / name).exists()
        loaded = RunArtifact.load(tmp_path)
        assert loaded.command == "test"
        assert loaded.config == {"cores": 2}
        assert loaded.event_type_counts == {EV_SPRAY: 1}
        assert loaded.metrics["registry"]["drops"]["value"] == 3
        assert loaded.git_sha == art.git_sha
        assert len(loaded.git_sha) in (7, 40) or loaded.git_sha == "unknown"

    def test_load_accepts_manifest_path(self, tmp_path):
        Telemetry().write_artifact(tmp_path, command="x")
        assert RunArtifact.load(tmp_path / MANIFEST_NAME).command == "x"

    def test_disabled_bundle_retains_nothing(self):
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.tracer.emit(EV_SPRAY, core=0)
        NULL_TELEMETRY.registry.counter("x").inc()
        assert NULL_TELEMETRY.tracer.events() == []
        assert NULL_TELEMETRY.tracer.emitted == 0
        assert len(NULL_TELEMETRY.registry) == 0


class TestInstrumentedSweep:
    """ISSUE acceptance: a Fig. 6-style point with --telemetry semantics."""

    def run_point(self, tmp_path):
        tele = Telemetry()
        runner = ExperimentRunner(max_packets=1200, telemetry=tele)
        res = runner.mlffr_point("ddos", "caida", "scr", 4)
        art = tele.write_artifact(
            tmp_path,
            command="mlffr",
            config={"cores": 4},
            extra_metrics={
                "counters": runner.last_counters,
                "latency_ns": runner.last_latency_ns,
            },
            num_cores=4,
        )
        return res, art

    def test_attribution_sums_to_busy(self, tmp_path):
        _, art = self.run_point(tmp_path)
        counters = art.metrics["counters"]
        for core in counters["cores"]:
            parts = (core["dispatch_ns"] + core["compute_ns"]
                     + core["wait_ns"] + core["transfer_ns"])
            assert parts == core["busy_ns"]
        totals = counters["totals"]
        parts = (totals["dispatch_ns"] + totals["compute_ns"]
                 + totals["wait_ns"] + totals["transfer_ns"])
        assert parts == totals["busy_ns"]
        assert totals["busy_ns"] == sum(
            c["busy_ns"] for c in counters["cores"]
        )

    def test_at_least_five_event_types(self, tmp_path):
        _, art = self.run_point(tmp_path)
        assert len(art.event_type_counts) >= 5

    def test_jsonl_and_trace_valid(self, tmp_path):
        self.run_point(tmp_path)
        ts = []
        for line in (tmp_path / EVENTS_NAME).read_text().splitlines():
            ts.append(json.loads(line)["ts_ns"])
        assert ts == sorted(ts)
        doc = json.loads((tmp_path / TRACE_NAME).read_text())
        core_tracks = {
            r["tid"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and isinstance(r["tid"], int)
        }
        assert core_tracks == {0, 1, 2, 3}

    def test_latency_percentiles_recorded(self, tmp_path):
        _, art = self.run_point(tmp_path)
        lat = art.metrics["latency_ns"]
        assert lat["p50"] <= lat["p99"] <= lat["p99_9"]
        assert lat["p50"] > 0

    def test_mlffr_counters_frozen_at_best_probe(self, tmp_path):
        res, art = self.run_point(tmp_path)
        # The engine keeps mutating its counters during later probes; the
        # best result's snapshot must reflect the reported rate's run.
        best = res.result_at_mlffr
        assert best is not None
        assert best.counters.total_packets() == sum(
            c["packets"] for c in art.metrics["counters"]["cores"]
        )

    def test_inspect_renders(self, tmp_path):
        self.run_point(tmp_path)
        text = summarize_artifact(tmp_path)
        assert "per-core time attribution" in text
        assert "p99" in text
        assert "mlffr_mpps" in text
