"""Satellite regressions: charge_packet typing and the snapshot schema."""

import typing

import pytest

from repro.cpu.counters import CoreCounters, SystemCounters


class TestChargePacketAnnotation:
    def test_program_ns_is_optional(self):
        # Regression: the default-None parameter was annotated as a bare
        # float; it must be Optional[float].
        hints = typing.get_type_hints(CoreCounters.charge_packet)
        assert hints["program_ns"] == typing.Optional[float]

    def test_default_program_ns_includes_stalls_excludes_dispatch(self):
        c = CoreCounters()
        c.charge_packet(100.0, 40.0, wait_ns=25.0, transfer_ns=10.0)
        # BPF-profiling semantics: the program's latency is compute plus
        # in-program stalls (lock spinning, line transfers) but never the
        # driver's dispatch path.
        assert c.mean_compute_latency_ns == pytest.approx(75.0)
        c.charge_packet(100.0, 40.0)  # second packet, no stalls
        assert c.mean_compute_latency_ns == pytest.approx((75.0 + 40.0) / 2)

    def test_explicit_program_ns_wins(self):
        c = CoreCounters()
        c.charge_packet(100.0, 40.0, wait_ns=25.0, program_ns=33.0)
        assert c.mean_compute_latency_ns == pytest.approx(33.0)


class TestSnapshotSchema:
    def make(self):
        sc = SystemCounters(cores=[CoreCounters(core_id=i) for i in range(2)])
        sc.cores[0].charge_packet(100.0, 50.0, l2_misses=0.5)
        sc.cores[0].charge_packet(100.0, 60.0, wait_ns=20.0)
        sc.cores[1].charge_packet(100.0, 50.0, transfer_ns=30.0)
        return sc

    def test_per_core_attribution_sums_to_busy(self):
        for core in self.make().snapshot()["cores"]:
            parts = (core["dispatch_ns"] + core["compute_ns"]
                     + core["wait_ns"] + core["transfer_ns"])
            assert parts == pytest.approx(core["busy_ns"])

    def test_totals_match_per_core(self):
        snap = self.make().snapshot()
        totals = snap["totals"]
        assert totals["packets"] == sum(c["packets"] for c in snap["cores"])
        assert totals["busy_ns"] == pytest.approx(
            sum(c["busy_ns"] for c in snap["cores"])
        )

    def test_properties_stay_thin_views(self):
        # snapshot() must not cache: mutate after snapshotting and the
        # properties (and a fresh snapshot) follow.
        sc = self.make()
        before = sc.snapshot()["totals"]["packets"]
        sc.cores[0].charge_packet(100.0, 50.0)
        assert sc.total_packets() == before + 1
        assert sc.snapshot()["totals"]["packets"] == before + 1

    def test_snapshot_is_json_safe(self):
        import json

        json.dumps(self.make().snapshot())  # raises on non-serializable
