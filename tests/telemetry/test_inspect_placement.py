"""``scr-repro inspect`` section 2d: placement & tenancy counters."""

import io

from repro.cli import main
from repro.telemetry import Telemetry
from repro.telemetry.inspect import summarize_artifact


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def _artifact(tmp_path, technique, with_counters):
    tele = Telemetry()
    if with_counters:
        labels = f'technique="{technique}"'
        reg = tele.registry
        reg.counter("placement_promotions{%s}" % labels, help="").inc(3)
        reg.counter("placement_migrations{%s}" % labels, help="").inc(4)
        reg.counter(
            "placement_tenant_quota_drops_total{%s}" % labels, help=""
        ).inc(2)
    out = tmp_path / "art"
    tele.write_artifact(out, command="test",
                        config={"technique": technique}, num_cores=2)
    return out


class TestInspectPlacementSection:
    def test_counters_shown_for_hybrid_runs(self, tmp_path):
        text = summarize_artifact(_artifact(tmp_path, "hybrid", True))
        assert "placement & tenancy" in text
        assert "flows promoted to the SCR path" in text
        assert "state entries refused by tenant quota" in text

    def test_hybrid_artifact_without_counters_gets_note(self, tmp_path):
        art = _artifact(tmp_path, "hybrid", False)
        code, text = run_cli(["inspect", str(art)])
        assert code == 0  # graceful on pre-placement artifacts
        assert "placement: counters not recorded" in text

    def test_purebred_artifact_skips_section_silently(self, tmp_path):
        art = _artifact(tmp_path, "scr", False)
        code, text = run_cli(["inspect", str(art)])
        assert code == 0
        assert "placement" not in text

    def test_end_to_end_hybrid_mlffr_artifact(self, tmp_path):
        code, _ = run_cli([
            "mlffr", "--program", "ddos", "--workload", "univ_dc",
            "--technique", "hybrid", "--cores", "2", "--packets", "400",
            "--flows", "30", "--telemetry", str(tmp_path / "tele"),
        ])
        assert code == 0
        text = summarize_artifact(tmp_path / "tele")
        assert "placement & tenancy" in text
        assert "placement_promotions" in text
