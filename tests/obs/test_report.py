"""The report dashboard: input classification, section rendering,
byte-determinism, and graceful degradation on pre-slo artifacts."""

import json
import shutil

import pytest

from repro.hostprof.artifact import HostProfile
from repro.hostprof.clock import PhaseClock
from repro.obs.report import classify_inputs, render_report, write_report
from repro.obs.sampling import SpanSampler
from repro.obs.spans import SpanEmitter
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EV_FAULT_DROP,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_RING_DROP,
    EV_WIRE_DROP,
)


def _artifact_dir(tmp_path, name="run1", with_faults=True):
    tele = Telemetry()
    spans = SpanEmitter(tele.tracer, SpanSampler(7, 1.0))
    tracer = tele.tracer
    for i in range(4):
        spans.emit("nic_arrival", i, ts_ns=10.0 * i)
        spans.emit("ring_enqueue", i, ts_ns=10.0 * i + 2.0, core=i % 2)
        spans.emit("core_pop", i, ts_ns=10.0 * i + 4.0, core=i % 2)
        spans.emit("transition", i, ts_ns=10.0 * i + 6.0, core=i % 2,
                   dur_ns=3.0)
    tracer.emit(EV_WIRE_DROP, ts_ns=3.0, index=9)
    tracer.emit(EV_RING_DROP, ts_ns=4.0, core=0, index=10, depth=8)
    if with_faults:
        tracer.emit(EV_FAULT_DROP, ts_ns=5.0, core=1, index=11)
        tracer.emit(EV_QUARANTINE, ts_ns=8.0, core=1, seq=12)
        tracer.emit(EV_RESYNC, ts_ns=11.0, core=1, seq=12, replayed=4)
    out = tmp_path / name
    tele.write_artifact(out, command="test", config={"seed": 7}, num_cores=2)
    return out


def _bench_file(tmp_path, name="BENCH_demo.json"):
    path = tmp_path / name
    path.write_text(json.dumps({
        "schema": "scr-repro/bench-artifact/v1",
        "name": "demo",
        "git_sha": "deadbeef",
        "series": {
            "mlffr": {
                "unit": "mpps", "direction": "higher_better",
                "points": [
                    {"x": 1, "median": 9.0, "mad": 0.0},
                    {"x": 2, "median": 16.0, "mad": 0.1},
                    {"x": 4, "median": 26.0, "mad": 0.2},
                ],
            },
            "stringly_x": {
                "unit": "mpps", "direction": "higher_better",
                "points": [
                    {"x": "0.01", "median": 20.0, "mad": 0.0},
                    {"x": "0.02", "median": 18.0, "mad": 0.0},
                ],
            },
        },
    }, sort_keys=True))
    return path


def _hostprof_dir(tmp_path, name="hp1"):
    clock = PhaseClock(enabled=True)
    clock.push("scenario.run")
    clock.push("trace.synthesize")
    clock.pop()
    clock.push("mlffr.search")
    clock.push("sim.run")
    clock.pop()
    clock.pop()
    clock.pop()
    profile = HostProfile.create("profile", {"cores": 2}, clock)
    profile.save(tmp_path / name)
    return tmp_path / name


class TestClassifyInputs:
    def test_splits_dirs_bench_and_hostprof(self, tmp_path):
        art = _artifact_dir(tmp_path)
        bench = _bench_file(tmp_path)
        hp = _hostprof_dir(tmp_path)
        dirs, files, profs = classify_inputs([art, bench, hp])
        assert dirs == [art] and files == [bench]
        assert profs == [hp / "hostprof.json"]

    def test_hostprof_file_classified_by_schema(self, tmp_path):
        hp = _hostprof_dir(tmp_path)
        _, _, profs = classify_inputs([hp / "hostprof.json"])
        assert profs == [hp / "hostprof.json"]

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            classify_inputs([tmp_path / "nope"])

    def test_dir_without_manifest_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError):
            classify_inputs([tmp_path / "empty"])

    def test_json_with_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError):
            classify_inputs([bad])


class TestSections:
    def test_faulted_artifact_renders_all_sections(self, tmp_path):
        html = render_report([_artifact_dir(tmp_path), _bench_file(tmp_path)])
        assert "drop-cause Pareto" in html
        assert "recovery SLOs" in html
        assert "sampled packet waterfalls" in html
        assert "bench artifact" in html
        assert "mlffr" in html

    def test_string_x_series_still_charts(self, tmp_path):
        html = render_report([_bench_file(tmp_path)])
        assert html.count("<polyline") == 2

    def test_self_contained(self, tmp_path):
        html = render_report([_artifact_dir(tmp_path)])
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html

    def test_embeds_only_the_basename(self, tmp_path):
        html = render_report([_artifact_dir(tmp_path)])
        assert "run1" in html
        assert str(tmp_path) not in html

    def test_hostprof_panel_renders(self, tmp_path):
        html = render_report([_hostprof_dir(tmp_path)])
        assert "host profile" in html
        assert "host wall-clock Pareto" in html
        assert "phase flamegraph" in html
        assert "class=\"flamegraph\"" in html
        assert "trace.synthesize" in html and "sim.run" in html

    def test_hostprof_render_deterministic(self, tmp_path):
        hp = _hostprof_dir(tmp_path)
        assert render_report([hp]) == render_report([hp])


class TestByteDeterminism:
    def test_render_twice_identical(self, tmp_path):
        inputs = [_artifact_dir(tmp_path), _bench_file(tmp_path)]
        assert render_report(inputs) == render_report(inputs)

    def test_identical_bytes_from_a_copied_tree(self, tmp_path):
        # Same inputs under a different parent directory (the CI serial
        # vs --jobs layout) must render the same bytes.
        art = _artifact_dir(tmp_path / "a")
        bench = _bench_file(tmp_path / "a")
        (tmp_path / "b").mkdir()
        shutil.copytree(art, tmp_path / "b" / art.name)
        shutil.copy(bench, tmp_path / "b" / bench.name)
        first = render_report([art, bench])
        second = render_report(
            [tmp_path / "b" / art.name, tmp_path / "b" / bench.name]
        )
        assert first == second

    def test_write_report_writes_render_output(self, tmp_path):
        art = _artifact_dir(tmp_path)
        out = write_report([art], tmp_path / "r.html")
        assert out.read_text() == render_report([art])


class TestPreSloGrace:
    def _strip_slo(self, art):
        manifest = art / "manifest.json"
        data = json.loads(manifest.read_text())
        assert "slo" in data
        del data["slo"]
        manifest.write_text(json.dumps(data))

    def test_report_notes_missing_slo(self, tmp_path):
        art = _artifact_dir(tmp_path)
        self._strip_slo(art)
        html = render_report([art])
        assert "not recorded" in html

    def test_inspect_notes_missing_slo(self, tmp_path):
        from repro.telemetry.inspect import summarize_artifact

        art = _artifact_dir(tmp_path)
        self._strip_slo(art)
        text = summarize_artifact(art)  # must not raise
        assert "not recorded" in text

    def test_faultfree_artifact_has_no_slo_and_no_note(self, tmp_path):
        art = _artifact_dir(tmp_path, with_faults=False)
        data = json.loads((art / "manifest.json").read_text())
        assert "slo" not in data
        html = render_report([art])
        assert "not recorded" not in html
