"""Span sampling determinism: the sampled index set is a pure function of
(seed, rate) — independent of query order, probe rate, process, and of
whether faults fire."""

import multiprocessing
import random

import pytest

from repro.obs.sampling import SpanSampler, sample_unit, splitmix64


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_64_bit_range(self):
        for x in (0, 1, 7, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_distinct_inputs_distinct_outputs(self):
        outs = {splitmix64(i) for i in range(1000)}
        assert len(outs) == 1000


class TestSampleUnit:
    def test_unit_interval(self):
        for i in range(500):
            assert 0.0 <= sample_unit(7, i) < 1.0

    def test_seed_changes_values(self):
        a = [sample_unit(1, i) for i in range(64)]
        b = [sample_unit(2, i) for i in range(64)]
        assert a != b


class TestSpanSampler:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SpanSampler(0, -0.1)
        with pytest.raises(ValueError):
            SpanSampler(0, 1.5)

    def test_query_order_irrelevant(self):
        s = SpanSampler(7, 0.1)
        indices = list(range(2000))
        forward = {i for i in indices if s.sampled(i)}
        random.Random(3).shuffle(indices)
        shuffled = {i for i in indices if s.sampled(i)}
        assert forward == shuffled

    def test_two_instances_agree(self):
        # No per-instance state: a worker process rebuilding the sampler
        # from (seed, rate) makes identical decisions.
        a = SpanSampler(7, 0.05).sampled_indices(3000)
        b = SpanSampler(7, 0.05).sampled_indices(3000)
        assert a == b

    def test_sampled_indices_matches_pointwise(self):
        s = SpanSampler(9, 0.2)
        assert s.sampled_indices(500) == [i for i in range(500) if s.sampled(i)]

    def test_rate_monotone_nesting(self):
        # Raising the rate only adds indices — the probe-rate-independence
        # property: a low-rate sample is a subset of every higher-rate one.
        lo = set(SpanSampler(7, 0.02).sampled_indices(5000))
        hi = set(SpanSampler(7, 0.10).sampled_indices(5000))
        assert lo <= hi

    def test_rate_roughly_honored(self):
        n = 20000
        hits = len(SpanSampler(7, 0.05).sampled_indices(n))
        assert 0.03 * n < hits < 0.07 * n

    def test_trace_ids_stable_and_nonzero(self):
        s = SpanSampler(7, 1.0)
        assert s.trace_id(11) == s.trace_id(11)
        assert s.trace_id(11) != s.trace_id(12)
        assert all(s.trace_id(i) != 0 for i in range(100))

    def test_zero_rate_samples_nothing(self):
        assert SpanSampler(7, 0.0).sampled_indices(1000) == []

    def test_full_rate_samples_everything(self):
        assert SpanSampler(7, 1.0).sampled_indices(100) == list(range(100))


def _child_sample(args):
    seed, rate, count = args
    return SpanSampler(seed, rate).sampled_indices(count)


class TestProcessIndependence:
    def test_same_set_in_a_worker_process(self):
        # The executor's serial-equals-parallel guarantee, at the sampler
        # level: a worker rebuilding the sampler from the spec alone picks
        # the same packets as the parent.
        parent = SpanSampler(7, 0.05).sampled_indices(2000)
        with multiprocessing.Pool(1) as pool:
            child = pool.map(_child_sample, [(7, 0.05, 2000)])[0]
        assert parent == child
