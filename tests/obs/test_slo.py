"""The SLO reducer: unit folds over crafted event streams, and the
ground-truth check against the PR-5 chaos harness — resynced fault
classes get finite TTD/TTR, non-recovering ones report fork/unrecoverable."""

from repro.faults.harness import run_chaos
from repro.faults.spec import FaultSpec
from repro.obs.slo import GAP_OPENING_KINDS, SLO_SCHEMA, compute_slo
from repro.telemetry.events import (
    EV_DIVERGENCE,
    EV_FAST_FORWARD,
    EV_FAULT_DROP,
    EV_FAULT_KILL,
    EV_FAULT_TRUNCATE,
    EV_GAP_DETECTED,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_UNRECOVERABLE,
    EventTracer,
)


def _ev(kind, ts, **fields):
    return {"kind": kind, "ts_ns": ts, **fields}


class TestReducerUnit:
    def test_no_fault_events_returns_none(self):
        assert compute_slo([]) is None
        assert compute_slo([_ev("core.service", 1.0, core=0)]) is None

    def test_quarantine_resync_path(self):
        slo = compute_slo([
            _ev(EV_FAULT_DROP, 10.0, core=1, index=3),
            _ev(EV_QUARANTINE, 30.0, core=1, seq=4),
            _ev(EV_RESYNC, 50.0, core=1, seq=4, replayed=7),
        ])
        assert slo["schema"] == SLO_SCHEMA
        assert slo["gaps"]["injected"] == 1
        assert slo["gaps"]["detected"] == 1
        assert slo["gaps"]["resynced"] == 1
        assert slo["ttd_ns"] == {
            "count": 1, "p50": 20.0, "p99": 20.0, "max": 20.0, "mean": 20.0,
        }
        assert slo["ttr_ns"]["p50"] == 40.0
        assert slo["packets_degraded"]["p50"] == 7.0
        assert slo["cores_affected"] == [1]
        assert slo["unrecoverable_cores"] == []

    def test_fast_forward_covers_with_ttr_equal_ttd(self):
        slo = compute_slo([
            _ev(EV_FAULT_DROP, 5.0, core=0, index=1),
            _ev(EV_FAST_FORWARD, 8.0, core=0, seq=2, length=3),
        ])
        assert slo["gaps"]["covered"] == 1
        assert slo["ttd_ns"]["p50"] == 3.0
        assert slo["ttr_ns"]["p50"] == 3.0
        assert slo["packets_degraded"]["p50"] == 3.0

    def test_gap_detected_forks_without_ttr(self):
        slo = compute_slo([
            _ev(EV_FAULT_DROP, 5.0, core=2, index=1),
            _ev(EV_GAP_DETECTED, 9.0, core=2, seq=2),
        ])
        assert slo["gaps"]["forked"] == 1
        assert slo["ttd_ns"]["count"] == 1
        assert slo["ttr_ns"]["count"] == 0

    def test_unrecoverable_core_reports_no_ttr(self):
        slo = compute_slo([
            _ev(EV_FAULT_DROP, 5.0, core=3, index=1),
            _ev(EV_QUARANTINE, 8.0, core=3, seq=2),
            _ev(EV_UNRECOVERABLE, 9.0, core=3, seq=2),
        ])
        assert slo["gaps"]["unrecoverable"] == 1
        assert slo["gaps"]["resynced"] == 0
        assert slo["ttr_ns"]["count"] == 0
        assert slo["unrecoverable_cores"] == [3]

    def test_gap_on_killed_core_is_undetected(self):
        slo = compute_slo([
            _ev(EV_FAULT_KILL, 1.0, core=0, index=0),
            _ev(EV_FAULT_DROP, 2.0, core=0, index=1),
        ])
        assert slo["gaps"]["undetected"] == 1
        assert slo["ttd_ns"]["count"] == 0

    def test_open_gap_at_end_is_undetected(self):
        slo = compute_slo([_ev(EV_FAULT_DROP, 2.0, core=0, index=1)])
        assert slo["gaps"]["undetected"] == 1

    def test_coreless_truncation_closed_by_any_detection(self):
        slo = compute_slo([
            _ev(EV_FAULT_TRUNCATE, 4.0, seq=9),
            _ev(EV_QUARANTINE, 10.0, core=2, seq=9),
            _ev(EV_RESYNC, 12.0, core=2, seq=9),
        ])
        assert slo["gaps"]["injected"] == 1
        assert slo["gaps"]["detected"] == 1
        assert slo["gaps"]["resynced"] == 1

    def test_blast_radius_from_divergence_events(self):
        slo = compute_slo([
            _ev(EV_FAULT_DROP, 1.0, core=0, index=1),
            _ev(EV_DIVERGENCE, 2.0, index=5, blast_radius=2),
        ])
        assert slo["blast_radius"] == {
            "count": 1, "p50": 2.0, "p99": 2.0, "max": 2.0, "mean": 2.0,
        }

    def test_events_reduce_identically_regardless_of_input_order(self):
        events = [
            _ev(EV_FAULT_DROP, 10.0, core=1, index=3),
            _ev(EV_QUARANTINE, 30.0, core=1, seq=4),
            _ev(EV_RESYNC, 50.0, core=1, seq=4, replayed=7),
        ]
        assert compute_slo(events) == compute_slo(list(reversed(events)))


def _chaos_slo(spec, recovery=True):
    tracer = EventTracer(capacity=200_000)
    outcome = run_chaos("port_knocking", spec, num_cores=4,
                        max_packets=800, recovery=recovery, tracer=tracer)
    slo = compute_slo(e.to_dict() for e in tracer.events())
    return outcome, slo


class TestChaosGroundTruth:
    def test_resynced_drop_class_has_finite_ttd_and_ttr(self):
        outcome, slo = _chaos_slo(FaultSpec(seed=7, drop_rate=0.02))
        assert outcome.resyncs > 0
        assert slo["gaps"]["injected"] > 0
        assert slo["gaps"]["undetected"] == 0
        assert slo["gaps"]["resynced"] + slo["gaps"]["covered"] > 0
        assert slo["ttd_ns"]["count"] > 0
        assert slo["ttr_ns"]["count"] > 0
        assert slo["unrecoverable_cores"] == []

    def test_truncate_class_matches_harness_gap_count(self):
        outcome, slo = _chaos_slo(FaultSpec(seed=11, truncate_rate=0.01))
        assert slo["gaps"]["injected"] == outcome.injected["truncations"]
        # Truncations that never gap a replica are benign, not undetected.
        assert slo["gaps"]["undetected"] == 0
        assert slo["gaps"]["detected"] + slo["gaps"]["benign"] == \
            slo["gaps"]["injected"]
        if outcome.gap_events:
            assert slo["ttd_ns"]["count"] > 0

    def test_no_recovery_forks_instead_of_resyncing(self):
        outcome, slo = _chaos_slo(FaultSpec(seed=7, drop_rate=0.02),
                                  recovery=False)
        assert not outcome.recovery_enabled
        assert slo["gaps"]["resynced"] == 0
        assert slo["gaps"]["forked"] + slo["gaps"]["covered"] > 0

    def test_detected_count_matches_harness_ground_truth(self):
        outcome, slo = _chaos_slo(FaultSpec(seed=7, drop_rate=0.02))
        # Every gap event the harness says was detected must be accounted
        # for by the reducer as detected (covered / quarantined / forked).
        assert outcome.gap_events_detected == outcome.gap_events
        assert slo["gaps"]["injected"] == (
            slo["gaps"]["detected"] + slo["gaps"]["undetected"]
            + slo["gaps"]["unrecoverable"] + slo["gaps"]["benign"]
        )

    def test_gap_opening_kinds_cover_the_injectable_losses(self):
        assert EV_FAULT_DROP in GAP_OPENING_KINDS
        assert EV_FAULT_TRUNCATE in GAP_OPENING_KINDS
