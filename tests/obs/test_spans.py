"""SpanEmitter: the parent-linked span triple, id determinism, the
disabled singleton, and the faulted-vs-clean twin property end-to-end."""

import pytest

from repro.bench.mlffr import find_mlffr
from repro.cpu.simulator import PerfTrace, simulate
from repro.faults.plan import FaultPlan
from repro.faults.spec import FaultSpec
from repro.obs.sampling import SpanSampler
from repro.obs.spans import (
    NULL_SPANS,
    SPAN_PARENT,
    SPAN_STAGES,
    SpanEmitter,
    span_id,
    span_kind,
)
from repro.parallel.registry import make_engine
from repro.programs.registry import make_program
from repro.telemetry.events import EventTracer
from repro.traffic.distributions import TRACE_DISTRIBUTIONS
from repro.traffic.synthesis import synthesize_trace


def _emitter(rate=1.0, seed=7):
    tracer = EventTracer()
    return SpanEmitter(tracer, SpanSampler(seed, rate)), tracer


class TestStageGraph:
    def test_every_stage_has_a_parent_entry(self):
        assert set(SPAN_PARENT) == set(SPAN_STAGES)

    def test_parents_are_stages_and_acyclic(self):
        for stage, parent in SPAN_PARENT.items():
            if parent is not None:
                assert parent in SPAN_STAGES
            # Walking up always terminates at the root.
            seen = set()
            node = stage
            while node is not None:
                assert node not in seen
                seen.add(node)
                node = SPAN_PARENT[node]

    def test_root_is_nic_arrival(self):
        assert SPAN_PARENT["nic_arrival"] is None

    def test_span_ids_distinct_per_stage(self):
        ids = {span_id(12345, s) for s in SPAN_STAGES}
        assert len(ids) == len(SPAN_STAGES)


class TestSpanEmitter:
    def test_event_carries_the_trace_triple(self):
        spans, tracer = _emitter()
        spans.emit("nic_arrival", 5, ts_ns=10.0)
        spans.emit("ring_enqueue", 5, ts_ns=12.0, core=2, depth=1)
        ev_a, ev_b = tracer.events()
        trace = spans.sampler.trace_id(5)
        assert ev_a.kind == span_kind("nic_arrival")
        assert ev_a.fields["trace"] == trace
        assert ev_a.fields["span"] == span_id(trace, "nic_arrival")
        assert ev_a.fields["parent"] is None
        assert ev_b.fields["parent"] == span_id(trace, "nic_arrival")
        assert ev_b.fields["span"] == span_id(trace, "ring_enqueue")
        assert ev_b.core == 2

    def test_unknown_stage_raises(self):
        spans, _ = _emitter()
        with pytest.raises(ValueError):
            spans.emit("warp_drive", 0)

    def test_null_spans_disabled_and_silent(self):
        assert not NULL_SPANS.enabled
        assert not NULL_SPANS.sampled(0)
        NULL_SPANS.emit("nic_arrival", 0)  # no-op, must not raise

    def test_zero_rate_disables(self):
        spans, _ = _emitter(rate=0.0)
        assert not spans.enabled

    def test_disabled_tracer_disables(self):
        from repro.telemetry.events import NULL_TRACER

        spans = SpanEmitter(NULL_TRACER, SpanSampler(7, 1.0))
        assert not spans.enabled

    def test_ids_do_not_depend_on_emission_order(self):
        a, tr_a = _emitter()
        b, tr_b = _emitter()
        a.emit("nic_arrival", 1)
        a.emit("nic_arrival", 2)
        b.emit("nic_arrival", 2)
        b.emit("nic_arrival", 1)
        ids_a = {e.fields["index"]: e.fields["span"] for e in tr_a.events()}
        ids_b = {e.fields["index"]: e.fields["span"] for e in tr_b.events()}
        assert ids_a == ids_b


def _perf_trace(program="ddos", packets=600, seed=7):
    trace = synthesize_trace(
        TRACE_DISTRIBUTIONS["univ_dc"](), 20, seed=seed, max_packets=packets
    )
    return PerfTrace.from_trace(trace, make_program(program))


def _run(pt, faults=None, rate_pps=5e6):
    tracer = EventTracer()
    spans = SpanEmitter(tracer, SpanSampler(7, 0.1))
    engine = make_engine("scr", make_program("ddos"), 4)
    simulate(pt, rate_pps, engine, tracer=tracer, faults=faults, spans=spans)
    return tracer


class TestEndToEnd:
    def test_sampled_set_identical_faulted_vs_clean(self):
        # The twin property: the faulted run traces exactly the packets
        # the clean run traces (sampling never reads fault state).
        pt = _perf_trace()
        clean = _run(pt)
        faulted = _run(pt, faults=FaultPlan(FaultSpec(seed=7, drop_rate=0.05)))

        def arrivals(tracer):
            return {e.fields["index"] for e in tracer.events()
                    if e.kind == span_kind("nic_arrival")}

        assert arrivals(clean) == arrivals(faulted)

    def test_sampled_set_identical_across_offered_rates(self):
        pt = _perf_trace()
        slow = _run(pt, rate_pps=2e6)
        fast = _run(pt, rate_pps=20e6)
        kinds = lambda t: {e.fields["index"] for e in t.events()
                           if e.kind == span_kind("nic_arrival")}
        assert kinds(slow) == kinds(fast)

    def test_parent_links_resolve_within_each_trace(self):
        pt = _perf_trace()
        tracer = _run(pt)
        by_trace = {}
        for e in tracer.events():
            if e.kind.startswith("span."):
                by_trace.setdefault(e.fields["trace"], set()).add(
                    e.fields["span"]
                )
        checked = 0
        for e in tracer.events():
            if e.kind.startswith("span.") and e.fields["parent"] is not None:
                assert e.fields["parent"] in by_trace[e.fields["trace"]]
                checked += 1
        assert checked > 0

    def test_spans_do_not_change_the_mlffr(self):
        # The observational guarantee the BENCH_obs_overhead gate pins:
        # tracing at any rate reproduces the untraced MLFFR exactly.
        pt = _perf_trace(packets=400)
        plain = find_mlffr(pt, make_engine("scr", make_program("ddos"), 2))
        tracer = EventTracer()
        spans = SpanEmitter(tracer, SpanSampler(7, 0.5))
        traced = find_mlffr(
            pt, make_engine("scr", make_program("ddos"), 2),
            tracer=tracer, spans=spans,
        )
        assert traced.mlffr_mpps == plain.mlffr_mpps
        assert any(e.kind.startswith("span.") for e in tracer.events())
