"""CLI subcommands, exercised through main() with a captured stream."""

import io

import pytest

from repro.cli import build_parser, main
from repro.traffic import Trace, read_pcap


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_programs_lists_table1_and_extensions():
    code, text = run_cli(["programs"])
    assert code == 0
    for name in ("ddos", "conntrack", "token_bucket"):
        assert name in text
    assert ("extensions: forwarder, load_balancer, nat, peak_meter, "
            "sampler, spreader, victim_monitor") in text


def test_synthesize_scrt(tmp_path):
    out_file = tmp_path / "t.scrt"
    code, text = run_cli([
        "synthesize", "--workload", "caida", "--flows", "10",
        "--packets", "400", "--out", str(out_file),
    ])
    assert code == 0
    trace = Trace.load(out_file)
    assert len(trace) > 0
    assert str(out_file) in text


def test_synthesize_pcap(tmp_path):
    out_file = tmp_path / "t.pcap"
    code, _ = run_cli([
        "synthesize", "--workload", "univ_dc", "--flows", "5",
        "--packets", "200", "--out", str(out_file),
    ])
    assert code == 0
    assert len(read_pcap(out_file)) > 0


def test_run_verifies_consistency():
    code, text = run_cli([
        "run", "--program", "ddos", "--cores", "3",
        "--workload", "univ_dc", "--flows", "10", "--packets", "300",
    ])
    assert code == 0
    assert "replicas consistent: True" in text
    assert "matches single-threaded reference: True" in text


def test_run_with_loss_recovery():
    code, text = run_cli([
        "run", "--program", "port_knocking", "--cores", "4",
        "--packets", "400", "--loss-rate", "0.05",
    ])
    assert code == 0
    assert "replicas consistent: True" in text


def test_run_from_trace_file(tmp_path):
    out_file = tmp_path / "t.scrt"
    run_cli(["synthesize", "--flows", "8", "--packets", "300",
             "--out", str(out_file)])
    code, text = run_cli([
        "run", "--program", "heavy_hitter", "--cores", "2",
        "--trace-file", str(out_file),
    ])
    assert code == 0
    assert "replicas consistent: True" in text


def test_mlffr_prints_mpps():
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--technique", "scr",
        "--cores", "2", "--packets", "1500",
    ])
    assert code == 0
    assert "Mpps" in text


def test_sweep_with_csv(tmp_path):
    csv_path = tmp_path / "sweep.csv"
    code, text = run_cli([
        "sweep", "--program", "ddos", "--techniques", "scr", "rss",
        "--cores", "1", "2", "--packets", "1500", "--csv", str(csv_path),
    ])
    assert code == 0
    assert "scr (Mpps)" in text
    content = csv_path.read_text()
    assert content.startswith("technique,cores,mlffr_mpps")
    assert content.count("\n") == 5  # header + 4 points


def test_hardware_capacity():
    code, text = run_cli(["hardware", "--rows", "64"])
    assert code == 0
    assert "44 32-bit history fields" in text
    assert "2637 LUTs" in text
    assert "timing @250 MHz: met" in text


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_program():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--program", "bogus"])


def test_validate_subcommand():
    code, text = run_cli(["validate", "--program", "token_bucket",
                          "--packets", "300"])
    assert code == 0
    assert "SCR-safe" in text


def test_validate_all_registered_programs():
    from repro.programs import program_names

    for name in program_names():
        code, _ = run_cli(["validate", "--program", name, "--packets", "200"])
        assert code == 0, name


def test_reproduce_list():
    code, text = run_cli(["reproduce", "list"])
    assert code == 0
    assert "Figure 6e" in text and "Figure 10a" in text


def test_reproduce_unknown_figure():
    code, text = run_cli(["reproduce", "99z"])
    assert code == 2
    assert "unknown figure" in text


def test_reproduce_figure_with_csv(tmp_path):
    csv_path = tmp_path / "fig1.csv"
    code, text = run_cli(["reproduce", "1", "--packets", "1500",
                          "--csv", str(csv_path)])
    assert code == 0
    assert "Figure 1" in text
    assert csv_path.read_text().startswith("cores,scr")


def test_run_rejects_missing_trace_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        run_cli(["run", "--program", "ddos",
                 "--trace-file", str(tmp_path / "missing.scrt")])


def test_run_rejects_garbage_trace_file(tmp_path):
    bad = tmp_path / "garbage.scrt"
    bad.write_bytes(b"not a trace at all")
    with pytest.raises(ValueError):
        run_cli(["run", "--program", "ddos", "--trace-file", str(bad)])


# -- telemetry (--telemetry DIR and the inspect subcommand) ----------------------


def test_run_with_telemetry_writes_artifact(tmp_path):
    tdir = tmp_path / "tele"
    code, text = run_cli([
        "run", "--program", "port_knocking", "--cores", "2",
        "--packets", "300", "--telemetry", str(tdir),
    ])
    assert code == 0
    assert "telemetry artifact" in text
    for name in ("manifest.json", "events.jsonl", "trace.json", "metrics.prom"):
        assert (tdir / name).exists()

    from repro.telemetry import RunArtifact

    art = RunArtifact.load(tdir)
    assert art.command == "run"
    assert art.config["program"] == "port_knocking"
    assert art.num_cores == 2
    assert art.metrics["registry"]["packets_offered"]["value"] == 300
    assert art.metrics["registry"]["replicas_consistent"]["value"] == 1.0


def test_mlffr_with_telemetry_records_probes(tmp_path):
    tdir = tmp_path / "tele"
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600", "--telemetry", str(tdir),
    ])
    assert code == 0
    assert "Mpps" in text

    from repro.telemetry import RunArtifact

    art = RunArtifact.load(tdir)
    assert art.event_type_counts.get("mlffr.probe", 0) >= 3
    assert "counters" in art.metrics
    assert "latency_ns" in art.metrics


def test_mlffr_without_telemetry_stays_quiet(capsys):
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600",
    ])
    assert code == 0
    assert "telemetry artifact" not in text


def test_inspect_summarizes_artifact(tmp_path):
    tdir = tmp_path / "tele"
    run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600", "--telemetry", str(tdir),
    ])
    code, text = run_cli(["inspect", str(tdir)])
    assert code == 0
    assert "per-core time attribution" in text
    assert "mlffr_mpps" in text
    assert "p99" in text


def test_inspect_missing_artifact(tmp_path):
    code, text = run_cli(["inspect", str(tmp_path / "nope")])
    assert code == 2
    assert "no run artifact" in text


def test_inspect_empty_directory(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    code, text = run_cli(["inspect", str(empty)])
    assert code == 2
    assert "empty" in text
    assert "--telemetry" in text
    assert "Traceback" not in text


def test_inspect_directory_without_manifest(tmp_path):
    tdir = tmp_path / "tele"
    tdir.mkdir()
    (tdir / "events.jsonl").write_text("{}\n")
    code, text = run_cli(["inspect", str(tdir)])
    assert code == 2
    assert "no manifest.json" in text


def test_inspect_corrupt_manifest(tmp_path):
    tdir = tmp_path / "tele"
    tdir.mkdir()
    (tdir / "manifest.json").write_text("{not json")
    code, text = run_cli(["inspect", str(tdir)])
    assert code == 2
    assert "malformed" in text


def test_report_renders_artifact_dashboard(tmp_path):
    tdir = tmp_path / "tele"
    run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600", "--telemetry", str(tdir),
        "--trace-sample", "0.2",
    ])
    out = tmp_path / "dash.html"
    code, text = run_cli(["report", str(tdir), "--out", str(out)])
    assert code == 0
    assert str(out) in text
    html = out.read_text()
    assert "drop-cause Pareto" in html or "no drops recorded" in html
    assert "sampled packet waterfalls" in html


def test_report_rejects_bad_input(tmp_path):
    code, text = run_cli([
        "report", str(tmp_path / "nope"),
        "--out", str(tmp_path / "dash.html"),
    ])
    assert code == 2
    assert "report error" in text
    assert not (tmp_path / "dash.html").exists()


# -- bench (perf-regression suite and compare gate) ------------------------------


def test_bench_list():
    code, text = run_cli(["bench", "--list"])
    assert code == 0
    for name in ("fig6_scaling", "engine_mlffr", "tail_latency",
                 "fig11_model_fit"):
        assert name in text


def test_bench_unknown_suite(tmp_path):
    code, text = run_cli(["bench", "--suite", "bogus",
                          "--out", str(tmp_path)])
    assert code == 2
    assert "unknown suite" in text


def test_bench_rejects_zero_reps(tmp_path):
    code, text = run_cli(["bench", "--suite", "fig11_model_fit",
                          "--reps", "0", "--out", str(tmp_path)])
    assert code == 2
    assert "--reps" in text


def test_bench_runs_suite_and_compares(tmp_path):
    from repro.perf import BENCH_SCHEMA, BenchArtifact

    old = tmp_path / "old"
    code, text = run_cli(["bench", "--suite", "fig11_model_fit",
                          "--reps", "1", "--out", str(old)])
    assert code == 0
    path = old / "BENCH_fig11_model_fit.json"
    assert path.exists()
    assert str(path) in text
    art = BenchArtifact.load(path)
    assert art.schema == BENCH_SCHEMA
    assert art.seed_policy["rep_seeds"] == [7]

    # A repeat run of the same code compares clean (exit 0).
    new = tmp_path / "new"
    code, _ = run_cli(["bench", "--suite", "fig11_model_fit",
                       "--reps", "1", "--out", str(new)])
    assert code == 0
    md = tmp_path / "report.md"
    code, text = run_cli(["bench", "--compare", str(old), str(new),
                          "--markdown", str(md)])
    assert code == 0
    assert "Overall: NEUTRAL" in text
    assert "Overall: NEUTRAL" in md.read_text()

    # A synthetic 10 % throughput regression trips the gate (exit 1).
    art = BenchArtifact.load(new / "BENCH_fig11_model_fit.json")
    scr = art.series["scr"]
    for p in scr.points:
        p.median *= 0.9
        p.reps = [v * 0.9 for v in p.reps]
    art.save(new)
    code, text = run_cli(["bench", "--compare", str(old), str(new)])
    assert code == 1
    assert "REGRESSION" in text


def test_bench_compare_schema_mismatch(tmp_path):
    from repro.perf import BenchArtifact

    from tests.perf.test_compare import artifact

    artifact({1: 9.0}).save(tmp_path / "old")
    bad = artifact({1: 9.0})
    bad.schema = "scr-repro/bench-artifact/v999"
    bad.save(tmp_path / "new")
    code, text = run_cli(["bench", "--compare", str(tmp_path / "old"),
                          str(tmp_path / "new")])
    assert code == 2
    assert "schema" in text


def test_bench_compare_missing_path(tmp_path):
    code, text = run_cli(["bench", "--compare", str(tmp_path / "a"),
                          str(tmp_path / "b")])
    assert code == 2
    assert "compare error" in text
