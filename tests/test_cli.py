"""CLI subcommands, exercised through main() with a captured stream."""

import io

import pytest

from repro.cli import build_parser, main
from repro.traffic import Trace, read_pcap


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_programs_lists_table1_and_extensions():
    code, text = run_cli(["programs"])
    assert code == 0
    for name in ("ddos", "conntrack", "token_bucket"):
        assert name in text
    assert "extensions: forwarder, load_balancer, nat, sampler" in text


def test_synthesize_scrt(tmp_path):
    out_file = tmp_path / "t.scrt"
    code, text = run_cli([
        "synthesize", "--workload", "caida", "--flows", "10",
        "--packets", "400", "--out", str(out_file),
    ])
    assert code == 0
    trace = Trace.load(out_file)
    assert len(trace) > 0
    assert str(out_file) in text


def test_synthesize_pcap(tmp_path):
    out_file = tmp_path / "t.pcap"
    code, _ = run_cli([
        "synthesize", "--workload", "univ_dc", "--flows", "5",
        "--packets", "200", "--out", str(out_file),
    ])
    assert code == 0
    assert len(read_pcap(out_file)) > 0


def test_run_verifies_consistency():
    code, text = run_cli([
        "run", "--program", "ddos", "--cores", "3",
        "--workload", "univ_dc", "--flows", "10", "--packets", "300",
    ])
    assert code == 0
    assert "replicas consistent: True" in text
    assert "matches single-threaded reference: True" in text


def test_run_with_loss_recovery():
    code, text = run_cli([
        "run", "--program", "port_knocking", "--cores", "4",
        "--packets", "400", "--loss-rate", "0.05",
    ])
    assert code == 0
    assert "replicas consistent: True" in text


def test_run_from_trace_file(tmp_path):
    out_file = tmp_path / "t.scrt"
    run_cli(["synthesize", "--flows", "8", "--packets", "300",
             "--out", str(out_file)])
    code, text = run_cli([
        "run", "--program", "heavy_hitter", "--cores", "2",
        "--trace-file", str(out_file),
    ])
    assert code == 0
    assert "replicas consistent: True" in text


def test_mlffr_prints_mpps():
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--technique", "scr",
        "--cores", "2", "--packets", "1500",
    ])
    assert code == 0
    assert "Mpps" in text


def test_sweep_with_csv(tmp_path):
    csv_path = tmp_path / "sweep.csv"
    code, text = run_cli([
        "sweep", "--program", "ddos", "--techniques", "scr", "rss",
        "--cores", "1", "2", "--packets", "1500", "--csv", str(csv_path),
    ])
    assert code == 0
    assert "scr (Mpps)" in text
    content = csv_path.read_text()
    assert content.startswith("technique,cores,mlffr_mpps")
    assert content.count("\n") == 5  # header + 4 points


def test_hardware_capacity():
    code, text = run_cli(["hardware", "--rows", "64"])
    assert code == 0
    assert "44 32-bit history fields" in text
    assert "2637 LUTs" in text
    assert "timing @250 MHz: met" in text


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_program():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--program", "bogus"])


def test_validate_subcommand():
    code, text = run_cli(["validate", "--program", "token_bucket",
                          "--packets", "300"])
    assert code == 0
    assert "SCR-safe" in text


def test_validate_all_registered_programs():
    from repro.programs import program_names

    for name in program_names():
        code, _ = run_cli(["validate", "--program", name, "--packets", "200"])
        assert code == 0, name


def test_reproduce_list():
    code, text = run_cli(["reproduce", "list"])
    assert code == 0
    assert "Figure 6e" in text and "Figure 10a" in text


def test_reproduce_unknown_figure():
    code, text = run_cli(["reproduce", "99z"])
    assert code == 2
    assert "unknown figure" in text


def test_reproduce_figure_with_csv(tmp_path):
    csv_path = tmp_path / "fig1.csv"
    code, text = run_cli(["reproduce", "1", "--packets", "1500",
                          "--csv", str(csv_path)])
    assert code == 0
    assert "Figure 1" in text
    assert csv_path.read_text().startswith("cores,scr")


def test_run_rejects_missing_trace_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        run_cli(["run", "--program", "ddos",
                 "--trace-file", str(tmp_path / "missing.scrt")])


def test_run_rejects_garbage_trace_file(tmp_path):
    bad = tmp_path / "garbage.scrt"
    bad.write_bytes(b"not a trace at all")
    with pytest.raises(ValueError):
        run_cli(["run", "--program", "ddos", "--trace-file", str(bad)])


# -- telemetry (--telemetry DIR and the inspect subcommand) ----------------------


def test_run_with_telemetry_writes_artifact(tmp_path):
    tdir = tmp_path / "tele"
    code, text = run_cli([
        "run", "--program", "port_knocking", "--cores", "2",
        "--packets", "300", "--telemetry", str(tdir),
    ])
    assert code == 0
    assert "telemetry artifact" in text
    for name in ("manifest.json", "events.jsonl", "trace.json", "metrics.prom"):
        assert (tdir / name).exists()

    from repro.telemetry import RunArtifact

    art = RunArtifact.load(tdir)
    assert art.command == "run"
    assert art.config["program"] == "port_knocking"
    assert art.num_cores == 2
    assert art.metrics["registry"]["packets_offered"]["value"] == 300
    assert art.metrics["registry"]["replicas_consistent"]["value"] == 1.0


def test_mlffr_with_telemetry_records_probes(tmp_path):
    tdir = tmp_path / "tele"
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600", "--telemetry", str(tdir),
    ])
    assert code == 0
    assert "Mpps" in text

    from repro.telemetry import RunArtifact

    art = RunArtifact.load(tdir)
    assert art.event_type_counts.get("mlffr.probe", 0) >= 3
    assert "counters" in art.metrics
    assert "latency_ns" in art.metrics


def test_mlffr_without_telemetry_stays_quiet(capsys):
    code, text = run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600",
    ])
    assert code == 0
    assert "telemetry artifact" not in text


def test_inspect_summarizes_artifact(tmp_path):
    tdir = tmp_path / "tele"
    run_cli([
        "mlffr", "--program", "ddos", "--workload", "caida",
        "--cores", "2", "--packets", "600", "--telemetry", str(tdir),
    ])
    code, text = run_cli(["inspect", str(tdir)])
    assert code == 0
    assert "per-core time attribution" in text
    assert "mlffr_mpps" in text
    assert "p99" in text


def test_inspect_missing_artifact(tmp_path):
    code, text = run_cli(["inspect", str(tmp_path / "nope")])
    assert code == 2
    assert "no run artifact" in text
