"""ScrCoreRuntime: the App. C fast-forward loop in isolation."""

import pytest

from repro.core import ScrCoreRuntime
from repro.packet import make_udp_packet
from repro.programs import make_program
from repro.sequencer import PacketHistorySequencer
from repro.state import StateMap


def make_setup(cores=3, program_name="ddos"):
    prog = make_program(program_name)
    seq = PacketHistorySequencer(prog, cores)
    runtimes = [
        ScrCoreRuntime(prog, core_id=i, codec=seq.codec, state=StateMap())
        for i in range(cores)
    ]
    return prog, seq, runtimes


def pkt(src, ts=0):
    return make_udp_packet(src, 2, 3, 4, timestamp_ns=ts)


def test_verdict_emitted_per_packet():
    prog, seq, runtimes = make_setup()
    sp = seq.process(pkt(1))
    outcomes = runtimes[sp.core].receive(sp.data)
    assert len(outcomes) == 1
    assert outcomes[0][0] == 1  # sequence number


def test_fast_forward_applies_missed_packets():
    prog, seq, runtimes = make_setup(cores=2)
    # seq1 → core0 (src 10), seq2 → core1 (src 10), seq3 → core0.
    for i in range(3):
        sp = seq.process(pkt(10))
        runtimes[sp.core].receive(sp.data)
    # core0 processed seqs 1,3 and fast-forwarded 2: its count must be 3.
    assert runtimes[0].state.lookup(10) == 3
    assert runtimes[0].history_applied == 1


def test_history_skips_already_applied_rows():
    """With more slots than cores, rows for already-seen sequences are
    skipped by sequence comparison, not reapplied."""
    prog = make_program("ddos")
    seq = PacketHistorySequencer(prog, 2, num_slots=6)
    runtimes = [
        ScrCoreRuntime(prog, core_id=i, codec=seq.codec, state=StateMap())
        for i in range(2)
    ]
    for _ in range(8):
        sp = seq.process(pkt(10))
        runtimes[sp.core].receive(sp.data)
    # core 1 processed the last packet (seq 8) so it is fully up to date;
    # core 0's last arrival was seq 7, leaving it one packet behind.
    assert runtimes[1].state.lookup(10) == 8
    assert runtimes[0].state.lookup(10) == 7


def test_gap_beyond_slots_raises_without_recovery():
    prog, seq, runtimes = make_setup(cores=2)
    sp1 = seq.process(pkt(1))
    runtimes[0].receive(sp1.data)
    # lose seqs 2..4 to this core (deliver none), then deliver seq 5 → the
    # 2-slot history cannot cover the gap.
    for _ in range(3):
        seq.process(pkt(1))
    sp5 = seq.process(pkt(1))
    with pytest.raises(RuntimeError, match="gap"):
        runtimes[0].receive(sp5.data)


def test_blocked_is_false_without_recovery():
    prog, seq, runtimes = make_setup()
    sp = seq.process(pkt(1))
    runtimes[sp.core].receive(sp.data)
    assert not runtimes[sp.core].blocked
    assert runtimes[sp.core].rx_backlog == 0


def test_counters_track_work():
    prog, seq, runtimes = make_setup(cores=2)
    for _ in range(6):
        sp = seq.process(pkt(9))
        runtimes[sp.core].receive(sp.data)
    assert runtimes[0].packets_processed == 3
    assert runtimes[0].history_applied == 2  # seq 3 and 5 fast-forwards
