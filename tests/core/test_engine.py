"""End-to-end functional SCR: the paper's correctness claims as tests.

Principle #1/#2: for every program and core count, the SCR run must produce
(i) mutually identical per-core replicas and (ii) exactly the verdicts and
final state of a single-threaded execution — with zero shared state.
Appendix B: the same holds under injected loss, modulo sequences that were
lost at every core (which all cores skip together, preserving atomicity).
"""

import pytest

from repro.core import ScrFunctionalEngine, reference_run
from repro.programs import make_program
from repro.state import StateMap
from repro.traffic import synthesize_trace, univ_dc_flow_sizes
from tests.conftest import STATEFUL_PROGRAMS, trace_for_program


def reference_excluding(program, trace, skipped):
    state = StateMap(capacity=4096)
    verdicts = {}
    for i, pkt in enumerate(trace, start=1):
        if i in skipped:
            continue
        verdicts[i] = program.process(state, pkt)
    return verdicts, state.snapshot()


@pytest.mark.parametrize("name", STATEFUL_PROGRAMS)
@pytest.mark.parametrize("cores", [1, 2, 3, 5, 8])
def test_scr_matches_single_threaded_reference(name, cores):
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(make_program(name), cores)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(name), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts


@pytest.mark.parametrize("name", STATEFUL_PROGRAMS)
def test_scr_with_recovery_lossfree_matches_reference(name):
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(make_program(name), 4, with_recovery=True)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(name), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts
    assert result.skipped == 0


@pytest.mark.parametrize("name", ["ddos", "conntrack", "token_bucket"])
@pytest.mark.parametrize("loss_rate", [0.01, 0.1, 0.3])
def test_scr_recovers_under_injected_loss(name, loss_rate):
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(
        make_program(name), 4, with_recovery=True, loss_rate=loss_rate, seed=99
    )
    result = engine.run(trace)
    assert result.replicas_consistent
    ref_verdicts, ref_state = reference_excluding(
        make_program(name), trace, result.skipped_seqs
    )
    lost = set(result.lost_seqs)
    # every delivered packet got the verdict the reference would give
    assert set(result.verdicts) == set(ref_verdicts) - lost
    assert all(result.verdicts[s] == ref_verdicts[s] for s in result.verdicts)
    if not result.blocked_cores:
        assert result.replica_snapshots[0] == ref_state


def test_loss_requires_recovery():
    with pytest.raises(ValueError, match="recovery"):
        ScrFunctionalEngine(make_program("ddos"), 2, loss_rate=0.1)


def test_invalid_loss_rate():
    with pytest.raises(ValueError):
        ScrFunctionalEngine(make_program("ddos"), 2, with_recovery=True, loss_rate=1.5)


def test_lost_packets_emit_no_verdict():
    prog = make_program("ddos")
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(
        make_program("ddos"), 3, with_recovery=True, loss_rate=0.2, seed=5
    )
    result = engine.run(trace)
    assert result.lost_seqs
    assert not set(result.lost_seqs) & set(result.verdicts)


def test_recovered_counts_reported():
    prog = make_program("port_knocking")
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(
        make_program("port_knocking"), 4, with_recovery=True, loss_rate=0.1, seed=3
    )
    result = engine.run(trace)
    assert result.recovered > 0


def test_deterministic_loss_injection():
    prog = make_program("ddos")
    trace = trace_for_program(prog)
    r1 = ScrFunctionalEngine(
        make_program("ddos"), 3, with_recovery=True, loss_rate=0.1, seed=42
    ).run(trace)
    r2 = ScrFunctionalEngine(
        make_program("ddos"), 3, with_recovery=True, loss_rate=0.1, seed=42
    ).run(trace)
    assert r1.lost_seqs == r2.lost_seqs
    assert r1.verdicts == r2.verdicts


def test_without_flush_tail_replicas_lag():
    """Replication is eventually consistent: the trailing k-1 packets are
    only on some cores until the next arrivals propagate them."""
    prog = make_program("ddos")
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(make_program("ddos"), 4)
    result = engine.run(trace, flush=False)
    snaps = result.replica_snapshots
    assert any(s != snaps[0] for s in snaps[1:])


def test_flush_does_not_change_verdict_count():
    prog = make_program("ddos")
    trace = trace_for_program(prog)
    result = ScrFunctionalEngine(make_program("ddos"), 4).run(trace)
    assert len(result.verdicts) == len(trace)
    assert result.offered == len(trace)


def test_num_slots_may_exceed_cores():
    """A fixed 16-row hardware ring feeding 3 cores still works: cores skip
    already-applied history by sequence."""
    prog = make_program("heavy_hitter")
    trace = trace_for_program(prog)
    engine = ScrFunctionalEngine(make_program("heavy_hitter"), 3, num_slots=16)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program("heavy_hitter"), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts


def test_slots_below_cores_rejected():
    with pytest.raises(ValueError, match="cannot cover"):
        ScrFunctionalEngine(make_program("ddos"), 4, num_slots=2)


def test_single_core_scr_degenerates_to_reference():
    prog = make_program("conntrack")
    trace = trace_for_program(prog)
    result = ScrFunctionalEngine(make_program("conntrack"), 1).run(trace)
    ref_verdicts, ref_state = reference_run(make_program("conntrack"), trace)
    assert result.verdicts == ref_verdicts
    assert result.replica_snapshots[0] == ref_state


def test_timestamps_come_from_sequencer_header():
    """§3.4 determinism: the token bucket sees the sequencer's timestamp, so
    replicas agree even though cores never read a local clock."""
    prog = make_program("token_bucket")
    trace = synthesize_trace(
        univ_dc_flow_sizes(), 10, seed=23, max_packets=400,
        mean_flow_interarrival_ns=100, intra_flow_gap_ns=3,
    )
    engine = ScrFunctionalEngine(make_program("token_bucket"), 5)
    result = engine.run(trace)
    assert result.replicas_consistent
    ref_verdicts, _ = reference_run(make_program("token_bucket"), trace)
    assert result.verdicts == ref_verdicts
