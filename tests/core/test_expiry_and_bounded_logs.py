"""Conntrack idle expiry (§3.4 timestamps) and bounded recovery logs (App. B)."""

import pytest

from repro.core import LossRecoveryManager, ScrFunctionalEngine, reference_run
from repro.packet import TCP_ACK, TCP_SYN, make_tcp_packet
from repro.programs import ConnectionTracker, TcpState, Verdict
from repro.state import StateMap
from repro.traffic import Trace

C_IP, S_IP = 0x0A000001, 0xAC100001
MS = 1_000_000


def client(flags, ts_ms, seq=0, ack=0):
    return make_tcp_packet(C_IP, S_IP, 40000, 443, flags, seq=seq, ack=ack,
                           timestamp_ns=ts_ms * MS)


def server(flags, ts_ms, seq=0, ack=0):
    return make_tcp_packet(S_IP, C_IP, 443, 40000, flags, seq=seq, ack=ack,
                           timestamp_ns=ts_ms * MS)


class TestConntrackExpiry:
    def test_stale_entry_expires_lazily(self):
        prog = ConnectionTracker(idle_timeout_ns=10 * MS)
        state = StateMap()
        prog.process(state, client(TCP_SYN, ts_ms=0, seq=1))
        assert len(state) == 1
        # 50 ms later, a stray mid-stream packet: the SYN_SENT entry has
        # expired, so this is judged as stateless (DROP) and reaped.
        assert prog.process(state, client(TCP_ACK, ts_ms=50)) == Verdict.DROP
        assert len(state) == 0

    def test_fresh_entry_not_expired(self):
        prog = ConnectionTracker(idle_timeout_ns=10 * MS)
        state = StateMap()
        prog.process(state, client(TCP_SYN, ts_ms=0, seq=1))
        prog.process(state, server(TCP_SYN | TCP_ACK, ts_ms=5, seq=9, ack=2))
        entry = list(state.snapshot().values())[0]
        assert entry.state == TcpState.SYN_RECV

    def test_expired_connection_can_restart(self):
        prog = ConnectionTracker(idle_timeout_ns=10 * MS)
        state = StateMap()
        prog.process(state, client(TCP_SYN, ts_ms=0, seq=1))
        assert prog.process(state, client(TCP_SYN, ts_ms=100, seq=77)) == Verdict.TX
        entry = list(state.snapshot().values())[0]
        assert entry.state == TcpState.SYN_SENT
        assert entry.last_seq == 77

    def test_no_timeout_means_no_expiry(self):
        prog = ConnectionTracker()
        state = StateMap()
        prog.process(state, client(TCP_SYN, ts_ms=0, seq=1))
        prog.process(state, client(TCP_ACK, ts_ms=10**6))
        assert len(state) == 1  # still tracked (and still SYN_SENT)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            ConnectionTracker(idle_timeout_ns=0)

    def test_expiry_replicates_deterministically(self):
        """Expiry depends only on sequencer timestamps, so SCR replicas
        agree on exactly which entries died."""
        pkts = [client(TCP_SYN, ts_ms=0, seq=1)]
        pkts += [client(TCP_ACK, ts_ms=40 + i) for i in range(6)]
        pkts += [client(TCP_SYN, ts_ms=60, seq=50)]
        trace = Trace(pkts)

        def fresh():
            return ConnectionTracker(idle_timeout_ns=10 * MS)

        engine = ScrFunctionalEngine(fresh(), num_cores=3)
        result = engine.run(trace)
        ref_verdicts, ref_state = reference_run(fresh(), trace)
        assert result.replicas_consistent
        assert result.replica_snapshots[0] == ref_state
        assert result.verdicts == ref_verdicts


class TestBoundedLogs:
    def metas(self, lo, hi):
        return {s: bytes([s % 251]) * 2 for s in range(lo, hi + 1)}

    def test_log_stays_within_capacity(self):
        mgr = LossRecoveryManager(2, window=2, log_capacity=8)
        for seq in range(1, 101):
            core = (seq - 1) % 2
            mgr.deliver(core, seq, self.metas(max(1, seq - 1), seq))
            mgr.try_advance(core)
        for core in (0, 1):
            live = [s for s in range(1, 101) if mgr.log_entry(core, s) is not None]
            assert len(live) <= 8

    def test_recovery_still_works_within_capacity(self):
        mgr = LossRecoveryManager(2, window=2, log_capacity=16)
        mgr.deliver(1, 2, self.metas(1, 2))
        mgr.try_advance(1)
        mgr.deliver(0, 3, self.metas(2, 3))  # core 0 missed seq 1
        entries, done = mgr.try_advance(0)
        assert done
        assert entries[0] == (1, bytes([1]) * 2)

    def test_capacity_must_exceed_window(self):
        with pytest.raises(ValueError, match="twice the window"):
            LossRecoveryManager(4, window=8, log_capacity=10)

    def test_unbounded_by_default(self):
        mgr = LossRecoveryManager(2, window=2)
        for seq in range(1, 51):
            core = (seq - 1) % 2
            mgr.deliver(core, seq, self.metas(max(1, seq - 1), seq))
            mgr.try_advance(core)
        assert mgr.log_entry(0, 1) is not None  # nothing pruned

    def test_end_to_end_with_bounded_logs(self):
        """A full SCR run with loss works with App. B's 1024-entry logs."""
        from repro.core.engine import ScrFunctionalEngine as Engine
        from repro.programs import make_program
        from tests.conftest import trace_for_program

        prog = make_program("ddos")
        trace = trace_for_program(prog)
        engine = Engine(make_program("ddos"), 4, with_recovery=True,
                        loss_rate=0.05, seed=31)
        engine.recovery.log_capacity = 1024
        for core in engine.cores:
            assert core.recovery is engine.recovery
        result = engine.run(trace)
        assert result.replicas_consistent


    def test_pruned_peer_entry_treated_as_lost_not_blocking(self):
        """A peer that is past a sequence but pruned it cannot supply the
        history; the reader must not wait on it forever."""
        mgr = LossRecoveryManager(2, window=2, log_capacity=4)
        # core 1 races far ahead, pruning everything old.
        for seq in range(2, 41, 2):
            mgr.deliver(1, seq, self.metas(seq - 1, seq))
            mgr.try_advance(1)
        assert mgr.log_entry(1, 2) is None  # pruned
        # core 0 only now receives seq 39: seqs 1..37 are gaps; the pruned
        # peer entries resolve (as LOST) rather than blocking.
        mgr.deliver(0, 39, self.metas(38, 39))
        entries, done = mgr.try_advance(0)
        assert done
        assert entries[-1][0] == 39
