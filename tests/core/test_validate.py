"""validate_program: the SCR-safety checker."""

import random
import time

import pytest

from repro.core.validate import validate_program
from repro.packet import make_udp_packet
from repro.programs import (
    PacketMetadata,
    PacketProgram,
    Verdict,
    make_program,
    program_names,
)
from repro.traffic import synthesize_trace, univ_dc_flow_sizes


@pytest.fixture(scope="module")
def sample_packets():
    trace = synthesize_trace(univ_dc_flow_sizes(), 10, seed=6, max_packets=300)
    return list(trace)


@pytest.mark.parametrize("name", sorted(set(program_names()) ))
def test_all_registered_programs_validate(name, sample_packets):
    report = validate_program(make_program(name), sample_packets)
    assert report.ok, (name, report.problems)
    assert report.packets_checked == len(sample_packets)


class _BadMeta(PacketMetadata):
    FORMAT = "!H"  # too small for a 32-bit source IP
    FIELDS = ("src_ip",)
    __slots__ = ("src_ip",)

    def pack(self):  # truncates, breaking the round trip
        import struct
        return struct.pack("!H", self.src_ip & 0xFFFF)


class _LossyMetadataProgram(PacketProgram):
    """Metadata drops high bits of the key — invalid for SCR."""

    name = "lossy"
    metadata_cls = _BadMeta

    def extract_metadata(self, pkt):
        return _BadMeta(src_ip=pkt.ip.src if pkt.is_ipv4 else 0)

    def key(self, meta):
        return meta.src_ip

    def transition(self, value, meta):
        return (value or 0) + 1, Verdict.TX


def test_detects_lossy_metadata():
    pkts = [make_udp_packet(0x12345678, 2, 3, 4)]
    report = validate_program(_LossyMetadataProgram(), pkts)
    assert not report.ok
    assert any("round-trip" in p or "key" in p for p in report.problems)


class _ClockProgram(_LossyMetadataProgram):
    """Reads the wall clock inside the transition — non-deterministic."""

    name = "clocky"

    def extract_metadata(self, pkt):
        return _BadMeta(src_ip=1)

    def transition(self, value, meta):
        return time.perf_counter_ns(), Verdict.TX


def test_detects_wall_clock_reads():
    report = validate_program(_ClockProgram(), [make_udp_packet(1, 2, 3, 4)])
    assert any("non-deterministic" in p for p in report.problems)


class _UnseededRandomProgram(_LossyMetadataProgram):
    name = "rand"

    def extract_metadata(self, pkt):
        return _BadMeta(src_ip=1)

    def transition(self, value, meta):
        return (value or 0), (Verdict.TX if random.random() < 0.5 else Verdict.DROP)


def test_detects_unseeded_randomness():
    pkts = [make_udp_packet(1, 2, 3, 4)] * 40
    report = validate_program(_UnseededRandomProgram(), pkts)
    assert not report.ok


class _HiddenGlobalProgram(_LossyMetadataProgram):
    """Keeps a counter on the program object — replicas diverge."""

    name = "hidden"

    def __init__(self):
        self.calls = 0

    def extract_metadata(self, pkt):
        return _BadMeta(src_ip=1)

    def transition(self, value, meta):
        self.calls += 1
        return self.calls, Verdict.TX


def test_detects_hidden_program_state():
    pkts = [make_udp_packet(1, 2, 3, 4)] * 10
    report = validate_program(_HiddenGlobalProgram(), pkts)
    assert any("replica" in p or "non-deterministic" in p for p in report.problems)


def test_report_fields():
    report = validate_program(make_program("ddos"), [make_udp_packet(1, 2, 3, 4)])
    assert report.program == "ddos"
    assert report.ok and report.problems == []
