"""SCR under real threads: interleaving-independence of the claims."""

import pytest

from repro.core import reference_run
from repro.core.threaded import ThreadedScrEngine
from repro.programs import make_program
from repro.state import StateMap
from repro.traffic import synthesize_trace, univ_dc_flow_sizes
from tests.conftest import STATEFUL_PROGRAMS, trace_for_program


@pytest.mark.parametrize("name", STATEFUL_PROGRAMS)
def test_threaded_matches_reference(name):
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = ThreadedScrEngine(make_program(name), num_cores=4)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(name), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts


def test_threaded_many_cores():
    prog = make_program("ddos")
    trace = trace_for_program(prog)
    result = ThreadedScrEngine(make_program("ddos"), num_cores=10).run(trace)
    _, ref_state = reference_run(make_program("ddos"), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state


def test_threaded_repeated_runs_identical():
    """Thread scheduling varies between runs; outcomes must not."""
    prog = make_program("token_bucket")
    trace = trace_for_program(prog)
    results = [
        ThreadedScrEngine(make_program("token_bucket"), num_cores=5).run(trace)
        for _ in range(3)
    ]
    assert results[0].verdicts == results[1].verdicts == results[2].verdicts
    assert (
        results[0].replica_snapshots[0]
        == results[1].replica_snapshots[0]
        == results[2].replica_snapshots[0]
    )


def test_threaded_with_recovery_under_loss():
    prog = make_program("port_knocking")
    trace = trace_for_program(prog)
    engine = ThreadedScrEngine(
        make_program("port_knocking"), num_cores=4,
        with_recovery=True, loss_rate=0.05, seed=13,
    )
    result = engine.run(trace)
    assert result.replicas_consistent
    assert result.lost_seqs
    assert result.recovered > 0
    # delivered verdicts equal the reference-minus-skipped stream
    def reference_excluding(skipped):
        state = StateMap(capacity=4096)
        verdicts = {}
        for i, pkt in enumerate(trace, start=1):
            if i in skipped:
                continue
            verdicts[i] = make_program("port_knocking").process(state, pkt)
        return verdicts

    ref = reference_excluding(result.skipped_seqs)
    lost = set(result.lost_seqs)
    assert set(result.verdicts) == set(ref) - lost
    assert all(result.verdicts[s] == ref[s] for s in result.verdicts)


def test_threaded_small_ring_applies_backpressure():
    """A 4-deep RX queue forces producer blocking; nothing is lost."""
    prog = make_program("heavy_hitter")
    trace = trace_for_program(prog)
    engine = ThreadedScrEngine(
        make_program("heavy_hitter"), num_cores=3, ring_capacity=4
    )
    result = engine.run(trace)
    assert len(result.verdicts) == len(trace)
    assert result.replicas_consistent


def test_threaded_single_core():
    prog = make_program("conntrack")
    trace = trace_for_program(prog)
    result = ThreadedScrEngine(make_program("conntrack"), num_cores=1).run(trace)
    ref_verdicts, ref_state = reference_run(make_program("conntrack"), trace)
    assert result.verdicts == ref_verdicts
    assert result.replica_snapshots[0] == ref_state


def test_threaded_rejects_loss_without_recovery():
    with pytest.raises(ValueError):
        ThreadedScrEngine(make_program("ddos"), 2, loss_rate=0.1)


def test_threaded_nat_global_state():
    """Global state under true concurrency — no locks anywhere."""
    from repro.programs import NatGateway

    trace = synthesize_trace(univ_dc_flow_sizes(), 12, seed=21, max_packets=500)
    engine = ThreadedScrEngine(NatGateway(port_count=128), num_cores=4)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(NatGateway(port_count=128), trace)
    assert result.replicas_consistent
    assert result.replica_snapshots[0] == ref_state
    assert result.verdicts == ref_verdicts
