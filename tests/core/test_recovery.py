"""Algorithm 1 loss recovery: logs, catch-up walks, blocking, atomicity."""

import pytest

from repro.core import LOST, LossRecoveryManager


def metas(lo, hi):
    """History map for sequences lo..hi with distinguishable bytes."""
    return {s: bytes([s % 251]) * 2 for s in range(lo, hi + 1)}


def deliver(mgr, core, seq, window):
    mgr.deliver(core, seq, metas(max(1, seq - window + 1), seq))


class TestLogStates:
    def test_initially_not_init(self):
        mgr = LossRecoveryManager(2, window=3)
        assert mgr.log_entry(0, 1) is None

    def test_delivery_publishes_history(self):
        mgr = LossRecoveryManager(2, window=3)
        deliver(mgr, 0, 1, 3)
        assert mgr.log_entry(0, 1) == bytes([1]) * 2

    def test_gap_marked_lost(self):
        mgr = LossRecoveryManager(2, window=2)
        deliver(mgr, 0, 1, 2)
        mgr.try_advance(0)
        # core 0 next receives seq 4 (window covers 3..4): seq 2..? wait
        deliver(mgr, 0, 4, 2)
        assert mgr.log_entry(0, 2) is LOST

    def test_monotonic_sequence_enforced(self):
        mgr = LossRecoveryManager(2, window=3)
        deliver(mgr, 0, 2, 3)
        mgr.try_advance(0)
        with pytest.raises(ValueError, match="non-monotonic"):
            deliver(mgr, 0, 2, 3)

    def test_missing_history_in_packet_rejected(self):
        mgr = LossRecoveryManager(2, window=3)
        with pytest.raises(ValueError, match="missing history"):
            mgr.deliver(0, 2, {2: b"xx"})  # lacks seq 1

    def test_delivery_while_pending_rejected(self):
        mgr = LossRecoveryManager(3, window=2)
        # Core 0 missed seq 1 entirely and no other core has seen anything:
        # the catch-up walk blocks on their NOT_INIT logs.
        deliver(mgr, 0, 3, 2)
        _, done = mgr.try_advance(0)
        assert not done
        with pytest.raises(RuntimeError, match="catching up"):
            deliver(mgr, 0, 5, 2)


class TestCatchup:
    def test_in_window_entries_applied_in_order(self):
        mgr = LossRecoveryManager(2, window=4)
        deliver(mgr, 0, 3, 4)
        entries, done = mgr.try_advance(0)
        assert done
        assert [s for s, _ in entries] == [1, 2, 3]
        assert all(b is not None for _, b in entries)

    def test_recovery_from_other_core_log(self):
        mgr = LossRecoveryManager(2, window=2)
        # core 1 receives seq 2 carrying history for 1..2 → logs both.
        deliver(mgr, 1, 2, 2)
        mgr.try_advance(1)
        # core 0's first delivery is seq 3 (window 2..3): seq 1 is a gap.
        deliver(mgr, 0, 3, 2)
        entries, done = mgr.try_advance(0)
        assert done
        assert entries[0] == (1, bytes([1]) * 2)  # recovered from core 1
        assert mgr.recovered == 1

    def test_blocks_while_other_core_not_init(self):
        mgr = LossRecoveryManager(2, window=2)
        deliver(mgr, 0, 3, 2)  # gap at 1, core 1 knows nothing yet
        entries, done = mgr.try_advance(0)
        assert not done
        assert entries == []
        assert mgr.blocked_cores() == [0]
        assert mgr.blocked_waits >= 1

    def test_unblocks_after_other_core_progresses(self):
        mgr = LossRecoveryManager(2, window=2)
        deliver(mgr, 0, 3, 2)
        assert not mgr.try_advance(0)[1]
        # now core 1 receives seq 2 (history 1..2) → logs history[1]
        deliver(mgr, 1, 2, 2)
        mgr.try_advance(1)
        entries, done = mgr.try_advance(0)
        assert done
        assert entries[0][0] == 1 and entries[0][1] is not None

    def test_lost_everywhere_skipped_for_atomicity(self):
        mgr = LossRecoveryManager(2, window=2)
        # Both cores jump past seq 1-2 → nobody ever saw history[1].
        deliver(mgr, 1, 4, 2)
        mgr.try_advance(1)  # core 1 marks 1,2 ... seq1: probes core0 NOT_INIT → blocked
        deliver(mgr, 0, 5, 2)
        mgr.try_advance(0)  # core 0 marks 1..3 LOST (4,5 in window? 4..5)
        entries1, done1 = mgr.try_advance(1)
        entries0, done0 = mgr.try_advance(0)
        # keep advancing both until done
        for _ in range(5):
            if not done1:
                e, done1 = mgr.try_advance(1)
                entries1 += e
            if not done0:
                e, done0 = mgr.try_advance(0)
                entries0 += e
        assert done0 and done1
        assert mgr.skipped > 0
        assert 1 in mgr.skipped_seqs
        skipped_entries = [e for e in entries0 + entries1 if e[1] is None]
        assert skipped_entries

    def test_single_core_skips_gaps(self):
        """With one core, a lost packet reached nobody: skip, never block."""
        mgr = LossRecoveryManager(1, window=1)
        deliver(mgr, 0, 1, 1)
        mgr.try_advance(0)
        deliver(mgr, 0, 3, 1)
        entries, done = mgr.try_advance(0)
        assert done
        assert (2, None) in entries

    def test_max_seq_tracks_walk(self):
        mgr = LossRecoveryManager(2, window=4)
        deliver(mgr, 0, 3, 4)
        mgr.try_advance(0)
        assert mgr.max_seq(0) == 3


class TestRoundRobinScenario:
    def test_three_cores_loss_free_interleaving(self):
        """RR delivery with window = k: every catch-up resolves instantly."""
        k, window = 3, 3
        mgr = LossRecoveryManager(k, window=window)
        for seq in range(1, 31):
            core = (seq - 1) % k
            deliver(mgr, core, seq, window)
            entries, done = mgr.try_advance(core)
            assert done
            assert entries[-1][0] == seq

    def test_every_core_converges_after_single_loss(self):
        k, window = 3, 3
        mgr = LossRecoveryManager(k, window=window)
        lost_seq = 7  # would go to core 0 (seq-1) % 3 == 0
        for seq in range(1, 16):
            core = (seq - 1) % k
            if seq == lost_seq:
                continue  # dropped on the way to core 0
            deliver(mgr, core, seq, window)
            # drain all cores until no progress
            for _ in range(k):
                for c in range(k):
                    mgr.try_advance(c)
        assert mgr.recovered >= 1
        assert not mgr.blocked_cores()
        assert all(mgr.max_seq(c) >= 13 for c in range(k))
