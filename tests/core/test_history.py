"""History ring: dump-then-write-then-increment hardware semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistoryRing


def test_starts_zero_filled():
    ring = HistoryRing(4, 3)
    assert ring.dump() == [b"\x00\x00\x00"] * 4
    assert ring.index_ptr == 0


def test_push_writes_at_pointer_and_advances():
    ring = HistoryRing(3, 1)
    ring.push(b"A")
    assert ring.dump() == [b"A", b"\x00", b"\x00"]
    assert ring.index_ptr == 1


def test_pointer_wraps():
    ring = HistoryRing(2, 1)
    for b in (b"A", b"B", b"C"):
        ring.push(b)
    assert ring.index_ptr == 1
    assert ring.dump() == [b"C", b"B"]


def test_dump_and_push_returns_pre_write_state():
    """The hardware dumps the memory before writing the current packet."""
    ring = HistoryRing(3, 1)
    ring.push(b"A")
    rows, ptr = ring.dump_and_push(b"B")
    assert rows == [b"A", b"\x00", b"\x00"]
    assert ptr == 1
    assert ring.dump() == [b"A", b"B", b"\x00"]


def test_row_size_validated():
    ring = HistoryRing(2, 4)
    with pytest.raises(ValueError):
        ring.push(b"short")


def test_valid_entries_saturates():
    ring = HistoryRing(3, 1)
    assert ring.valid_entries() == 0
    for i in range(5):
        ring.push(bytes([i]))
    assert ring.valid_entries() == 3


def test_reset():
    ring = HistoryRing(2, 1)
    ring.push(b"A")
    ring.reset()
    assert ring.dump() == [b"\x00", b"\x00"]
    assert ring.index_ptr == 0
    assert ring.writes == 0


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        HistoryRing(0, 4)
    with pytest.raises(ValueError):
        HistoryRing(4, -1)


def test_zero_width_rows_allowed():
    """Stateless programs have 0-byte metadata; the ring degenerates cleanly."""
    ring = HistoryRing(2, 0)
    ring.push(b"")
    assert ring.dump() == [b"", b""]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.binary(min_size=2, max_size=2), min_size=1, max_size=30))
def test_dump_after_pointer_rotation_is_last_n_chronological(pushes):
    """Walking the dump from the index pointer yields the last N pushes
    oldest-first (zero rows for never-written slots)."""
    n = 4
    ring = HistoryRing(n, 2)
    for row in pushes:
        ring.push(row)
    dump, ptr = ring.dump(), ring.index_ptr
    chron = dump[ptr:] + dump[:ptr]
    expected = ([b"\x00\x00"] * max(0, n - len(pushes)) + pushes)[-n:]
    assert chron == expected
