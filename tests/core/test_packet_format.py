"""SCR packet format: encode/decode, ring-order translation, validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScrPacketCodec
from repro.packet import ETH_HLEN, ETH_P_SCR, EthernetHeader


def rows(n, size, start=0):
    return [bytes([start + i]) * size for i in range(n)]


@pytest.fixture
def codec():
    return ScrPacketCodec(meta_size=4, num_slots=3, dummy_eth=True)


def test_roundtrip(codec):
    original = b"ORIGINAL PACKET BYTES"
    data = codec.encode(7, 1234, rows(3, 4), index_ptr=1, original=original)
    header, chron, out = codec.decode(data)
    assert header.seq == 7
    assert header.timestamp_ns == 1234
    assert header.index_ptr == 1
    assert header.num_slots == 3
    assert header.meta_size == 4
    assert out == original


def test_ring_order_becomes_chronological(codec):
    # ring rows [A, B, C] with index_ptr=1 → oldest is row 1: B, C, A.
    r = rows(3, 4)
    data = codec.encode(1, 0, r, index_ptr=1, original=b"x")
    _, chron, _ = codec.decode(data)
    assert chron == [r[1], r[2], r[0]]


def test_index_zero_keeps_order(codec):
    r = rows(3, 4)
    _, chron, _ = codec.decode(codec.encode(1, 0, r, 0, b"x"))
    assert chron == r


def test_dummy_eth_prefix_present(codec):
    data = codec.encode(1, 0, rows(3, 4), 0, b"x")
    eth = EthernetHeader.unpack(data)
    assert eth.ethertype == ETH_P_SCR


def test_no_dummy_eth_variant():
    codec = ScrPacketCodec(meta_size=4, num_slots=2, dummy_eth=False)
    data = codec.encode(1, 0, rows(2, 4), 0, b"orig")
    assert codec.overhead_bytes == len(data) - 4
    _, _, out = codec.decode(data)
    assert out == b"orig"


def test_overhead_bytes_accounts_everything(codec):
    data = codec.encode(1, 0, rows(3, 4), 0, b"")
    assert len(data) == codec.overhead_bytes
    assert codec.overhead_bytes == ETH_HLEN + 22 + 3 * 4  # eth + header + slots


def test_encode_validates_row_count(codec):
    with pytest.raises(ValueError, match="ring rows"):
        codec.encode(1, 0, rows(2, 4), 0, b"x")


def test_encode_validates_row_size(codec):
    with pytest.raises(ValueError, match="row size"):
        codec.encode(1, 0, rows(3, 5), 0, b"x")


def test_encode_validates_index_ptr(codec):
    with pytest.raises(ValueError, match="index pointer"):
        codec.encode(1, 0, rows(3, 4), 3, b"x")


def test_decode_rejects_bad_magic(codec):
    data = bytearray(codec.encode(1, 0, rows(3, 4), 0, b"x"))
    data[ETH_HLEN] ^= 0xFF
    with pytest.raises(ValueError, match="magic"):
        codec.decode(bytes(data))


def test_decode_rejects_wrong_ethertype(codec):
    data = codec.encode(1, 0, rows(3, 4), 0, b"x")
    plain = EthernetHeader(ethertype=0x0800).pack() + data[ETH_HLEN:]
    with pytest.raises(ValueError, match="dummy Ethernet"):
        codec.decode(plain)


def test_decode_rejects_geometry_mismatch(codec):
    other = ScrPacketCodec(meta_size=8, num_slots=3, dummy_eth=True)
    data = other.encode(1, 0, rows(3, 8), 0, b"x")
    with pytest.raises(ValueError, match="geometry"):
        codec.decode(data)


def test_decode_rejects_truncated_history(codec):
    data = codec.encode(1, 0, rows(3, 4), 0, b"x")
    with pytest.raises(ValueError, match="truncated"):
        codec.decode(data[: ETH_HLEN + 22 + 5])


def test_rejects_bad_constructor_args():
    with pytest.raises(ValueError):
        ScrPacketCodec(meta_size=-1, num_slots=3)
    with pytest.raises(ValueError):
        ScrPacketCodec(meta_size=4, num_slots=0)
    with pytest.raises(ValueError):
        ScrPacketCodec(meta_size=4, num_slots=256)


@settings(max_examples=50, deadline=None)
@given(
    seq=st.integers(min_value=1, max_value=2**60),
    ts=st.integers(min_value=0, max_value=2**60),
    ptr=st.integers(min_value=0, max_value=4),
    original=st.binary(max_size=200),
)
def test_roundtrip_property(seq, ts, ptr, original):
    codec = ScrPacketCodec(meta_size=6, num_slots=5, dummy_eth=True)
    r = rows(5, 6)
    header, chron, out = codec.decode(codec.encode(seq, ts, r, ptr, original))
    assert (header.seq, header.timestamp_ns) == (seq, ts)
    assert out == original
    # chronological order is a rotation of the ring
    assert chron == r[ptr:] + r[:ptr]
