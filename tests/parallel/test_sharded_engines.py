"""Sharded engines: RSS pinning and RSS++ migration."""


from repro.cpu import PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import RssPlusPlusEngine, ShardedRssEngine, hash_for_program
from repro.programs import make_program
from repro.traffic import Trace


def trace_of(counts, prog_name="ddos"):
    """counts: {src_ip: packets}; interleaved round-robin by flow."""
    pkts = []
    remaining = dict(counts)
    while remaining:
        for src in list(remaining):
            pkts.append(make_udp_packet(src, 2, 3, 4))
            remaining[src] -= 1
            if remaining[src] == 0:
                del remaining[src]
    return PerfTrace.from_trace(Trace(pkts).truncated(192), make_program(prog_name))


def test_flow_always_steers_to_same_core():
    eng = ShardedRssEngine(make_program("ddos"), 4)
    pt = trace_of({7: 50})
    cores = {eng.steer(pp) for pp in pt.records}
    assert len(cores) == 1


def test_distinct_flows_spread():
    eng = ShardedRssEngine(make_program("ddos"), 8)
    pt = trace_of({i: 1 for i in range(1, 200)})
    cores = {eng.steer(pp) for pp in pt.records}
    assert len(cores) == 8


def test_hash_choice_follows_table1():
    pp = trace_of({1: 1}).records[0]
    assert hash_for_program(make_program("ddos"), pp) == pp.hash_l3
    assert hash_for_program(make_program("heavy_hitter"), pp) == pp.hash_l4
    assert hash_for_program(make_program("conntrack"), pp) == pp.hash_sym


def test_elephant_limits_total_throughput():
    """The §2.2 sharding pathology: one heavy flow pins one core."""
    elephant = trace_of({1: 3000})
    eng = ShardedRssEngine(make_program("ddos"), 8)
    res = simulate(elephant, 100e6, eng)
    single_core_cap = 1e9 / eng.costs.t / 1e6
    assert res.achieved_mpps < single_core_cap * 1.3


def test_balanced_flows_scale():
    balanced = trace_of({i: 40 for i in range(1, 101)})
    one = simulate(balanced, 100e6, ShardedRssEngine(make_program("ddos"), 1))
    eight = simulate(balanced, 100e6, ShardedRssEngine(make_program("ddos"), 8))
    assert eight.achieved_mpps > 3 * one.achieved_mpps


def test_no_contention_counters():
    eng = ShardedRssEngine(make_program("ddos"), 4)
    res = simulate(trace_of({i: 100 for i in range(1, 30)}), 10e6, eng)
    assert all(c.wait_ns == 0 for c in res.counters.cores)
    assert all(c.transfer_ns == 0 for c in res.counters.cores)


class TestRssPlusPlus:
    def test_rebalance_migrates_shards(self):
        # Many same-loaded flows landing unevenly: migrations should fire.
        pt = trace_of({i: 60 for i in range(1, 80)})
        eng = RssPlusPlusEngine(
            make_program("ddos"), 4, rebalance_every=500, imbalance_threshold=0.02
        )
        simulate(pt, 30e6, eng)
        assert eng.migrations > 0

    def test_migration_penalty_charged_once_per_key(self):
        pt = trace_of({i: 200 for i in range(1, 20)})
        eng = RssPlusPlusEngine(
            make_program("ddos"), 4, rebalance_every=300, imbalance_threshold=0.01
        )
        res = simulate(pt, 30e6, eng)
        transfers = sum(c.transfer_ns for c in res.counters.cores)
        if eng.migrations:
            assert transfers > 0
            # bounded by one transfer per (migration, key) pair
            assert transfers <= eng.migrations * 20 * eng.contention.line_transfer_ns

    def test_cannot_split_single_elephant(self):
        """RSS++'s fundamental limit: migration granularity is a whole shard."""
        elephant = trace_of({1: 3000})
        eng = RssPlusPlusEngine(make_program("ddos"), 8, rebalance_every=300)
        res = simulate(elephant, 100e6, eng)
        single_core_cap = 1e9 / eng.costs.t / 1e6
        assert res.achieved_mpps < single_core_cap * 1.3

    def test_improves_on_rss_under_moderate_skew(self):
        """With several medium flows colliding on one core, migration helps."""
        # craft flows that RSS hashes onto few cores
        prog = make_program("ddos")
        base = ShardedRssEngine(prog, 4)
        counts = {}
        src = 1
        # pick 12 flows that all land on core 0 under plain RSS
        while len(counts) < 12:
            pp = trace_of({src: 1}).records[0]
            if base.indirection.queue_of(pp.hash_l3) == 0:
                counts[src] = 250
            src += 1
        pt = trace_of(counts)
        rate = 25e6
        rss = simulate(pt, rate, ShardedRssEngine(prog, 4))
        rsspp = simulate(
            pt, rate,
            RssPlusPlusEngine(prog, 4, rebalance_every=400, imbalance_threshold=0.05),
        )
        assert rsspp.loss_fraction < rss.loss_fraction

    def test_reset_clears_migration_state(self):
        eng = RssPlusPlusEngine(make_program("ddos"), 4, rebalance_every=100)
        simulate(trace_of({i: 50 for i in range(1, 40)}), 30e6, eng)
        eng.reset()
        assert eng.migrations == 0
        assert all(g == 0 for g in eng._shard_gen)
