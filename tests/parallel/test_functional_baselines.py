"""Functional baseline engines: where sharding is right, wrong, and skewed."""

import pytest

from repro.core import reference_run
from repro.packet import TCP_ACK, TCP_SYN, make_tcp_packet
from repro.parallel.functional import ShardedFunctionalEngine, SharedFunctionalEngine
from repro.programs import NatGateway, make_program
from repro.traffic import Trace, single_flow_trace, synthesize_trace, univ_dc_flow_sizes
from tests.conftest import trace_for_program


@pytest.mark.parametrize("name", ["ddos", "heavy_hitter", "port_knocking",
                                  "token_bucket", "conntrack"])
def test_sharding_correct_for_table1_programs(name):
    """Every Table 1 program's key is RSS-shardable, so sharded execution
    must equal the single-threaded reference."""
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = ShardedFunctionalEngine(make_program(name), num_cores=4)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(name), trace)
    assert result.verdicts == ref_verdicts
    assert engine.merged_state() == ref_state
    assert engine.shards_are_disjoint()


def test_sharding_wrong_for_global_state():
    """NAT's port pool is global: shards each grow their own pool and the
    merged result diverges from the reference (§2.2)."""
    pkts = []
    for src in range(1, 17):
        pkts.append(make_tcp_packet(src, 9, 100, 80, TCP_SYN))
        pkts.append(make_tcp_packet(src, 9, 100, 80, TCP_ACK))
    trace = Trace(pkts)
    engine = ShardedFunctionalEngine(NatGateway(port_count=64), num_cores=4)
    engine.run(trace)
    assert not engine.shards_are_disjoint()  # every shard has its own pool
    _, ref_state = reference_run(NatGateway(port_count=64), trace)
    assert engine.merged_state() != ref_state


def test_sharding_skew_single_flow():
    """One connection → one core does all the work."""
    trace = single_flow_trace(80, bidirectional=True)
    engine = ShardedFunctionalEngine(make_program("conntrack"), num_cores=8)
    result = engine.run(trace)
    assert result.max_core_share == 1.0


def test_sharding_spreads_many_flows():
    trace = synthesize_trace(univ_dc_flow_sizes(), 40, seed=2, max_packets=800)
    engine = ShardedFunctionalEngine(make_program("ddos"), num_cores=4)
    result = engine.run(trace)
    assert result.max_core_share < 0.95
    assert sum(result.per_core_packets) == result.offered


def test_symmetric_steering_for_conntrack():
    """Both directions of a connection must reach the same shard."""
    trace = single_flow_trace(30, bidirectional=True)
    engine = ShardedFunctionalEngine(make_program("conntrack"), num_cores=8)
    result = engine.run(trace)
    busy = [c for c, n in enumerate(result.per_core_packets) if n]
    assert len(busy) == 1


@pytest.mark.parametrize("name", ["ddos", "conntrack", "token_bucket"])
def test_shared_always_correct(name):
    prog = make_program(name)
    trace = trace_for_program(prog)
    engine = SharedFunctionalEngine(make_program(name), num_cores=4)
    result = engine.run(trace)
    ref_verdicts, ref_state = reference_run(make_program(name), trace)
    assert result.verdicts == ref_verdicts
    assert engine.state.snapshot() == ref_state


def test_shared_correct_even_for_global_state():
    pkts = [make_tcp_packet(src, 9, 100, 80, TCP_SYN) for src in range(1, 17)]
    trace = Trace(pkts)
    engine = SharedFunctionalEngine(NatGateway(port_count=64), num_cores=4)
    result = engine.run(trace)
    _, ref_state = reference_run(NatGateway(port_count=64), trace)
    assert engine.state.snapshot() == ref_state


def test_shared_bounces_on_hot_flow():
    """Round-robin spray over one flow bounces the state line constantly."""
    trace = single_flow_trace(100, bidirectional=False)
    engine = SharedFunctionalEngine(make_program("ddos"), num_cores=4)
    engine.run(trace)
    assert engine.bounce_ratio > 0.5


def test_shared_spreads_work_evenly():
    trace = single_flow_trace(100, bidirectional=False)
    engine = SharedFunctionalEngine(make_program("ddos"), num_cores=4)
    result = engine.run(trace)
    assert max(result.per_core_packets) - min(result.per_core_packets) <= 1


def test_engines_reject_zero_cores():
    with pytest.raises(ValueError):
        ShardedFunctionalEngine(make_program("ddos"), 0)
    with pytest.raises(ValueError):
        SharedFunctionalEngine(make_program("ddos"), 0)
