"""SCR performance engine: the Appendix A cost structure and overheads."""

import pytest

from repro.cpu import TABLE4_PARAMS, PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import ScrEngine, make_engine
from repro.programs import make_program
from repro.traffic import Trace


def elephant(n=3000, prog="ddos", wire=192):
    pkts = [make_udp_packet(1, 2, 3, 4) for _ in range(n)]
    return PerfTrace.from_trace(Trace(pkts).truncated(wire), make_program(prog))


def capacity_mpps(engine, pt, probe=400e6):
    return simulate(pt, probe, engine).achieved_mpps


def test_round_robin_spray():
    eng = ScrEngine(make_program("ddos"), 3)
    cores = [eng.steer(pp) for pp in elephant(6).records]
    assert cores == [0, 1, 2, 0, 1, 2]


def test_single_flow_scales_with_cores():
    """The headline claim (Figure 1): a single flow scales near-linearly."""
    pt = elephant()
    caps = {k: capacity_mpps(ScrEngine(make_program("ddos"), k), pt) for k in (1, 2, 4)}
    assert caps[2] > 1.7 * caps[1]
    assert caps[4] > 2.8 * caps[1]


def test_throughput_tracks_appendix_a_model():
    pt = elephant()
    p = TABLE4_PARAMS["ddos"]
    for k in (1, 3, 7):
        measured = capacity_mpps(ScrEngine(make_program("ddos"), k), pt)
        predicted = k / (p.t + (k - 1) * p.c2) * 1e3
        assert measured == pytest.approx(predicted, rel=0.15)


def test_history_items_warm_up():
    eng = ScrEngine(make_program("ddos"), 4)
    pt = elephant(10)
    hs = []
    for pp in pt.records:
        eng.steer(pp)
        hs.append(eng._history_items())
    assert hs[:4] == [0, 1, 2, 3]
    assert all(h == 3 for h in hs[4:])


def test_wire_len_includes_history_overhead():
    prog = make_program("conntrack")
    eng = ScrEngine(prog, 4)
    pp = elephant(1, prog="conntrack").records[0]
    assert eng.wire_len(pp) == pp.wire_len + eng.codec.overhead_bytes
    assert eng.codec.overhead_bytes == 14 + 22 + 4 * prog.metadata_size


def test_nic_resident_sequencer_smaller_overhead():
    prog = make_program("ddos")
    switch = ScrEngine(prog, 4, dummy_eth=True)
    nic = ScrEngine(prog, 4, dummy_eth=False)
    assert switch.codec.overhead_bytes - nic.codec.overhead_bytes == 14


def test_no_contention_counters():
    eng = ScrEngine(make_program("ddos"), 4)
    res = simulate(elephant(), 20e6, eng)
    assert all(c.wait_ns == 0 for c in res.counters.cores)


def test_scr_latency_exceeds_sharded_latency():
    """Fig. 8: SCR pays history compute per packet, so its program latency
    is higher than RSS's — but throughput is better anyway."""
    pt = elephant()
    scr = ScrEngine(make_program("token_bucket"), 7)
    simulate(pt, 20e6, scr)
    rss = make_engine("rss", make_program("token_bucket"), 7)
    simulate(pt, 20e6, rss)
    assert (
        scr.counters.mean_compute_latency_ns()
        > rss.counters.mean_compute_latency_ns()
    )


class TestRecoveryCosts:
    def test_logging_cost_reduces_capacity(self):
        pt = elephant()
        plain = capacity_mpps(ScrEngine(make_program("port_knocking"), 4), pt)
        logged = capacity_mpps(
            ScrEngine(make_program("port_knocking"), 4, with_recovery=True), pt
        )
        assert logged < plain

    def test_loss_increases_cost_further(self):
        pt = elephant()
        lossless = capacity_mpps(
            ScrEngine(make_program("port_knocking"), 4, with_recovery=True), pt
        )
        lossy = capacity_mpps(
            ScrEngine(
                make_program("port_knocking"), 4, with_recovery=True, loss_rate=0.01
            ),
            pt,
        )
        assert lossy <= lossless

    def test_injected_losses_counted(self):
        eng = ScrEngine(
            make_program("ddos"), 4, with_recovery=True, loss_rate=0.05, seed=1
        )
        res = simulate(elephant(), 10e6, eng)
        assert res.injected_lost > 0
        assert res.injected_lost == eng.injected

    def test_loss_injection_deterministic(self):
        def run():
            eng = ScrEngine(
                make_program("ddos"), 4, with_recovery=True, loss_rate=0.05, seed=7
            )
            return simulate(elephant(500), 10e6, eng).injected_lost

        assert run() == run()

    def test_loss_without_recovery_rejected(self):
        with pytest.raises(ValueError):
            ScrEngine(make_program("ddos"), 2, loss_rate=0.1)


def test_extra_compute_slows_scaling():
    """Principle #3: when compute rivals dispatch, scaling tapers (Fig. 9)."""
    # 64-byte packets so the 100G wire never binds (t=71 ns at 7 cores
    # would exceed line rate with larger frames — that's Figure 10a's
    # effect, tested separately).
    pt = elephant(prog="forwarder", wire=64)

    def relative_speedup(extra):
        one = capacity_mpps(
            ScrEngine(make_program("forwarder"), 1, extra_compute_ns=extra), pt
        )
        seven = capacity_mpps(
            ScrEngine(make_program("forwarder"), 7, extra_compute_ns=extra), pt
        )
        return seven / one

    assert relative_speedup(0) > 5.5
    assert relative_speedup(100) < 3.5


def test_slots_must_cover_cores():
    with pytest.raises(ValueError):
        ScrEngine(make_program("ddos"), 4, num_slots=2)


def test_unknown_cost_params_rejected():
    class Oddball(type(make_program("ddos"))):
        name = "oddball"

    prog = make_program("ddos")
    prog.name = "oddball"
    with pytest.raises(KeyError, match="Table 4"):
        ScrEngine(prog, 2)
