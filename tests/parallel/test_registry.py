"""Technique registry."""

import pytest

from repro.parallel import (
    TECHNIQUES,
    RelaxedScrEngine,
    RssPlusPlusEngine,
    ScrEngine,
    ShardedRssEngine,
    SharedAtomicEngine,
    SharedLockEngine,
    make_engine,
    technique_names,
)
from repro.programs import make_program


def test_technique_set():
    assert set(TECHNIQUES) == {"scr", "relaxed_scr", "shared", "rss",
                               "rss++", "hybrid"}
    assert technique_names() == list(TECHNIQUES)


@pytest.mark.parametrize(
    "name,cls",
    [
        ("scr", ScrEngine),
        ("relaxed_scr", RelaxedScrEngine),
        ("rss", ShardedRssEngine),
        ("rss++", RssPlusPlusEngine),
    ],
)
def test_make_engine_types(name, cls):
    assert isinstance(make_engine(name, make_program("ddos"), 2), cls)


def test_shared_dispatches_on_program():
    assert isinstance(
        make_engine("shared", make_program("ddos"), 2), SharedAtomicEngine
    )
    assert isinstance(
        make_engine("shared", make_program("conntrack"), 2), SharedLockEngine
    )


def test_unknown_technique():
    # A clear ValueError (not a bare KeyError) that lists every valid name.
    with pytest.raises(ValueError, match="unknown technique") as exc:
        make_engine("magic", make_program("ddos"), 2)
    for name in technique_names():
        assert name in str(exc.value)


def test_kwargs_forwarded():
    eng = make_engine("scr", make_program("ddos"), 2, num_slots=8)
    assert eng.num_slots == 8


def test_engine_rejects_zero_cores():
    with pytest.raises(ValueError):
        make_engine("rss", make_program("ddos"), 0)
