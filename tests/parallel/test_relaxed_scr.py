"""Relaxed SCR: single merged-delta history for commutative programs."""

import pytest

from repro.cpu import TABLE4_PARAMS, PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import RelaxedScrEngine, ScrEngine, make_engine
from repro.programs import make_program
from repro.traffic import Trace


def elephant(n=3000, prog="ddos", wire=192):
    pkts = [make_udp_packet(1, 2, 3, 4) for _ in range(n)]
    return PerfTrace.from_trace(Trace(pkts).truncated(wire), make_program(prog))


def capacity_mpps(engine, pt, probe=400e6):
    return simulate(pt, probe, engine).achieved_mpps


COMMUTATIVE = ["ddos", "victim_monitor", "heavy_hitter", "sampler",
               "peak_meter", "spreader"]
NON_COMMUTATIVE = ["token_bucket", "port_knocking", "conntrack", "nat",
                   "load_balancer"]


@pytest.mark.parametrize("name", COMMUTATIVE)
def test_relaxed_for_commutative_programs(name):
    eng = RelaxedScrEngine(make_program(name), 4)
    assert eng.relaxed
    assert eng.codec.num_slots == 1


@pytest.mark.parametrize("name", NON_COMMUTATIVE)
def test_degenerates_for_non_commutative_programs(name):
    """Unsound pruning must never happen: full history, full cost."""
    relaxed = RelaxedScrEngine(make_program(name), 4)
    strict = ScrEngine(make_program(name), 4)
    assert not relaxed.relaxed
    assert relaxed.codec.num_slots == strict.codec.num_slots
    pt = elephant(prog=name)
    assert capacity_mpps(relaxed, pt) == capacity_mpps(strict, pt)


def test_history_capped_at_one_item():
    eng = RelaxedScrEngine(make_program("ddos"), 7)
    for pp in elephant(10).records:
        eng.steer(pp)
    assert eng._history_items() == 1


def test_throughput_tracks_relaxed_model():
    """Service is t + min(k-1, 1)*c2 — per-core cost stops growing with k."""
    pt = elephant()
    p = TABLE4_PARAMS["ddos"]
    for k in (1, 3, 7):
        measured = capacity_mpps(RelaxedScrEngine(make_program("ddos"), k), pt)
        predicted = k / (p.t + min(k - 1, 1) * p.c2) * 1e3
        assert measured == pytest.approx(predicted, rel=0.15)


def test_beats_strict_scr_at_high_core_counts():
    pt = elephant()
    strict = capacity_mpps(ScrEngine(make_program("ddos"), 7), pt)
    relaxed = capacity_mpps(RelaxedScrEngine(make_program("ddos"), 7), pt)
    assert relaxed > strict


def test_wire_overhead_shrinks_to_one_slot():
    prog = make_program("heavy_hitter")
    strict = ScrEngine(prog, 4)
    relaxed = RelaxedScrEngine(make_program("heavy_hitter"), 4)
    assert relaxed.codec.overhead_bytes < strict.codec.overhead_bytes
    assert (strict.codec.overhead_bytes - relaxed.codec.overhead_bytes
            == 3 * prog.metadata_size)


def test_gap_coverage_window_unchanged():
    """The logical window (num_slots) still covers the core count — only
    the frame layout shrinks to one slot."""
    eng = RelaxedScrEngine(make_program("ddos"), 4)
    assert eng.num_slots == 4
    assert eng.codec.num_slots == 1


def test_registry_builds_relaxed():
    eng = make_engine("relaxed_scr", make_program("spreader"), 2)
    assert isinstance(eng, RelaxedScrEngine)
