"""Shared-state engines: atomics vs locks, serialization, bouncing."""

import pytest

from repro.cpu import PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import SharedAtomicEngine, SharedLockEngine, make_shared_engine
from repro.programs import make_program
from repro.traffic import Trace


def hot_key_trace(n=2000, sources=1):
    """All packets hit `sources` state keys — maximal contention at 1."""
    pkts = [make_udp_packet(1 + (i % sources), 2, 3, 4) for i in range(n)]
    return PerfTrace.from_trace(Trace(pkts).truncated(192), make_program("ddos"))


def spread_trace(n=2000, sources=500):
    return hot_key_trace(n, sources)


def test_factory_picks_atomics_for_counters():
    assert isinstance(make_shared_engine(make_program("ddos"), 2), SharedAtomicEngine)
    assert isinstance(
        make_shared_engine(make_program("heavy_hitter"), 2), SharedAtomicEngine
    )


def test_factory_picks_locks_for_complex_updates():
    for name in ("conntrack", "token_bucket", "port_knocking"):
        assert isinstance(
            make_shared_engine(make_program(name), 2), SharedLockEngine
        )


def test_atomic_engine_rejects_lock_programs():
    with pytest.raises(ValueError, match="too complex"):
        SharedAtomicEngine(make_program("conntrack"), 2)


def test_round_robin_steering():
    eng = make_shared_engine(make_program("ddos"), 3)
    pp = hot_key_trace(4).records
    assert [eng.steer(p) for p in pp] == [0, 1, 2, 0]


def test_single_core_no_contention_penalty():
    eng = SharedAtomicEngine(make_program("ddos"), 1)
    res = simulate(hot_key_trace(), 1e6, eng)
    # per-packet time = t + atomic_ns (+ tiny spill)
    mean = sum(c.busy_ns for c in res.counters.cores) / res.processed
    assert mean < eng.costs.t + eng.contention.atomic_ns + 2


def test_hot_key_serializes_atomics():
    """One hot counter caps the system near 1/transfer regardless of cores."""
    eng = SharedAtomicEngine(make_program("ddos"), 8)
    res = simulate(hot_key_trace(), 100e6, eng)
    cap = 1e9 / eng.contention.atomic_hold_ns() / 1e6  # ≈ 14.3 Mpps
    assert res.achieved_mpps < cap * 1.3


def test_spread_keys_avoid_serialization():
    eng = SharedAtomicEngine(make_program("ddos"), 8)
    res_hot = simulate(hot_key_trace(), 60e6, eng)
    eng2 = SharedAtomicEngine(make_program("ddos"), 8)
    res_spread = simulate(spread_trace(), 60e6, eng2)
    assert res_spread.loss_fraction < res_hot.loss_fraction


def test_lock_engine_collapses_with_cores_on_hot_key():
    """The paper's catastrophic shared-lock behaviour at ≥3 cores."""
    def capacity(k):
        prog = make_program("token_bucket")
        eng = SharedLockEngine(prog, k)
        trace = PerfTrace.from_trace(
            Trace([make_udp_packet(1, 2, 3, 4) for _ in range(2000)]).truncated(192),
            prog,
        )
        res = simulate(trace, 50e6, eng)
        return res.achieved_mpps

    assert capacity(7) < capacity(2)


def test_lock_wait_recorded_in_counters():
    eng = SharedLockEngine(make_program("token_bucket"), 4)
    res = simulate(hot_key_trace(), 50e6, eng)
    total_wait = sum(c.wait_ns for c in res.counters.cores)
    assert total_wait > 0


def test_lock_latency_includes_spinning():
    """Fig. 8: shared-lock program latency balloons under contention."""
    contended = SharedLockEngine(make_program("token_bucket"), 7)
    res_c = simulate(hot_key_trace(), 50e6, contended)
    alone = SharedLockEngine(make_program("token_bucket"), 1)
    res_a = simulate(hot_key_trace(), 5e6, alone)
    assert (
        res_c.counters.mean_compute_latency_ns()
        > 3 * res_a.counters.mean_compute_latency_ns()
    )


def test_bounces_lower_l2_hit_ratio():
    eng = SharedAtomicEngine(make_program("ddos"), 4)
    res = simulate(hot_key_trace(), 20e6, eng)
    assert res.counters.mean_l2_hit_ratio() < 0.5


def test_invalid_packets_skip_state_machinery():
    from repro.packet import Packet

    prog = make_program("ddos")
    trace = PerfTrace.from_trace(Trace([Packet() for _ in range(100)]), prog)
    eng = SharedAtomicEngine(prog, 2)
    res = simulate(trace, 1e6, eng)
    assert res.processed == 100
    assert all(c.l2_accesses == 0 for c in res.counters.cores)


def test_reset_clears_serialization_state():
    eng = SharedAtomicEngine(make_program("ddos"), 2)
    simulate(hot_key_trace(500), 20e6, eng)
    eng.reset()
    assert eng.serialization.acquisitions == 0
    assert eng.bounces.accesses == 0
