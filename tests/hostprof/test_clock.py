"""PhaseClock: nesting arithmetic, disabled no-ops, snapshot merging."""

from repro.hostprof.clock import NULL_HOSTPROF, PATH_SEP, PhaseClock


def busy(ns=50_000):
    """Spin for roughly ``ns`` host nanoseconds (keeps tests timer-visible)."""
    import time

    t0 = time.perf_counter_ns()
    while time.perf_counter_ns() - t0 < ns:
        pass


class TestNesting:
    def test_paths_are_semicolon_joined(self):
        clock = PhaseClock(enabled=True)
        clock.push("a")
        clock.push("b")
        clock.pop()
        clock.pop()
        snap = clock.snapshot()
        assert set(snap) == {"a", f"a{PATH_SEP}b"}

    def test_self_plus_children_equals_total(self):
        clock = PhaseClock(enabled=True)
        clock.push("outer")
        busy()
        clock.push("inner")
        busy()
        clock.pop()
        busy()
        clock.pop()
        snap = clock.snapshot()
        outer, inner = snap["outer"], snap["outer;inner"]
        assert outer["self_ns"] + inner["total_ns"] == outer["total_ns"]
        assert inner["self_ns"] == inner["total_ns"]
        assert outer["self_ns"] > 0 and inner["self_ns"] > 0

    def test_calls_accumulate(self):
        clock = PhaseClock(enabled=True)
        for _ in range(3):
            clock.push("p")
            clock.pop()
        assert clock.snapshot()["p"]["calls"] == 3

    def test_charge_records_leaf_under_current_path(self):
        clock = PhaseClock(enabled=True)
        clock.push("svc")
        t0 = clock.now()
        busy()
        clock.charge("ff", t0)
        clock.pop()
        snap = clock.snapshot()
        leaf = snap["svc;ff"]
        assert leaf["calls"] == 1
        assert leaf["self_ns"] == leaf["total_ns"] > 0
        # charged time counts as the parent's child time, not its self time
        assert snap["svc"]["self_ns"] + leaf["total_ns"] == \
            snap["svc"]["total_ns"]

    def test_charge_outside_any_phase_is_a_root(self):
        clock = PhaseClock(enabled=True)
        t0 = clock.now()
        clock.charge("solo", t0)
        assert "solo" in clock.snapshot()

    def test_depth_tracks_stack(self):
        clock = PhaseClock(enabled=True)
        assert clock.depth() == 0
        clock.push("a")
        assert clock.depth() == 1
        with clock.phase("b"):
            assert clock.depth() == 2
        assert clock.depth() == 1
        clock.pop()
        assert clock.depth() == 0

    def test_total_self_ns_matches_snapshot(self):
        clock = PhaseClock(enabled=True)
        with clock.phase("a"):
            with clock.phase("b"):
                busy()
        snap = clock.snapshot()
        assert clock.total_self_ns() == \
            sum(e["self_ns"] for e in snap.values())


class TestDisabled:
    def test_null_singleton_is_disabled(self):
        assert NULL_HOSTPROF.enabled is False

    def test_disabled_ops_record_nothing(self):
        clock = PhaseClock(enabled=False)
        clock.push("a")
        with clock.phase("b"):
            pass
        clock.charge("c", clock.now())
        clock.pop()
        assert clock.snapshot() == {}
        assert clock.depth() == 0

    def test_disabled_now_is_zero(self):
        assert PhaseClock(enabled=False).now() == 0

    def test_disabled_merge_is_noop(self):
        clock = PhaseClock(enabled=False)
        clock.merge_snapshot({"a": {"calls": 1, "total_ns": 5, "self_ns": 5}})
        assert clock.snapshot() == {}


class TestMerge:
    SNAP = {
        "a": {"calls": 2, "total_ns": 100, "self_ns": 40},
        "a;b": {"calls": 2, "total_ns": 60, "self_ns": 60},
    }

    def test_merge_without_prefix_sums(self):
        clock = PhaseClock(enabled=True)
        clock.merge_snapshot(self.SNAP)
        clock.merge_snapshot(self.SNAP)
        snap = clock.snapshot()
        assert snap["a"] == {"calls": 4, "total_ns": 200, "self_ns": 80}
        assert snap["a;b"]["total_ns"] == 120

    def test_merge_with_prefix_reroots(self):
        clock = PhaseClock(enabled=True)
        clock.merge_snapshot(self.SNAP, prefix="worker")
        snap = clock.snapshot()
        assert set(snap) == {"worker;a", "worker;a;b"}
        assert snap["worker;a"]["calls"] == 2

    def test_merge_is_associative_with_live_phases(self):
        clock = PhaseClock(enabled=True)
        with clock.phase("a"):
            pass
        clock.merge_snapshot(self.SNAP)
        assert clock.snapshot()["a"]["calls"] == 3
