"""Flamegraph exporters: folded/speedscope schemas and lossless round-trips."""

import pytest

from repro.hostprof.export import (
    SPEEDSCOPE_SCHEMA,
    parse_folded,
    parse_speedscope,
    to_folded,
    to_speedscope,
)

PHASES = {
    "scenario.run": {"calls": 1, "total_ns": 1000, "self_ns": 100},
    "scenario.run;trace.synthesize": {
        "calls": 1, "total_ns": 600, "self_ns": 600,
    },
    "scenario.run;mlffr.search": {"calls": 1, "total_ns": 300, "self_ns": 0},
    "scenario.run;mlffr.search;sim.run": {
        "calls": 9, "total_ns": 300, "self_ns": 300,
    },
}

#: What both exporters should preserve: self-weights of non-zero phases.
SELF = {
    "scenario.run": 100,
    "scenario.run;trace.synthesize": 600,
    "scenario.run;mlffr.search;sim.run": 300,
}


class TestFolded:
    def test_round_trip(self):
        assert parse_folded(to_folded(PHASES)) == SELF

    def test_zero_self_interior_phases_omitted(self):
        text = to_folded(PHASES)
        assert "mlffr.search 0" not in text
        assert text.endswith("\n")

    def test_line_shape(self):
        lines = to_folded(PHASES).splitlines()
        assert "scenario.run;trace.synthesize 600" in lines

    def test_empty_phases_empty_text(self):
        assert to_folded({}) == ""
        assert parse_folded("") == {}

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_folded("justoneword\n")

    def test_duplicate_paths_sum(self):
        assert parse_folded("a 5\na 7\n") == {"a": 12}


class TestSpeedscope:
    def test_round_trip(self):
        assert parse_speedscope(to_speedscope(PHASES)) == SELF

    def test_document_schema(self):
        doc = to_speedscope(PHASES, name="unit test")
        assert doc["$schema"] == SPEEDSCOPE_SCHEMA
        assert doc["activeProfileIndex"] == 0
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "nanoseconds"
        assert profile["name"] == "unit test"
        assert profile["startValue"] == 0
        assert profile["endValue"] == sum(profile["weights"])
        assert len(profile["samples"]) == len(profile["weights"])

    def test_frames_deduplicated(self):
        doc = to_speedscope(PHASES)
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert len(names) == len(set(names))
        assert "scenario.run" in names and "sim.run" in names

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="not a speedscope"):
            parse_speedscope({"$schema": "nope"})

    def test_non_sampled_profile_rejected(self):
        doc = to_speedscope(PHASES)
        doc["profiles"][0]["type"] = "evented"
        with pytest.raises(ValueError, match="sampled"):
            parse_speedscope(doc)

    def test_length_mismatch_rejected(self):
        doc = to_speedscope(PHASES)
        doc["profiles"][0]["weights"] = doc["profiles"][0]["weights"][:-1]
        with pytest.raises(ValueError, match="mismatch"):
            parse_speedscope(doc)

    def test_deterministic_output(self):
        assert to_speedscope(PHASES) == to_speedscope(dict(
            reversed(list(PHASES.items()))
        ))
