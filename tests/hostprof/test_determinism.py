"""The hostprof determinism contract: wall readings never feed results.

Profiling observes the harness, not the model — an enabled PhaseClock
must leave every simulated number and every telemetry event bit-identical
to a disabled run, and the dormant NULL_HOSTPROF guards must be invisible
by construction.
"""

import pytest

from repro.hostprof.clock import PATH_SEP, PhaseClock
from repro.scenario import Scenario
from repro.scenario.build import StackBuilder, run_scenario
from repro.scenario.executor import ScenarioExecutor
from repro.telemetry import Telemetry


def _scenario(cores=2, seed=7):
    return Scenario.create(
        "ddos", "univ_dc", "scr", cores, num_flows=20, max_packets=300,
        seed=seed,
    )


def _events(tele):
    return [(e.ts_ns, e.kind, e.core, e.dur_ns, e.fields)
            for e in tele.tracer.events()]


class TestEnabledVsDisabled:
    def test_simulated_results_identical(self):
        plain = run_scenario(_scenario())
        clock = PhaseClock(enabled=True)
        profiled = run_scenario(
            _scenario(), builder=StackBuilder(hostprof=clock)
        )
        assert profiled.mlffr_mpps == plain.mlffr_mpps
        assert profiled.probes == plain.probes
        # ... while the clock actually observed the run.
        snap = clock.snapshot()
        assert "scenario.run" in snap
        assert any("sim.run" in path for path in snap)

    def test_telemetry_event_streams_identical(self):
        tele_a, tele_b = Telemetry(), Telemetry()
        run_scenario(_scenario(), telemetry=tele_a)
        run_scenario(
            _scenario(),
            builder=StackBuilder(hostprof=PhaseClock(enabled=True)),
            telemetry=tele_b,
        )
        assert _events(tele_a) == _events(tele_b)
        assert tele_a.registry.snapshot() == tele_b.registry.snapshot()

    def test_phase_tree_is_well_formed(self):
        clock = PhaseClock(enabled=True)
        run_scenario(_scenario(), builder=StackBuilder(hostprof=clock))
        assert clock.depth() == 0  # every push was popped
        snap = clock.snapshot()
        for path, entry in snap.items():
            children = sum(
                e["total_ns"] for p, e in snap.items()
                if p.startswith(path + PATH_SEP)
                and p.count(PATH_SEP) == path.count(PATH_SEP) + 1
            )
            assert entry["self_ns"] + children == entry["total_ns"], path


class TestExecutorParity:
    def test_parallel_profiled_matches_serial_unprofiled(self, tmp_path):
        scenarios = [_scenario(seed=7), _scenario(seed=8)]
        serial = ScenarioExecutor(jobs=1).run(scenarios)
        clock = PhaseClock(enabled=True)
        parallel = ScenarioExecutor(
            jobs=2, cache_dir=tmp_path / "cache", hostprof=clock
        ).run(scenarios)
        assert [r.mlffr_mpps for r in parallel] == \
            [r.mlffr_mpps for r in serial]
        assert [r.probes for r in parallel] == [r.probes for r in serial]

    def test_worker_snapshots_fold_under_worker_prefix(self, tmp_path):
        clock = PhaseClock(enabled=True)
        ScenarioExecutor(
            jobs=2, cache_dir=tmp_path / "cache", hostprof=clock
        ).run([_scenario(seed=7), _scenario(seed=8)])
        snap = clock.snapshot()
        assert "executor.fanout" in snap
        worker = [p for p in snap if p.startswith("worker" + PATH_SEP)]
        assert any(p.endswith("scenario.run") for p in worker)
        # two workers' scenario.run calls folded together
        assert snap["worker;scenario.run"]["calls"] == 2
        # worker CPU lives under its own root, never under executor.fanout
        assert not any(
            p.startswith("executor.fanout" + PATH_SEP) for p in snap
        )


class TestMlffrConvergence:
    def test_profiled_probe_count_matches(self):
        """The binary search takes the same path (same probe rates) with
        and without an attached clock."""
        plain = run_scenario(_scenario(cores=4))
        profiled = run_scenario(
            _scenario(cores=4),
            builder=StackBuilder(hostprof=PhaseClock(enabled=True)),
        )
        assert [r for r, _ in plain.probes] == [r for r, _ in profiled.probes]
        assert plain.mlffr_mpps == pytest.approx(profiled.mlffr_mpps, abs=0.0)
