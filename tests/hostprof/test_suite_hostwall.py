"""The hostwall bench suite: stage decomposition of host wall time."""

import pytest

from repro.perf import BENCH_SCHEMA, SuiteParams, run_suite

STAGES = ["lower", "mlffr", "simulate", "synthesize"]


@pytest.fixture(scope="module")
def art():
    return run_suite("hostwall", SuiteParams(reps=1, quick=True))


def test_artifact_shape(art):
    assert art.schema == BENCH_SCHEMA
    assert set(art.series) == {"wall_kpps", "wall_share"}


def test_wall_kpps_series(art):
    s = art.series["wall_kpps"]
    assert s.unit == "kpps"
    assert s.direction == "higher_better"
    assert sorted(p.x for p in s.points) == STAGES
    assert all(p.median > 0 for p in s.points)


def test_wall_share_series(art):
    s = art.series["wall_share"]
    assert s.unit == "fraction"
    assert s.direction == "lower_better"
    assert s.noise_floor == pytest.approx(0.15)
    assert sorted(p.x for p in s.points) == STAGES
    for p in s.points:
        assert 0.0 < p.median <= 1.0
    # every stage is a slice of scenario.run, so shares cannot sum past
    # 1 + (mlffr ⊃ simulate overlap, bounded by 1) + rounding
    shares = {p.x: p.median for p in s.points}
    assert shares["simulate"] <= shares["mlffr"] + 1e-9


def test_save_uses_bench_naming(tmp_path, art):
    assert art.save(tmp_path).name == "BENCH_hostwall.json"
