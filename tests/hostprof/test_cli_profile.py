"""``scr-repro profile`` and the ``--hostprof`` flag, end to end."""

import io
import json

from repro.cli import main
from repro.hostprof.artifact import (
    FOLDED_NAME,
    HOSTPROF_JSON,
    SPEEDSCOPE_NAME,
    HostProfile,
)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestProfileCommand:
    def test_writes_artifact_and_reports_pareto(self, tmp_path):
        out_dir = tmp_path / "hp"
        code, text = run_cli([
            "profile", "--packets", "400", "--cores", "2",
            "--out", str(out_dir),
        ])
        assert code == 0
        for name in (HOSTPROF_JSON, FOLDED_NAME, SPEEDSCOPE_NAME):
            assert (out_dir / name).is_file()
        assert "host wall:" in text
        assert "phase" in text  # the Pareto header
        data = json.loads((out_dir / HOSTPROF_JSON).read_text())
        assert data["schema"].startswith("scr-repro/hostprof/")
        assert data["command"] == "profile"
        assert "scenario.run" in data["phases"]

    def test_deep_capture_adds_functions_and_memory(self, tmp_path):
        out_dir = tmp_path / "hp"
        code, _ = run_cli([
            "profile", "--packets", "300", "--cores", "2", "--deep",
            "--out", str(out_dir),
        ])
        assert code == 0
        profile = HostProfile.load(out_dir)
        assert profile.deep is not None
        assert profile.deep["functions"]
        assert profile.deep["memory_peak_bytes"]

    def test_unwritable_out_exits_2(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        code, text = run_cli([
            "profile", "--packets", "300", "--cores", "2",
            "--out", str(blocker / "nested"),
        ])
        assert code == 2


class TestHostprofFlag:
    def test_mlffr_writes_profile(self, tmp_path):
        out_dir = tmp_path / "hp"
        code, text = run_cli([
            "mlffr", "--packets", "400", "--cores", "2",
            "--hostprof", str(out_dir),
        ])
        assert code == 0
        assert "host profile:" in text
        profile = HostProfile.load(out_dir)
        assert profile.command == "mlffr"
        assert any("sim.run" in p for p in profile.phases)

    def test_run_writes_profile(self, tmp_path):
        out_dir = tmp_path / "hp"
        code, _ = run_cli([
            "run", "--program", "ddos", "--cores", "2",
            "--packets", "300", "--hostprof", str(out_dir),
        ])
        assert code == 0
        profile = HostProfile.load(out_dir)
        assert profile.command == "run"
        assert "func.run" in profile.phases

    def test_without_flag_no_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, text = run_cli([
            "mlffr", "--packets", "400", "--cores", "2",
        ])
        assert code == 0
        assert "host profile:" not in text
        assert not (tmp_path / "results").exists()
