"""HostProfile: schema versioning, save/load round-trip, Pareto views."""

import json

import pytest

from repro.hostprof.artifact import (
    FOLDED_NAME,
    HOSTPROF_JSON,
    HOSTPROF_SCHEMA,
    SPEEDSCOPE_NAME,
    HostProfile,
    phase_depth,
)
from repro.hostprof.clock import PhaseClock
from repro.hostprof.export import parse_folded


def _clock():
    clock = PhaseClock(enabled=True)
    with clock.phase("scenario.run"):
        with clock.phase("trace.synthesize"):
            pass
        with clock.phase("mlffr.search"):
            with clock.phase("sim.run"):
                pass
    return clock


class TestCreate:
    def test_provenance_stamped(self):
        profile = HostProfile.create("profile", {"cores": 4}, _clock())
        assert profile.schema == HOSTPROF_SCHEMA
        assert profile.command == "profile"
        assert profile.config == {"cores": 4}
        assert profile.python and profile.platform and profile.created_utc
        assert len(profile.phases) == 4

    def test_total_wall_is_self_sum(self):
        profile = HostProfile.create("profile", {}, _clock())
        assert profile.total_wall_ns() == \
            sum(e["self_ns"] for e in profile.phases.values())

    def test_pareto_sorted_by_self_desc(self):
        profile = HostProfile.create("profile", {}, _clock())
        rows = profile.pareto()
        selfs = [r["self_ns"] for r in rows]
        assert selfs == sorted(selfs, reverse=True)
        assert abs(sum(r["self_share"] for r in rows) - 1.0) < 1e-9

    def test_pareto_lines_human_readable(self):
        lines = HostProfile.create("profile", {}, _clock()).pareto_lines(top=3)
        assert lines[0].startswith("phase")
        assert len(lines) == 4  # header + 3 rows


class TestSaveLoad:
    def test_writes_three_files(self, tmp_path):
        profile = HostProfile.create("profile", {"seed": 7}, _clock())
        path = profile.save(tmp_path / "hp")
        assert path.name == HOSTPROF_JSON
        for name in (HOSTPROF_JSON, FOLDED_NAME, SPEEDSCOPE_NAME):
            assert (tmp_path / "hp" / name).is_file()

    def test_round_trip(self, tmp_path):
        profile = HostProfile.create("profile", {"seed": 7}, _clock())
        profile.save(tmp_path / "hp")
        again = HostProfile.load(tmp_path / "hp")
        assert again.phases == profile.phases
        assert again.config == {"seed": 7}
        assert again.schema == HOSTPROF_SCHEMA
        # load also accepts the file path directly
        assert HostProfile.load(tmp_path / "hp" / HOSTPROF_JSON).phases == \
            profile.phases

    def test_folded_sidecar_matches_phases(self, tmp_path):
        profile = HostProfile.create("profile", {}, _clock())
        profile.save(tmp_path / "hp")
        folded = parse_folded((tmp_path / "hp" / FOLDED_NAME).read_text())
        expected = {p: e["self_ns"] for p, e in profile.phases.items()
                    if e["self_ns"] > 0}
        assert folded == expected

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="not a hostprof artifact"):
            HostProfile.from_dict({"schema": "scr-repro/bench-artifact/v1"})

    def test_json_is_deterministic_given_same_dict(self, tmp_path):
        profile = HostProfile.create("profile", {}, _clock())
        profile.save(tmp_path / "a")
        profile.save(tmp_path / "b")
        assert (tmp_path / "a" / HOSTPROF_JSON).read_text() == \
            (tmp_path / "b" / HOSTPROF_JSON).read_text()

    def test_deep_section_survives_round_trip(self, tmp_path):
        profile = HostProfile.create(
            "profile", {}, _clock(),
            deep={"functions": [], "memory_peak_bytes": {"a": 10}},
        )
        profile.save(tmp_path / "hp")
        data = json.loads((tmp_path / "hp" / HOSTPROF_JSON).read_text())
        assert data["deep"]["memory_peak_bytes"] == {"a": 10}


def test_phase_depth():
    assert phase_depth("a") == 0
    assert phase_depth("a;b;c") == 2
