"""State digests (stability) and the divergence monitor (detection)."""

import enum
import pickle
from dataclasses import dataclass

import pytest

from repro.faults import DivergenceMonitor, canonicalize, state_digest
from repro.telemetry.events import EV_DIVERGENCE, EventTracer


class Proto(enum.IntEnum):
    TCP = 6
    UDP = 17


class OtherProto(enum.IntEnum):
    TCP = 6


@dataclass(frozen=True)
class ConnRecord:
    state: Proto
    count: int


class TestStateDigest:
    def test_insertion_order_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert state_digest(a) == state_digest(b)

    def test_type_distinctions_preserved(self):
        assert state_digest({"k": 1}) != state_digest({"k": True})
        assert state_digest({"k": 1}) != state_digest({"k": "1"})
        assert state_digest({"k": 1}) != state_digest({"k": 1.0})

    def test_enum_class_identity_matters(self):
        assert (state_digest({"k": Proto.TCP})
                != state_digest({"k": OtherProto.TCP}))

    def test_dataclass_and_tuple_states(self):
        rec = ConnRecord(state=Proto.TCP, count=3)
        d = state_digest({(1, 2): rec, (3, 4): (5, 6)})
        assert d == state_digest({(3, 4): (5, 6), (1, 2): rec})

    def test_digest_stable_across_pickling(self):
        snap = {(10, 20): ConnRecord(Proto.UDP, 9), "flows": (1, 2, 3)}
        clone = pickle.loads(pickle.dumps(snap))
        assert state_digest(clone) == state_digest(snap)

    def test_uncanonicalizable_raises_loudly(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestDivergenceMonitor:
    def test_due_every_interval(self):
        mon = DivergenceMonitor(interval=4)
        assert [i for i in range(12) if mon.due(i)] == [3, 7, 11]

    def test_agreement_passes(self):
        mon = DivergenceMonitor(interval=1)
        assert mon.observe(0, ["d1", "d1", "d1"])
        assert mon.first_divergence_index is None
        assert not mon.flagged_cores

    def test_majority_mode_flags_minority(self):
        mon = DivergenceMonitor(interval=1)
        assert not mon.observe(10, ["d1", "d2", "d1"])
        assert mon.first_divergence_index == 10
        assert mon.flagged_cores == {1}
        assert mon.max_blast_radius == 1

    def test_expected_mode_compares_per_replica(self):
        # Mid-stream, replicas lag each other: each is judged against the
        # golden digest at its *own* sequence point.
        mon = DivergenceMonitor(interval=1)
        assert mon.observe(5, ["a", "b"], expected=["a", "b"])
        assert not mon.observe(9, ["a", "WRONG"], expected=["a", "b"])
        assert mon.flagged_cores == {1}

    def test_live_mask_excludes_dead_cores(self):
        mon = DivergenceMonitor(interval=1)
        assert mon.observe(3, ["stale", "d", "d"], live=[False, True, True])
        assert not mon.flagged_cores

    def test_divergence_event_emitted(self):
        tracer = EventTracer(capacity=16)
        mon = DivergenceMonitor(interval=1, tracer=tracer)
        mon.observe(7, ["d1", "d2", "d1"])
        events = [e for e in tracer.events() if e.kind == EV_DIVERGENCE]
        assert len(events) == 1
        assert events[0].fields["index"] == 7
        assert events[0].fields["cores"] == [1]
        assert events[0].fields["first"] is True
