"""End-to-end quarantine -> resync round-trips through run_chaos."""

import pytest

from repro.faults import FaultSpec, run_chaos


class TestRecoveryRoundTrip:
    @pytest.mark.parametrize("program", ["ddos", "token_bucket", "conntrack"])
    def test_drops_detected_and_state_resynchronized(self, program):
        spec = FaultSpec.create(seed=7, drop_rate=0.02)
        outcome = run_chaos(program, spec, num_cores=4, max_packets=400,
                            trace_seed=7)
        assert outcome.injected["drops"] > 0
        assert outcome.gap_events > 0
        assert outcome.gap_events_detected == outcome.gap_events
        assert outcome.resyncs > 0
        assert outcome.digest_equal
        assert outcome.undetected_divergences == 0

    def test_clean_spec_is_a_noop(self):
        outcome = run_chaos("ddos", FaultSpec.create(), num_cores=4,
                            max_packets=400, trace_seed=7)
        assert outcome.gap_events == 0
        assert outcome.quarantines == 0
        assert outcome.resyncs == 0
        assert outcome.digest_equal
        assert sum(outcome.injected.values()) == 0

    def test_without_recovery_replicas_fork_but_are_flagged(self):
        spec = FaultSpec.create(seed=7, drop_rate=0.02)
        outcome = run_chaos("ddos", spec, num_cores=4, max_packets=400,
                            trace_seed=7, recovery=False)
        assert not outcome.digest_equal
        assert outcome.suspect_cores
        assert outcome.resyncs == 0
        # Forked, yes -- but the monitor saw every divergence.
        assert outcome.undetected_divergences == 0

    def test_wide_history_absorbs_gaps_without_resync(self):
        spec = FaultSpec.create(seed=7, drop_rate=0.02)
        outcome = run_chaos("heavy_hitter", spec, num_cores=4,
                            max_packets=400, trace_seed=7, num_slots=12)
        assert outcome.gap_events > 0
        assert outcome.gaps_covered == outcome.gap_events
        assert outcome.resyncs == 0
        assert outcome.digest_equal


class TestTruncation:
    def test_depth_one_with_minimal_slots_is_harmless(self):
        # With n == k the oldest slot's row is never needed by the core the
        # packet lands on, so zeroing just it cannot create a gap.
        spec = FaultSpec.create(seed=7, truncate_rate=0.05, truncate_depth=1)
        outcome = run_chaos("conntrack", spec, num_cores=4, max_packets=400,
                            trace_seed=7)
        assert outcome.injected["rows_zeroed"] > 0
        assert outcome.gap_events == 0
        assert outcome.digest_equal

    def test_depth_two_detected_and_recovered(self):
        spec = FaultSpec.create(seed=7, truncate_rate=0.05, truncate_depth=2)
        outcome = run_chaos("conntrack", spec, num_cores=4, max_packets=400,
                            trace_seed=7)
        assert outcome.gap_events > 0
        assert outcome.gap_events_detected == outcome.gap_events
        assert outcome.digest_equal


class TestDeterminism:
    def test_same_arguments_same_outcome(self):
        spec = FaultSpec.create(seed=11, drop_rate=0.02, duplicate_rate=0.02)
        a = run_chaos("token_bucket", spec, num_cores=4, max_packets=300,
                      trace_seed=11)
        b = run_chaos("token_bucket", spec, num_cores=4, max_packets=300,
                      trace_seed=11)
        assert a.to_dict() == b.to_dict()
