"""FaultSpec (pure data) and FaultPlan (pure decisions): determinism."""

import pickle

import pytest

from repro.faults import FaultPlan, FaultSpec


class TestFaultSpec:
    def test_clean_spec_has_no_faults(self):
        spec = FaultSpec.create()
        assert not spec.any_faults
        assert spec.describe() == "clean"

    def test_any_faults_for_each_knob(self):
        assert FaultSpec.create(drop_rate=0.1).any_faults
        assert FaultSpec.create(pop_drop_rate=0.1).any_faults
        assert FaultSpec.create(reorder_rate=0.1).any_faults
        assert FaultSpec.create(duplicate_rate=0.1).any_faults
        assert FaultSpec.create(truncate_rate=0.1).any_faults
        assert FaultSpec.create(drop_indices=[3]).any_faults
        assert FaultSpec.create(core_stalls=[(0, 10, 500.0)]).any_faults
        assert FaultSpec.create(core_kills=[(1, 20)]).any_faults

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec.create(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultSpec.create(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec.create(truncate_depth=0)
        with pytest.raises(ValueError):
            FaultSpec.create(history_log_capacity=0)
        with pytest.raises(ValueError):
            FaultSpec.create(core_stalls=[(0, 5, 0.0)])

    def test_content_hash_distinguishes_every_field(self):
        base = FaultSpec.create(drop_rate=0.01)
        assert base.content_hash() == FaultSpec.create(drop_rate=0.01).content_hash()
        for other in (
            FaultSpec.create(drop_rate=0.02),
            FaultSpec.create(drop_rate=0.01, seed=8),
            FaultSpec.create(drop_rate=0.01, epoch_len=64),
            FaultSpec.create(drop_rate=0.01, digest_interval=32),
            FaultSpec.create(drop_rate=0.01, history_log_capacity=8),
        ):
            assert other.content_hash() != base.content_hash()

    def test_spec_is_hashable_and_picklable(self):
        spec = FaultSpec.create(drop_rate=0.01, core_kills=[(2, 100)])
        assert hash(spec) == hash(FaultSpec.create(drop_rate=0.01,
                                                   core_kills=[(2, 100)]))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()


class TestFaultPlan:
    def test_same_spec_same_schedule(self):
        a = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.05,
                                       duplicate_rate=0.02, reorder_rate=0.02))
        b = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.05,
                                       duplicate_rate=0.02, reorder_rate=0.02))
        assert a.schedule(2000) == b.schedule(2000)

    def test_different_seed_different_schedule(self):
        a = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.05))
        b = FaultPlan(FaultSpec.create(seed=8, drop_rate=0.05))
        assert a.schedule(2000) != b.schedule(2000)

    def test_order_independent_decisions(self):
        """The MLFFR-probe invariant: query order never changes answers."""
        plan = FaultPlan(FaultSpec.create(seed=3, drop_rate=0.1))
        forward = [plan.drops(i) for i in range(500)]
        backward = [plan.drops(i) for i in reversed(range(500))]
        assert forward == list(reversed(backward))

    def test_schedule_survives_pickling(self):
        plan = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.05,
                                          truncate_rate=0.05))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.schedule(1000) == plan.schedule(1000)

    def test_rate_zero_never_fires_rate_scales(self):
        clean = FaultPlan(FaultSpec.create())
        assert not any(clean.drops(i) for i in range(1000))
        low = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.01))
        high = FaultPlan(FaultSpec.create(seed=7, drop_rate=0.2))
        n_low = sum(low.drops(i) for i in range(5000))
        n_high = sum(high.drops(i) for i in range(5000))
        assert 0 < n_low < n_high
        # The hash thresholding makes schedules nested: every index that
        # fires at a low rate also fires at any higher rate.
        assert all(high.drops(i) for i in range(5000) if low.drops(i))

    def test_explicit_indices_always_fire(self):
        plan = FaultPlan(FaultSpec.create(drop_indices=[5, 17],
                                          truncate_seqs=[9]))
        assert plan.drops(5) and plan.drops(17) and not plan.drops(6)
        assert plan.truncate_depth(9) == 1 and plan.truncate_depth(8) == 0

    def test_reorder_offset_within_window(self):
        spec = FaultSpec.create(seed=7, reorder_rate=0.5, reorder_window=3)
        plan = FaultPlan(spec)
        offsets = {plan.reorder_offset(i) for i in range(2000)}
        assert offsets - {0} and offsets <= {0, 1, 2, 3}

    def test_kill_and_stall_schedules(self):
        plan = FaultPlan(FaultSpec.create(
            core_kills=[(2, 100), (2, 50)],
            core_stalls=[(1, 30, 500.0), (1, 10, 200.0)],
        ))
        assert plan.kill_index(2) == 50  # earliest kill wins
        assert plan.kill_index(0) is None
        assert plan.stalls_for(1) == ((10, 200.0), (30, 500.0))
        assert plan.stalls_for(3) == ()
