"""The per-run injector adapters and the epoch-checkpoint recovery model."""

import pytest

from repro.faults import EpochCheckpointer, FaultPlan, FaultSpec, SequencerFaults, SimFaults
from repro.programs import make_program
from repro.sequencer import PacketHistorySequencer
from repro.state.maps import StateMap
from tests.conftest import trace_for_program


class TestSimFaults:
    def test_counts_fire_once_per_decision(self):
        plan = FaultPlan(FaultSpec.create(drop_indices=[1, 5],
                                          pop_drop_indices=[2],
                                          duplicate_indices=[3]))
        sf = SimFaults(plan, num_cores=2)
        fired = [sf.drop(i) for i in range(8)]
        assert fired == [False, True, False, False, False, True, False, False]
        assert sf.dropped == 2
        assert sf.pop_drop(2) and sf.pop_dropped == 1
        assert sf.duplicate(3) and sf.duplicated == 1

    def test_kill_latches(self):
        plan = FaultPlan(FaultSpec.create(core_kills=[(1, 10)]))
        sf = SimFaults(plan, num_cores=2)
        assert not sf.killed(1, 9)
        assert sf.killed(1, 10)
        assert sf.killed(1, 3)  # latched: dead is dead, whatever the index
        assert not sf.killed(0, 1000)
        assert sf.killed_cores() == [1]
        assert sf.kills == 1

    def test_stalls_fire_once_in_order(self):
        plan = FaultPlan(FaultSpec.create(
            core_stalls=[(0, 10, 500.0), (0, 20, 300.0)]))
        sf = SimFaults(plan, num_cores=1)
        assert sf.stall_ns(0, 5) == 0.0
        assert sf.stall_ns(0, 15) == 500.0
        assert sf.stall_ns(0, 25) == 300.0
        assert sf.stall_ns(0, 30) == 0.0  # consumed
        assert sf.stalls_fired == 2 and sf.stall_ns_total == 800.0

    def test_summary_shape(self):
        sf = SimFaults(FaultPlan(FaultSpec.create()), num_cores=2)
        summary = sf.summary()
        assert summary["fault_dropped"] == 0
        assert summary["killed_cores"] == []


class TestSequencerFaults:
    def test_truncate_zeroes_oldest_rows(self):
        program = make_program("ddos")
        plan = FaultPlan(FaultSpec.create(truncate_seqs=[6], truncate_depth=2))
        faults = SequencerFaults(plan, meta_size=program.metadata_size)
        seq = PacketHistorySequencer(program, num_cores=4, faults=faults)
        trace = trace_for_program(program, max_packets=12)
        zero = b"\x00" * program.metadata_size
        for i, pkt in enumerate(trace, start=1):
            sp = seq.process(pkt)
            rows = seq.codec.decode(sp.data)[1]
            if i == 6:
                # Oldest two real history rows (seqs 2 and 3) are zeroed.
                assert sp.truncated_seqs == (2, 3)
                assert rows[0] == zero and rows[1] == zero
                assert rows[2] != zero
            else:
                assert sp.truncated_seqs == ()
                if i > 4:  # earlier packets pad unfilled slots with zeros
                    assert zero not in rows
        assert faults.truncations == 1
        assert faults.rows_zeroed == 2
        assert faults.truncated[6] == (2, 3)


class TestEpochCheckpointer:
    def _checkpointer(self, program, **kwargs):
        return EpochCheckpointer(program, **kwargs)

    def _feed(self, ck, program, packets):
        for i, pkt in enumerate(packets, start=1):
            ck.record(i, program.extract_metadata(pkt).pack())

    def test_resync_reproduces_fault_free_state(self):
        program = make_program("ddos")
        packets = list(trace_for_program(program, max_packets=100))
        ck = self._checkpointer(program, epoch_len=16)
        self._feed(ck, program, packets)

        # A reference replica that saw every packet up to seq 70.
        ref = StateMap(capacity=4096)
        for pkt in packets[:70]:
            program.fast_forward(ref, program.extract_metadata(pkt))

        broken = StateMap(capacity=4096)
        broken.update("garbage", 123)
        outcome = ck.resync(broken, to_seq=70)
        assert not outcome.unrecoverable
        assert outcome.checkpoint_seq == 64
        assert outcome.replayed == 6
        assert broken.snapshot() == ref.snapshot()

    def test_record_enforces_contiguity(self):
        program = make_program("ddos")
        packets = list(trace_for_program(program, max_packets=5))
        ck = self._checkpointer(program)
        ck.record(1, program.extract_metadata(packets[0]).pack())
        with pytest.raises(ValueError):
            ck.record(3, program.extract_metadata(packets[1]).pack())

    def test_bounded_log_reports_unrecoverable(self):
        program = make_program("ddos")
        packets = list(trace_for_program(program, max_packets=100))
        ck = self._checkpointer(program, epoch_len=64, log_capacity=4)
        self._feed(ck, program, packets)
        # Sequence 70 needs replay from checkpoint 64, but the 4-entry log
        # only holds 97..100: the gap is beyond the protocol's reach.
        state = StateMap(capacity=4096)
        outcome = ck.resync(state, to_seq=70)
        assert outcome.unrecoverable
        assert ck.unrecoverable_requests == 1

    def test_resync_to_future_seq_is_unrecoverable(self):
        program = make_program("ddos")
        ck = self._checkpointer(program)
        assert ck.resync(StateMap(capacity=16), to_seq=5).unrecoverable
