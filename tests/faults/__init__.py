"""repro.faults test suite."""
