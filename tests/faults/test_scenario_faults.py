"""FaultSpec integration with the Scenario layer, executor, and cache."""

import pytest

from repro.faults import FaultSpec
from repro.scenario import Scenario, ScenarioExecutor
from repro.scenario.spec import SPEC_SCHEMA


def _scenario(faults=None, **overrides):
    kwargs = dict(num_flows=20, max_packets=600, seed=7)
    kwargs.update(overrides)
    return Scenario.create("ddos", "univ_dc", "scr", 4, faults=faults, **kwargs)


class TestContentHash:
    def test_schema_carries_faults(self):
        # 2 added faults; 3 added placement — both stay hash-covered.
        assert SPEC_SCHEMA >= 2

    def test_fault_spec_changes_scenario_hash(self):
        clean = _scenario()
        faulted = _scenario(faults=FaultSpec.create(seed=7, drop_rate=0.01))
        assert clean.content_hash() != faulted.content_hash()
        assert "faults" in faulted.canonical_dict()

    def test_with_faults_round_trip(self):
        spec = FaultSpec.create(seed=7, drop_rate=0.01)
        faulted = _scenario().with_faults(spec)
        assert faulted.faults == spec
        stripped = faulted.with_faults(None)
        assert stripped.content_hash() == _scenario().content_hash()


class TestExecutorParity:
    @pytest.fixture(scope="class")
    def grid(self):
        rates = (0.0, 0.01, 0.02)
        return [
            _scenario(faults=None if rate == 0.0
                      else FaultSpec.create(seed=7, drop_rate=rate))
            for rate in rates
        ]

    def test_serial_and_parallel_agree_bitwise(self, grid):
        serial = ScenarioExecutor(jobs=1).run(grid)
        parallel = ScenarioExecutor(jobs=2).run(grid)
        for s, p in zip(serial, parallel):
            assert s.mlffr_mpps == p.mlffr_mpps
            assert s.fault_stats == p.fault_stats

    def test_faults_degrade_mlffr_monotonically(self, grid):
        results = ScenarioExecutor(jobs=1).run(grid)
        mpps = [r.mlffr_mpps for r in results]
        assert mpps[0] >= mpps[1] >= mpps[2]
        assert mpps[0] > mpps[2]

    def test_faulted_runs_report_fault_stats(self, grid):
        results = ScenarioExecutor(jobs=1).run(grid)
        assert results[0].fault_stats is None or not results[0].fault_stats
        stats = results[2].fault_stats
        assert stats is not None
        assert stats.get("fault_dropped", 0) > 0


class TestCacheSeparation:
    def test_shared_cache_never_cross_contaminates(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = _scenario()
        faulted = _scenario(faults=FaultSpec.create(seed=7, drop_rate=0.02))

        first = ScenarioExecutor(jobs=1, cache_dir=cache_dir).run(
            [clean, faulted])
        # Second executor re-reads the now-warm cache; results must match
        # the cold run pairwise, not leak across the fault boundary.
        second = ScenarioExecutor(jobs=1, cache_dir=cache_dir).run(
            [clean, faulted])
        assert first[0].mlffr_mpps == second[0].mlffr_mpps
        assert first[1].mlffr_mpps == second[1].mlffr_mpps
        assert first[0].mlffr_mpps > first[1].mlffr_mpps
