"""The curated chaos matrix and the ``scr-repro chaos`` CLI command."""

import io
import json

import pytest

from repro.cli import main
from repro.faults.matrix import (
    ChaosMatrixParams,
    ChaosReport,
    fault_classes,
    run_chaos_matrix,
)
from repro.perf.artifact import BenchArtifact


@pytest.fixture(scope="module")
def report():
    # One quick matrix run shared by every assertion below (~seconds).
    return run_chaos_matrix(ChaosMatrixParams(seed=7, jobs=1, quick=True))


class TestMatrix:
    def test_curated_classes_cover_every_injector(self):
        rows = fault_classes(seed=7)
        names = {r.name for r in rows}
        assert names >= {"rx_drop", "pop_drop", "history_truncate",
                         "dup_reorder", "wide_history", "bounded_log",
                         "no_recovery"}

    def test_gate_passes(self, report):
        assert report.ok
        assert report.gaps_injected > 0
        assert report.gaps_detected == report.gaps_injected
        assert report.undetected_divergences == 0
        assert report.resynced_classes

    def test_expectations_hold_per_class(self, report):
        assert report.outcomes["wide_history"].resyncs == 0
        assert report.outcomes["no_recovery"].suspect_cores
        assert not report.outcomes["no_recovery"].digest_equal
        assert report.outcomes["bounded_log"].unrecoverable_cores

    def test_mlffr_degrades_with_drop_rate(self, report):
        rates = sorted(report.mlffr_by_rate, key=float)
        mpps = [report.mlffr_by_rate[r] for r in rates]
        assert float(rates[0]) == 0.0
        assert mpps == sorted(mpps, reverse=True)
        assert mpps[0] > mpps[-1]

    def test_artifact_series_and_round_trip(self, report, tmp_path):
        names = set(report.artifact.series)
        assert names == {"gap_detection", "digest_equality",
                         "recovery_latency_cycles", "mlffr_vs_drop_rate",
                         "mlffr_degradation_pct"}
        path = report.artifact.save(tmp_path)
        clone = BenchArtifact.load(path)
        assert clone.name == "chaos_recovery"
        assert set(clone.series) == names
        # Bit-identity contract: no wall-clock stamps in the payload.
        raw = json.loads(path.read_text())
        assert raw["created_utc"] == ""

    def test_summary_mentions_gate_verdict(self, report):
        text = "\n".join(report.summary_lines())
        assert "chaos gate: PASS" in text


class TestChaosCli:
    def _run(self, monkeypatch, tmp_path, ok, argv_extra=()):
        stub = ChaosReport(
            params=ChaosMatrixParams(seed=7, jobs=1, quick=True),
            artifact=BenchArtifact(name="chaos_recovery"))
        monkeypatch.setattr(ChaosReport, "ok", property(lambda self: ok))
        monkeypatch.setattr(ChaosReport, "summary_lines",
                            lambda self: ["stubbed"])
        monkeypatch.setattr("repro.faults.matrix.run_chaos_matrix",
                            lambda params: stub)
        out = io.StringIO()
        code = main(["chaos", "--out", str(tmp_path / "chaos"),
                     *argv_extra], out=out)
        return code, out.getvalue()

    def test_exit_zero_on_pass(self, monkeypatch, tmp_path):
        code, text = self._run(monkeypatch, tmp_path, ok=True)
        assert code == 0
        assert "stubbed" in text

    def test_exit_one_on_gate_failure(self, monkeypatch, tmp_path):
        code, _ = self._run(monkeypatch, tmp_path, ok=False)
        assert code == 1

    def test_rejects_bad_jobs(self, tmp_path):
        out = io.StringIO()
        assert main(["chaos", "--jobs", "0",
                     "--out", str(tmp_path)], out=out) == 2
