"""Scenario/TraceSpec: freezing, hashing, validation, grids."""

import dataclasses
import pickle

import pytest

from repro.scenario import (
    PACKET_SIZE_CONNTRACK,
    PACKET_SIZE_DEFAULT,
    Scenario,
    TraceSpec,
    freeze_engine_kwargs,
    packet_size_for,
    scenario_grid,
)


class TestTraceSpec:
    def test_frozen_and_hashable(self):
        spec = TraceSpec("caida")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 99
        assert spec == TraceSpec("caida")
        assert hash(spec) == hash(TraceSpec("caida"))

    def test_content_hash_stable_and_distinct(self):
        a = TraceSpec("caida", seed=7)
        assert a.content_hash() == TraceSpec("caida", seed=7).content_hash()
        assert len(a.content_hash()) == 64
        # every field is load-bearing for the hash
        for change in (
            dict(workload="univ_dc"),
            dict(num_flows=61),
            dict(max_packets=4001),
            dict(seed=8),
            dict(bidirectional=True),
            dict(packet_size=None),
        ):
            other = dataclasses.replace(a, **change)
            assert other.content_hash() != a.content_hash(), change

    def test_with_seed(self):
        spec = TraceSpec("caida", seed=7)
        assert spec.with_seed(9).seed == 9
        assert spec.with_seed(7) == spec

    def test_display_name(self):
        assert TraceSpec("caida", num_flows=40).display_name == "caida-40flows"
        assert TraceSpec("single-flow").display_name == "single-flow"

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec("caida", num_flows=0)
        with pytest.raises(ValueError):
            TraceSpec("caida", max_packets=0)
        with pytest.raises(ValueError):
            TraceSpec("caida", packet_size=0)


class TestScenarioCreate:
    def test_defaults_follow_paper_conventions(self):
        sc = Scenario.create("ddos", "caida", "scr", 4)
        assert sc.trace.packet_size == PACKET_SIZE_DEFAULT
        assert sc.trace.bidirectional is False
        conn = Scenario.create("conntrack", "caida", "scr", 4)
        assert conn.trace.packet_size == PACKET_SIZE_CONNTRACK
        assert conn.trace.bidirectional is True  # conntrack sees both ways
        assert packet_size_for("conntrack") == PACKET_SIZE_CONNTRACK

    def test_unknown_names_rejected_with_listing(self):
        with pytest.raises(ValueError, match="unknown program"):
            Scenario.create("nope", "caida", "scr", 4)
        with pytest.raises(ValueError, match="unknown technique") as exc:
            Scenario.create("ddos", "caida", "nope", 4)
        assert "scr" in str(exc.value) and "rss++" in str(exc.value)
        with pytest.raises(ValueError, match="core"):
            Scenario.create("ddos", "caida", "scr", 0)

    def test_hash_covers_measurement_knobs(self):
        base = Scenario.create("ddos", "caida", "scr", 4)
        assert base.content_hash() == Scenario.create(
            "ddos", "caida", "scr", 4
        ).content_hash()
        for variant in (
            Scenario.create("ddos", "caida", "scr", 5),
            Scenario.create("ddos", "caida", "rss", 4),
            Scenario.create("ddos", "univ_dc", "scr", 4),
            Scenario.create("ddos", "caida", "scr", 4, burst_size=2),
            Scenario.create("ddos", "caida", "scr", 4, line_rate_gbps=40.0),
            Scenario.create("ddos", "caida", "scr", 4,
                            engine_kwargs={"count_wire_overhead": False}),
            Scenario.create("ddos", "caida", "scr", 4, collect_latency=True),
        ):
            assert variant.content_hash() != base.content_hash()

    def test_engine_kwargs_frozen_and_order_independent(self):
        a = Scenario.create("ddos", "caida", "scr", 4,
                            engine_kwargs={"a": 1, "b": 2})
        b = Scenario.create("ddos", "caida", "scr", 4,
                            engine_kwargs={"b": 2, "a": 1})
        assert a == b
        assert a.engine_kwargs_dict() == {"a": 1, "b": 2}

    def test_engine_kwargs_must_be_scalar(self):
        with pytest.raises(TypeError, match="scalar"):
            freeze_engine_kwargs({"tracer": object()})

    def test_picklable(self):
        sc = Scenario.create("conntrack", "caida", "rss++", 7,
                             engine_kwargs={"x": 1})
        assert pickle.loads(pickle.dumps(sc)) == sc

    def test_with_seed_and_describe(self):
        sc = Scenario.create("ddos", "caida", "scr", 4, seed=7)
        assert sc.with_seed(8).trace.seed == 8
        assert sc.with_seed(8).program == "ddos"
        assert "ddos" in sc.describe() and "scr" in sc.describe()


class TestScenarioPlacement:
    def placement(self, **kw):
        from repro.placement import PlacementSpec
        return PlacementSpec(**kw)

    def test_flow_count_validated_with_range_in_message(self):
        from repro.scenario.spec import MAX_NUM_FLOWS
        with pytest.raises(ValueError, match=rf"\[1, {MAX_NUM_FLOWS}\]"):
            Scenario.create("ddos", "caida", "scr", 4, num_flows=0)
        with pytest.raises(ValueError, match=rf"\[1, {MAX_NUM_FLOWS}\]"):
            Scenario.create("ddos", "caida", "scr", 4,
                            num_flows=MAX_NUM_FLOWS + 1)

    def test_tenants_bounded_by_flows(self):
        with pytest.raises(ValueError, match=r"num_tenants.*num_flows=10"):
            Scenario.create("ddos", "caida", "hybrid", 4, num_flows=10,
                            placement=self.placement(num_tenants=11))
        sc = Scenario.create("ddos", "caida", "hybrid", 4, num_flows=10,
                             placement=self.placement(num_tenants=10))
        assert sc.placement.num_tenants == 10

    def test_hash_covers_placement(self):
        base = Scenario.create("ddos", "caida", "hybrid", 4,
                               placement=self.placement())
        same = Scenario.create("ddos", "caida", "hybrid", 4,
                               placement=self.placement())
        assert base.content_hash() == same.content_hash()
        for variant in (
            Scenario.create("ddos", "caida", "hybrid", 4),
            Scenario.create("ddos", "caida", "hybrid", 4,
                            placement=self.placement(num_tenants=4)),
            Scenario.create("ddos", "caida", "hybrid", 4,
                            placement=self.placement(promote_threshold=32)),
        ):
            assert variant.content_hash() != base.content_hash()

    def test_with_placement_and_describe(self):
        sc = Scenario.create("ddos", "caida", "hybrid", 4)
        assert sc.placement is None
        pl = self.placement(num_tenants=4, tenant_quota=100)
        with_pl = sc.with_placement(pl)
        assert with_pl.placement == pl
        assert sc.placement is None  # original untouched (frozen spec)
        assert pl.describe() in with_pl.describe()

    def test_picklable_with_placement(self):
        sc = Scenario.create("ddos", "caida", "hybrid", 4,
                             placement=self.placement(num_tenants=2))
        assert pickle.loads(pickle.dumps(sc)) == sc


def test_scenario_grid_order_matches_scaling_sweep():
    grid = scenario_grid("ddos", "caida", ["scr", "rss"], [1, 2],
                         max_packets=500)
    assert [(s.technique, s.cores) for s in grid] == [
        ("scr", 1), ("scr", 2), ("rss", 1), ("rss", 2),
    ]
    assert all(s.trace.max_packets == 500 for s in grid)


def test_scenario_grid_engine_kwargs_by_technique():
    grid = scenario_grid(
        "ddos", "caida", ["scr", "rss"], [1],
        engine_kwargs_by_technique={"scr": {"count_wire_overhead": False}},
    )
    assert grid[0].engine_kwargs_dict() == {"count_wire_overhead": False}
    assert grid[1].engine_kwargs == ()
