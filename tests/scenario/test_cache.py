"""TraceCache: content-addressed reuse, corruption healing, schema dirs."""

import pickle

import pytest

from repro.scenario import (
    CACHE_SCHEMA,
    Scenario,
    TraceCache,
    TraceSpec,
    build_perf_trace,
    build_trace,
)
from repro.scenario.build import StackBuilder, _synthesize


@pytest.fixture
def spec():
    return TraceSpec("caida", num_flows=10, max_packets=300)


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "cache")


class TestTraceRoundTrip:
    def test_miss_then_hit(self, cache, spec):
        assert cache.load_trace(spec) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "corrupt_evictions": 0,
        }
        trace = _synthesize(spec)
        cache.store_trace(spec, trace)
        again = cache.load_trace(spec)
        assert again is not None
        assert cache.hits == 1

    def test_reload_is_byte_identical(self, cache, spec):
        """A cache hit reproduces the synthesized trace exactly."""
        fresh = _synthesize(spec)
        cache.store_trace(spec, fresh)
        reloaded = cache.load_trace(spec)
        assert reloaded.name == fresh.name
        assert len(reloaded) == len(fresh)
        for a, b in zip(fresh, reloaded):
            assert a.to_bytes() == b.to_bytes()
            assert a.timestamp_ns == b.timestamp_ns
            assert a.wire_len == b.wire_len

    def test_schema_versioned_layout(self, cache, spec):
        cache.store_trace(spec, _synthesize(spec))
        path = cache.trace_path(spec)
        assert path.exists()
        assert f"v{CACHE_SCHEMA}" in path.parts
        assert path.name == f"{spec.content_hash()}.scrt"

    def test_schema_bump_invalidates(self, cache, spec, monkeypatch):
        """Bumping CACHE_SCHEMA orphans every existing entry at once."""
        cache.store_trace(spec, _synthesize(spec))
        import repro.scenario.cache as cache_mod

        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", CACHE_SCHEMA + 1)
        assert cache.load_trace(spec) is None

    def test_corrupt_entry_discarded_and_healed(self, cache, spec):
        cache.store_trace(spec, _synthesize(spec))
        path = cache.trace_path(spec)
        path.write_bytes(b"not a trace at all")
        assert cache.load_trace(spec) is None  # treated as a miss
        assert not path.exists()  # and deleted, so the next store heals it
        assert cache.corrupt_evictions == 1
        cache.store_trace(spec, _synthesize(spec))
        assert cache.load_trace(spec) is not None

    def test_truncated_entry_discarded(self, cache, spec):
        cache.store_trace(spec, _synthesize(spec))
        path = cache.trace_path(spec)
        path.write_bytes(path.read_bytes()[: 40])
        assert cache.load_trace(spec) is None
        assert not path.exists()


class TestPerfTraceCache:
    def test_round_trip_identical_costs(self, cache, spec):
        pt = build_perf_trace(
            Scenario.create("ddos", "caida", "scr", 1,
                            num_flows=10, max_packets=300), cache=None
        )
        cache.store_perf_trace("ddos", spec, pt)
        again = cache.load_perf_trace("ddos", spec)
        assert again is not None
        assert again.program_name == pt.program_name
        assert len(again) == len(pt)
        assert again.unique_keys == pt.unique_keys
        assert again.records == pt.records

    def test_program_mismatch_is_poisoning(self, cache, spec):
        """An entry claiming the wrong program is rejected and deleted."""
        pt = build_perf_trace(
            Scenario.create("ddos", "caida", "scr", 1,
                            num_flows=10, max_packets=300), cache=None
        )
        cache.store_perf_trace("ddos", spec, pt)
        # poison: rename ddos's entry onto token_bucket's key
        poisoned = cache.perf_path("token_bucket", spec)
        poisoned.parent.mkdir(parents=True, exist_ok=True)
        cache.perf_path("ddos", spec).rename(poisoned)
        assert cache.load_perf_trace("token_bucket", spec) is None
        assert not poisoned.exists()
        assert cache.corrupt_evictions == 1

    def test_garbage_pickle_discarded(self, cache, spec):
        path = cache.perf_path("ddos", spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a perf trace"}))
        assert cache.load_perf_trace("ddos", spec) is None
        assert not path.exists()
        assert cache.corrupt_evictions == 1

    def test_pre_columnar_pickle_rejected(self, cache, spec, monkeypatch):
        """A v1-era row-major PerfTrace pickle must never half-load: the
        struct-of-arrays ``__setstate__`` refuses the old layout, and the
        cache evicts it like any other corrupt entry.  (Belt and braces —
        the CACHE_SCHEMA bump to 2 already orphans the v1 directory.)"""
        from repro.cpu.simulator import PerfTrace

        pt = build_perf_trace(
            Scenario.create("ddos", "caida", "scr", 1,
                            num_flows=10, max_packets=300), cache=None
        )
        legacy_state = {
            "records": pt.records,
            "program_name": pt.program_name,
            "name": pt.name,
        }
        monkeypatch.setattr(PerfTrace, "__getstate__", lambda self: legacy_state)
        blob = pickle.dumps(pt)
        monkeypatch.undo()
        with pytest.raises(ValueError, match="pre-columnar"):
            pickle.loads(blob)
        path = cache.perf_path("ddos", spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(blob)
        assert cache.load_perf_trace("ddos", spec) is None
        assert not path.exists()
        assert cache.corrupt_evictions == 1

    def test_schema_is_v2_columnar(self, cache, spec):
        """The columnar PerfTrace layout shipped with CACHE_SCHEMA 2, so
        every pre-columnar entry (under ``v1/``) stopped matching at once."""
        assert CACHE_SCHEMA >= 2
        pt = build_perf_trace(
            Scenario.create("ddos", "caida", "scr", 1,
                            num_flows=10, max_packets=300), cache=None
        )
        cache.store_perf_trace("ddos", spec, pt)
        path = cache.perf_path("ddos", spec)
        assert f"v{CACHE_SCHEMA}" in path.parts
        v1 = path.parents[1].parent / "v1" / "perf" / path.name
        assert not v1.exists()


class TestBuilderIntegration:
    def test_builder_populates_and_reuses(self, tmp_path, spec):
        root = tmp_path / "c"
        a = StackBuilder(TraceCache(root))
        t1 = a.trace(spec)
        # a second builder (fresh memos) must hit the disk cache
        cache2 = TraceCache(root)
        b = StackBuilder(cache2)
        t2 = b.trace(spec)
        assert cache2.hits == 1 and cache2.misses == 0
        assert [p.to_bytes() for p in t1] == [p.to_bytes() for p in t2]

    def test_cacheless_builder_works(self, spec):
        assert len(build_trace(spec)) > 0
