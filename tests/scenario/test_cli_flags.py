"""The CLI's --jobs/--cache-dir flags: determinism and cache wiring."""

import io

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


_SWEEP = ["sweep", "--program", "ddos", "--workload", "caida",
          "--techniques", "scr", "rss", "--cores", "1", "2",
          "--packets", "400"]


def test_sweep_jobs_parallel_output_identical():
    code1, text1 = run_cli(_SWEEP + ["--jobs", "1"])
    code2, text2 = run_cli(_SWEEP + ["--jobs", "2"])
    assert code1 == code2 == 0
    assert text1 == text2


def test_sweep_jobs_validation():
    code, text = run_cli(_SWEEP + ["--jobs", "0"])
    assert code == 2
    assert "--jobs" in text


def test_sweep_unknown_technique_clean_error():
    code, text = run_cli([
        "sweep", "--program", "ddos", "--workload", "caida",
        "--techniques", "magic", "--cores", "1", "--packets", "300",
    ])
    assert code == 2
    assert "unknown technique" in text and "scr" in text


def test_sweep_cache_dir_populated_and_reused(tmp_path):
    cache = tmp_path / "cache"
    code1, text1 = run_cli(_SWEEP + ["--cache-dir", str(cache)])
    assert code1 == 0
    stored = list(cache.rglob("*.scrt")) + list(cache.rglob("*.pkl"))
    assert stored, "cache directory not populated"
    mtimes = {p: p.stat().st_mtime_ns for p in stored}
    code2, text2 = run_cli(_SWEEP + ["--cache-dir", str(cache)])
    assert code2 == 0
    assert text2 == text1  # cached workload reproduces the series exactly
    for p, mtime in mtimes.items():
        assert p.stat().st_mtime_ns == mtime, f"cache entry rewritten: {p}"


def test_mlffr_cache_dir(tmp_path):
    cache = tmp_path / "cache"
    args = ["mlffr", "--program", "ddos", "--workload", "caida",
            "--cores", "2", "--packets", "400", "--cache-dir", str(cache)]
    code1, text1 = run_cli(args)
    code2, text2 = run_cli(args)
    assert code1 == code2 == 0
    assert text1 == text2
    assert list(cache.rglob("*.pkl"))


def test_run_cache_dir(tmp_path):
    cache = tmp_path / "cache"
    args = ["run", "--program", "ddos", "--cores", "2",
            "--workload", "univ_dc", "--flows", "8", "--packets", "300",
            "--cache-dir", str(cache)]
    code1, text1 = run_cli(args)
    code2, text2 = run_cli(args)
    assert code1 == code2 == 0
    assert text1 == text2
    assert "replicas consistent: True" in text1
    assert list(cache.rglob("*.scrt"))


def test_bench_jobs_artifact_identical(tmp_path):
    import json

    args = ["bench", "--suite", "engine_mlffr", "--reps", "1"]
    code1, _ = run_cli(args + ["--out", str(tmp_path / "serial")])
    code2, _ = run_cli(args + ["--jobs", "2", "--out", str(tmp_path / "par"),
                               "--cache-dir", str(tmp_path / "cache")])
    assert code1 == code2 == 0
    serial = json.loads((tmp_path / "serial" / "BENCH_engine_mlffr.json").read_text())
    par = json.loads((tmp_path / "par" / "BENCH_engine_mlffr.json").read_text())
    assert serial["series"] == par["series"]


def test_bench_jobs_validation(tmp_path):
    code, text = run_cli(["bench", "--suite", "engine_mlffr",
                          "--jobs", "0", "--out", str(tmp_path)])
    assert code == 2
    assert "--jobs" in text


def test_reproduce_jobs_identical(tmp_path):
    args = ["reproduce", "6g", "--packets", "400"]
    code1, text1 = run_cli(args)
    code2, text2 = run_cli(args + ["--jobs", "2",
                                   "--cache-dir", str(tmp_path / "c")])
    assert code1 == code2 == 0
    assert text1 == text2
