"""StackBuilder/run_scenario: the composition root and runner parity."""

import pytest

from repro.bench import ExperimentRunner
from repro.parallel.base import BaseEngine
from repro.scenario import (
    Scenario,
    StackBuilder,
    build_stack,
    run_scenario,
)

_SMALL = dict(num_flows=12, max_packets=400)


class TestStackBuilder:
    def test_stack_has_all_layers(self):
        sc = Scenario.create("ddos", "caida", "scr", 2, **_SMALL)
        stack = build_stack(sc)
        assert stack.scenario is sc
        assert stack.program.name == "ddos"
        assert stack.perf_trace.program_name == "ddos"
        assert isinstance(stack.engine, BaseEngine)
        assert stack.engine.num_cores == 2

    def test_memoizes_within_builder(self):
        builder = StackBuilder()
        a = Scenario.create("ddos", "caida", "scr", 1, **_SMALL)
        b = Scenario.create("ddos", "caida", "rss", 4, **_SMALL)
        s1, s2 = builder.stack(a), builder.stack(b)
        # same spec → same trace/perf-trace objects, engines always fresh
        assert s1.perf_trace is s2.perf_trace
        assert s1.engine is not s2.engine

    def test_seed_changes_workload(self):
        builder = StackBuilder()
        a = Scenario.create("ddos", "caida", "scr", 1, **_SMALL)
        assert builder.trace(a.trace) is not builder.trace(
            a.with_seed(8).trace
        )

    def test_engine_kwargs_forwarded(self):
        sc = Scenario.create("ddos", "caida", "scr", 2,
                             engine_kwargs={"num_slots": 8}, **_SMALL)
        assert build_stack(sc).engine.num_slots == 8


class TestRunScenario:
    def test_matches_experiment_runner(self):
        """The shim and the scenario path are the same numbers."""
        sc = Scenario.create("ddos", "caida", "scr", 2, **_SMALL)
        res = run_scenario(sc)
        runner = ExperimentRunner(num_flows=12, max_packets=400)
        old = runner.mlffr_point("ddos", "caida", "scr", 2)
        assert res.mlffr_mpps == old.mlffr_mpps
        assert res.iterations == old.iterations
        assert res.probes == list(old.probes)

    def test_same_scenario_same_result(self):
        sc = Scenario.create("token_bucket", "caida", "rss", 2, **_SMALL)
        a = run_scenario(sc)
        b = run_scenario(sc)  # fresh builder, fresh engine
        assert a.mlffr_mpps == b.mlffr_mpps
        assert a.probes == b.probes

    def test_collect_latency(self):
        sc = Scenario.create("ddos", "caida", "scr", 2,
                             collect_latency=True, **_SMALL)
        res = run_scenario(sc)
        assert res.latency_ns is not None and res.latency_ns["p50"] > 0
        assert res.counters is not None

    def test_profile(self):
        sc = Scenario.create("ddos", "caida", "scr", 2, profile=True, **_SMALL)
        res = run_scenario(sc)
        assert res.profile is not None
        assert res.profile  # non-empty attribution dict

    def test_compact_drops_payload_keeps_numbers(self):
        sc = Scenario.create("ddos", "caida", "scr", 1, **_SMALL)
        res = run_scenario(sc)
        assert res.mlffr is not None
        compacted = res.compact()
        assert compacted.mlffr is None
        assert compacted.mlffr_mpps == res.mlffr_mpps
        assert compacted.probes == res.probes


class TestRunnerShim:
    def test_clone_does_not_share_memos(self):
        base = ExperimentRunner(seed=7)
        clone = base.clone_with_seed(8)
        assert clone._traces is not base._traces
        assert clone._perf is not base._perf
        assert clone.seed == 8

    def test_scaling_point_iterations_populated(self):
        runner = ExperimentRunner(num_flows=12, max_packets=400)
        points = runner.scaling_sweep("ddos", "caida", ["scr"], [1, 2])
        assert all(p.iterations > 0 for p in points)

    def test_scenario_for_reflects_runner_config(self):
        runner = ExperimentRunner(num_flows=12, max_packets=400, seed=9)
        sc = runner.scenario_for("ddos", "caida", "scr", 2)
        assert sc.trace.num_flows == 12
        assert sc.trace.max_packets == 400
        assert sc.trace.seed == 9

    def test_unknown_technique_via_runner(self):
        runner = ExperimentRunner(num_flows=12, max_packets=400)
        with pytest.raises(ValueError, match="unknown technique"):
            runner.mlffr_point("ddos", "caida", "magic", 2)
