"""ScenarioExecutor: parallel runs must be bit-identical to serial.

The determinism acceptance test for the whole layer: the same scenario
grid through ``jobs=1`` and ``jobs=4`` produces the same MLFFR series,
probe sequences, and merged telemetry.  Grids are kept tiny — the point
is equality, not throughput.
"""

import pytest

from repro.scenario import (
    Scenario,
    ScenarioExecutor,
    TraceCache,
    scenario_grid,
)
from repro.telemetry import Telemetry

_GRID_KW = dict(num_flows=10, max_packets=400)


def _grid():
    return scenario_grid("ddos", "caida", ["scr", "rss"], [1, 2], **_GRID_KW)


def _series(results):
    return [(r.scenario.technique, r.scenario.cores, r.mlffr_mpps, r.probes)
            for r in results]


class TestSerialPath:
    def test_results_in_input_order(self):
        grid = _grid()
        results = ScenarioExecutor(jobs=1).run(grid)
        assert [r.scenario for r in results] == grid

    def test_run_one(self):
        sc = Scenario.create("ddos", "caida", "scr", 1, **_GRID_KW)
        res = ScenarioExecutor().run_one(sc)
        assert res.mlffr_mpps > 0

    def test_serial_shares_builder(self):
        ex = ScenarioExecutor(jobs=1)
        ex.run(_grid())
        # one workload spec in the grid → exactly one memoized trace
        assert len(ex.builder._traces) <= 1

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ScenarioExecutor(jobs=0)


class TestParallelEqualsSerial:
    def test_mlffr_series_identical(self):
        grid = _grid()
        serial = ScenarioExecutor(jobs=1).run(grid)
        parallel = ScenarioExecutor(jobs=4).run(grid)
        assert _series(serial) == _series(parallel)

    def test_identical_with_shared_cache(self, tmp_path):
        grid = _grid()
        serial = ScenarioExecutor(jobs=1).run(grid)
        cache = TraceCache(tmp_path / "cache")
        cold = ScenarioExecutor(jobs=2, cache=cache).run(grid)
        warm = ScenarioExecutor(jobs=2, cache=TraceCache(tmp_path / "cache")).run(grid)
        assert _series(serial) == _series(cold) == _series(warm)

    def test_telemetry_metrics_merge_identically(self):
        grid = _grid()
        tele_serial, tele_parallel = Telemetry(), Telemetry()
        ScenarioExecutor(jobs=1, telemetry=tele_serial).run(grid)
        ScenarioExecutor(jobs=2, telemetry=tele_parallel).run(grid)
        snap_s = tele_serial.registry.snapshot()
        snap_p = tele_parallel.registry.snapshot()
        assert set(snap_s) == set(snap_p)
        for name, data in snap_s.items():
            if data["type"] == "histogram":
                assert snap_p[name]["buckets"] == data["buckets"], name
                assert snap_p[name]["count"] == data["count"], name
            else:
                assert snap_p[name]["value"] == data["value"], name

    def test_parallel_results_are_compact(self):
        results = ScenarioExecutor(jobs=2).run(_grid())
        assert all(r.mlffr is None for r in results)

    def test_cache_dir_accepted(self, tmp_path):
        ex = ScenarioExecutor(jobs=2, cache_dir=tmp_path / "c")
        results = ex.run(_grid())
        assert len(results) == 4
        assert (tmp_path / "c").exists()
