"""Hybrid engine: routing, migration charges, quotas, determinism."""

import pytest

from repro.cpu import PerfTrace, simulate
from repro.packet import make_udp_packet
from repro.parallel import HybridEngine
from repro.parallel.registry import TECHNIQUES, make_engine
from repro.placement import PlacementSpec
from repro.programs import make_program
from repro.traffic import Trace


def trace_of(counts, prog_name="ddos", limit=512):
    """counts: {src_ip: packets}; interleaved round-robin by flow."""
    pkts = []
    remaining = dict(counts)
    while remaining:
        for src in list(remaining):
            pkts.append(make_udp_packet(src, 2, 3, 4))
            remaining[src] -= 1
            if remaining[src] == 0:
                del remaining[src]
    return PerfTrace.from_trace(
        Trace(pkts).truncated(limit), make_program(prog_name)
    )


def engine(cores=4, **placement_kw) -> HybridEngine:
    defaults = dict(promote_threshold=8, demote_threshold=2,
                    decay_interval=4096)
    defaults.update(placement_kw)
    eng = make_engine("hybrid", make_program("ddos"), cores,
                      placement=PlacementSpec(**defaults))
    assert isinstance(eng, HybridEngine)
    return eng


def test_registered_technique():
    assert "hybrid" in TECHNIQUES


def test_columnar_ineligible():
    # Steering mutates classifier state per packet: scalar loop only.
    assert engine().columnar_eligible() is False


def test_mice_pin_one_core_elephants_spray():
    eng = engine()
    pt = trace_of({1: 300, 2: 4, 3: 4})
    by_flow = {}
    for pp in pt.records:
        by_flow.setdefault(pp.key, []).append(eng.steer(pp))
    elephant_key = next(k for k, v in by_flow.items() if len(v) > 100)
    # The elephant is sprayed round-robin over every core once promoted...
    assert set(by_flow[elephant_key][-eng.num_cores:]) == set(range(4))
    # ...while each mouse stays pinned to exactly one core.
    for key, cores in by_flow.items():
        if key != elephant_key:
            assert len(set(cores)) == 1


def test_migration_charged_to_triggering_packet():
    eng = engine()
    pt = trace_of({1: 40})
    promote_index = None
    for pp in pt.records:
        eng.steer(pp)
        if promote_index is None and eng.classifier.promotions:
            promote_index = pp.index
            # The drain-or-replicate handoff lands on this packet: one
            # state-entry install per replica, at line-transfer cost.
            assert eng._migration_ns[pp.index] == pytest.approx(
                eng.num_cores * eng.contention.line_transfer_ns
            )
        else:
            assert pp.index not in eng._migration_ns
    assert promote_index is not None
    assert eng.migration_ns_total == pytest.approx(
        eng.num_cores * eng.contention.line_transfer_ns
    )


def test_migration_cost_lands_in_core_counters():
    eng = engine()
    res = simulate(trace_of({1: 200, **{i: 3 for i in range(2, 20)}}),
                   1e6, eng)
    assert res.processed == res.offered
    total_transfer = sum(c.transfer_ns for c in res.counters.cores)
    assert total_transfer == pytest.approx(eng.migration_ns_total)
    assert eng.migration_ns_total > 0


def test_quota_exhaustion_degrades_without_drops():
    eng = engine(num_tenants=1, tenant_quota=2)
    res = simulate(trace_of({i: 6 for i in range(1, 12)}), 1e6, eng)
    # Every packet still forwards; over-quota flows just run stateless.
    assert res.processed == res.offered
    stats = eng.placement_summary()
    assert stats["stateless_packets"] > 0
    assert stats["tenant_quota_drops_total"] > 0
    assert stats["tenant_quota_drops"] == {0: stats["tenant_quota_drops_total"]}


def test_placement_summary_shape_and_simresult_hook():
    eng = engine()
    res = simulate(trace_of({1: 200, 2: 5, 3: 5}), 1e6, eng)
    stats = res.placement_stats
    assert stats is not None
    for key in ("promotions", "demotions", "migrations", "elephant_packets",
                "mice_packets", "stateless_packets", "statemap_entries",
                "statemap_grow_events", "tenant_quota_drops_total"):
        assert key in stats
    assert stats["promotions"] == 1
    assert stats["elephant_packets"] > 0
    assert stats["mice_packets"] > 0
    total = (stats["elephant_packets"] + stats["mice_packets"])
    assert total == res.processed


def test_same_seed_same_promotions():
    """The acceptance gate: placement is a pure function of the stream."""
    pt = trace_of({1: 250, 2: 40, 3: 40, 4: 7})
    runs = []
    for _ in range(2):
        eng = engine()
        res = simulate(pt, 2e6, eng)
        runs.append(res.placement_stats)
    assert runs[0] == runs[1]


def test_reset_between_probes_reproduces():
    pt = trace_of({1: 250, 2: 40})
    eng = engine()
    first = simulate(pt, 2e6, eng).placement_stats
    second = simulate(pt, 2e6, eng).placement_stats  # simulate() resets
    assert first == second


def test_promoted_frames_carry_prefix_only_on_wire_methodology():
    on = make_engine("hybrid", make_program("ddos"), 4,
                     placement=PlacementSpec(promote_threshold=4,
                                             demote_threshold=2),
                     count_wire_overhead=True)
    off = engine(promote_threshold=4)
    pt = trace_of({1: 60})
    grew = 0
    for pp in pt.records:
        on.steer(pp)
        off.steer(pp)
        assert off.wire_len(pp) == pp.wire_len
        if on.wire_len(pp) > pp.wire_len:
            grew += 1
    assert grew > 0
