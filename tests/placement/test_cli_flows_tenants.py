"""The --flows/--tenants/--tenant-quota CLI plumbing."""

import io

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


_MLFFR = ["mlffr", "--program", "ddos", "--workload", "univ_dc",
          "--technique", "hybrid", "--cores", "2", "--packets", "400"]


def test_mlffr_flows_out_of_range_lists_valid_range():
    code, text = run_cli(_MLFFR + ["--flows", "0"])
    assert code == 2
    assert "num_flows" in text and "[1," in text


def test_mlffr_tenants_exceeding_flows_rejected():
    code, text = run_cli(_MLFFR + ["--flows", "4", "--tenants", "5"])
    assert code == 2
    assert "num_tenants" in text


def test_mlffr_hybrid_reports_placement_counters():
    code, text = run_cli(_MLFFR + ["--flows", "30", "--tenants", "3"])
    assert code == 0
    assert "placement:" in text
    assert "promotions" in text and "quota drops" in text


def test_mlffr_purebred_ignores_placement_line():
    code, text = run_cli(["mlffr", "--program", "ddos", "--workload",
                          "univ_dc", "--technique", "scr", "--cores", "2",
                          "--packets", "400", "--flows", "30"])
    assert code == 0
    assert "placement:" not in text


def test_run_tenant_occupancy_report():
    code, text = run_cli(["run", "--program", "ddos", "--workload", "univ_dc",
                          "--packets", "400", "--tenants", "4"])
    assert code == 0
    assert "tenants: 4" in text
    assert "occupied" in text


def test_run_tenants_validated():
    code, text = run_cli(["run", "--program", "ddos", "--workload", "univ_dc",
                          "--packets", "400", "--tenants", "0"])
    assert code == 2


def test_sweep_flows_tenants_accepted():
    code, text = run_cli(["sweep", "--program", "ddos", "--workload",
                          "univ_dc", "--techniques", "hybrid", "--cores",
                          "2", "--packets", "400", "--flows", "30",
                          "--tenants", "2", "--tenant-quota", "8"])
    assert code == 0
    assert "hybrid" in text
