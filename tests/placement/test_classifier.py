"""Elephant classifier: sketch guarantees, hysteresis, determinism."""

import pytest

from repro.placement import ElephantClassifier, PlacementSpec, tenant_of
from repro.placement.classifier import DEMOTE, PROMOTE, CountMinSketch


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=2, seed=3)
        exact = {}
        for i in range(500):
            key = str(i % 37).encode()
            sketch.add(key)
            exact[key] = exact.get(key, 0) + 1
        for key, count in exact.items():
            assert sketch.estimate(key) >= count

    def test_add_returns_running_estimate(self):
        sketch = CountMinSketch()
        assert sketch.add(b"k") == 1
        assert sketch.add(b"k", 4) == 5
        assert sketch.estimate(b"k") == 5

    def test_decay_halves(self):
        sketch = CountMinSketch()
        sketch.add(b"k", 8)
        sketch.decay()
        assert sketch.estimate(b"k") == 4
        sketch.reset()
        assert sketch.estimate(b"k") == 0

    def test_seed_changes_collisions(self):
        # Same keys, different seeds: row indexes must differ somewhere.
        a, b = CountMinSketch(seed=1), CountMinSketch(seed=2)
        assert any(
            a._indexes(str(i).encode()) != b._indexes(str(i).encode())
            for i in range(32)
        )

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)


def spec(**kw) -> PlacementSpec:
    defaults = dict(promote_threshold=8, demote_threshold=2,
                    decay_interval=16, max_elephants=4)
    defaults.update(kw)
    return PlacementSpec(**defaults)


class TestElephantClassifier:
    def test_promotes_at_threshold_on_triggering_packet(self):
        clf = ElephantClassifier(spec())
        events = []
        for _ in range(8):
            promoted, evs = clf.observe("flow")
            events.extend(evs)
        assert promoted
        assert [e.kind for e in events] == [PROMOTE]
        assert clf.promotions == 1
        assert clf.is_promoted("flow")

    def test_mice_stay_unpromoted(self):
        clf = ElephantClassifier(spec())
        for i in range(200):
            promoted, _ = clf.observe(f"mouse-{i}")
            assert not promoted
        assert clf.promoted_count == 0

    def test_max_elephants_caps_promotions(self):
        clf = ElephantClassifier(spec(max_elephants=2, decay_interval=1000))
        for flow in ("a", "b", "c"):
            for _ in range(8):
                clf.observe(flow)
        assert clf.promoted_count == 2
        assert not clf.is_promoted("c")

    def test_demotion_only_at_decay_boundary(self):
        clf = ElephantClassifier(spec())
        for _ in range(8):
            clf.observe("hot")
        assert clf.is_promoted("hot")
        # The flow goes quiet; other traffic drives the decay clock.
        demote_events = []
        for i in range(3 * 16):
            _, evs = clf.observe(f"bg-{i}")
            demote_events.extend(e for e in evs if e.kind == DEMOTE)
            if demote_events:
                # 8 -> 4 -> 2 (still >= demote_threshold) -> 1: the third
                # decay is the first allowed to demote.
                assert clf.decays == 3
                break
        assert [e.key for e in demote_events] == ["hot"]
        assert not clf.is_promoted("hot")

    def test_hysteresis_band_prevents_flap(self):
        """A flow hovering at the promote threshold never oscillates."""
        clf = ElephantClassifier(spec(decay_interval=8))
        flaps = 0
        for round_ in range(40):
            for _ in range(8):
                _, evs = clf.observe("hover")
                flaps += sum(1 for e in evs if e.key == "hover")
        # One promotion ever; the refreshed estimate never decays below
        # demote_threshold, so no demote/re-promote churn.
        assert flaps == 1
        assert clf.demotions == 0

    def test_same_stream_same_decisions(self):
        keys = [f"f{i % 13}" for i in range(600)]
        a, b = ElephantClassifier(spec()), ElephantClassifier(spec())
        log_a = [a.observe(k) for k in keys]
        log_b = [b.observe(k) for k in keys]
        assert log_a == log_b
        assert a.snapshot() == b.snapshot()

    def test_reset_restores_initial_state(self):
        clf = ElephantClassifier(spec())
        for _ in range(8):
            clf.observe("flow")
        clf.reset()
        assert clf.snapshot() == {
            "observations": 0, "promotions": 0, "demotions": 0,
            "decays": 0, "promoted_now": 0,
        }


class TestTenantOf:
    def test_deterministic_and_in_range(self):
        for key in ("a", 17, (1, 2)):
            t = tenant_of(key, 8, seed=5)
            assert 0 <= t < 8
            assert tenant_of(key, 8, seed=5) == t

    def test_single_tenant_shortcut(self):
        assert tenant_of("anything", 1) == 0

    def test_rejects_zero_tenants(self):
        with pytest.raises(ValueError):
            tenant_of("k", 0)
