"""The multitenant suite: artifact shape, acceptance gate, jobs parity."""

import pytest

from repro.perf import SuiteParams, run_suite

#: One repetition keeps this fast; median-of-1 is the value itself.
PARAMS = SuiteParams(reps=1, quick=True)


@pytest.fixture(scope="module")
def art():
    return run_suite("multitenant", PARAMS)


def test_artifact_shape(art):
    assert set(art.series) == {
        "hybrid", "scr", "rss",
        "hybrid_p99_ns", "scr_p99_ns", "rss_p99_ns",
        "hybrid_promotions", "hybrid_wins",
    }
    flows = [1_000, 10_000, 100_000, 1_000_000]
    for name in ("hybrid", "scr", "rss"):
        series = art.series[name]
        assert series.unit == "mpps"
        assert [p.x for p in series.points] == flows
        assert all(p.median > 0 for p in series.points)
    assert art.config["placement"]["promote_threshold"] > \
        art.config["placement"]["demote_threshold"]


def test_hybrid_beats_both_purebreds_at_high_flow_counts(art):
    """The PR's acceptance gate: at >= 10^5 Zipf-skewed flows the hybrid
    engine's aggregate MLFFR beats pure SCR and pure RSS outright."""
    for point in range(2, 4):  # 100_000 and 1_000_000
        hybrid = art.series["hybrid"].points[point].median
        scr = art.series["scr"].points[point].median
        rss = art.series["rss"].points[point].median
        assert hybrid > scr, (point, hybrid, scr)
        assert hybrid > rss, (point, hybrid, rss)
    assert all(p.median == 1.0 for p in art.series["hybrid_wins"].points)


def test_promotions_recorded_and_deterministic(art):
    promos = art.series["hybrid_promotions"]
    assert promos.noise_floor == 0.0
    assert all(p.median >= 1 for p in promos.points)


def test_jobs_parallel_artifact_identical(art, tmp_path):
    parallel = run_suite(
        "multitenant",
        SuiteParams(reps=1, quick=True, jobs=2, cache_dir=tmp_path / "c"),
    )
    for name, series in art.series.items():
        assert [p.reps for p in parallel.series[name].points] == \
            [p.reps for p in series.points], name
