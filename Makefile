# Convenience targets for the SCR reproduction.

.PHONY: install test lint typecheck advise bench bench-compare \
	bench-baseline bench-figures chaos profile report reproduce examples \
	telemetry-demo hotpath multitenant clean

install:
	python setup.py develop

test:
	pytest tests/

# SCR-safety static analysis (scrlint, rules SCR001-SCR006) plus the
# generic ruff gate.  ruff is optional locally (pip install -e '.[lint]');
# CI always runs it.
lint:
	PYTHONPATH=src python -m repro.cli lint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

# Parallelization-technique advisor: static state-access facts + the
# Appendix A cost model, scored per program (see docs/ADVISOR.md).
advise:
	PYTHONPATH=src python -m repro.cli advise

# Perf-regression suite: writes schema-versioned BENCH_*.json artifacts
# (median + MAD over seeded reps) under results/bench.  Parallel workers
# plus the content-addressed trace cache keep repeat runs fast without
# changing a single number (see docs/BENCHMARKS.md).
bench:
	PYTHONPATH=src python -m repro.cli bench --out results/bench \
		--jobs 2 --cache-dir results/cache

# Run the quick fig6 + obs_overhead + advisor_validation suites and gate
# them against the committed baseline (nonzero exit on a noise-significant
# throughput regression, any nonzero tracing overhead, or a lost
# advisor-vs-measurement agreement).
bench-compare:
	PYTHONPATH=src python -m repro.cli bench --suite fig6_scaling \
		--suite obs_overhead --suite advisor_validation --out results/bench
	PYTHONPATH=src python -m repro.cli bench \
		--compare benchmarks/baselines results/bench \
		--markdown results/bench/compare.md

# Refresh the committed baseline (do this deliberately, in its own commit,
# after a justified perf change — see docs/BENCHMARKS.md).
bench-baseline:
	PYTHONPATH=src python -m repro.cli bench --suite fig6_scaling \
		--suite obs_overhead --suite advisor_validation \
		--out benchmarks/baselines

# Fault-injection matrix (repro.faults): gap detection, checkpoint
# recovery, and MLFFR-vs-drop-rate, written as BENCH_chaos_recovery.json.
# Nonzero exit if any injected gap goes undetected (see docs/FAULTS.md).
chaos:
	PYTHONPATH=src python -m repro.cli chaos --out results/chaos --jobs 2

# Host wall-clock profile of the harness itself (repro.hostprof): phase
# Pareto on stdout, hostprof.json + profile.folded +
# profile.speedscope.json under results/hostprof.  Add --deep for
# cProfile/tracemalloc capture (see docs/PROFILING.md).
profile:
	PYTHONPATH=src python -m repro.cli profile --out results/hostprof

# Unified HTML dashboard over whatever telemetry/bench artifacts exist
# under results/ (drop-cause Pareto, span waterfalls, MLFFR curves, SLO
# table).  Byte-deterministic for the same inputs (see docs/OBSERVABILITY.md).
report:
	PYTHONPATH=src python -m repro.cli report results/telemetry-demo \
		results/bench/BENCH_fig6_scaling.json --out results/report.html

# Columnar hot path: the bit-exact parity gate against the scalar oracle,
# then the hotpath bench suite vs its committed baseline (the speedup
# must stay won — see docs/HOTPATH.md).
hotpath:
	PYTHONPATH=src python -m pytest -x -q tests/cpu/test_hotpath_parity.py \
		tests/nic/test_rss.py
	PYTHONPATH=src python -m repro.cli bench --suite hotpath \
		--out results/bench-hotpath
	PYTHONPATH=src python -m repro.cli bench \
		--compare benchmarks/baselines-hostwall/BENCH_hotpath.json \
		results/bench-hotpath/BENCH_hotpath.json \
		--rel-tol 3.0 --noise-mult 4.0

# Multi-tenant placement gate: the placement test package, then the
# multitenant suite (hybrid vs scr vs rss on zipf, 10^3..10^6 flows)
# against its committed baseline.  Simulated-time numbers, so the gate
# uses the default noise-aware tolerances (see docs/MULTITENANT.md).
multitenant:
	PYTHONPATH=src python -m pytest -x -q tests/placement
	PYTHONPATH=src python -m repro.cli bench --suite multitenant \
		--jobs 2 --out results/bench-multitenant
	PYTHONPATH=src python -m repro.cli bench \
		--compare benchmarks/baselines/BENCH_multitenant.json \
		results/bench-multitenant/BENCH_multitenant.json

# The paper-figure pytest benches (tables/figures with printed series).
bench-figures:
	pytest benchmarks/ --benchmark-only

# Full paper reproduction: every table/figure bench with printed series,
# results captured under results/.
reproduce:
	mkdir -p results
	pytest tests/ 2>&1 | tee results/test_output.txt
	pytest benchmarks/ --benchmark-only -s 2>&1 | tee results/bench_output.txt

# The paper-fidelity variant: sweep every core count (slower).
reproduce-full:
	mkdir -p results
	SCR_FULL_SWEEP=1 pytest benchmarks/ --benchmark-only -s 2>&1 | tee results/bench_output_full.txt

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# Instrumented Figure 6-style sweep -> results/telemetry-demo, then the
# summary (drop causes, latency percentiles, per-core attribution).
# Open results/telemetry-demo/trace.json in Perfetto for the timeline.
telemetry-demo:
	PYTHONPATH=src python -m repro.cli sweep --program ddos --workload caida \
		--techniques scr shared --cores 1 2 4 --packets 2000 \
		--telemetry results/telemetry-demo
	PYTHONPATH=src python -m repro.cli inspect results/telemetry-demo

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
