"""Program validation: is a packet program safe to replicate?

SCR's correctness rests on properties of the *program* (§3.1, §3.4): its
transition must be deterministic, must depend only on (state value, packet
metadata), and its metadata must round-trip losslessly through the wire
format the sequencer carries.  :func:`validate_program` checks these
dynamically against a packet sample — the test a developer runs before
deploying a new program under SCR (or before trusting the App. C
transform with it).

Checks performed:

1. **metadata round-trip** — ``unpack(pack(f(p))) == f(p)`` and the packed
   size matches the declared metadata size;
2. **key stability** — the state key derived from round-tripped metadata
   equals the original (sharding and replication agree on identity);
3. **transition determinism** — repeated transitions from equal inputs
   produce equal outputs (catches wall-clock reads, unseeded RNGs,
   iteration-order leaks);
4. **replication equivalence** — processing a sample twice through two
   independent state maps yields identical states and verdicts (catches
   hidden global mutable state inside the program object);
5. **history neutrality** — ``fast_forward`` leaves the state exactly as
   ``apply`` would (the App. C loop discards only the verdict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from ..packet import Packet
from ..programs.base import PacketProgram
from ..state.maps import StateMap

__all__ = ["ValidationReport", "validate_program"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_program`; empty problems == SCR-safe."""

    program: str
    packets_checked: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def _fail(self, message: str) -> None:
        if message not in self.problems:
            self.problems.append(message)


def validate_program(
    program: PacketProgram,
    packets: Iterable[Packet],
    state_capacity: int = 4096,
) -> ValidationReport:
    """Dynamically check ``program`` against ``packets`` for SCR safety."""
    report = ValidationReport(program=program.name)
    pkts = list(packets)
    report.packets_checked = len(pkts)

    # 1 + 2: metadata round-trip and key stability.
    for pkt in pkts:
        meta = program.extract_metadata(pkt)
        packed = meta.pack()
        if len(packed) != program.metadata_size:
            report._fail(
                f"packed metadata is {len(packed)} bytes, declared "
                f"{program.metadata_size}"
            )
            break
        back = program.metadata_cls.unpack(packed)
        if back != meta:
            report._fail("metadata does not round-trip through pack/unpack")
            break
        if program.key(back) != program.key(meta):
            report._fail("state key changes across metadata round-trip")
            break

    # 3: transition determinism on fresh state.
    for pkt in pkts[: min(64, len(pkts))]:
        meta = program.extract_metadata(pkt)
        try:
            first = program.transition(None, meta)
            for _ in range(2):
                if program.transition(None, meta) != first:
                    report._fail("transition is non-deterministic")
                    break
        except NotImplementedError:
            # multi-entry programs (e.g. NAT) define apply() instead; their
            # determinism is covered by check 4.
            break

    # 4: replication equivalence — two independent replicas, same inputs.
    a, b = StateMap(capacity=state_capacity), StateMap(capacity=state_capacity)
    for pkt in pkts:
        va = program.process(a, pkt)
        vb = program.process(b, pkt)
        if va != vb:
            report._fail("verdicts differ between identical replicas")
            break
    if a.snapshot() != b.snapshot():
        report._fail("replica states diverge on identical input")

    # 5: history neutrality — fast_forward must equal apply, state-wise.
    c, d = StateMap(capacity=state_capacity), StateMap(capacity=state_capacity)
    for pkt in pkts:
        meta = program.extract_metadata(pkt)
        program.apply(c, meta)
        program.fast_forward(d, meta)
    if c.snapshot() != d.snapshot():
        report._fail("fast_forward evolves state differently from apply")

    return report
