"""SCR core: packet format, history ring, App. C transform, loss recovery."""

from .engine import ScrFunctionalEngine, ScrRunResult, reference_run
from .history import HistoryRing
from .packet_format import SCR_MAGIC, ScrHeader, ScrPacketCodec
from .recovery import LOST, CatchupEntry, LossRecoveryManager
from .scr_aware import ScrCoreRuntime
from .threaded import ThreadedScrEngine
from .validate import ValidationReport, validate_program

__all__ = [
    "ScrFunctionalEngine",
    "ScrRunResult",
    "reference_run",
    "HistoryRing",
    "SCR_MAGIC",
    "ScrHeader",
    "ScrPacketCodec",
    "LOST",
    "CatchupEntry",
    "LossRecoveryManager",
    "ScrCoreRuntime",
    "ThreadedScrEngine",
    "ValidationReport",
    "validate_program",
]
