"""The packet-history ring: the software model of the sequencer memory.

Matches the NetFPGA design (§3.3.2, Figure 4c): N rows of fixed-size
metadata, one index pointer.  Per packet, the hardware (i) dumps the whole
memory in row order, (ii) writes the current packet's metadata into the row
at the index pointer, and (iii) increments the pointer modulo N.  The row
at the index pointer after a dump is therefore always the *oldest* entry —
which is why the packet format carries the pointer (§3.3.1).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["HistoryRing"]


class HistoryRing:
    """N-row metadata ring with dump-then-write-then-increment semantics."""

    def __init__(self, num_rows: int, row_bytes: int) -> None:
        if num_rows < 1:
            raise ValueError("need at least one row")
        if row_bytes < 0:
            raise ValueError("row size must be non-negative")
        self.num_rows = num_rows
        self.row_bytes = row_bytes
        self._rows: List[bytes] = [bytes(row_bytes)] * num_rows
        self._index = 0
        self.writes = 0

    @property
    def index_ptr(self) -> int:
        return self._index

    def dump(self) -> List[bytes]:
        """Read out the entire memory in row order (what goes on the wire)."""
        return list(self._rows)

    def push(self, row: bytes) -> None:
        """Write ``row`` at the index pointer and advance it (mod N)."""
        if len(row) != self.row_bytes:
            raise ValueError(
                f"row must be exactly {self.row_bytes} bytes, got {len(row)}"
            )
        self._rows[self._index] = row
        self._index = (self._index + 1) % self.num_rows
        self.writes += 1

    def dump_and_push(self, row: bytes) -> Tuple[List[bytes], int]:
        """The per-packet hardware operation: returns (dump, index pointer).

        The dump and pointer reflect the state *before* the current packet's
        metadata is written, matching the NetFPGA datapath where the memory
        read happens as the packet streams through, and the write + pointer
        increment happen after.
        """
        rows = self.dump()
        ptr = self._index
        self.push(row)
        return rows, ptr

    def valid_entries(self) -> int:
        """How many rows have ever been written (saturates at N)."""
        return min(self.writes, self.num_rows)

    def reset(self) -> None:
        self._rows = [bytes(self.row_bytes)] * self.num_rows
        self._index = 0
        self.writes = 0
