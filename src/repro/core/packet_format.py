"""The SCR packet format (Figure 4a).

The sequencer prefixes each packet with, in order:

* a **dummy Ethernet header** (only when the sequencer runs on a ToR switch,
  §3.3.1) so the NIC parses the frame and can RSS-hash on L2 fields;
* an **SCR header**: sequence number (for loss recovery, §3.4), the
  sequencer's hardware timestamp for the *current* packet (determinism,
  §3.4), the ring index pointer, slot count and metadata size;
* the **history block**: a raw dump of the sequencer's ring memory — N rows
  of ``meta_size`` bytes.  Rows are in *ring order*; the index pointer marks
  the earliest row, and software walks the ring from there (§3.3.2 puts the
  ring-order-to-chronological translation in software to keep the hardware
  a dumb memory dump);
* the **original packet**, byte-for-byte, so the program's packet parsing
  needs no changes (§3.3.1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from ..packet import ETH_P_SCR, EthernetHeader
from ..packet.headers import ETH_HLEN

__all__ = ["ScrHeader", "ScrPacketCodec", "SCR_MAGIC"]

SCR_MAGIC = 0x5C12

_HEADER = struct.Struct("!HBBBBQQ")  # magic, flags, index_ptr, slots, meta_size, seq, timestamp

_FLAG_HAS_DUMMY_ETH = 0x01


@dataclass(frozen=True)
class ScrHeader:
    """Parsed SCR header fields."""

    seq: int
    timestamp_ns: int
    index_ptr: int
    num_slots: int
    meta_size: int

    @property
    def history_bytes(self) -> int:
        return self.num_slots * self.meta_size


class ScrPacketCodec:
    """Encode/decode SCR packets for one program's metadata layout."""

    def __init__(
        self,
        meta_size: int,
        num_slots: int,
        dummy_eth: bool = True,
    ) -> None:
        if meta_size < 0:
            raise ValueError("meta_size must be non-negative")
        if not 0 < num_slots <= 255:
            raise ValueError("num_slots must be in 1..255")
        self.meta_size = meta_size
        self.num_slots = num_slots
        self.dummy_eth = dummy_eth

    # -- sizes ----------------------------------------------------------------

    @property
    def overhead_bytes(self) -> int:
        """Bytes the sequencer adds to every packet."""
        eth = ETH_HLEN if self.dummy_eth else 0
        return eth + _HEADER.size + self.num_slots * self.meta_size

    # -- encode -----------------------------------------------------------------

    def encode(
        self,
        seq: int,
        timestamp_ns: int,
        ring_rows: List[bytes],
        index_ptr: int,
        original: bytes,
    ) -> bytes:
        """Build the on-wire SCR packet around ``original``.

        ``ring_rows`` is the raw ring dump (length ``num_slots``, each row
        ``meta_size`` bytes, zero-filled when never written), exactly what
        the hardware reads out of its memory (§3.3.2).
        """
        if len(ring_rows) != self.num_slots:
            raise ValueError(
                f"expected {self.num_slots} ring rows, got {len(ring_rows)}"
            )
        if any(len(r) != self.meta_size for r in ring_rows):
            raise ValueError("ring row size mismatch")
        if not 0 <= index_ptr < self.num_slots:
            raise ValueError("index pointer out of range")
        parts = []
        flags = 0
        if self.dummy_eth:
            flags |= _FLAG_HAS_DUMMY_ETH
            parts.append(EthernetHeader(ethertype=ETH_P_SCR).pack())
        parts.append(
            _HEADER.pack(
                SCR_MAGIC, flags, index_ptr, self.num_slots, self.meta_size,
                seq, timestamp_ns,
            )
        )
        parts.extend(ring_rows)
        parts.append(original)
        return b"".join(parts)

    # -- decode -----------------------------------------------------------------

    def decode(self, data: bytes) -> Tuple[ScrHeader, List[bytes], bytes]:
        """Parse an SCR packet into (header, chronological rows, original).

        The returned rows are reordered oldest-first by walking the ring
        from the index pointer — the software half of the ring-buffer
        semantics (App. C).
        """
        offset = 0
        if self.dummy_eth:
            eth = EthernetHeader.unpack(data)
            if eth.ethertype != ETH_P_SCR:
                raise ValueError(
                    f"expected SCR dummy Ethernet header, got type {eth.ethertype:#06x}"
                )
            offset = ETH_HLEN
        if len(data) < offset + _HEADER.size:
            raise ValueError("truncated SCR header")
        magic, flags, index_ptr, num_slots, meta_size, seq, ts = _HEADER.unpack(
            data[offset : offset + _HEADER.size]
        )
        if magic != SCR_MAGIC:
            raise ValueError(f"bad SCR magic {magic:#06x}")
        if num_slots != self.num_slots or meta_size != self.meta_size:
            raise ValueError(
                "SCR geometry mismatch: packet says "
                f"{num_slots}x{meta_size}, codec expects "
                f"{self.num_slots}x{self.meta_size}"
            )
        offset += _HEADER.size
        history_len = num_slots * meta_size
        if len(data) < offset + history_len:
            raise ValueError("truncated SCR history block")
        rows_raw = data[offset : offset + history_len]
        offset += history_len
        rows = [
            rows_raw[i * meta_size : (i + 1) * meta_size] for i in range(num_slots)
        ]
        # Ring order → chronological order, oldest first.
        chronological = rows[index_ptr:] + rows[:index_ptr]
        header = ScrHeader(
            seq=seq,
            timestamp_ns=ts,
            index_ptr=index_ptr,
            num_slots=num_slots,
            meta_size=meta_size,
        )
        return header, chronological, data[offset:]
