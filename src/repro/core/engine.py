"""End-to-end functional SCR engine: sequencer + k SCR-aware cores.

This layer runs real bytes through the whole SCR pipeline and is the
correctness oracle for the paper's central claim (Principles #1 and #2):
after any run, every core's private state replica is identical, and the
verdict stream matches a single-threaded execution of the same program —
with zero cross-core synchronization in the loss-free case, and with the
Algorithm 1 logs when losses are injected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..packet import Packet
from ..programs.base import PacketProgram, Verdict
from ..state.maps import PerCoreStateMap, StateMap
from ..telemetry.events import EV_INJECTED_LOSS, NULL_TRACER, EventTracer
from ..traffic.trace import Trace
from .recovery import LossRecoveryManager
from .scr_aware import ScrCoreRuntime

__all__ = ["ScrRunResult", "ScrFunctionalEngine", "reference_run"]


@dataclass
class ScrRunResult:
    """Outcome of one functional SCR run."""

    #: verdict per sequence number, for packets that reached their core.
    verdicts: Dict[int, Verdict] = field(default_factory=dict)
    #: sequences dropped between sequencer and core (injected loss).
    lost_seqs: List[int] = field(default_factory=list)
    offered: int = 0
    #: per-core state snapshots at the end of the run.
    replica_snapshots: List[dict] = field(default_factory=list)
    #: cores still waiting on recovery when the trace ended.
    blocked_cores: List[int] = field(default_factory=list)
    recovered: int = 0
    skipped: int = 0
    #: sequences every core skipped (lost everywhere; atomicity preserved).
    skipped_seqs: frozenset = frozenset()

    @property
    def replicas_consistent(self) -> bool:
        """True when every *unblocked* core holds identical state.

        Blocked cores stopped mid-catch-up (the trace ended); Appendix B
        only promises consistency once every core keeps receiving packets.
        """
        snaps = [
            s
            for i, s in enumerate(self.replica_snapshots)
            if i not in set(self.blocked_cores)
        ]
        return all(s == snaps[0] for s in snaps[1:]) if snaps else True


class ScrFunctionalEngine:
    """Drives a trace through the sequencer and k replicated cores."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        num_slots: Optional[int] = None,
        dummy_eth: bool = True,
        with_recovery: bool = False,
        loss_rate: float = 0.0,
        seed: int = 0,
        state_capacity: int = 4096,
        tracer: EventTracer = NULL_TRACER,
    ) -> None:
        if loss_rate and not with_recovery:
            raise ValueError("loss injection requires with_recovery=True")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        # Imported here: the sequencer package depends on repro.core for the
        # ring and packet format, so a top-level import would be circular.
        from ..sequencer.sequencer import PacketHistorySequencer

        self.program = program
        self.num_cores = num_cores
        self.sequencer = PacketHistorySequencer(
            program, num_cores, num_slots=num_slots, dummy_eth=dummy_eth
        )
        self.states = PerCoreStateMap(num_cores, capacity=state_capacity)
        self.recovery = (
            LossRecoveryManager(num_cores, window=self.sequencer.num_slots)
            if with_recovery
            else None
        )
        self.tracer = tracer
        self.cores = [
            ScrCoreRuntime(
                program,
                core_id=i,
                codec=self.sequencer.codec,
                state=self.states.replica(i),
                recovery=self.recovery,
                tracer=tracer,
            )
            for i in range(num_cores)
        ]
        self.loss_rate = loss_rate
        # Determinism (§3.4): a fixed-seed PRNG decides injected losses.
        self._rng = random.Random(seed)

    def run(self, trace: Trace, flush: bool = True) -> ScrRunResult:
        """Process every packet of ``trace`` and return the run outcome.

        With ``flush`` (default), no-op packets are pushed through the
        sequencer afterwards so every core fast-forwards past the trace's
        tail — replication is only *eventually* consistent, and a core that
        did not receive the final packets catches up on its next arrival.
        Flush packets are not counted in ``offered`` or ``verdicts``.
        """
        result = ScrRunResult()
        for pkt in trace:
            self._offer(pkt, result)
        if flush:
            self.flush(result)
        self._drain(result)
        result.replica_snapshots = self.states.snapshots()
        result.blocked_cores = [c.core_id for c in self.cores if c.blocked]
        if self.recovery is not None:
            result.recovered = self.recovery.recovered
            result.skipped = self.recovery.skipped
            result.skipped_seqs = frozenset(self.recovery.skipped_seqs)
        return result

    def flush(self, result: Optional[ScrRunResult] = None) -> None:
        """Send one no-op packet per core so all replicas reach the tail.

        The no-ops are non-IPv4 frames: every program's metadata extraction
        marks them invalid and its transition leaves state untouched, so
        they propagate history without perturbing any replica.  Flush
        deliveries bypass loss injection — in a real deployment these are
        simply "the next packets to arrive".
        """
        sink = result if result is not None else ScrRunResult()
        flush_seqs = set()
        for _ in range(self.num_cores):
            noop = Packet()  # bare Ethernet frame, ethertype 0, not IPv4
            sp = self.sequencer.process(noop)
            flush_seqs.add(sp.seq)
            for seq, verdict in self.cores[sp.core].receive(sp.data):
                if seq not in flush_seqs:
                    sink.verdicts[seq] = verdict
            self._drain(sink, ignore_seqs=flush_seqs)

    def _offer(self, pkt: Packet, result: ScrRunResult) -> None:
        result.offered += 1
        sp = self.sequencer.process(pkt)
        if self.loss_rate and self._rng.random() < self.loss_rate:
            result.lost_seqs.append(sp.seq)
            if self.tracer.enabled:
                self.tracer.emit(EV_INJECTED_LOSS, core=sp.core, seq=sp.seq)
            return
        for seq, verdict in self.cores[sp.core].receive(sp.data):
            result.verdicts[seq] = verdict
        self._drain(result)

    def _drain(self, result: ScrRunResult, ignore_seqs=frozenset()) -> None:
        """Let blocked cores retry recovery until no one makes progress."""
        if self.recovery is None:
            return
        progressed = True
        while progressed:
            progressed = False
            for core in self.cores:
                if not (core.blocked or core.rx_backlog):
                    continue
                before = core.last_seq
                outcomes = core.pump()
                for seq, verdict in outcomes:
                    if seq not in ignore_seqs:
                        result.verdicts[seq] = verdict
                if core.last_seq != before or outcomes:
                    progressed = True


def reference_run(
    program: PacketProgram, trace: Trace, state_capacity: int = 4096
) -> tuple:
    """Single-threaded reference semantics: (verdicts by seq, final state).

    Sequence numbers are 1-based arrival order, matching the sequencer's.
    """
    state = StateMap(capacity=state_capacity)
    verdicts: Dict[int, Verdict] = {}
    for i, pkt in enumerate(trace, start=1):
        verdicts[i] = program.process(state, pkt)
    return verdicts, state.snapshot()
