"""The SCR-aware program runtime — the App. C transformation, generically.

App. C walks through hand-transforming an XDP program for SCR: (1) replicate
the state per core, (2) define per-packet metadata, (3) prepend a fast-forward
loop over the piggybacked history, then process the current packet with the
original, unmodified logic.  Because every program in this repo already
factors into ``extract_metadata`` / ``key`` / ``transition``
(:class:`~repro.programs.base.PacketProgram`), the transformation is done
once here for all programs — the "suitable compiler pass" the paper
anticipates.

:class:`ScrCoreRuntime` is one core's half: it decodes SCR packets, skips
history it has already applied, fast-forwards its private replica, and only
then computes a verdict for the current packet.  Historic packets never get
verdicts (App. C).  With a :class:`~repro.core.recovery.LossRecoveryManager`
attached, gaps are resolved through the per-core logs of Algorithm 1; while
a recovery walk waits on another core's log, further arrivals are buffered
in the core's RX queue, exactly as a real NIC ring would hold them.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..packet import Packet
from ..programs.base import PacketProgram, Verdict
from ..state.maps import StateMap
from ..telemetry.events import (
    EV_HISTORY_DEPTH,
    EV_RECOVERY_BLOCKED,
    EV_RECOVERY_FINISH,
    EV_RECOVERY_START,
    NULL_TRACER,
    EventTracer,
)
from .packet_format import ScrPacketCodec
from .recovery import LossRecoveryManager

__all__ = ["ScrCoreRuntime"]

#: (sequence number, verdict) for a processed current packet.
Outcome = Tuple[int, Verdict]


class ScrCoreRuntime:
    """One CPU core running the SCR-aware variant of ``program``."""

    def __init__(
        self,
        program: PacketProgram,
        core_id: int,
        codec: ScrPacketCodec,
        state: StateMap,
        recovery: Optional[LossRecoveryManager] = None,
        tracer: EventTracer = NULL_TRACER,
    ) -> None:
        self.program = program
        self.core_id = core_id
        self.codec = codec
        self.state = state
        self.recovery = recovery
        #: telemetry event sink; the default disabled tracer is free.
        self.tracer = tracer
        #: True while a catch-up that needed peer logs is in flight.
        self._recovery_round = False
        self._round_recovered0 = 0
        #: highest sequence fully applied to the private replica.
        self.last_seq = 0
        self._rx_queue: Deque[bytes] = deque()
        #: the current packet awaiting its verdict while recovery catches up.
        self._pending_packet: Optional[Packet] = None
        self._pending_seq = 0
        self.packets_processed = 0
        self.history_applied = 0
        self.recovered_applied = 0

    # -- receive path -----------------------------------------------------------

    def receive(self, scr_bytes: bytes) -> List[Outcome]:
        """Handle one SCR packet from the sequencer.

        Returns the (sequence, verdict) outcomes that completed — usually
        one, none while blocked on recovery, several when this arrival
        unblocks queued packets.
        """
        self._rx_queue.append(scr_bytes)
        return self.pump()

    def pump(self) -> List[Outcome]:
        """Make all possible progress: resume walks, drain the RX queue."""
        outcomes: List[Outcome] = []
        while True:
            if self._pending_packet is not None:
                before = self.last_seq
                outcome = self._advance_walk()
                if outcome is not None:
                    outcomes.append(outcome)
                if self._pending_packet is not None:
                    # Still blocked; stop unless the walk moved at all (in
                    # which case one more probe round costs nothing).
                    if self.last_seq == before:
                        break
                    continue
                continue
            if not self._rx_queue:
                break
            outcome = self._start(self._rx_queue.popleft())
            if outcome is not None:
                outcomes.append(outcome)
        return outcomes

    # -- starting one packet ------------------------------------------------------

    def _start(self, scr_bytes: bytes) -> Optional[Outcome]:
        header, rows, original = self.codec.decode(scr_bytes)
        j = header.seq
        pkt = Packet.from_bytes(original, timestamp_ns=header.timestamp_ns)

        if self.recovery is None:
            return self._process_lossfree(j, rows, pkt)

        # Build the seq → metadata map this packet carries: ring rows hold
        # sequences j-N .. j-1 oldest-first; recovery's window uses
        # j-N+1 .. j-1 from the rows plus the current packet's own metadata.
        n = self.codec.num_slots
        metas: Dict[int, bytes] = {}
        for m in range(1, n):
            s = j - n + m
            if s >= 1:
                metas[s] = rows[m]
        metas[j] = self.program.extract_metadata(pkt).pack()
        self.recovery.deliver(self.core_id, j, metas)
        self._pending_packet = pkt
        self._pending_seq = j
        if self.tracer.enabled:
            # A recovery *round* means the gap reaches past the carried
            # history, so Algorithm 1 must consult peer logs.
            minseq = max(1, j - (n - 1))
            if self.last_seq + 1 < minseq:
                self._recovery_round = True
                self._round_recovered0 = self.recovered_applied
                self.tracer.emit(EV_RECOVERY_START, core=self.core_id, seq=j,
                                 gap=minseq - self.last_seq - 1)
        return self._advance_walk()

    def _process_lossfree(self, j: int, rows, pkt: Packet) -> Outcome:
        """Fast path when losses cannot occur (NIC-resident sequencer, §3.4)."""
        n = self.codec.num_slots
        gap_start = self.last_seq + 1
        if gap_start < j - n:
            raise RuntimeError(
                f"core {self.core_id}: gap {gap_start}..{j - 1} exceeds the "
                f"{n} history slots; enable loss recovery"
            )
        # Fast-forward the missed packets (the App. C loop).  Row m holds
        # sequence j - n + m; apply only unseen, real sequences.
        applied = 0
        for m in range(n):
            s = j - n + m
            if s < gap_start or s < 1:
                continue
            meta = self.program.metadata_cls.unpack(rows[m])
            self.program.fast_forward(self.state, meta)
            self.history_applied += 1
            applied += 1
        if applied and self.tracer.enabled:
            self.tracer.emit(EV_HISTORY_DEPTH, core=self.core_id, seq=j,
                             depth=applied)
        verdict = self.program.process(self.state, pkt)
        self.last_seq = j
        self.packets_processed += 1
        return j, verdict

    # -- recovery-driven progression --------------------------------------------

    def _advance_walk(self) -> Optional[Outcome]:
        """Resume a recovery walk; returns an outcome when it completes."""
        if self.recovery is None or self._pending_packet is None:
            return None
        entries, done = self.recovery.try_advance(self.core_id)
        result: Optional[Outcome] = None
        minseq = self._pending_seq - (self.codec.num_slots - 1)
        for seq, meta_bytes in entries:
            if seq == self._pending_seq:
                verdict = self.program.process(self.state, self._pending_packet)
                self.packets_processed += 1
                self.last_seq = seq
                result = (seq, verdict)
                continue
            if meta_bytes is None:
                # Lost at every core: atomicity says nobody applies it.
                self.last_seq = seq
                continue
            meta = self.program.metadata_cls.unpack(meta_bytes)
            self.program.fast_forward(self.state, meta)
            self.history_applied += 1
            if seq < minseq:
                self.recovered_applied += 1
            self.last_seq = seq
        if done:
            if self._recovery_round and self.tracer.enabled:
                self.tracer.emit(
                    EV_RECOVERY_FINISH,
                    core=self.core_id,
                    seq=self._pending_seq or self.last_seq,
                    recovered=self.recovered_applied - self._round_recovered0,
                )
            self._recovery_round = False
            self._pending_packet = None
            self._pending_seq = 0
        elif self.tracer.enabled:
            self.tracer.emit(EV_RECOVERY_BLOCKED, core=self.core_id,
                             seq=self._pending_seq, at=self.last_seq + 1)
        return result

    @property
    def blocked(self) -> bool:
        """True while a recovery walk is waiting on other cores' logs."""
        return self._pending_packet is not None

    @property
    def rx_backlog(self) -> int:
        return len(self._rx_queue)
