"""SCR on real threads: one OS thread per replicated core.

The single-threaded :class:`~repro.core.engine.ScrFunctionalEngine`
interleaves cores deterministically; this engine runs each core on its own
``threading.Thread`` with a bounded queue standing in for the RX ring, so
the claims face *real* concurrency:

* zero cross-core synchronization on the data path — each core touches
  only its private replica and (with recovery) its own log slots, reading
  peers' logs without locks, exactly the single-writer/multi-reader
  discipline of §3.4;
* interleaving-independence — whatever the scheduler does, every replica
  must converge to the single-threaded reference state.

Python's GIL serializes bytecode so this brings no speedup (the
performance story lives in ``repro.cpu``); what it brings is a genuinely
nondeterministic schedule for the correctness claims to survive.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional

from ..programs.base import PacketProgram, Verdict
from ..state.maps import PerCoreStateMap
from ..telemetry.events import NULL_TRACER, EventTracer
from ..traffic.trace import Trace
from .engine import ScrRunResult
from .recovery import LossRecoveryManager
from .scr_aware import ScrCoreRuntime

__all__ = ["ThreadedScrEngine"]

_STOP = object()


class _CoreThread(threading.Thread):
    """One replicated core: drains its queue, records outcomes locally."""

    def __init__(self, runtime: ScrCoreRuntime, ring_capacity: int):
        super().__init__(name=f"scr-core-{runtime.core_id}", daemon=True)
        self.runtime = runtime
        self.rx = queue.Queue(maxsize=ring_capacity)
        #: single-writer results, read by the main thread after join().
        self.verdicts: Dict[int, Verdict] = {}
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            while True:
                item = self.rx.get()
                if item is _STOP:
                    break
                for seq, verdict in self.runtime.receive(item):
                    self.verdicts[seq] = verdict
            # Trace over: finish any in-flight recovery walk.  Peers keep
            # draining their queues, so per Appendix B this terminates.
            import time

            while self.runtime.blocked or self.runtime.rx_backlog:
                outcomes = self.runtime.pump()
                for seq, verdict in outcomes:
                    self.verdicts[seq] = verdict
                if not outcomes:
                    time.sleep(0.0001)  # yield while waiting on peer logs
        except BaseException as exc:  # surfaced by the engine after join
            self.error = exc


class ThreadedScrEngine:
    """Drives a trace through the sequencer into per-core threads."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        num_slots: Optional[int] = None,
        dummy_eth: bool = True,
        with_recovery: bool = False,
        loss_rate: float = 0.0,
        seed: int = 0,
        state_capacity: int = 4096,
        ring_capacity: int = 256,
        tracer: EventTracer = NULL_TRACER,
    ) -> None:
        from ..sequencer.sequencer import PacketHistorySequencer

        if loss_rate and not with_recovery:
            raise ValueError("loss injection requires with_recovery=True")
        self.program = program
        self.num_cores = num_cores
        self.sequencer = PacketHistorySequencer(
            program, num_cores, num_slots=num_slots, dummy_eth=dummy_eth
        )
        self.states = PerCoreStateMap(num_cores, capacity=state_capacity)
        self.recovery = (
            LossRecoveryManager(num_cores, window=self.sequencer.num_slots)
            if with_recovery
            else None
        )
        self.loss_rate = loss_rate
        self._seed = seed
        self._ring_capacity = ring_capacity
        #: event sink shared by every core thread (deque appends are safe
        #: under the GIL; counts may rarely under-report across threads).
        self.tracer = tracer

    @staticmethod
    def _put(thread: _CoreThread, data: bytes) -> None:
        """Backpressured enqueue that notices a dead core instead of hanging."""
        while True:
            if thread.error is not None:
                raise thread.error
            try:
                thread.rx.put(data, timeout=1.0)
                return
            except queue.Full:
                continue

    def run(self, trace: Trace, flush: bool = True) -> ScrRunResult:
        """Process ``trace`` with one thread per core; joins before returning."""
        import random

        from ..packet import Packet

        rng = random.Random(self._seed)
        threads = [
            _CoreThread(
                ScrCoreRuntime(
                    self.program,
                    core_id=i,
                    codec=self.sequencer.codec,
                    state=self.states.replica(i),
                    recovery=self.recovery,
                    tracer=self.tracer,
                ),
                ring_capacity=self._ring_capacity,
            )
            for i in range(self.num_cores)
        ]
        for t in threads:
            t.start()

        result = ScrRunResult()
        flush_seqs = set()
        try:
            for pkt in trace:
                result.offered += 1
                sp = self.sequencer.process(pkt)
                if self.loss_rate and rng.random() < self.loss_rate:
                    result.lost_seqs.append(sp.seq)
                    continue
                self._put(threads[sp.core], sp.data)
            if flush:
                # No-op packets propagate the tail to every replica; they
                # also guarantee each core receives something after any
                # loss, the Appendix B termination condition.
                for _ in range(self.num_cores):
                    sp = self.sequencer.process(Packet())
                    flush_seqs.add(sp.seq)
                    self._put(threads[sp.core], sp.data)
        finally:
            for t in threads:
                t.rx.put(_STOP)
            for t in threads:
                t.join(timeout=30)

        for t in threads:
            if t.error is not None:
                raise t.error
            if t.is_alive():
                raise RuntimeError(f"{t.name} failed to terminate")
            for seq, verdict in t.verdicts.items():
                if seq not in flush_seqs:
                    result.verdicts[seq] = verdict

        result.replica_snapshots = self.states.snapshots()
        result.blocked_cores = [
            t.runtime.core_id for t in threads if t.runtime.blocked
        ]
        if self.recovery is not None:
            result.recovered = self.recovery.recovered
            result.skipped = self.recovery.skipped
            result.skipped_seqs = frozenset(self.recovery.skipped_seqs)
        return result
