"""SCR loss recovery — Algorithm 1 from Appendix B.

Each core keeps a single-writer, multi-reader log with one entry per
sequence number.  A log entry is in one of three states:

* **NOT_INIT** — the core has not yet seen any packet covering that
  sequence (modeled as absence from the log);
* **LOST** — the core has seen a later sequence, so it knows this one was
  dropped on the way to it;
* **history bytes** — the metadata for that sequence, written when a packet
  carrying it (in original or piggybacked form) arrived.

A core that detects a gap reads the other cores' logs until it either finds
the missing history (and catches up its private state) or observes LOST on
*every* other core (the packet reached nobody; atomicity allows skipping
it).  While any other core is still NOT_INIT for that sequence the reader
must wait — :class:`LossRecoveryManager` exposes that wait as a *blocked*
state so the single-threaded functional engine can interleave cores the way
truly concurrent cores would, and the Appendix B termination argument
(every core keeps receiving packets ⇒ every wait resolves) can be tested
directly.

One deliberate, conservative deviation from the pseudocode: all log entries
carried by a received packet are written at delivery time, rather than as
the catch-up loop walks them.  The entries are identical; publishing them
earlier can only shorten other cores' waits and never violates
single-writer ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["LOST", "CatchupEntry", "LossRecoveryManager"]


class _Lost:
    """Sentinel for a log slot known to be lost at that core."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "LOST"


LOST = _Lost()

#: A catch-up step: (sequence, metadata bytes) — bytes is None when the
#: packet was lost at every core and atomicity lets everyone skip it.
CatchupEntry = Tuple[int, Optional[bytes]]


@dataclass
class _Pending:
    """A core's in-progress walk toward a received packet's sequence."""

    target_seq: int
    next_seq: int
    metas: Dict[int, bytes] = field(default_factory=dict)


class LossRecoveryManager:
    """Per-core logs plus the Algorithm 1 catch-up state machine."""

    def __init__(
        self, num_cores: int, window: int, log_capacity: Optional[int] = None
    ) -> None:
        """``window`` is N: how many sequences each packet carries history for.

        ``log_capacity`` bounds each core's log to that many trailing
        sequences (the real implementation uses 1024 entries with a large
        sequence space, App. B); entries older than
        ``max_seq - log_capacity`` are pruned on delivery.  It must be
        comfortably larger than the window — a peer may still be catching
        up through sequences this core has long passed.
        """
        if num_cores < 1:
            raise ValueError("need at least one core")
        if window < 1:
            raise ValueError("window must be at least 1")
        if log_capacity is not None and log_capacity < 2 * window:
            raise ValueError("log_capacity must be at least twice the window")
        self.num_cores = num_cores
        self.window = window
        self.log_capacity = log_capacity
        self._logs: List[Dict[int, Union[bytes, _Lost]]] = [
            {} for _ in range(num_cores)
        ]
        self._max_seq = [0] * num_cores
        self._pending: List[Optional[_Pending]] = [None] * num_cores
        # Counters are kept per-core so that, under real threads, every
        # slot has a single writer (the same discipline as the logs).
        self._recovered = [0] * num_cores
        self._skipped = [0] * num_cores
        self._blocked_waits = [0] * num_cores
        #: sequences that were lost at every core and skipped for atomicity
        #: (set.add is atomic under the GIL; all writers add, none remove).
        self.skipped_seqs: set = set()

    @property
    def recovered(self) -> int:
        return sum(self._recovered)

    @property
    def skipped(self) -> int:
        return sum(self._skipped)

    @property
    def blocked_waits(self) -> int:
        return sum(self._blocked_waits)

    # -- introspection ---------------------------------------------------------

    def log_entry(self, core: int, seq: int) -> Union[bytes, _Lost, None]:
        """The raw log state: bytes, LOST, or None for NOT_INIT."""
        return self._logs[core].get(seq)

    def max_seq(self, core: int) -> int:
        return self._max_seq[core]

    def has_pending(self, core: int) -> bool:
        return self._pending[core] is not None

    # -- delivery ---------------------------------------------------------------

    def deliver(self, core: int, seq: int, metas: Dict[int, bytes]) -> None:
        """A packet with sequence ``seq`` carrying ``metas`` reached ``core``.

        ``metas`` maps sequence → metadata bytes for max(1, seq-N+1)..seq.
        Marks the gap (if any) LOST in this core's log, publishes the
        carried entries, and queues the catch-up walk.
        """
        if self._pending[core] is not None:
            raise RuntimeError(
                f"core {core} got a new packet while still catching up; "
                "drain with try_advance first"
            )
        if seq <= self._max_seq[core]:
            raise ValueError(
                f"non-monotonic sequence at core {core}: {seq} after "
                f"{self._max_seq[core]} (no reordering assumed, §3.4)"
            )
        minseq = max(1, seq - self.window + 1)
        log = self._logs[core]
        start = self._max_seq[core] + 1
        for k in range(start, seq + 1):
            if k < minseq:
                log[k] = LOST
            else:
                try:
                    log[k] = metas[k]
                except KeyError:
                    raise ValueError(f"packet {seq} is missing history for {k}") from None
        self._pending[core] = _Pending(target_seq=seq, next_seq=start, metas=dict(metas))
        if self.log_capacity is not None:
            floor = seq - self.log_capacity
            if floor > 0:
                for old in [k for k in log if k <= floor]:
                    del log[old]

    # -- the catch-up walk ------------------------------------------------------

    def try_advance(self, core: int) -> Tuple[List[CatchupEntry], bool]:
        """Advance the core's walk as far as possible.

        Returns (entries, done): ``entries`` is the ordered list of
        sequences the core can now apply to its private state; ``done`` is
        True when the walk reached the received packet itself.  When not
        done, the core is blocked waiting on another core's NOT_INIT slot —
        call again after other cores make progress.
        """
        pending = self._pending[core]
        if pending is None:
            return [], True
        minseq = max(1, pending.target_seq - self.window + 1)
        ready: List[CatchupEntry] = []
        while pending.next_seq <= pending.target_seq:
            k = pending.next_seq
            if k >= minseq:
                ready.append((k, pending.metas[k]))
                pending.next_seq += 1
                self._max_seq[core] = k
                continue
            resolution = self._probe_others(core, k)
            if resolution is _BLOCKED:
                self._blocked_waits[core] += 1
                return ready, False
            if resolution is None:
                self._skipped[core] += 1
                self.skipped_seqs.add(k)
                ready.append((k, None))
            else:
                self._recovered[core] += 1
                ready.append((k, resolution))
            pending.next_seq += 1
            self._max_seq[core] = k
        self._pending[core] = None
        return ready, True

    def _probe_others(self, core: int, seq: int):
        """One pass of the Algorithm 1 wait loop for ``seq``.

        Returns metadata bytes when some other core logged the history,
        None when *every* other core logged LOST (skip for atomicity), or
        the _BLOCKED sentinel when some core is still NOT_INIT.
        """
        all_lost = True
        for other in range(self.num_cores):
            if other == core:
                continue
            entry = self._logs[other].get(seq)
            if entry is None:
                if (
                    self.log_capacity is not None
                    and self._max_seq[other] >= seq
                ):
                    # The peer is past this sequence but pruned its entry
                    # (bounded log): it can no longer supply the history.
                    # Waiting on it would deadlock; treat as LOST.  This is
                    # why log_capacity must dwarf the window (App. B sizes
                    # the log "sufficiently large").
                    continue
                all_lost = False
                continue
            if entry is LOST:
                continue
            return entry
        if all_lost:
            # Vacuously true for a single core: no one received it, skip.
            return None
        return _BLOCKED

    def blocked_cores(self) -> List[int]:
        return [c for c in range(self.num_cores) if self._pending[c] is not None]


class _BlockedType:
    __slots__ = ()


_BLOCKED = _BlockedType()
