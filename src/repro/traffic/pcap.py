"""Minimal libpcap-format reader/writer for interoperability.

Lets synthesized traces be inspected with standard tools (tcpdump/wireshark)
and lets externally captured pcaps be loaded as :class:`~repro.traffic.Trace`
objects.  Only the classic (non-ng) format with Ethernet link type and
microsecond timestamps is supported — enough for packet traces.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from ..packet import Packet
from .trace import Trace

__all__ = ["write_pcap", "read_pcap"]

_PCAP_MAGIC = 0xA1B2C3D4
_PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
_LINKTYPE_ETHERNET = 1
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def write_pcap(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` as a classic little-endian pcap file."""
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(_PCAP_MAGIC, 2, 4, 0, 0, 65535, _LINKTYPE_ETHERNET)
        )
        for pkt in trace:
            raw = pkt.to_bytes()
            ts_sec, ts_rem = divmod(pkt.timestamp_ns, 1_000_000_000)
            fh.write(_RECORD_HEADER.pack(ts_sec, ts_rem // 1000, len(raw), pkt.wire_len))
            fh.write(raw)


def read_pcap(path: Union[str, Path]) -> Trace:
    """Read a classic pcap (either endianness) into a Trace."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise ValueError(f"{path}: truncated pcap global header")
    magic = struct.unpack("<I", data[:4])[0]
    if magic == _PCAP_MAGIC:
        endian = "<"
    elif magic == _PCAP_MAGIC_SWAPPED:
        endian = ">"
    else:
        raise ValueError(f"{path}: not a classic pcap file (magic={magic:#x})")
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    _, _, _, _, _, _, linktype = header.unpack(data[: header.size])
    if linktype != _LINKTYPE_ETHERNET:
        raise ValueError(f"{path}: unsupported link type {linktype}")
    packets = []
    offset = header.size
    while offset + record.size <= len(data):
        ts_sec, ts_usec, captured, wire_len = record.unpack(
            data[offset : offset + record.size]
        )
        offset += record.size
        if offset + captured > len(data):
            raise ValueError(f"{path}: truncated packet record")
        raw = data[offset : offset + captured]
        offset += captured
        packets.append(
            Packet.from_bytes(
                raw,
                timestamp_ns=ts_sec * 1_000_000_000 + ts_usec * 1000,
                wire_len=wire_len,
            )
        )
    return Trace(packets, name=path.stem)
