"""Traffic substrate: distributions, synthesis, traces, replay, pcap I/O."""

from .distributions import (
    MSS_BYTES,
    TRACE_DISTRIBUTIONS,
    EmpiricalCDF,
    EmpiricalFlowSizes,
    FlowSizeDistribution,
    LognormalFlowSizes,
    ParetoFlowSizes,
    ZipfFlowSizes,
    caida_backbone_flow_sizes,
    hyperscalar_dc_flow_sizes,
    univ_dc_flow_sizes,
)
from .pcap import read_pcap, write_pcap
from .replay import Replayer, replay_at_rate
from .synthesis import FlowSpec, flow_packets, single_flow_trace, synthesize_trace
from .tools import TraceProblems, burstify, sample_flows, validate_trace
from .trace import Trace, TraceStats

__all__ = [
    "MSS_BYTES",
    "TRACE_DISTRIBUTIONS",
    "EmpiricalCDF",
    "EmpiricalFlowSizes",
    "FlowSizeDistribution",
    "LognormalFlowSizes",
    "ParetoFlowSizes",
    "ZipfFlowSizes",
    "caida_backbone_flow_sizes",
    "hyperscalar_dc_flow_sizes",
    "univ_dc_flow_sizes",
    "read_pcap",
    "write_pcap",
    "Replayer",
    "replay_at_rate",
    "TraceProblems",
    "burstify",
    "sample_flows",
    "validate_trace",
    "FlowSpec",
    "flow_packets",
    "single_flow_trace",
    "synthesize_trace",
    "Trace",
    "TraceStats",
]
