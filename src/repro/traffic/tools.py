"""Trace tools: validation, burst shaping, and flow sampling.

* :func:`validate_trace` — checks the §4.1 invariants a replayable trace
  must satisfy (SYN-first/FIN-last per flow, time-ordered).
* :func:`burstify` — reshapes inter-arrival times into ON/OFF bursts; real
  data-center traffic is heavily bursty [66], and bursts are what overflow
  the 256-descriptor RX rings first.
* :func:`sample_flows` — down-samples a trace to a packet budget by keeping
  whole flows, stratified by flow size so the empirical flow-size
  distribution is preserved.  This mirrors the paper's CAIDA preparation:
  "we have sampled flows from the trace's empirical flow size distribution
  to faithfully reflect the underlying distribution, without over-running
  the limit on the number of concurrent flows" (§4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..packet import TCP_FIN, TCP_RST, TCP_SYN, Packet
from .trace import Trace

__all__ = ["TraceProblems", "validate_trace", "burstify", "sample_flows"]


@dataclass
class TraceProblems:
    """What validate_trace found wrong (empty == valid)."""

    out_of_order: int = 0
    flows_not_starting_with_syn: List = field(default_factory=list)
    flows_not_ending_with_fin: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.out_of_order == 0
            and not self.flows_not_starting_with_syn
            and not self.flows_not_ending_with_fin
        )


def validate_trace(trace: Trace, bidirectional: bool = False) -> TraceProblems:
    """Check the replayability invariants of §4.1 on a TCP trace.

    Every TCP flow must open with SYN and close, and timestamps must be
    non-decreasing.  "Close" means: unidirectional flows end with FIN (or
    RST); bidirectional connections must have seen a FIN from *each* side
    (or an RST) — the final packet of a proper teardown is the last ACK,
    not a FIN.  Non-TCP packets are ignored.
    """
    problems = TraceProblems()
    last_ts = None
    first: Dict[object, Packet] = {}
    last: Dict[object, Packet] = {}
    fin_sides: Dict[object, set] = {}
    rst_seen: Dict[object, bool] = {}
    for pkt in trace:
        if last_ts is not None and pkt.timestamp_ns < last_ts:
            problems.out_of_order += 1
        last_ts = pkt.timestamp_ns
        if not pkt.is_tcp:
            continue
        raw_ft = pkt.five_tuple()
        ft = raw_ft.normalized() if bidirectional else raw_ft
        if ft not in first:
            first[ft] = pkt
            fin_sides[ft] = set()
            rst_seen[ft] = False
        last[ft] = pkt
        if pkt.l4.has_flag(TCP_FIN):
            fin_sides[ft].add(raw_ft.src_ip)
        if pkt.l4.has_flag(TCP_RST):
            rst_seen[ft] = True
    for ft, pkt in first.items():
        if not pkt.l4.has_flag(TCP_SYN):
            problems.flows_not_starting_with_syn.append(ft)
    for ft, pkt in last.items():
        if rst_seen[ft]:
            continue
        if bidirectional:
            if len(fin_sides[ft]) < 2:
                problems.flows_not_ending_with_fin.append(ft)
        elif not pkt.l4.has_flag(TCP_FIN):
            problems.flows_not_ending_with_fin.append(ft)
    return problems


def burstify(
    trace: Trace,
    burst_size: int = 32,
    burst_gap_ns: int = 50_000,
    intra_burst_gap_ns: int = 100,
) -> Trace:
    """Reshape arrivals into ON/OFF bursts, preserving packet order.

    Packets are grouped into back-to-back bursts of ``burst_size`` spaced
    ``intra_burst_gap_ns`` apart, with ``burst_gap_ns`` of silence between
    bursts — the bursty pattern real applications produce [66].
    """
    if burst_size < 1:
        raise ValueError("burst_size must be positive")
    out = []
    t = 0
    for i, pkt in enumerate(trace):
        if i and i % burst_size == 0:
            t += burst_gap_ns
        else:
            t += intra_burst_gap_ns if i else 0
        out.append(
            Packet(
                eth=pkt.eth, ip=pkt.ip, l4=pkt.l4, payload=pkt.payload,
                timestamp_ns=t, wire_len=pkt.wire_len,
            )
        )
    return Trace(out, name=f"{trace.name}-bursty")


def sample_flows(
    trace: Trace,
    max_packets: int,
    seed: int = 0,
    bidirectional: bool = False,
    size_strata: int = 8,
) -> Trace:
    """Down-sample whole flows to a packet budget, preserving the size mix.

    Flows are bucketed into log-sized strata; strata are sampled
    proportionally so mice stay mice-heavy and elephants keep their share —
    the paper's approach to fitting CAIDA under eBPF map limits (§4.1).
    """
    if max_packets < 1:
        raise ValueError("max_packets must be positive")
    sizes = trace.flow_sizes(bidirectional=bidirectional)
    if not sizes:
        return Trace([], name=f"{trace.name}-sampled")
    total = sum(sizes.values())
    if total <= max_packets:
        return Trace(list(trace.packets), name=f"{trace.name}-sampled")

    rng = np.random.default_rng(seed)
    max_size = max(sizes.values())
    strata: Dict[int, List] = {}
    for ft, size in sizes.items():
        stratum = min(size_strata - 1, int(math.log2(size)) if size > 1 else 0)
        strata.setdefault(stratum, []).append(ft)

    keep_fraction = max_packets / total
    kept = set()
    budget = max_packets
    # walk strata largest-first so elephants (few, heavy) are decided first
    for stratum in sorted(strata, reverse=True):
        flows = strata[stratum]
        rng.shuffle(flows)
        stratum_packets = sum(sizes[ft] for ft in flows)
        target = stratum_packets * keep_fraction
        acc = 0
        for ft in flows:
            if acc >= target or sizes[ft] > budget:
                continue
            kept.add(ft)
            acc += sizes[ft]
            budget -= sizes[ft]
    # Fill pass: when an oversized elephant left budget unused, top up with
    # the largest still-fitting flows so the sample uses its packet budget.
    for ft in sorted(sizes, key=lambda f: -sizes[f]):
        if budget <= 0:
            break
        if ft not in kept and sizes[ft] <= budget:
            kept.add(ft)
            budget -= sizes[ft]

    out = []
    for pkt in trace:
        ft = pkt.five_tuple()
        if bidirectional:
            ft = ft.normalized()
        if ft in kept:
            out.append(pkt)
    return Trace(out, name=f"{trace.name}-sampled")
