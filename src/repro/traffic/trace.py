"""Trace container and on-disk format.

A :class:`Trace` is an ordered list of packets with monotonically
non-decreasing timestamps.  Traces can be truncated (the evaluation fixes
packet sizes at 64/192/256 bytes to stress packets-per-second, §4.2), saved
to a compact binary format, and inspected for flow statistics.
"""

from __future__ import annotations

import struct
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..packet import Packet
from ..packet.flow import FiveTuple

__all__ = ["Trace", "TraceStats"]

_MAGIC = b"SCRT"
_VERSION = 1
_FILE_HEADER = struct.Struct("!4sHI")  # magic, version, packet count
_PKT_HEADER = struct.Struct("!QHH")  # timestamp_ns, wire_len, captured_len


@dataclass
class TraceStats:
    """Summary statistics of a trace (used by Figure 5 and sanity checks)."""

    packets: int
    flows: int
    max_flow_packets: int
    mean_flow_packets: float
    duration_ns: int

    @property
    def top_flow_share(self) -> float:
        """Fraction of all packets belonging to the largest flow."""
        if self.packets == 0:
            return 0.0
        return self.max_flow_packets / self.packets


class Trace:
    """An ordered packet trace."""

    def __init__(self, packets: Optional[List[Packet]] = None, name: str = "trace") -> None:
        self.packets: List[Packet] = packets or []
        self.name = name

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def __getitem__(self, idx):
        return self.packets[idx]

    def append(self, pkt: Packet) -> None:
        self.packets.append(pkt)

    def sort_by_time(self) -> None:
        self.packets.sort(key=lambda p: p.timestamp_ns)

    def truncated(self, size: int) -> "Trace":
        """All packets truncated to ``size`` bytes on the wire (§4.2)."""
        return Trace([p.truncated(size) for p in self.packets], name=self.name)

    def flow_sizes(self, bidirectional: bool = False) -> Dict[FiveTuple, int]:
        """Packets per flow; ``bidirectional`` merges a connection's two sides."""
        counts: Counter = Counter()
        for pkt in self.packets:
            ft = pkt.five_tuple()
            if bidirectional:
                ft = ft.normalized()
            counts[ft] += 1
        return dict(counts)

    def stats(self, bidirectional: bool = False) -> TraceStats:
        sizes = self.flow_sizes(bidirectional=bidirectional)
        packets = len(self.packets)
        duration = 0
        if packets:
            duration = self.packets[-1].timestamp_ns - self.packets[0].timestamp_ns
        return TraceStats(
            packets=packets,
            flows=len(sizes),
            max_flow_packets=max(sizes.values()) if sizes else 0,
            mean_flow_packets=(packets / len(sizes)) if sizes else 0.0,
            duration_ns=duration,
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to the compact SCRT binary format."""
        path = Path(path)
        with path.open("wb") as fh:
            fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, len(self.packets)))
            for pkt in self.packets:
                raw = pkt.to_bytes()
                fh.write(_PKT_HEADER.pack(pkt.timestamp_ns, pkt.wire_len, len(raw)))
                fh.write(raw)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        with path.open("rb") as fh:
            header = fh.read(_FILE_HEADER.size)
            if len(header) < _FILE_HEADER.size:
                raise ValueError(f"{path}: truncated trace header")
            magic, version, count = _FILE_HEADER.unpack(header)
            if magic != _MAGIC:
                raise ValueError(f"{path}: not an SCRT trace file")
            if version != _VERSION:
                raise ValueError(f"{path}: unsupported trace version {version}")
            packets = []
            for _ in range(count):
                pkt_header = fh.read(_PKT_HEADER.size)
                if len(pkt_header) < _PKT_HEADER.size:
                    raise ValueError(f"{path}: truncated packet header")
                ts, wire_len, captured = _PKT_HEADER.unpack(pkt_header)
                raw = fh.read(captured)
                if len(raw) < captured:
                    raise ValueError(f"{path}: truncated packet body")
                packets.append(Packet.from_bytes(raw, timestamp_ns=ts, wire_len=wire_len))
        return cls(packets, name=path.stem)
