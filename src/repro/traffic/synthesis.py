"""Trace synthesis: turn flow-size samples into realistic packet traces.

Key properties the evaluation relies on (§4.1):

* Every TCP flow that begins in the trace also ends: the first packet of a
  flow carries SYN, the last carries FIN.  This lets a trace be replayed
  repeatedly with correct program semantics.
* Flows are highly dynamic — created and destroyed throughout the trace —
  not a stable set of active flows.
* Bidirectional synthesis produces a full handshake / data+ACK / teardown
  exchange so the connection tracker sees both directions in order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..packet import TCP_ACK, TCP_FIN, TCP_SYN, Packet, make_tcp_packet
from .distributions import FlowSizeDistribution
from .trace import Trace

__all__ = ["FlowSpec", "synthesize_trace", "single_flow_trace", "flow_packets"]

#: Base of the synthetic address space (10.0.0.0/8 clients, 172.16/12 servers).
_CLIENT_BASE = 0x0A000000
_SERVER_BASE = 0xAC100000


@dataclass
class FlowSpec:
    """One synthetic flow: endpoints, size, and start time."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    data_packets: int
    start_ns: int
    gap_ns: int = 1_000  # inter-packet gap within the flow


def flow_packets(
    spec: FlowSpec,
    bidirectional: bool = False,
    payload_size: int = 512,
) -> List[Packet]:
    """Generate a flow's packets: SYN first, FIN last (§4.1).

    Unidirectional flows emit SYN, data…, FIN from the client only.
    Bidirectional flows emit the full exchange: SYN, SYN/ACK, ACK, then a
    data/ACK pair per data packet, then FIN, FIN/ACK, ACK.
    """
    if spec.data_packets < 1:
        raise ValueError("flows carry at least one data packet")
    payload = bytes(payload_size)
    pkts: List[Packet] = []
    t = spec.start_ns
    seq_c, seq_s = 1000, 5000

    def client(flags: int, seq: int, ack: int = 0, data: bytes = b"") -> Packet:
        return make_tcp_packet(
            spec.src_ip, spec.dst_ip, spec.src_port, spec.dst_port,
            flags, seq=seq, ack=ack, payload=data, timestamp_ns=t,
        )

    def server(flags: int, seq: int, ack: int = 0, data: bytes = b"") -> Packet:
        return make_tcp_packet(
            spec.dst_ip, spec.src_ip, spec.dst_port, spec.src_port,
            flags, seq=seq, ack=ack, payload=data, timestamp_ns=t,
        )

    if not bidirectional:
        pkts.append(client(TCP_SYN, seq_c))
        t += spec.gap_ns
        for _ in range(max(0, spec.data_packets - 2)):
            seq_c += len(payload)
            pkts.append(client(TCP_ACK, seq_c, data=payload))
            t += spec.gap_ns
        seq_c += len(payload)
        pkts.append(client(TCP_FIN | TCP_ACK, seq_c))
        return pkts

    # Bidirectional: handshake.
    pkts.append(client(TCP_SYN, seq_c))
    t += spec.gap_ns
    pkts.append(server(TCP_SYN | TCP_ACK, seq_s, ack=seq_c + 1))
    t += spec.gap_ns
    seq_c += 1
    pkts.append(client(TCP_ACK, seq_c, ack=seq_s + 1))
    t += spec.gap_ns
    # Data packets from the client, each ACKed by the server.
    for _ in range(spec.data_packets):
        pkts.append(client(TCP_ACK, seq_c, ack=seq_s + 1, data=payload))
        seq_c += len(payload)
        t += spec.gap_ns
        pkts.append(server(TCP_ACK, seq_s + 1, ack=seq_c))
        t += spec.gap_ns
    # Teardown: client FIN, server FIN/ACK, client final ACK.
    pkts.append(client(TCP_FIN | TCP_ACK, seq_c, ack=seq_s + 1))
    t += spec.gap_ns
    pkts.append(server(TCP_FIN | TCP_ACK, seq_s + 1, ack=seq_c + 1))
    t += spec.gap_ns
    pkts.append(client(TCP_ACK, seq_c + 1, ack=seq_s + 2))
    return pkts


def synthesize_trace(
    distribution: FlowSizeDistribution,
    num_flows: int,
    seed: int = 0,
    bidirectional: bool = False,
    mean_flow_interarrival_ns: int = 50_000,
    intra_flow_gap_ns: int = 1_000,
    flow_duration_ns: Optional[int] = None,
    payload_size: int = 512,
    max_packets: Optional[int] = None,
    name: Optional[str] = None,
) -> Trace:
    """Sample ``num_flows`` flows and interleave their packets by timestamp.

    Flow starts follow a Poisson process; each flow's size (in packets) is
    drawn from ``distribution``.  The merged trace is globally time-ordered,
    so flows overlap — states are created and destroyed throughout (§4.1).
    ``max_packets`` caps the trace size (mirroring the paper's flow-sampled
    CAIDA trace that respects eBPF map-size limits).

    With ``flow_duration_ns`` set, every flow spreads its packets over
    roughly that wall-clock span (larger flows send proportionally faster),
    which is how bulk transfers behave in real captures.  This keeps a
    window of the merged trace as skewed as the size distribution itself —
    an elephant's share of any window matches its share of the trace.
    Without it, every flow uses the fixed ``intra_flow_gap_ns``.
    """
    if num_flows < 1:
        raise ValueError("need at least one flow")
    rng = np.random.default_rng(seed)
    sizes = distribution.sample_packets(rng, num_flows)
    interarrivals = rng.exponential(mean_flow_interarrival_ns, num_flows)

    specs: List[FlowSpec] = []
    start = 0
    for i, (size, gap) in enumerate(zip(sizes, interarrivals)):
        start += int(gap)
        if flow_duration_ns is not None:
            flow_gap = max(1, flow_duration_ns // max(1, size))
        else:
            flow_gap = intra_flow_gap_ns
        specs.append(
            FlowSpec(
                src_ip=_CLIENT_BASE + 1 + (i % 0xFFFF_00) ,
                dst_ip=_SERVER_BASE + 1 + (i % 1024),
                src_port=1024 + (i % 60000),
                dst_port=80 if i % 2 == 0 else 443,
                data_packets=size,
                start_ns=start,
                gap_ns=flow_gap,
            )
        )

    # Merge per-flow packet streams by timestamp with a heap; the tie-breaker
    # (flow index, packet index) keeps synthesis deterministic.  Flows are
    # admitted lazily in start order: a flow's packets are only materialized
    # once its start time is due, so a million-flow spec truncated by
    # ``max_packets`` never pays for the flows past the cap.  (A flow's
    # packets all carry timestamps >= its start, and specs are built in
    # start order, so lazy admission merges identically to the eager merge.)
    heap: List[Tuple[int, int, int, List[Packet]]] = []
    merged: List[Packet] = []
    next_flow = 0
    while True:
        while next_flow < len(specs) and (
            not heap or specs[next_flow].start_ns <= heap[0][0]
        ):
            stream = flow_packets(
                specs[next_flow],
                bidirectional=bidirectional,
                payload_size=payload_size,
            )
            heapq.heappush(
                heap, (stream[0].timestamp_ns, next_flow, 0, stream)
            )
            next_flow += 1
        if not heap:
            break
        ts, fi, pi, stream = heapq.heappop(heap)
        merged.append(stream[pi])
        if max_packets is not None and len(merged) >= max_packets:
            break
        if pi + 1 < len(stream):
            heapq.heappush(heap, (stream[pi + 1].timestamp_ns, fi, pi + 1, stream))

    trace_name = name or f"{distribution.name}-{num_flows}flows"
    return Trace(merged, name=trace_name)


def single_flow_trace(
    num_packets: int,
    bidirectional: bool = True,
    gap_ns: int = 100,
    payload_size: int = 512,
    name: str = "single-flow",
) -> Trace:
    """One elephant TCP connection — the Figure 1 workload.

    All packets belong to a single connection, so sharding techniques are
    pinned to one core while SCR can still spread the work.
    """
    if num_packets < 1:
        raise ValueError("need at least one packet")
    spec = FlowSpec(
        src_ip=_CLIENT_BASE + 1,
        dst_ip=_SERVER_BASE + 1,
        src_port=40000,
        dst_port=443,
        data_packets=num_packets,
        start_ns=0,
        gap_ns=gap_ns,
    )
    pkts = flow_packets(spec, bidirectional=bidirectional, payload_size=payload_size)
    return Trace(pkts, name=name)
