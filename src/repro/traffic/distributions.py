"""Flow-size distributions for the three evaluation workloads (Figure 5).

The paper replays (a) a university data-center trace [35], (b) a CAIDA wide
area backbone trace [11], and (c) a synthetic trace drawn from a hyperscalar
data center's flow-size distribution (the DCTCP web-search workload [32]).
None of these captures are redistributable, so we model each as an empirical
flow-size CDF with the published shape and sample flows from it — what
matters to every claim in the paper is the *skew* (elephants vs mice), which
these CDFs preserve.  ``benchmarks/bench_fig5_traces.py`` regenerates the
Figure 5 CDF series from these samplers.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "FlowSizeDistribution",
    "EmpiricalFlowSizes",
    "ParetoFlowSizes",
    "LognormalFlowSizes",
    "ZipfFlowSizes",
    "univ_dc_flow_sizes",
    "caida_backbone_flow_sizes",
    "hyperscalar_dc_flow_sizes",
    "zipf_flow_sizes",
    "TRACE_DISTRIBUTIONS",
    "MSS_BYTES",
]

#: Conventional TCP maximum segment size used to convert bytes → packets.
MSS_BYTES = 1460


class EmpiricalCDF:
    """A piecewise log-linear empirical CDF with inverse-transform sampling.

    Points are (value, cumulative probability) with strictly increasing
    values and probabilities; the final probability must be 1.0.
    Interpolation between points is linear in log(value), which is the usual
    way flow-size CDFs are drawn (and matches Figure 5's log-x axes).
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF points")
        values = [p[0] for p in points]
        probs = [p[1] for p in points]
        if any(v <= 0 for v in values):
            raise ValueError("values must be positive (log interpolation)")
        if any(b <= a for a, b in zip(values, values[1:])):
            raise ValueError("values must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("probabilities must be non-decreasing")
        if not 0.0 <= probs[0] < 1.0 or abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("probabilities must start below 1 and end at 1.0")
        self._log_values = [math.log(v) for v in values]
        self._probs = list(probs)
        self.values = list(values)

    def quantile(self, u: float) -> float:
        """Inverse CDF: the value at cumulative probability ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError("u must be in [0, 1]")
        if u <= self._probs[0]:
            return math.exp(self._log_values[0])
        idx = bisect.bisect_left(self._probs, u)
        idx = min(idx, len(self._probs) - 1)
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        v0, v1 = self._log_values[idx - 1], self._log_values[idx]
        if p1 == p0:
            return math.exp(v1)
        frac = (u - p0) / (p1 - p0)
        return math.exp(v0 + frac * (v1 - v0))

    def cdf(self, value: float) -> float:
        """Forward CDF, log-linearly interpolated."""
        if value <= self.values[0]:
            return self._probs[0]
        if value >= self.values[-1]:
            return 1.0
        lv = math.log(value)
        idx = bisect.bisect_left(self._log_values, lv)
        v0, v1 = self._log_values[idx - 1], self._log_values[idx]
        p0, p1 = self._probs[idx - 1], self._probs[idx]
        return p0 + (lv - v0) / (v1 - v0) * (p1 - p0)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size)
        if size is None:
            return self.quantile(float(u))
        return np.array([self.quantile(float(x)) for x in u])


class FlowSizeDistribution:
    """Base: sample flow sizes in *packets* (≥ 1)."""

    #: human-readable name used by figures.
    name = "base"

    def sample_packets(self, rng: np.random.Generator, count: int) -> List[int]:
        raise NotImplementedError

    def cdf_series(self, points: int = 50) -> Tuple[List[float], List[float]]:
        """(sizes, cumulative fraction) series for plotting (Figure 5)."""
        raise NotImplementedError


class EmpiricalFlowSizes(FlowSizeDistribution):
    """Flow sizes in bytes drawn from an :class:`EmpiricalCDF`."""

    def __init__(self, cdf: EmpiricalCDF, name: str = "empirical") -> None:
        self._cdf = cdf
        self.name = name

    def sample_packets(self, rng: np.random.Generator, count: int) -> List[int]:
        sizes_bytes = self._cdf.sample(rng, count)
        return [max(1, int(math.ceil(s / MSS_BYTES))) for s in sizes_bytes]

    def sample_bytes(self, rng: np.random.Generator, count: int) -> List[int]:
        return [max(1, int(s)) for s in self._cdf.sample(rng, count)]

    def cdf_series(self, points: int = 50) -> Tuple[List[float], List[float]]:
        lo = math.log10(self._cdf.values[0])
        hi = math.log10(self._cdf.values[-1])
        xs = [10 ** (lo + (hi - lo) * i / (points - 1)) for i in range(points)]
        return xs, [self._cdf.cdf(x) for x in xs]


class ParetoFlowSizes(FlowSizeDistribution):
    """Bounded Pareto flow sizes (packets) — the classic heavy-tail primitive."""

    def __init__(self, alpha: float = 1.2, min_packets: int = 1, max_packets: int = 100_000):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 1 <= min_packets < max_packets:
            raise ValueError("need 1 <= min_packets < max_packets")
        self.alpha = alpha
        self.min_packets = min_packets
        self.max_packets = max_packets
        self.name = f"pareto(a={alpha})"

    def sample_packets(self, rng: np.random.Generator, count: int) -> List[int]:
        u = rng.random(count)
        l, h, a = self.min_packets, self.max_packets, self.alpha
        # Inverse CDF of the bounded Pareto.
        values = (-(u * (h**a - l**a) - h**a) / (h**a * l**a)) ** (-1.0 / a)
        return [max(self.min_packets, min(self.max_packets, int(v))) for v in values]

    def cdf_series(self, points: int = 50) -> Tuple[List[float], List[float]]:
        l, h, a = self.min_packets, self.max_packets, self.alpha
        xs = np.logspace(math.log10(l), math.log10(h), points)
        cdf = (1 - (l / xs) ** a) / (1 - (l / h) ** a)
        return list(xs), list(np.clip(cdf, 0, 1))


class LognormalFlowSizes(FlowSizeDistribution):
    """Lognormal flow sizes (packets), truncated to [1, max_packets]."""

    def __init__(self, mu: float = 1.5, sigma: float = 2.0, max_packets: int = 1_000_000):
        self.mu = mu
        self.sigma = sigma
        self.max_packets = max_packets
        self.name = f"lognormal(mu={mu},sigma={sigma})"

    def sample_packets(self, rng: np.random.Generator, count: int) -> List[int]:
        values = rng.lognormal(self.mu, self.sigma, count)
        return [max(1, min(self.max_packets, int(v))) for v in values]

    def cdf_series(self, points: int = 50) -> Tuple[List[float], List[float]]:
        xs = np.logspace(0, math.log10(self.max_packets), points)
        from math import erf, sqrt

        cdf = [
            0.5 * (1 + erf((math.log(x) - self.mu) / (self.sigma * sqrt(2)))) for x in xs
        ]
        return list(xs), cdf


class ZipfFlowSizes(FlowSizeDistribution):
    """Zipf-ranked flow sizes: flow at rank r carries ~ C / r^s packets.

    Unlike the samplers above this is deterministic given the flow count,
    which makes it useful for constructing worst-case skew (e.g. one
    dominating elephant) in tests and ablations.
    """

    def __init__(
        self,
        exponent: float = 1.0,
        total_packets: int = 100_000,
        packets_per_flow: Optional[int] = None,
    ):
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self.exponent = exponent
        self.total_packets = total_packets
        #: when set, the packet budget scales as ``packets_per_flow * count``
        #: instead of the fixed ``total_packets`` — flow-count sweeps then
        #: keep the same *shape* (elephant share, tail mass) at every count
        #: rather than starving the tail at high counts.
        self.packets_per_flow = packets_per_flow
        self.name = f"zipf(s={exponent})"

    def sample_packets(self, rng: np.random.Generator, count: int) -> List[int]:
        total = (
            self.packets_per_flow * count
            if self.packets_per_flow is not None
            else self.total_packets
        )
        ranks = np.arange(1, count + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        weights /= weights.sum()
        sizes = np.maximum(1, (weights * total).astype(np.int64))
        # Shuffle so rank order is not arrival order.
        rng.shuffle(sizes)
        return [int(s) for s in sizes]

    def cdf_series(self, points: int = 50) -> Tuple[List[float], List[float]]:
        sizes = sorted(self.sample_packets(np.random.default_rng(0), points))
        frac = [(i + 1) / len(sizes) for i in range(len(sizes))]
        return [float(s) for s in sizes], frac


def univ_dc_flow_sizes() -> EmpiricalFlowSizes:
    """University data-center flow sizes, after Benson et al. [35].

    That study reports most DC flows under 10 KB with a long tail past
    100 MB; the CDF below encodes those published shape points (bytes).
    """
    cdf = EmpiricalCDF(
        [
            (100, 0.05),
            (500, 0.30),
            (1_000, 0.45),
            (5_000, 0.70),
            (10_000, 0.80),
            (100_000, 0.92),
            (1_000_000, 0.97),
            (10_000_000, 0.995),
            (100_000_000, 1.0),
        ]
    )
    return EmpiricalFlowSizes(cdf, name="univ_dc")


def caida_backbone_flow_sizes() -> EmpiricalFlowSizes:
    """CAIDA wide-area backbone flow sizes [11].

    Backbone traffic is dominated by short flows (single-packet DNS/scan
    traffic) with a heavy tail of bulk transfers [71].
    """
    cdf = EmpiricalCDF(
        [
            (40, 0.10),
            (100, 0.35),
            (300, 0.55),
            (1_500, 0.75),
            (10_000, 0.88),
            (100_000, 0.96),
            (1_000_000, 0.99),
            (50_000_000, 1.0),
        ]
    )
    return EmpiricalFlowSizes(cdf, name="caida")


def hyperscalar_dc_flow_sizes() -> EmpiricalFlowSizes:
    """Hyperscalar DC flow sizes: the DCTCP web-search workload [32].

    The DCTCP paper's measured search workload: ~50 % of flows are short
    (<100 KB) queries, but 95 % of *bytes* come from 1–100 MB background
    flows.  CDF points (bytes) follow the published distribution.
    """
    cdf = EmpiricalCDF(
        [
            (6_000, 0.15),
            (10_000, 0.25),
            (20_000, 0.45),
            (50_000, 0.53),
            (100_000, 0.60),
            (300_000, 0.68),
            (1_000_000, 0.75),
            (3_000_000, 0.82),
            (10_000_000, 0.90),
            (30_000_000, 0.97),
            (100_000_000, 1.0),
        ]
    )
    return EmpiricalFlowSizes(cdf, name="hyperscalar_dc")


def zipf_flow_sizes() -> ZipfFlowSizes:
    """Zipf-skewed flow sizes for the multitenant placement suite.

    Rank r carries ~C/r^1.1 packets: a handful of elephants dominate while
    almost every other flow is a single-digit mouse — the regime where
    elephant/mice placement (``hybrid``, docs/MULTITENANT.md) should beat
    both pure SCR and pure RSS.  The packet budget scales with the flow
    count, so a 10^6-flow sweep point keeps the same elephant share as a
    10^3-flow one instead of starving the tail.
    """
    return ZipfFlowSizes(exponent=1.1, packets_per_flow=50)


#: The three evaluation workloads, by trace name used throughout benches,
#: plus the synthetic Zipf workload the multitenant suite sweeps.
TRACE_DISTRIBUTIONS = {
    "univ_dc": univ_dc_flow_sizes,
    "caida": caida_backbone_flow_sizes,
    "hyperscalar_dc": hyperscalar_dc_flow_sizes,
    "zipf": zipf_flow_sizes,
}
