"""Rate-controlled trace replay — the DPDK burst-replayer stand-in (§4.1).

The paper's traffic generator transmits a trace at a chosen fixed TX rate and
measures the corresponding RX rate.  :class:`Replayer` does the same thing to
the simulated device under test: it rewrites packet timestamps so the trace
is offered at ``rate_pps``, optionally in back-to-back bursts (the generator
is a *burst* replayer, and §2.2 notes real traffic is bursty [66]).
"""

from __future__ import annotations

from typing import Iterator, List

from ..packet import Packet
from .trace import Trace

__all__ = ["Replayer", "replay_at_rate"]


class Replayer:
    """Replays a trace at a fixed offered rate, preserving packet order."""

    def __init__(self, trace: Trace, loop_count: int = 1) -> None:
        if loop_count < 1:
            raise ValueError("loop_count must be positive")
        self.trace = trace
        self.loop_count = loop_count

    def offered_packets(self, rate_pps: float, burst_size: int = 1) -> Iterator[Packet]:
        """Yield copies of the trace's packets timestamped at ``rate_pps``.

        With ``burst_size`` > 1, packets inside a burst share the burst's
        start time (back-to-back on the wire), and bursts are spaced so the
        long-run average rate is still ``rate_pps``.
        """
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if burst_size < 1:
            raise ValueError("burst_size must be positive")
        interval_ns = 1e9 / rate_pps
        index = 0
        for _ in range(self.loop_count):
            for pkt in self.trace:
                burst_index = index // burst_size
                ts = int(burst_index * burst_size * interval_ns)
                yield Packet(
                    eth=pkt.eth,
                    ip=pkt.ip,
                    l4=pkt.l4,
                    payload=pkt.payload,
                    timestamp_ns=ts,
                    wire_len=pkt.wire_len,
                )
                index += 1

    def total_packets(self) -> int:
        return len(self.trace) * self.loop_count


def replay_at_rate(trace: Trace, rate_pps: float, burst_size: int = 1) -> List[Packet]:
    """Materialize one replay pass of ``trace`` at ``rate_pps``."""
    return list(Replayer(trace).offered_packets(rate_pps, burst_size=burst_size))
