"""``scr-repro report``: one self-contained HTML dashboard per repo state.

Renders any mix of telemetry artifact directories (``manifest.json`` +
``events.jsonl``), ``BENCH_*.json`` suite artifacts, and host-profile
artifacts (``hostprof.json`` from ``scr-repro profile``/``--hostprof``)
into a single HTML file with no external assets: inline CSS, inline SVG,
no scripts.  The sections mirror what the text tools answer one at a
time — drop-cause Pareto (``inspect`` question 1), recovery SLO table
(question 2), per-core span waterfalls for sampled packets, the suite's
MLFFR curves, and the host wall-clock panel (phase Pareto + an icicle
flamegraph of the PhaseClock tree).

Byte determinism is a contract, not an accident: rendering is a pure
function of the input bytes (sorted iteration everywhere, fixed-precision
formatting, no wall clock), so the same artifacts produce the same HTML in
any process — CI ``cmp``-checks the serial vs ``--jobs 2`` renders.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..hostprof.artifact import HOSTPROF_JSON, HostProfile
from ..hostprof.clock import PATH_SEP
from ..telemetry.artifact import EVENTS_NAME, MANIFEST_NAME, RunArtifact
from .spans import SPAN_PREFIX

__all__ = ["classify_inputs", "render_report", "write_report"]

#: Waterfalls rendered per artifact (the rest are counted, not drawn).
MAX_WATERFALLS = 8

_BENCH_SCHEMA_PREFIX = "scr-repro/bench-artifact/"
_HOSTPROF_SCHEMA_PREFIX = "scr-repro/hostprof/"

#: Drop/loss kinds in Pareto candidacy order (label per kind).
_DROP_LABELS: Mapping[str, str] = MappingProxyType({
    "nic.wire_drop": "wire saturated",
    "nic.ring_drop": "RX ring full",
    "nic.pcie_drop": "PCIe saturated",
    "sim.injected_loss": "injected loss",
    "fault.drop": "fault: wire→ring drop",
    "fault.pop_drop": "fault: ring-pop drop",
})

#: Fixed series palette (cycled); chosen for white backgrounds.
_PALETTE = ("#2563eb", "#dc2626", "#16a34a", "#9333ea", "#ea580c", "#0891b2")

_CSS = """\
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 960px; color: #1f2430; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #2563eb; padding-bottom: .2em; }
h2 { font-size: 1.2em; margin-top: 2em; }
h3 { font-size: 1em; margin-bottom: .3em; }
table { border-collapse: collapse; margin: .5em 0; }
th, td { border: 1px solid #cbd5e1; padding: .25em .6em; text-align: left; }
th { background: #eef2ff; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.note { color: #6b7280; font-style: italic; }
.bar { fill: #2563eb; }
svg text { font: 11px system-ui, sans-serif; fill: #374151; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Fixed-precision number rendering (deterministic across platforms)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.0f} ns"


def classify_inputs(
    inputs: Sequence[Union[str, Path]],
) -> Tuple[List[Path], List[Path], List[Path]]:
    """Split inputs into (artifact dirs, bench files, hostprof files).

    A directory must hold a ``manifest.json`` (telemetry artifact) or a
    ``hostprof.json`` (host-profile artifact — resolved to that file); a
    file must carry a bench or hostprof schema.  Anything else raises
    ValueError — a misspelled path should fail loudly, not render an
    empty report.
    """
    artifact_dirs: List[Path] = []
    bench_files: List[Path] = []
    hostprof_files: List[Path] = []
    for raw in inputs:
        path = Path(raw)
        if path.is_dir():
            if (path / MANIFEST_NAME).is_file():
                artifact_dirs.append(path)
            elif (path / HOSTPROF_JSON).is_file():
                hostprof_files.append(path / HOSTPROF_JSON)
            else:
                raise ValueError(
                    f"{path}: directory has no {MANIFEST_NAME} or "
                    f"{HOSTPROF_JSON} (not a telemetry or host-profile "
                    "artifact)"
                )
        elif path.is_file():
            with path.open() as fh:
                try:
                    data = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{path}: not valid JSON ({exc})") from exc
            schema = str(data.get("schema", ""))
            if schema.startswith(_BENCH_SCHEMA_PREFIX):
                bench_files.append(path)
            elif schema.startswith(_HOSTPROF_SCHEMA_PREFIX):
                hostprof_files.append(path)
            else:
                raise ValueError(
                    f"{path}: unrecognized schema {schema!r} "
                    "(expected a BENCH_*.json or hostprof.json artifact)"
                )
        else:
            raise ValueError(f"{path}: no such file or directory")
    return artifact_dirs, bench_files, hostprof_files


# -- run-artifact sections ----------------------------------------------------


def _read_events(directory: Path, artifact: RunArtifact) -> List[dict]:
    path = directory / str(artifact.files.get("events", EVENTS_NAME))
    rows: List[dict] = []
    try:
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except OSError:
        return []
    return rows


def _pareto_section(artifact: RunArtifact) -> List[str]:
    drops = [
        (kind, int(artifact.event_type_counts.get(kind, 0)))
        for kind in _DROP_LABELS
        if int(artifact.event_type_counts.get(kind, 0)) > 0
    ]
    if not drops:
        return ["<p class=\"note\">no drops recorded (loss-free run)</p>"]
    drops.sort(key=lambda kv: (-kv[1], kv[0]))
    total = sum(count for _, count in drops)
    peak = drops[0][1]
    out = ["<h3>drop-cause Pareto</h3>", "<table>",
           "<tr><th>cause</th><th>count</th><th>share</th><th></th></tr>"]
    cumulative = 0
    for kind, count in drops:
        cumulative += count
        width = max(1, round(240 * count / peak))
        out.append(
            "<tr>"
            f"<td>{_esc(_DROP_LABELS[kind])} <code>{_esc(kind)}</code></td>"
            f"<td class=\"num\">{count}</td>"
            f"<td class=\"num\">{100.0 * cumulative / total:.1f}%</td>"
            f"<td><svg width=\"240\" height=\"12\">"
            f"<rect class=\"bar\" width=\"{width}\" height=\"12\"/></svg></td>"
            "</tr>"
        )
    out.append("</table>")
    return out


def _slo_section(artifact: RunArtifact) -> List[str]:
    slo = artifact.slo
    if slo is None:
        if any(k.startswith(("fault.", "recovery."))
               for k in artifact.event_type_counts):
            return [
                "<p class=\"note\">recovery SLOs: not recorded "
                "(artifact predates the slo section)</p>"
            ]
        return []
    out = [f"<h3>recovery SLOs <code>{_esc(slo.get('schema', '?'))}</code></h3>"]
    gaps = slo.get("gaps", {})
    shown = ", ".join(f"{key}={gaps[key]}" for key in sorted(gaps) if gaps[key])
    out.append(f"<p>gaps: {_esc(shown) or 'none'}</p>")
    out.append("<table><tr><th>measure</th><th>count</th><th>p50</th>"
               "<th>p99</th><th>max</th><th>mean</th></tr>")
    measures = [
        ("time to detect", slo.get("ttd_ns", {}), _fmt_ns),
        ("time to resync", slo.get("ttr_ns", {}), _fmt_ns),
        ("packets degraded", slo.get("packets_degraded", {}), _fmt),
        ("blast radius", slo.get("blast_radius", {}), _fmt),
    ]
    for label, dist, fmt in measures:
        if dist.get("count", 0):
            cells = "".join(
                f"<td class=\"num\">{fmt(float(dist[key]))}</td>"
                for key in ("p50", "p99", "max", "mean")
            )
            out.append(f"<tr><td>{label}</td>"
                       f"<td class=\"num\">{dist['count']}</td>{cells}</tr>")
        else:
            out.append(f"<tr><td>{label}</td><td class=\"num\">0</td>"
                       "<td>-</td><td>-</td><td>-</td><td>-</td></tr>")
    out.append("</table>")
    if slo.get("unrecoverable_cores"):
        cores = ", ".join(str(c) for c in slo["unrecoverable_cores"])
        out.append(f"<p>unrecoverable cores: {_esc(cores)}</p>")
    return out


def _group_traces(events: List[dict]) -> List[Tuple[int, List[dict]]]:
    """Span events grouped by trace id, ordered by first timestamp."""
    traces: Dict[int, List[dict]] = {}
    for ev in events:
        kind = str(ev.get("kind", ""))
        if not kind.startswith(SPAN_PREFIX):
            continue
        trace = ev.get("trace")
        if isinstance(trace, int):
            traces.setdefault(trace, []).append(ev)
    for spans in traces.values():
        spans.sort(key=lambda e: (float(e.get("ts_ns", 0.0)),
                                  str(e.get("kind", ""))))
    return sorted(
        traces.items(),
        key=lambda kv: (float(kv[1][0].get("ts_ns", 0.0)), kv[0]),
    )


def _waterfall_svg(spans: List[dict]) -> str:
    """One trace as an SVG waterfall: a row per span, time left to right."""
    t0 = min(float(e.get("ts_ns", 0.0)) for e in spans)
    t1 = max(float(e.get("ts_ns", 0.0)) + float(e.get("dur_ns", 0.0) or 0.0)
             for e in spans)
    window = max(t1 - t0, 1.0)
    row_h, label_w, chart_w = 18, 180, 520
    height = row_h * len(spans) + 4
    parts = [
        f"<svg width=\"{label_w + chart_w + 60}\" height=\"{height}\" "
        "role=\"img\">"
    ]
    for row, ev in enumerate(spans):
        stage = str(ev.get("kind", ""))[len(SPAN_PREFIX):]
        core = ev.get("core")
        label = stage if core is None else f"{stage} (core {core})"
        ts = float(ev.get("ts_ns", 0.0))
        dur = float(ev.get("dur_ns", 0.0) or 0.0)
        x = label_w + chart_w * (ts - t0) / window
        w = max(2.0, chart_w * dur / window)
        y = row * row_h + 2
        color = _PALETTE[row % len(_PALETTE)]
        parts.append(
            f"<text x=\"2\" y=\"{y + 11}\">{_esc(label)}</text>"
            f"<rect x=\"{x:.2f}\" y=\"{y}\" width=\"{w:.2f}\" "
            f"height=\"{row_h - 5}\" fill=\"{color}\"/>"
        )
        if dur > 0.0:
            parts.append(
                f"<text x=\"{x + w + 4:.2f}\" y=\"{y + 11}\">"
                f"{_esc(_fmt_ns(dur))}</text>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _waterfall_section(events: List[dict]) -> List[str]:
    traces = _group_traces(events)
    if not traces:
        return [
            "<p class=\"note\">no span events retained "
            "(run with --trace-sample to record causal traces)</p>"
        ]
    out = ["<h3>sampled packet waterfalls</h3>"]
    for trace_id, spans in traces[:MAX_WATERFALLS]:
        index = spans[0].get("index", "?")
        out.append(f"<h4>packet index {_esc(index)} "
                   f"<code>trace {trace_id:016x}</code></h4>")
        out.append(_waterfall_svg(spans))
    if len(traces) > MAX_WATERFALLS:
        out.append(
            f"<p class=\"note\">showing first {MAX_WATERFALLS} of "
            f"{len(traces)} traces</p>"
        )
    return out


def _artifact_section(directory: Path) -> List[str]:
    artifact = RunArtifact.load(directory)
    out = [f"<h2>run artifact: <code>{_esc(directory.name)}</code></h2>"]
    out.append("<table>")
    out.append(f"<tr><th>command</th><td>{_esc(artifact.command)}</td></tr>")
    out.append(f"<tr><th>git sha</th><td>{_esc(artifact.git_sha)}</td></tr>")
    if artifact.created_utc:
        out.append(
            f"<tr><th>created</th><td>{_esc(artifact.created_utc)}</td></tr>"
        )
    if artifact.config:
        cfg = ", ".join(f"{k}={v}"
                        for k, v in sorted(artifact.config.items()))
        out.append(f"<tr><th>config</th><td>{_esc(cfg)}</td></tr>")
    out.append(
        f"<tr><th>events</th><td>{artifact.events_emitted} emitted, "
        f"{artifact.events_retained} retained</td></tr>"
    )
    out.append("</table>")
    out.extend(_pareto_section(artifact))
    out.extend(_slo_section(artifact))
    out.extend(_waterfall_section(_read_events(directory, artifact)))
    return out


# -- bench-artifact sections --------------------------------------------------


def _line_chart(points: List[Tuple[float, float]], unit: str,
                color: str) -> str:
    width, height, pad = 560, 220, 36
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    def sx(x: float) -> float:
        return pad + (width - 2 * pad) * (x - x_lo) / x_span

    def sy(y: float) -> float:
        return height - pad - (height - 2 * pad) * (y - y_lo) / y_span

    path = " ".join(f"{sx(x):.2f},{sy(y):.2f}" for x, y in points)
    parts = [
        f"<svg width=\"{width}\" height=\"{height}\" role=\"img\">",
        f"<line x1=\"{pad}\" y1=\"{height - pad}\" x2=\"{width - pad}\" "
        f"y2=\"{height - pad}\" stroke=\"#9ca3af\"/>",
        f"<line x1=\"{pad}\" y1=\"{pad}\" x2=\"{pad}\" "
        f"y2=\"{height - pad}\" stroke=\"#9ca3af\"/>",
        f"<polyline points=\"{path}\" fill=\"none\" stroke=\"{color}\" "
        "stroke-width=\"2\"/>",
    ]
    for x, y in points:
        parts.append(f"<circle cx=\"{sx(x):.2f}\" cy=\"{sy(y):.2f}\" "
                     f"r=\"3\" fill=\"{color}\"/>")
    parts.append(f"<text x=\"{pad}\" y=\"{height - pad + 14}\">"
                 f"{_fmt(x_lo)}</text>")
    parts.append(f"<text x=\"{width - pad}\" y=\"{height - pad + 14}\" "
                 f"text-anchor=\"end\">{_fmt(x_hi)}</text>")
    parts.append(f"<text x=\"{pad - 4}\" y=\"{pad}\" text-anchor=\"end\">"
                 f"{_fmt(y_hi)}</text>")
    parts.append(f"<text x=\"{pad - 4}\" y=\"{height - pad}\" "
                 f"text-anchor=\"end\">{_fmt(y_lo)}</text>")
    parts.append(f"<text x=\"{width - pad}\" y=\"{pad}\" "
                 f"text-anchor=\"end\">{_esc(unit)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def _as_number(x: object) -> Optional[float]:
    """Chartable x coordinate, if any (BENCH x values may be stringly)."""
    if isinstance(x, bool):
        return None
    if isinstance(x, (int, float)):
        return float(x)
    if isinstance(x, str):
        try:
            return float(x)
        except ValueError:
            return None
    return None


def _series_block(name: str, series: dict, color: str) -> List[str]:
    unit = str(series.get("unit", ""))
    points = series.get("points", [])
    out = [f"<h3><code>{_esc(name)}</code> "
           f"<span class=\"note\">({_esc(unit) or 'unitless'}, "
           f"{_esc(series.get('direction', '?'))})</span></h3>"]
    numeric = [
        (x, float(p["median"]))
        for p in points
        for x in [_as_number(p.get("x"))]
        if x is not None
    ]
    if len(numeric) >= 2 and len(numeric) == len(points):
        out.append(_line_chart(sorted(numeric), unit, color))
    out.append("<table><tr><th>x</th><th>median</th><th>mad</th></tr>")
    for p in points:
        out.append(
            f"<tr><td>{_esc(p.get('x'))}</td>"
            f"<td class=\"num\">{_fmt(float(p.get('median', 0.0)))}</td>"
            f"<td class=\"num\">{_fmt(float(p.get('mad', 0.0)))}</td></tr>"
        )
    out.append("</table>")
    return out


def _bench_section(path: Path) -> List[str]:
    with path.open() as fh:
        data = json.load(fh)
    name = str(data.get("name", path.name))
    out = [f"<h2>bench artifact: <code>{_esc(path.name)}</code> "
           f"({_esc(name)})</h2>"]
    if data.get("git_sha") and data["git_sha"] != "unknown":
        out.append(f"<p>git sha: <code>{_esc(data['git_sha'])}</code></p>")
    series = data.get("series", {})
    if not series:
        out.append("<p class=\"note\">artifact has no series</p>")
    for i, sname in enumerate(sorted(series)):
        out.extend(_series_block(sname, series[sname],
                                 _PALETTE[i % len(_PALETTE)]))
    return out


# -- host-profile sections ----------------------------------------------------


def _phase_tree(
    phases: Mapping[str, Mapping[str, int]],
) -> Tuple[Dict[str, Dict[str, int]], List[str], Dict[str, List[str]]]:
    """(nodes, roots, children) for the phase forest.

    Worker-prefixed folds may lack explicit ancestor entries (the
    ``worker`` prefix root is synthetic); missing ancestors are created
    with cumulative time equal to the sum of their children so the
    icicle layout always has a complete tree.
    """
    nodes: Dict[str, Dict[str, int]] = {
        path: {k: int(v) for k, v in entry.items()}
        for path, entry in phases.items()
    }
    created: List[str] = []
    # Deepest first: a created parent may itself need a created parent.
    for path in sorted(nodes, key=lambda p: (-p.count(PATH_SEP), p)):
        if PATH_SEP not in path:
            continue
        parent = path.rsplit(PATH_SEP, 1)[0]
        if parent not in nodes:
            nodes[parent] = {"calls": 0, "total_ns": 0, "self_ns": 0}
            created.append(parent)
    for path in sorted(created, key=lambda p: (-p.count(PATH_SEP), p)):
        for child, entry in nodes.items():
            if child.rsplit(PATH_SEP, 1)[0] == path and child != path:
                nodes[path]["total_ns"] += entry["total_ns"]
    roots: List[str] = []
    children: Dict[str, List[str]] = {}
    for path in sorted(nodes):
        if PATH_SEP in path:
            children.setdefault(path.rsplit(PATH_SEP, 1)[0], []).append(path)
        else:
            roots.append(path)
    return nodes, roots, children


def _flamegraph_svg(phases: Mapping[str, Mapping[str, int]]) -> str:
    """Deterministic SVG icicle chart of the phase tree (roots on top).

    Rows are nesting depth; widths are proportional to cumulative wall
    ns; children sit inside their parent's extent in sorted-path order.
    Uncovered parent area is the phase's self time.  Hover titles carry
    the full path and timings (no scripts).
    """
    nodes, roots, children = _phase_tree(phases)
    if not roots:
        return "<p class=\"note\">no phases recorded</p>"
    width, row_h = 880.0, 18
    grand = float(sum(nodes[r]["total_ns"] for r in roots)) or 1.0
    rects: List[str] = []
    max_depth = 0

    def place(path: str, x: float, w: float, depth: int, sibling: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        entry = nodes[path]
        name = path.rsplit(PATH_SEP, 1)[-1]
        color = _PALETTE[sibling % len(_PALETTE)]
        y = depth * row_h
        title = (f"{path} — {_fmt_ns(float(entry['total_ns']))} total, "
                 f"{_fmt_ns(float(entry['self_ns']))} self, "
                 f"{entry['calls']} calls")
        rects.append(
            f"<g><title>{_esc(title)}</title>"
            f"<rect x=\"{x:.2f}\" y=\"{y}\" width=\"{max(w, 1.0):.2f}\" "
            f"height=\"{row_h - 2}\" fill=\"{color}\" fill-opacity=\"0.85\" "
            "stroke=\"#ffffff\"/>"
        )
        if w >= 58:
            label = name if len(name) * 6.5 <= w - 8 else (
                name[: max(int((w - 8) / 6.5) - 1, 1)] + "…"
            )
            rects.append(
                f"<text x=\"{x + 4:.2f}\" y=\"{y + 12}\">{_esc(label)}</text>"
            )
        rects.append("</g>")
        total = float(entry["total_ns"]) or 1.0
        cx = x
        for i, child in enumerate(children.get(path, [])):
            cw = w * float(nodes[child]["total_ns"]) / total
            place(child, cx, cw, depth + 1, i)
            cx += cw

    x = 0.0
    for i, root in enumerate(roots):
        w = width * float(nodes[root]["total_ns"]) / grand
        place(root, x, w, 0, i)
        x += w
    height = (max_depth + 1) * row_h
    return (
        f"<svg width=\"{width:.0f}\" height=\"{height}\" role=\"img\" "
        "class=\"flamegraph\">" + "".join(rects) + "</svg>"
    )


def _hostprof_pareto(profile: HostProfile) -> List[str]:
    rows = profile.pareto()[:12]
    if not rows:
        return ["<p class=\"note\">no phases recorded</p>"]
    peak = max(r["self_ns"] for r in rows) or 1
    out = ["<h3>host wall-clock Pareto (self time)</h3>", "<table>",
           "<tr><th>phase</th><th>calls</th><th>total</th><th>self</th>"
           "<th>self %</th><th></th></tr>"]
    for r in rows:
        bar = max(1, round(240 * r["self_ns"] / peak))
        out.append(
            "<tr>"
            f"<td><code>{_esc(r['path'])}</code></td>"
            f"<td class=\"num\">{r['calls']}</td>"
            f"<td class=\"num\">{_fmt_ns(float(r['total_ns']))}</td>"
            f"<td class=\"num\">{_fmt_ns(float(r['self_ns']))}</td>"
            f"<td class=\"num\">{100.0 * r['self_share']:.1f}%</td>"
            f"<td><svg width=\"240\" height=\"12\">"
            f"<rect class=\"bar\" width=\"{bar}\" height=\"12\"/></svg></td>"
            "</tr>"
        )
    out.append("</table>")
    return out


def _hostprof_deep(profile: HostProfile) -> List[str]:
    deep = profile.deep or {}
    out: List[str] = []
    functions = deep.get("functions") or []
    if functions:
        out.append("<h3>deep capture: hottest functions (cProfile)</h3>")
        out.append("<table><tr><th>function</th><th>calls</th>"
                   "<th>self</th><th>cumulative</th></tr>")
        for row in functions[:12]:
            out.append(
                f"<tr><td><code>{_esc(row.get('function', '?'))}</code></td>"
                f"<td class=\"num\">{int(row.get('ncalls', 0))}</td>"
                f"<td class=\"num\">"
                f"{_fmt_ns(float(row.get('tottime_ns', 0)))}</td>"
                f"<td class=\"num\">"
                f"{_fmt_ns(float(row.get('cumtime_ns', 0)))}</td></tr>"
            )
        out.append("</table>")
    peaks = deep.get("memory_peak_bytes") or {}
    if peaks:
        top = sorted(peaks.items(), key=lambda kv: (-int(kv[1]), kv[0]))[:8]
        out.append("<h3>deep capture: allocation peaks (tracemalloc)</h3>")
        out.append("<table><tr><th>phase</th><th>peak bytes</th></tr>")
        for path, peak in top:
            out.append(f"<tr><td><code>{_esc(path)}</code></td>"
                       f"<td class=\"num\">{int(peak)}</td></tr>")
        out.append("</table>")
    return out


def _hostprof_section(path: Path) -> List[str]:
    profile = HostProfile.load(path)
    out = [f"<h2>host profile: <code>{_esc(path.parent.name)}</code> "
           f"<span class=\"note\">({_esc(profile.command)})</span></h2>"]
    out.append("<table>")
    out.append(f"<tr><th>schema</th><td><code>{_esc(profile.schema)}</code>"
               "</td></tr>")
    out.append(f"<tr><th>git sha</th><td>{_esc(profile.git_sha)}</td></tr>")
    if profile.created_utc:
        out.append(
            f"<tr><th>created</th><td>{_esc(profile.created_utc)}</td></tr>"
        )
    if profile.python or profile.platform:
        out.append(f"<tr><th>host</th><td>python {_esc(profile.python)} · "
                   f"{_esc(profile.platform)}</td></tr>")
    if profile.config:
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(profile.config.items()))
        out.append(f"<tr><th>config</th><td>{_esc(cfg)}</td></tr>")
    out.append(
        "<tr><th>wall accounted</th>"
        f"<td>{_fmt_ns(float(profile.total_wall_ns()))} across "
        f"{len(profile.phases)} phases</td></tr>"
    )
    out.append("</table>")
    out.extend(_hostprof_pareto(profile))
    out.append("<h3>phase flamegraph (wall time, icicle)</h3>")
    out.append(_flamegraph_svg(profile.phases))
    out.extend(_hostprof_deep(profile))
    return out


# -- assembly -----------------------------------------------------------------


def render_report(inputs: Sequence[Union[str, Path]]) -> str:
    """The full dashboard HTML for ``inputs`` (dirs and/or BENCH files).

    Pure function of the input file bytes — no wall clock, no randomness,
    no environment reads — so identical inputs render identical bytes.
    """
    artifact_dirs, bench_files, hostprof_files = classify_inputs(inputs)
    body: List[str] = []
    for directory in artifact_dirs:
        body.extend(_artifact_section(directory))
    for path in bench_files:
        body.extend(_bench_section(path))
    for path in hostprof_files:
        body.extend(_hostprof_section(path))
    if not body:
        body.append("<p class=\"note\">no inputs</p>")
    sections = "\n".join(body)
    return (
        "<!DOCTYPE html>\n"
        "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        "<title>scr-repro report</title>\n"
        f"<style>\n{_CSS}</style>\n</head>\n<body>\n"
        "<h1>scr-repro report</h1>\n"
        f"{sections}\n"
        "</body>\n</html>\n"
    )


def write_report(
    inputs: Sequence[Union[str, Path]], out: Union[str, Path]
) -> Path:
    """Render and write the dashboard; returns the output path."""
    out_path = Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render_report(inputs), encoding="utf-8")
    return out_path
