"""Causal observability: span tracing, SLO analytics, and the report.

``repro.obs`` answers the questions the flat event ring cannot: *why was
this one packet slow* (parent-linked spans across NIC → ring → core →
recovery) and *how long did a replica stay degraded* (time-to-detect /
time-to-resync distributions over the fault events).  Three pieces:

* :mod:`repro.obs.sampling` — the deterministic splitmix64 sampling
  decision on ``(seed, packet index)``; probe-rate-, order-, and
  process-independent, exactly like the FaultPlan hash it mirrors;
* :mod:`repro.obs.spans` — :class:`SpanEmitter`, which turns sampled
  packets into parent-linked ``span.*`` events in the existing tracer;
* :mod:`repro.obs.slo` / :mod:`repro.obs.report` — pure reducers over
  the event log (imported lazily by artifact writing and the CLI; they
  pull in artifact machinery and must stay out of the hot-path import
  graph, which is why this package root does not import them).

Everything here is observational: emitting spans never changes a single
simulated timestamp, which ``BENCH_obs_overhead.json`` gates.  See
``docs/OBSERVABILITY.md``.
"""

from .sampling import SpanSampler, sample_unit, splitmix64
from .spans import NULL_SPANS, SPAN_PARENT, SPAN_STAGES, SpanEmitter, span_kind

__all__ = [
    "SpanSampler",
    "sample_unit",
    "splitmix64",
    "SpanEmitter",
    "NULL_SPANS",
    "SPAN_STAGES",
    "SPAN_PARENT",
    "span_kind",
]
