"""Deterministic span sampling: a pure function of (seed, packet index).

Whether a packet carries a trace context must not depend on the offered
rate, the MLFFR probe being run, arrival order, or which worker process
evaluates it — otherwise two runs of the same scenario disagree about
which packets were traced and the ``--jobs N`` parity guarantee dies.
The fix is the same one :mod:`repro.faults.plan` uses for fault
decisions: a splitmix64 hash of ``(seed, domain tag, index)`` mapped to
a unit float and compared against the sampling rate.  No state, no call
order, no RNG stream.

The domain tag keeps span sampling statistically independent from the
fault plan even when both run from the same seed: a faulted packet is
neither more nor less likely to be sampled than its clean twin.
"""

from __future__ import annotations

__all__ = ["splitmix64", "sample_unit", "SpanSampler"]

_MASK64 = (1 << 64) - 1

#: Domain-separation tag for span sampling (the fault plan uses 0x1D..0x6D).
_SPAN_TAG = 0xB5

_TAG_MIX = 0xA24BAED4963EE407


def splitmix64(x: int) -> int:
    """One splitmix64 step: a high-quality 64-bit mix (public for tests)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _mix(seed: int, index: int) -> int:
    h = splitmix64((seed & _MASK64) ^ (_SPAN_TAG * _TAG_MIX & _MASK64))
    return splitmix64(h ^ (index & _MASK64))


def sample_unit(seed: int, index: int) -> float:
    """Uniform [0, 1) draw for packet ``index`` under ``seed`` — stateless."""
    return (_mix(seed, index) >> 11) / float(1 << 53)


class SpanSampler:
    """The per-run sampling decision: ``rate`` of packets carry a trace.

    ``sampled(index)`` and ``trace_id(index)`` are pure per-index
    functions; two samplers with the same seed and rate agree everywhere,
    in any process, at any probe rate.  ``rate=0`` disables sampling
    (and :class:`~repro.obs.spans.SpanEmitter` short-circuits on it).
    """

    __slots__ = ("seed", "rate")

    def __init__(self, seed: int = 0, rate: float = 0.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be in [0, 1]")
        self.seed = seed
        self.rate = rate

    def sampled(self, index: int) -> bool:
        """Does packet ``index`` carry a trace context?"""
        return self.rate > 0.0 and sample_unit(self.seed, index) < self.rate

    def trace_id(self, index: int) -> int:
        """The packet's stable 64-bit trace id (nonzero, seed-dependent)."""
        return _mix(self.seed, index) | 1

    def sampled_indices(self, count: int) -> list:
        """All sampled indices in ``range(count)`` (test/report helper)."""
        return [i for i in range(count) if self.sampled(i)]
