"""SLO analytics: a pure reducer from fault/recovery events to distributions.

ROADMAP item 4's serve mode needs SLO-style measures before it can exist:
**time-to-detect** (injection → the replica notices the gap),
**time-to-resync** (injection → state restored, for resynced gaps),
**packets degraded** (replay/fast-forward work per recovery), and
**blast radius** (divergent replicas per divergence check).  This module
computes all four from the event log alone — the same ``events.jsonl``
rows PR 5's harness and the performance simulator already emit — so any
artifact, old or new, serial or ``--jobs N``, reduces identically.

The reducer is a fold over timestamp-ordered events:

* ``fault.drop`` / ``fault.pop_drop`` / ``fault.truncate`` /
  ``sim.injected_loss`` **open** a gap on their core (truncations carry
  no core and sit in a shared bucket closed by any detection);
* ``scr.fast_forward`` closes gaps as **covered** (TTR = TTD: the
  history window healed the hole in-line);
* ``recovery.quarantine`` marks gaps **detected**, deferring resolution
  to the core's next ``recovery.resync`` (**resynced**, finite TTR) or
  ``recovery.unrecoverable`` (TTR undefined, the replica is dead);
* ``recovery.gap_detected`` closes gaps as **forked** (detected, never
  repaired — the no-recovery baseline);
* gaps still open at the end are **undetected** when core-attributed (a
  real loss nobody noticed; on an unrecoverable core, folded into
  unrecoverable) and **benign** when coreless (a truncation whose zeroed
  rows no replica ever needed).

Timestamps are whatever the emitting layer used — simulated ns in the
performance path, virtual ticks in the functional harness — so the
distributions are always finite and comparable within one run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from ..telemetry.events import (
    EV_DIVERGENCE,
    EV_FAST_FORWARD,
    EV_FAULT_DROP,
    EV_FAULT_KILL,
    EV_FAULT_POP_DROP,
    EV_FAULT_TRUNCATE,
    EV_GAP_DETECTED,
    EV_INJECTED_LOSS,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_UNRECOVERABLE,
)

__all__ = ["SLO_SCHEMA", "GAP_OPENING_KINDS", "compute_slo"]

#: Bump on any incompatible change to the section shape.
SLO_SCHEMA = "scr-repro/slo/v1"

#: Event kinds that open a sequence gap on a replica.
GAP_OPENING_KINDS = frozenset({
    EV_FAULT_DROP,
    EV_FAULT_POP_DROP,
    EV_FAULT_TRUNCATE,
    EV_INJECTED_LOSS,
})

_RESOLUTION_KINDS = frozenset({
    EV_FAST_FORWARD,
    EV_GAP_DETECTED,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_UNRECOVERABLE,
    EV_DIVERGENCE,
})


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over a sorted list (exact for small n)."""
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _dist(values: List[float]) -> Dict[str, float]:
    """The distribution summary every SLO measure serializes as."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p99": _percentile(ordered, 0.99),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


def compute_slo(events: Iterable[Mapping[str, object]]) -> Optional[dict]:
    """Reduce event dicts (``Event.to_dict`` rows) to the ``slo`` section.

    Returns ``None`` when the run had no fault or recovery events at all,
    so fault-free artifacts stay byte-identical to their pre-SLO shape.
    """
    ordered = sorted(events, key=lambda e: float(e.get("ts_ns", 0.0)))  # type: ignore[arg-type]

    #: open injections per core (None = events with no core attribution).
    pending: Dict[Optional[int], List[float]] = {}
    #: quarantine-detected injections per core: (injection ts, ttd).
    quarantined: Dict[int, List[Tuple[float, float]]] = {}
    dead_unrecoverable: Set[int] = set()
    dead_killed: Set[int] = set()
    cores_affected: Set[int] = set()

    ttd: List[float] = []
    ttr: List[float] = []
    degraded: List[float] = []
    blast: List[float] = []
    counts = {
        "injected": 0, "detected": 0, "covered": 0, "resynced": 0,
        "unrecoverable": 0, "forked": 0, "undetected": 0, "unresolved": 0,
        "benign": 0,
    }
    saw_any = False

    def _core(ev: Mapping[str, object]) -> Optional[int]:
        core = ev.get("core")
        return int(core) if isinstance(core, (int, float)) else None

    def _take(core: Optional[int]) -> List[float]:
        """Open injections a detection on ``core`` accounts for (its own
        plus the unattributed bucket)."""
        taken = pending.pop(core, [])
        if core is not None:
            taken += pending.pop(None, [])
        return taken

    for ev in ordered:
        kind = ev.get("kind")
        if kind not in GAP_OPENING_KINDS and kind not in _RESOLUTION_KINDS \
                and kind != EV_FAULT_KILL:
            continue
        saw_any = True
        ts = float(ev.get("ts_ns", 0.0))  # type: ignore[arg-type]
        core = _core(ev)
        if core is not None:
            cores_affected.add(core)
        if kind in GAP_OPENING_KINDS:
            counts["injected"] += 1
            if core in dead_unrecoverable:
                # A gap on an already-dead replica: nothing will ever
                # detect it; the replica was reported unrecoverable.
                counts["unrecoverable"] += 1
            elif core in dead_killed:
                counts["undetected"] += 1
            else:
                pending.setdefault(core, []).append(ts)
        elif kind == EV_FAULT_KILL:
            if core is not None:
                dead_killed.add(core)
        elif kind == EV_FAST_FORWARD:
            for inj in _take(core):
                delta = ts - inj
                counts["detected"] += 1
                counts["covered"] += 1
                ttd.append(delta)
                ttr.append(delta)
            length = ev.get("length")
            if isinstance(length, (int, float)) and length > 0:
                degraded.append(float(length))
        elif kind == EV_QUARANTINE:
            if core is None:
                continue
            bucket = quarantined.setdefault(core, [])
            for inj in _take(core):
                delta = ts - inj
                counts["detected"] += 1
                ttd.append(delta)
                bucket.append((inj, delta))
        elif kind == EV_GAP_DETECTED:
            for inj in _take(core):
                counts["detected"] += 1
                counts["forked"] += 1
                ttd.append(ts - inj)
        elif kind == EV_RESYNC:
            if core is None:
                continue
            for inj, _delta in quarantined.pop(core, []):
                counts["resynced"] += 1
                ttr.append(ts - inj)
            replayed = ev.get("replayed")
            if isinstance(replayed, (int, float)) and replayed > 0:
                degraded.append(float(replayed))
        elif kind == EV_UNRECOVERABLE:
            if core is None:
                continue
            dead_unrecoverable.add(core)
            counts["unrecoverable"] += len(quarantined.pop(core, []))
        elif kind == EV_DIVERGENCE:
            radius = ev.get("blast_radius")
            if isinstance(radius, (int, float)):
                blast.append(float(radius))

    if not saw_any:
        return None

    # Gaps still open at the end of the log.  A core-attributed injection
    # IS a sequence gap by construction, so an unclaimed one was missed
    # (undetected); a coreless injection (history truncation) only
    # *potentially* gaps a replica — unclaimed means the zeroed rows were
    # never needed, which is benign, not a detection failure.
    for core, injections in sorted(
        pending.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
    ):
        if core is None:
            counts["benign"] += len(injections)
        elif core in dead_unrecoverable:
            counts["unrecoverable"] += len(injections)
        else:
            counts["undetected"] += len(injections)
    counts["unresolved"] = sum(len(v) for v in quarantined.values())

    return {
        "schema": SLO_SCHEMA,
        "gaps": counts,
        "ttd_ns": _dist(ttd),
        "ttr_ns": _dist(ttr),
        "packets_degraded": _dist(degraded),
        "blast_radius": _dist(blast),
        "cores_affected": sorted(cores_affected),
        "unrecoverable_cores": sorted(dead_unrecoverable),
    }
