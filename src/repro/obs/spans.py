"""Parent-linked causal spans over the existing event tracer.

A sampled packet's journey becomes a small trace: every stage it passes
emits one ``span.<stage>`` event carrying a ``trace`` id (stable per
packet), a ``span`` id, and the ``parent`` span id — the classic
distributed-tracing triple, flattened into the PR-1 event ring so the
JSONL/Chrome exporters, the artifact manifest, and ``scr-repro report``
all see it without a second pipeline.

The stage graph is static (it *is* the datapath):

.. code-block:: text

    nic_arrival ─▶ ring_enqueue ─▶ core_pop ─▶ history_ff ─▶ transition
         │                            │
         └─▶ fault_drop               ├─▶ gap_detected        (no recovery)
                                      └─▶ quarantine ─▶ checkpoint_fetch
                                                         ─▶ replay ─▶ resync

Span and trace ids are splitmix64 hashes of ``(seed, index, stage)`` —
no counters, so emission order, probe rate, and process never change an
id.  Emitting is observational only: no simulated timestamp moves.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Optional, Tuple

from ..telemetry.events import NULL_TRACER, EventTracer
from .sampling import SpanSampler, splitmix64

__all__ = [
    "SPAN_PREFIX",
    "SPAN_STAGES",
    "SPAN_PARENT",
    "span_kind",
    "SpanEmitter",
    "NULL_SPANS",
]

#: Every span event kind starts with this (the exporters' category).
SPAN_PREFIX = "span."

#: The datapath stages, in causal order (index doubles as the id salt).
SPAN_STAGES: Tuple[str, ...] = (
    "nic_arrival",
    "ring_enqueue",
    "core_pop",
    "history_ff",
    "transition",
    "fault_drop",
    "gap_detected",
    "quarantine",
    "checkpoint_fetch",
    "replay",
    "resync",
)

#: stage -> parent stage (None = trace root).  Immutable: the graph is
#: part of the trace format, not runtime state.
SPAN_PARENT: Mapping[str, Optional[str]] = MappingProxyType({
    "nic_arrival": None,
    "ring_enqueue": "nic_arrival",
    "core_pop": "ring_enqueue",
    "history_ff": "core_pop",
    "transition": "history_ff",
    "fault_drop": "nic_arrival",
    "gap_detected": "core_pop",
    "quarantine": "core_pop",
    "checkpoint_fetch": "quarantine",
    "replay": "checkpoint_fetch",
    "resync": "replay",
})

_STAGE_INDEX: Mapping[str, int] = MappingProxyType(
    {stage: i for i, stage in enumerate(SPAN_STAGES)}
)

_STAGE_MIX = 0xD1B54A32D192ED03


def span_kind(stage: str) -> str:
    """The event kind a stage emits under (``span.core_pop`` etc.)."""
    return SPAN_PREFIX + stage


def span_id(trace_id: int, stage: str) -> int:
    """Deterministic per-(trace, stage) span id."""
    return splitmix64(trace_id ^ ((_STAGE_INDEX[stage] + 1) * _STAGE_MIX))


class SpanEmitter:
    """Emits ``span.*`` events for sampled packets into a tracer.

    Hot paths hoist ``enabled`` (tracer on *and* a nonzero sampling rate)
    and guard per packet with :meth:`sampled` — the disabled singleton
    :data:`NULL_SPANS` costs one attribute read, like ``NULL_TRACER``.
    """

    __slots__ = ("tracer", "sampler", "enabled")

    def __init__(self, tracer: EventTracer, sampler: SpanSampler) -> None:
        self.tracer = tracer
        self.sampler = sampler
        self.enabled = tracer.enabled and sampler.rate > 0.0

    def sampled(self, index: int) -> bool:
        """Per-packet guard: emit spans for this packet at all?"""
        return self.enabled and self.sampler.sampled(index)

    def emit(
        self,
        stage: str,
        index: int,
        ts_ns: Optional[float] = None,
        core: Optional[int] = None,
        dur_ns: Optional[float] = None,
        **fields: object,
    ) -> None:
        """Emit one span for packet ``index`` (caller checked :meth:`sampled`).

        The parent link comes from the static stage graph; callers never
        thread span ids through the datapath.
        """
        if stage not in _STAGE_INDEX:
            raise ValueError(f"unknown span stage {stage!r}")
        trace = self.sampler.trace_id(index)
        parent_stage = SPAN_PARENT[stage]
        self.tracer.emit(
            span_kind(stage),
            ts_ns=ts_ns,
            core=core,
            dur_ns=dur_ns,
            trace=trace,
            span=span_id(trace, stage),
            parent=None if parent_stage is None else span_id(trace, parent_stage),
            index=index,
            **fields,
        )


#: The shared disabled emitter every layer defaults to (cf. NULL_TRACER).
NULL_SPANS = SpanEmitter(NULL_TRACER, SpanSampler(0, 0.0))
