"""Unified telemetry: metrics registry, event tracing, run artifacts.

The observability layer the evaluation's attribution story rests on
(PCM/BPF profiling, Fig. 8): every subsystem emits named metrics and typed
events here, exporters turn a run into a JSONL event log + Chrome trace +
Prometheus text, and :class:`RunArtifact` ties them to the config and git
SHA that produced them.  Disabled (the default everywhere), all of it is a
no-op fast path.  See ``docs/TELEMETRY.md`` for the event catalog and the
artifact schema.
"""

from .artifact import (
    EVENTS_NAME,
    MANIFEST_NAME,
    NULL_TELEMETRY,
    PROM_NAME,
    TRACE_NAME,
    RunArtifact,
    Telemetry,
    current_git_sha,
)
from .events import (
    EV_FAST_FORWARD,
    EV_HISTORY_DEPTH,
    EV_INJECTED_LOSS,
    EV_LOCK_WAIT,
    EV_MLFFR_PROBE,
    EV_PCIE_DROP,
    EV_RECOVERY_BLOCKED,
    EV_RECOVERY_FINISH,
    EV_RECOVERY_START,
    EV_RING_DROP,
    EV_RUN_SUMMARY,
    EV_SERVICE,
    EV_SPRAY,
    EV_WIRE_DROP,
    NULL_TRACER,
    Event,
    EventTracer,
)
from .exporters import (
    chrome_trace_dict,
    events_to_chrome_trace,
    events_to_jsonl,
    read_jsonl,
)
from .inspect import summarize_artifact
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "RunArtifact",
    "current_git_sha",
    "MANIFEST_NAME",
    "EVENTS_NAME",
    "TRACE_NAME",
    "PROM_NAME",
    "Event",
    "EventTracer",
    "NULL_TRACER",
    "EV_WIRE_DROP",
    "EV_RING_DROP",
    "EV_PCIE_DROP",
    "EV_INJECTED_LOSS",
    "EV_SERVICE",
    "EV_SPRAY",
    "EV_HISTORY_DEPTH",
    "EV_FAST_FORWARD",
    "EV_RECOVERY_START",
    "EV_RECOVERY_FINISH",
    "EV_RECOVERY_BLOCKED",
    "EV_LOCK_WAIT",
    "EV_MLFFR_PROBE",
    "EV_RUN_SUMMARY",
    "events_to_jsonl",
    "read_jsonl",
    "events_to_chrome_trace",
    "chrome_trace_dict",
    "summarize_artifact",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
