"""Artifact inspection: the ``scr-repro inspect`` summary renderer.

Reads a run-artifact directory (manifest + event log) and answers the three
questions a wrong MLFFR point or a recovery stall raises first:

1. **where did packets go** — drop/loss event counts by cause;
2. **what faults fired** — injected-fault counts by kind, the first
   divergence the monitor flagged, and quarantine/resync outcomes
   (instrumented ``repro.faults`` runs only; older artifacts simply
   have no such events and skip the section), plus the recovery SLO
   distributions (time-to-detect, time-to-resync, packets degraded,
   blast radius) when the manifest carries an ``slo`` section;
3. **how long did packets take** — latency percentiles from the histogram
   metrics snapshot;
4. **where did core time go** — per-core dispatch/compute/wait/transfer
   attribution (the Fig. 8 split) from the counters snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .artifact import EVENTS_NAME, RunArtifact
from .events import (
    EV_DIVERGENCE,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_UNRECOVERABLE,
)

__all__ = ["summarize_artifact"]

#: Event kinds that represent a lost packet, in "top causes" order.
_DROP_KINDS = {
    "nic.wire_drop": "wire saturated (MAC FIFO overflow)",
    "nic.ring_drop": "RX ring full (core lagged)",
    "nic.pcie_drop": "host interconnect saturated (PCIe)",
    "sim.injected_loss": "injected loss (sequencer->core)",
}

#: Injected-fault and recovery event kinds (repro.faults), display order.
_FAULT_KINDS = {
    "fault.drop": "injected wire→ring drop",
    "fault.pop_drop": "injected ring-pop drop",
    "fault.duplicate": "injected duplicate delivery",
    "fault.reorder": "injected in-ring reorder",
    "fault.truncate": "injected history truncation",
    "fault.stall": "injected core stall",
    "fault.kill": "injected core kill",
    EV_DIVERGENCE: "replica divergence flagged",
    EV_QUARANTINE: "replica quarantined (history gap)",
    EV_RESYNC: "replica resynchronized from checkpoint",
    EV_UNRECOVERABLE: "resync impossible (log gap)",
}


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    head = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines = [head, "-" * len(head)]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.0f} ns"


def _fault_event_details(path: Path) -> List[str]:
    """Divergence/recovery detail mined from the retained event log.

    Best-effort: a missing, truncated, or malformed log (older artifacts,
    interrupted runs) yields no lines rather than an error.
    """
    first_divergence: Optional[dict] = None
    resyncs_by_core: Dict[int, int] = {}
    replayed_by_core: Dict[int, int] = {}
    unrecoverable: List[int] = []
    try:
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = event.get("kind")
                if kind == EV_DIVERGENCE and first_divergence is None:
                    first_divergence = event
                elif kind == EV_RESYNC:
                    core = int(event.get("core", -1))
                    resyncs_by_core[core] = resyncs_by_core.get(core, 0) + 1
                    replayed_by_core[core] = (
                        replayed_by_core.get(core, 0)
                        + int(event.get("replayed", 0))
                    )
                elif kind == EV_UNRECOVERABLE:
                    unrecoverable.append(int(event.get("core", -1)))
    except OSError:
        return []
    lines: List[str] = []
    if first_divergence is not None:
        cores = first_divergence.get("cores", [])
        lines.append(
            f"first divergence: packet index "
            f"{first_divergence.get('index', '?')}, "
            f"core(s) {', '.join(str(c) for c in cores) or '?'} "
            f"(blast radius {first_divergence.get('blast_radius', len(cores))})"
        )
    if resyncs_by_core:
        per_core = ", ".join(
            f"core {core}: {rounds} round(s), "
            f"{replayed_by_core.get(core, 0)} pkts replayed"
            for core, rounds in sorted(resyncs_by_core.items())
        )
        lines.append(f"recovery rounds: {per_core}")
    if unrecoverable:
        lines.append(
            "unrecoverable cores: "
            + ", ".join(str(c) for c in sorted(set(unrecoverable)))
        )
    return lines


def _fault_section(artifact: RunArtifact, directory: Path) -> List[str]:
    """The fault/divergence/recovery summary; [] when the run had none."""
    counts = [
        (kind, artifact.event_type_counts.get(kind, 0), meaning)
        for kind, meaning in _FAULT_KINDS.items()
        if artifact.event_type_counts.get(kind, 0) > 0
    ]
    if not counts:
        return []
    lines = ["", "fault injection & recovery:"]
    lines.extend(_table(
        ["event", "count", "meaning"],
        [[k, c, meaning] for k, c, meaning in counts],
    ))
    events_file = artifact.files.get("events", EVENTS_NAME)
    lines.extend(_fault_event_details(directory / events_file))
    return lines


def _slo_section(artifact: RunArtifact) -> List[str]:
    """Recovery SLO distributions from the manifest's ``slo`` section.

    Artifacts written before the section existed get a one-line note (and
    a zero exit) instead of an error — inspect must stay usable on every
    artifact the repo has ever produced.
    """
    slo = artifact.slo
    if slo is None:
        if any(k.startswith(("fault.", "recovery."))
               for k in artifact.event_type_counts):
            return [
                "",
                "recovery SLOs: not recorded "
                "(artifact predates the slo section; re-run to compute)",
            ]
        return []
    lines = ["", f"recovery SLOs ({slo.get('schema', '?')}):"]
    gaps = slo.get("gaps", {})
    lines.append(
        "  gaps: "
        + ", ".join(f"{k}={gaps[k]}" for k in sorted(gaps) if gaps[k])
    )
    dists = [
        ("time to detect", slo.get("ttd_ns", {}), _fmt_ns),
        ("time to resync", slo.get("ttr_ns", {}), _fmt_ns),
        ("packets degraded", slo.get("packets_degraded", {}),
         lambda v: f"{v:g}"),
        ("blast radius", slo.get("blast_radius", {}), lambda v: f"{v:g}"),
    ]
    rows = []
    for label, dist, fmt in dists:
        if dist.get("count", 0):
            rows.append([
                label, dist["count"], fmt(dist["p50"]), fmt(dist["p99"]),
                fmt(dist["max"]), fmt(dist["mean"]),
            ])
        else:
            rows.append([label, 0, "-", "-", "-", "-"])
    lines.extend(_table(
        ["measure", "count", "p50", "p99", "max", "mean"], rows,
    ))
    if slo.get("unrecoverable_cores"):
        lines.append(
            "  unrecoverable cores: "
            + ", ".join(str(c) for c in slo["unrecoverable_cores"])
        )
    return lines


#: Placement/tenancy counters ``_record_point`` folds for hybrid runs
#: (metric base name -> meaning); instance names carry a ``{...}`` label
#: suffix identifying the scenario point.
_PLACEMENT_METRICS = {
    "placement_promotions": "flows promoted to the SCR path",
    "placement_demotions": "flows demoted back to RSS sharding",
    "placement_migrations": "migration handoffs (cost charged in-band)",
    "placement_tenant_quota_drops_total": "state entries refused by tenant quota",
    "placement_statemap_grow_events": "sharded state-map growth events",
}


def _placement_section(artifact: RunArtifact) -> List[str]:
    """Elephant/mice placement counters, for hybrid-technique runs.

    Purebred runs (and artifacts that predate ``repro.placement``) have
    no such counters and skip the section silently; a *hybrid* run whose
    artifact lacks them gets a one-line note (and a zero exit) instead
    of an error, like the slo and cache sections.
    """
    registry = artifact.metrics.get("registry", {})
    rows = []
    for name, inst in sorted(registry.items()):
        base = name.split("{", 1)[0]
        if base not in _PLACEMENT_METRICS:
            continue
        if not isinstance(inst, dict) or inst.get("type") != "counter":
            continue
        rows.append([name, f"{inst.get('value', 0):g}",
                     _PLACEMENT_METRICS[base]])
    if not rows:
        techniques = {
            str(artifact.config.get(key, ""))
            for key in ("technique", "techniques")
        }
        if any("hybrid" in t for t in techniques):
            return [
                "",
                "placement: counters not recorded (artifact predates "
                "placement telemetry; re-run to record)",
            ]
        return []
    lines = ["", "placement & tenancy (hybrid runs, at the reported rate):"]
    lines.extend(_table(["metric", "value", "meaning"], rows))
    return lines


def _cache_section(artifact: RunArtifact) -> List[str]:
    """TraceCache hit/miss/corrupt-evict counters, when recorded.

    Runs that predate the counters — or ran without ``--cache-dir`` —
    get a one-line note (and a zero exit), like the slo section.
    """
    registry = artifact.metrics.get("registry", {})
    names = ("trace_cache_hits", "trace_cache_misses",
             "trace_cache_corrupt_evictions")
    values = {}
    for name in names:
        inst = registry.get(name)
        if not isinstance(inst, dict) or inst.get("type") != "counter":
            return [
                "",
                "trace cache: counters not recorded (run without "
                "--cache-dir, or artifact predates them)",
            ]
        values[name] = int(inst.get("value", 0))
    hits = values["trace_cache_hits"]
    misses = values["trace_cache_misses"]
    evictions = values["trace_cache_corrupt_evictions"]
    total = hits + misses
    rate = f"{hits / total:.0%} hit rate" if total else "no lookups"
    return [
        "",
        f"trace cache: {hits} hits, {misses} misses ({rate}), "
        f"{evictions} corrupt evictions",
    ]


def summarize_artifact(directory: Union[str, Path]) -> str:
    """Render a human-readable summary of an artifact directory."""
    artifact = RunArtifact.load(directory)
    lines: List[str] = []
    lines.append(f"artifact: {Path(directory)}")
    lines.append(f"command:  {artifact.command}")
    lines.append(f"git sha:  {artifact.git_sha}")
    lines.append(f"created:  {artifact.created_utc}")
    if artifact.config:
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(artifact.config.items()))
        lines.append(f"config:   {cfg}")
    lines.append(
        f"events:   {artifact.events_emitted} emitted, "
        f"{artifact.events_retained} retained "
        f"({len(artifact.event_type_counts)} types)"
    )

    # 1. top drop causes ------------------------------------------------------
    drops = [
        (kind, count, _DROP_KINDS.get(kind, kind))
        for kind, count in sorted(
            artifact.event_type_counts.items(), key=lambda kv: -kv[1]
        )
        if kind in _DROP_KINDS and count > 0
    ]
    lines.append("")
    if drops:
        lines.append("top drop causes:")
        lines.extend(_table(
            ["event", "count", "meaning"],
            [[k, c, meaning] for k, c, meaning in drops],
        ))
    else:
        lines.append("top drop causes: none recorded (loss-free run)")

    # 2. fault injection & recovery ------------------------------------------
    lines.extend(_fault_section(artifact, Path(directory)))

    # 2b. recovery SLO distributions -----------------------------------------
    lines.extend(_slo_section(artifact))

    # 2c. trace-cache effectiveness ------------------------------------------
    lines.extend(_cache_section(artifact))

    # 2d. elephant/mice placement & tenancy ----------------------------------
    lines.extend(_placement_section(artifact))

    # 3. latency percentiles --------------------------------------------------
    latency = artifact.metrics.get("latency_ns")
    if latency is None:
        hist = artifact.metrics.get("registry", {}).get("latency_ns")
        if hist and hist.get("type") == "histogram":
            latency = hist.get("percentiles")
    if latency:
        lines.append("")
        lines.append("per-packet latency (arrival -> service completion):")
        lines.extend(_table(
            ["percentile", "latency"],
            [[key, _fmt_ns(value)] for key, value in sorted(latency.items())],
        ))

    # 4. per-core time attribution -------------------------------------------
    counters = artifact.metrics.get("counters")
    if counters and counters.get("cores"):
        lines.append("")
        lines.append("per-core time attribution (at the reported rate):")
        rows = []
        for c in counters["cores"]:
            busy = c.get("busy_ns", 0.0) or 1.0
            rows.append([
                c.get("core_id", "?"),
                c.get("packets", 0),
                f"{100 * c.get('dispatch_ns', 0) / busy:.1f}%",
                f"{100 * c.get('compute_ns', 0) / busy:.1f}%",
                f"{100 * c.get('wait_ns', 0) / busy:.1f}%",
                f"{100 * c.get('transfer_ns', 0) / busy:.1f}%",
                _fmt_ns(c.get("busy_ns", 0.0)),
                f"{c.get('ipc', 0.0):.2f}",
                f"{100 * c.get('l2_hit_ratio', 1.0):.1f}%",
            ])
        lines.extend(_table(
            ["core", "packets", "dispatch", "compute", "wait", "transfer",
             "busy", "IPC", "L2 hit"],
            rows,
        ))
        totals = counters.get("totals")
        if totals:
            lines.append(
                f"totals: {totals.get('packets', 0)} packets, "
                f"busy {_fmt_ns(totals.get('busy_ns', 0.0))}, "
                f"mean compute latency "
                f"{_fmt_ns(totals.get('mean_compute_latency_ns', 0.0))}"
            )

    # 5. the rest of the registry --------------------------------------------
    registry = artifact.metrics.get("registry", {})
    scalars = [
        (name, inst["value"])
        for name, inst in sorted(registry.items())
        if inst.get("type") in ("counter", "gauge")
    ]
    if scalars:
        lines.append("")
        lines.append("metrics:")
        lines.extend(_table(
            ["name", "value"],
            [[n, f"{v:g}"] for n, v in scalars],
        ))
    return "\n".join(lines)
