"""Artifact inspection: the ``scr-repro inspect`` summary renderer.

Reads a run-artifact directory (manifest + event log) and answers the three
questions a wrong MLFFR point or a recovery stall raises first:

1. **where did packets go** — drop/loss event counts by cause;
2. **how long did packets take** — latency percentiles from the histogram
   metrics snapshot;
3. **where did core time go** — per-core dispatch/compute/wait/transfer
   attribution (the Fig. 8 split) from the counters snapshot.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from .artifact import RunArtifact

__all__ = ["summarize_artifact"]

#: Event kinds that represent a lost packet, in "top causes" order.
_DROP_KINDS = {
    "nic.wire_drop": "wire saturated (MAC FIFO overflow)",
    "nic.ring_drop": "RX ring full (core lagged)",
    "nic.pcie_drop": "host interconnect saturated (PCIe)",
    "sim.injected_loss": "injected loss (sequencer->core)",
}


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    head = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines = [head, "-" * len(head)]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.0f} ns"


def summarize_artifact(directory: Union[str, Path]) -> str:
    """Render a human-readable summary of an artifact directory."""
    artifact = RunArtifact.load(directory)
    lines: List[str] = []
    lines.append(f"artifact: {Path(directory)}")
    lines.append(f"command:  {artifact.command}")
    lines.append(f"git sha:  {artifact.git_sha}")
    lines.append(f"created:  {artifact.created_utc}")
    if artifact.config:
        cfg = ", ".join(f"{k}={v}" for k, v in sorted(artifact.config.items()))
        lines.append(f"config:   {cfg}")
    lines.append(
        f"events:   {artifact.events_emitted} emitted, "
        f"{artifact.events_retained} retained "
        f"({len(artifact.event_type_counts)} types)"
    )

    # 1. top drop causes ------------------------------------------------------
    drops = [
        (kind, count, _DROP_KINDS.get(kind, kind))
        for kind, count in sorted(
            artifact.event_type_counts.items(), key=lambda kv: -kv[1]
        )
        if kind in _DROP_KINDS and count > 0
    ]
    lines.append("")
    if drops:
        lines.append("top drop causes:")
        lines.extend(_table(
            ["event", "count", "meaning"],
            [[k, c, meaning] for k, c, meaning in drops],
        ))
    else:
        lines.append("top drop causes: none recorded (loss-free run)")

    # 2. latency percentiles --------------------------------------------------
    latency = artifact.metrics.get("latency_ns")
    if latency is None:
        hist = artifact.metrics.get("registry", {}).get("latency_ns")
        if hist and hist.get("type") == "histogram":
            latency = hist.get("percentiles")
    if latency:
        lines.append("")
        lines.append("per-packet latency (arrival -> service completion):")
        lines.extend(_table(
            ["percentile", "latency"],
            [[key, _fmt_ns(value)] for key, value in sorted(latency.items())],
        ))

    # 3. per-core time attribution -------------------------------------------
    counters = artifact.metrics.get("counters")
    if counters and counters.get("cores"):
        lines.append("")
        lines.append("per-core time attribution (at the reported rate):")
        rows = []
        for c in counters["cores"]:
            busy = c.get("busy_ns", 0.0) or 1.0
            rows.append([
                c.get("core_id", "?"),
                c.get("packets", 0),
                f"{100 * c.get('dispatch_ns', 0) / busy:.1f}%",
                f"{100 * c.get('compute_ns', 0) / busy:.1f}%",
                f"{100 * c.get('wait_ns', 0) / busy:.1f}%",
                f"{100 * c.get('transfer_ns', 0) / busy:.1f}%",
                _fmt_ns(c.get("busy_ns", 0.0)),
                f"{c.get('ipc', 0.0):.2f}",
                f"{100 * c.get('l2_hit_ratio', 1.0):.1f}%",
            ])
        lines.extend(_table(
            ["core", "packets", "dispatch", "compute", "wait", "transfer",
             "busy", "IPC", "L2 hit"],
            rows,
        ))
        totals = counters.get("totals")
        if totals:
            lines.append(
                f"totals: {totals.get('packets', 0)} packets, "
                f"busy {_fmt_ns(totals.get('busy_ns', 0.0))}, "
                f"mean compute latency "
                f"{_fmt_ns(totals.get('mean_compute_latency_ns', 0.0))}"
            )

    # 4. the rest of the registry --------------------------------------------
    registry = artifact.metrics.get("registry", {})
    scalars = [
        (name, inst["value"])
        for name, inst in sorted(registry.items())
        if inst.get("type") in ("counter", "gauge")
    ]
    if scalars:
        lines.append("")
        lines.append("metrics:")
        lines.extend(_table(
            ["name", "value"],
            [[n, f"{v:g}"] for n, v in scalars],
        ))
    return "\n".join(lines)
