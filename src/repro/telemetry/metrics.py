"""Metrics registry: counters, gauges, and log-bucketed histograms.

The registry is the PCM/BPF-profiling stand-in's *aggregation* half: every
layer registers named instruments, and a run artifact snapshots them all at
once.  Design constraints, in order:

* **cheap when disabled** — a disabled registry hands out shared no-op
  instruments whose methods are empty; hot paths can call ``inc()`` /
  ``observe()`` unconditionally without a measurable cost;
* **bounded memory** — histograms are log-bucketed (geometric bucket
  growth), so a billion latency samples still occupy ~a hundred ints;
* **snapshottable** — every instrument renders to a plain dict (JSON-safe)
  and to the Prometheus text exposition format.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
]

#: Default geometric bucket growth: 2^(1/8) per bucket, ~9 % relative
#: error on any reported quantile — tighter than the paper's own error bars.
DEFAULT_BUCKET_GROWTH = 2.0 ** 0.125


class Counter:
    """A monotonically increasing count (packets, drops, events)."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, current rate)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Log-bucketed distribution, built for per-packet latency percentiles.

    Bucket ``i`` covers ``(growth^(i-1), growth^i]`` nanoseconds (bucket 0
    covers everything at or below 1.0).  Memory is proportional to the
    dynamic range, not the sample count.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "growth", "_log_growth", "buckets",
                 "count", "sum", "min", "max")

    def __init__(
        self, name: str, help: str = "", growth: float = DEFAULT_BUCKET_GROWTH
    ) -> None:
        if growth <= 1.0:
            raise ValueError("bucket growth factor must exceed 1")
        self.name = name
        self.help = help
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _index(self, value: float) -> int:
        if value <= 1.0:
            return 0
        return int(math.ceil(math.log(value) / self._log_growth))

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        i = self._index(value)
        self.buckets[i] = self.buckets.get(i, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def bucket_upper_bound(self, index: int) -> float:
        return self.growth ** index

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's buckets into this one (same growth)."""
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different growth")
        for i, n in other.buckets.items():
            self.buckets[i] = self.buckets.get(i, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def merge_snapshot(self, data: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker process).

        Bucket indices are recovered from the stored upper bounds, so a
        snapshot merged here is equivalent to merging the histogram that
        produced it (same growth required).
        """
        if data.get("growth") != self.growth:
            raise ValueError("cannot merge snapshots with different growth")
        for upper, n in data.get("buckets", []):
            i = 0 if upper <= 1.0 else round(math.log(upper) / self._log_growth)
            self.buckets[i] = self.buckets.get(i, 0) + int(n)
        count = int(data.get("count", 0))
        self.count += count
        self.sum += float(data.get("sum", 0.0))
        if count:
            self.min = min(self.min, float(data["min"]))
            self.max = max(self.max, float(data["max"]))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (0..1); exact endpoints, ~±(growth-1)/2 inside.

        Returns the geometric midpoint of the bucket holding the quantile,
        clamped to the observed min/max so p0/p100 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for i in sorted(self.buckets):
            seen += self.buckets[i]
            if seen > rank:
                lo = self.growth ** (i - 1) if i > 0 else 0.0
                hi = self.growth ** i
                mid = math.sqrt(lo * hi) if lo > 0 else hi
                return min(max(mid, self.min), self.max)
        return self.max

    def percentiles(self, qs: Iterable[float] = (0.5, 0.9, 0.99, 0.999)) -> dict:
        return {f"p{q * 100:g}".replace(".", "_"): self.percentile(q) for q in qs}

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "growth": self.growth,
            # [upper_bound, count] per occupied bucket, ascending.
            "buckets": [
                [self.bucket_upper_bound(i), self.buckets[i]]
                for i in sorted(self.buckets)
            ],
            "percentiles": self.percentiles(),
        }


class _NoopInstrument:
    """Shared sink for disabled registries: every method is a no-op."""

    __slots__ = ()
    name = ""
    help = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def percentiles(self, qs=(0.5, 0.9, 0.99, 0.999)) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"type": "noop"}


NOOP_COUNTER = _NoopInstrument()
NOOP_GAUGE = _NoopInstrument()
NOOP_HISTOGRAM = _NoopInstrument()

Instrument = Union[Counter, Gauge, Histogram, _NoopInstrument]


class MetricsRegistry:
    """Named instruments with one-shot snapshot/Prometheus export.

    Instrument names may carry Prometheus-style labels inline:
    ``mlffr_mpps{technique="scr",cores="4"}`` — the registry treats the
    whole string as the key and the text exporter passes it through.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, factory, noop: _NoopInstrument, **kwargs):
        if not self.enabled:
            return noop
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory(name, **kwargs)
            self._instruments[name] = inst
        elif not isinstance(inst, factory):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, NOOP_COUNTER, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, NOOP_GAUGE, help=help)

    def histogram(
        self, name: str, help: str = "", growth: float = DEFAULT_BUCKET_GROWTH
    ) -> Histogram:
        return self._get(name, Histogram, NOOP_HISTOGRAM, help=help, growth=growth)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, dict]:
        """All instruments as a plain JSON-safe dict, sorted by name."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters accumulate, gauges take the snapshot's value, histograms
        bucket-merge.  The scenario executor uses this to aggregate
        per-worker telemetry deterministically (snapshots are applied in
        submission order, and within one snapshot by sorted name).
        """
        if not self.enabled:
            return
        for name in sorted(snapshot):
            data = snapshot[name]
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(float(data.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(data.get("value", 0.0)))
            elif kind == "histogram":
                self.histogram(
                    name, growth=data.get("growth", DEFAULT_BUCKET_GROWTH)
                ).merge_snapshot(data)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format.

        Per the exposition spec: ``# HELP`` and ``# TYPE`` appear exactly
        once per base metric name, immediately before that metric's first
        sample (not once per labelled child), and label values escape
        backslash, double-quote, and newline.  HELP text escapes backslash
        and newline.
        """
        groups: Dict[str, List[Tuple[str, Instrument]]] = {}
        for name in sorted(self._instruments):
            base, labels = _split_labels(name)
            groups.setdefault(base, []).append((labels, self._instruments[name]))
        lines: List[str] = []
        for base in sorted(groups):
            members = groups[base]
            help_text = next((m.help for _, m in members if m.help), "")
            if help_text:
                lines.append(f"# HELP {base} {_escape_help(help_text)}")
            lines.append(f"# TYPE {base} {members[0][1].kind}")
            for raw_labels, inst in members:
                pairs = _parse_labels(raw_labels)
                labels = _render_labels(pairs)
                if isinstance(inst, Histogram):
                    cumulative = 0
                    for i in sorted(inst.buckets):
                        cumulative += inst.buckets[i]
                        le = _render_labels(
                            pairs + [("le", f"{inst.bucket_upper_bound(i):g}")]
                        )
                        lines.append(f"{base}_bucket{le} {cumulative}")
                    inf = _render_labels(pairs + [("le", "+Inf")])
                    lines.append(f"{base}_bucket{inf} {inst.count}")
                    lines.append(f"{base}_sum{labels} {_fmt(inst.sum)}")
                    lines.append(f"{base}_count{labels} {inst.count}")
                else:
                    lines.append(f"{base}{labels} {_fmt(inst.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _split_labels(name: str) -> Tuple[str, str]:
    if "{" in name and name.endswith("}"):
        base, _, rest = name.partition("{")
        return base, "{" + rest
    return name, ""


_VALUE_UNESCAPES = {"n": "\n", "\\": "\\", '"': '"'}


def _parse_labels(labels: str) -> List[Tuple[str, str]]:
    """Parse an inline ``{k="v",...}`` string into raw (key, value) pairs.

    Values may be quoted (commas and ``=`` allowed inside; a backslash
    escapes the next character) or bare.  Raw values come back unescaped;
    :func:`_render_labels` re-escapes them for the wire.
    """
    if not labels:
        return []
    body = labels[1:-1]
    pairs: List[Tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            break
        key = body[i:eq].strip()
        i = eq + 1
        if i < n and body[i] == '"':
            i += 1
            buf: List[str] = []
            while i < n:
                ch = body[i]
                if ch == "\\" and i + 1 < n:
                    buf.append(_VALUE_UNESCAPES.get(body[i + 1], body[i + 1]))
                    i += 2
                    continue
                if ch == '"':
                    i += 1
                    break
                buf.append(ch)
                i += 1
            value = "".join(buf)
        else:
            end = body.find(",", i)
            if end < 0:
                end = n
            value = body[i:end].strip()
            i = end
        pairs.append((key, value))
        if i < n and body[i] == ",":
            i += 1
    return pairs


_VALUE_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_VALUE_ESCAPES.get(ch, ch) for ch in value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
