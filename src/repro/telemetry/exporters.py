"""Event-log exporters: JSONL and the Chrome ``trace_event`` format.

* **JSONL** — one JSON object per line, sorted by ``ts_ns``; greppable and
  trivially loadable (`pandas.read_json(lines=True)`).
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON format with
  one track (thread) per simulated core, so a Figure 6 run opens as a
  per-core timeline: service spans as complete ("X") events, drops and
  decisions as instants ("i").  Events not tied to a core (MLFFR probes,
  run summaries) land on a dedicated "system" track.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from .events import Event

__all__ = [
    "events_to_jsonl",
    "read_jsonl",
    "events_to_chrome_trace",
    "chrome_trace_dict",
]

#: tid used for events with no core attribution.
SYSTEM_TRACK = "system"


def events_to_jsonl(events: Iterable[Event], path: Union[str, Path]) -> Path:
    """Write events to ``path`` as JSON Lines, sorted by timestamp."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(events, key=lambda e: e.ts_ns)
    with path.open("w") as fh:
        for e in ordered:
            fh.write(json.dumps(e.to_dict(), sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the event dicts back out of a JSONL file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def chrome_trace_dict(
    events: Iterable[Event], num_cores: Optional[int] = None
) -> dict:
    """Build the Chrome ``trace_event`` JSON object for ``events``.

    ``num_cores`` forces one named track per simulated core 0..n-1 even if
    a core emitted nothing (an idle core is itself a finding).  Timestamps
    convert to the format's microseconds; durations below 1 ns are floored
    to keep spans visible.
    """
    trace_events: List[dict] = []
    tids = set(range(num_cores)) if num_cores else set()
    body: List[dict] = []
    for e in sorted(events, key=lambda ev: ev.ts_ns):
        tid = e.core if e.core is not None else SYSTEM_TRACK
        if isinstance(tid, int):
            tids.add(tid)
        record = {
            "name": e.kind,
            "cat": e.kind.split(".", 1)[0],
            "ts": e.ts_ns / 1e3,
            "pid": 0,
            "tid": tid,
        }
        if e.fields:
            record["args"] = e.fields
        if e.dur_ns is not None:
            record["ph"] = "X"
            record["dur"] = max(e.dur_ns, 1.0) / 1e3
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        body.append(record)
    trace_events.append(_thread_name(SYSTEM_TRACK, SYSTEM_TRACK))
    for tid in sorted(tids):
        trace_events.append(_thread_name(tid, f"core {tid}"))
    trace_events.extend(body)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.telemetry"},
    }


def events_to_chrome_trace(
    events: Iterable[Event],
    path: Union[str, Path],
    num_cores: Optional[int] = None,
) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(chrome_trace_dict(events, num_cores=num_cores), fh)
    return path


def _thread_name(tid, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }
