"""Event-log exporters: JSONL and the Chrome ``trace_event`` format.

* **JSONL** — one JSON object per line, sorted by ``ts_ns``; greppable and
  trivially loadable (`pandas.read_json(lines=True)`).
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON format with
  one track (thread) per simulated core, so a Figure 6 run opens as a
  per-core timeline: service spans as complete ("X") events, drops and
  decisions as instants ("i").  Events not tied to a core (MLFFR probes,
  run summaries) land on a dedicated "system" track.  When the run has
  SCR spray decisions, those move to their own "sequencer" track and
  each dispatched packet gets a flow arrow (``ph: "s"``/``"f"``) from
  the spray to the receiving core's service — cross-core causality
  renders in Perfetto instead of being two unrelated slices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from .events import Event

__all__ = [
    "events_to_jsonl",
    "read_jsonl",
    "events_to_chrome_trace",
    "chrome_trace_dict",
]

#: tid used for events with no core attribution.
SYSTEM_TRACK = "system"

#: tid used for SCR spray decisions (only present when sprays exist).
SEQUENCER_TRACK = "sequencer"

#: kinds linked by dispatch flow arrows: spray (source) -> service (sink).
_FLOW_SOURCE_KIND = "scr.spray"
_FLOW_SINK_KIND = "core.service"


def events_to_jsonl(events: Iterable[Event], path: Union[str, Path]) -> Path:
    """Write events to ``path`` as JSON Lines, sorted by timestamp."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ordered = sorted(events, key=lambda e: e.ts_ns)
    with path.open("w") as fh:
        for e in ordered:
            fh.write(json.dumps(e.to_dict(), sort_keys=True))
            fh.write("\n")
    return path


def read_jsonl(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the event dicts back out of a JSONL file."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def chrome_trace_dict(
    events: Iterable[Event], num_cores: Optional[int] = None
) -> dict:
    """Build the Chrome ``trace_event`` JSON object for ``events``.

    ``num_cores`` forces one named track per simulated core 0..n-1 even if
    a core emitted nothing (an idle core is itself a finding).  Timestamps
    convert to the format's microseconds; durations below 1 ns are floored
    to keep spans visible.
    """
    trace_events: List[dict] = []
    tids = set(range(num_cores)) if num_cores else set()
    body: List[dict] = []
    #: packet index -> spray (ts, record) / first service (ts, tid).
    sprays: dict = {}
    sinks: dict = {}
    has_sequencer = False
    for e in sorted(events, key=lambda ev: ev.ts_ns):
        tid = e.core if e.core is not None else SYSTEM_TRACK
        if isinstance(tid, int):
            tids.add(tid)
        if e.kind == _FLOW_SOURCE_KIND:
            # Spray decisions happen at the sequencer, not on the core
            # they target; give them their own track so the flow arrow
            # visibly crosses tracks.
            tid = SEQUENCER_TRACK
            has_sequencer = True
        record = {
            "name": e.kind,
            "cat": e.kind.split(".", 1)[0],
            "ts": e.ts_ns / 1e3,
            "pid": 0,
            "tid": tid,
        }
        if e.fields:
            record["args"] = e.fields
        if e.dur_ns is not None:
            record["ph"] = "X"
            record["dur"] = max(e.dur_ns, 1.0) / 1e3
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        body.append(record)
        index = e.fields.get("index")
        if index is not None:
            if e.kind == _FLOW_SOURCE_KIND and index not in sprays:
                sprays[index] = e.ts_ns / 1e3
            elif e.kind == _FLOW_SINK_KIND and index not in sinks:
                sinks[index] = (e.ts_ns / 1e3, tid)
    trace_events.append(_thread_name(SYSTEM_TRACK, SYSTEM_TRACK))
    if has_sequencer:
        trace_events.append(_thread_name(SEQUENCER_TRACK, SEQUENCER_TRACK))
    for tid in sorted(tids):
        trace_events.append(_thread_name(tid, f"core {tid}"))
    trace_events.extend(body)
    trace_events.extend(_dispatch_flows(sprays, sinks))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.telemetry"},
    }


def events_to_chrome_trace(
    events: Iterable[Event],
    path: Union[str, Path],
    num_cores: Optional[int] = None,
) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(chrome_trace_dict(events, num_cores=num_cores), fh)
    return path


def _thread_name(tid, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }


def _dispatch_flows(sprays: dict, sinks: dict) -> List[dict]:
    """Flow start/finish pairs: sequencer spray -> receiving core's service.

    Perfetto draws these as arrows across tracks; the ``id`` is the packet
    index, shared by both halves.  Only packets with both halves retained
    in the ring produce an arrow.
    """
    flows: List[dict] = []
    for index in sorted(sprays.keys() & sinks.keys(), key=repr):
        spray_ts = sprays[index]
        sink_ts, sink_tid = sinks[index]
        common = {"name": "scr.dispatch", "cat": "flow", "pid": 0, "id": index}
        flows.append(dict(common, ph="s", ts=spray_ts, tid=SEQUENCER_TRACK))
        # bp="e": bind the arrowhead to the enclosing slice (the service).
        flows.append(dict(common, ph="f", bp="e", ts=sink_ts, tid=sink_tid))
    return flows
