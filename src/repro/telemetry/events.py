"""Structured event tracing: a bounded ring of typed, timestamped events.

This is the per-packet-record instrument the related reordering/contention
studies rely on: each layer emits small typed events (a NIC ring drop, an
SCR spray decision, a recovery round) into one ring buffer.  Memory is
bounded — the ring keeps the most recent ``capacity`` events — but the
per-type counts cover the *whole* run, so "top drop causes" summaries do
not depend on ring retention.

Timestamps are simulated nanoseconds where the emitting layer has them
(the performance simulator, the NIC model); layers with no clock of their
own (the functional engine walks packets, not time) omit them and the
tracer stamps a monotonically increasing virtual tick instead.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Event",
    "EventTracer",
    "NULL_TRACER",
    "EV_WIRE_DROP",
    "EV_RING_DROP",
    "EV_PCIE_DROP",
    "EV_INJECTED_LOSS",
    "EV_SERVICE",
    "EV_SPRAY",
    "EV_HISTORY_DEPTH",
    "EV_FAST_FORWARD",
    "EV_RECOVERY_START",
    "EV_RECOVERY_FINISH",
    "EV_RECOVERY_BLOCKED",
    "EV_LOCK_WAIT",
    "EV_MLFFR_PROBE",
    "EV_RUN_SUMMARY",
    "EV_FAULT_DROP",
    "EV_FAULT_POP_DROP",
    "EV_FAULT_DUPLICATE",
    "EV_FAULT_REORDER",
    "EV_FAULT_TRUNCATE",
    "EV_FAULT_STALL",
    "EV_FAULT_KILL",
    "EV_DIVERGENCE",
    "EV_GAP_DETECTED",
    "EV_QUARANTINE",
    "EV_RESYNC",
    "EV_UNRECOVERABLE",
]

# -- the event catalog (documented in docs/TELEMETRY.md) -----------------------

#: MAC FIFO overflow: offered rate exceeded the wire (Fig. 10a's regime).
EV_WIRE_DROP = "nic.wire_drop"
#: RX descriptor ring full: the core lagged the arrival rate.
EV_RING_DROP = "nic.ring_drop"
#: Host-interconnect saturation (PCIe DMA + descriptor bytes, §4.2).
EV_PCIE_DROP = "nic.pcie_drop"
#: Loss injected between sequencer and core (Fig. 10b methodology).
EV_INJECTED_LOSS = "sim.injected_loss"
#: One packet's service on a core (start + duration → a trace-viewer span).
EV_SERVICE = "core.service"
#: SCR sequencer spray decision: sequence → core.
EV_SPRAY = "scr.spray"
#: Piggybacked history items fast-forwarded before the current packet.
EV_HISTORY_DEPTH = "scr.history_depth"
#: Catch-up fast-forward across a loss gap (length = sequences recovered).
EV_FAST_FORWARD = "scr.fast_forward"
#: Algorithm 1 recovery walk started (a gap was detected).
EV_RECOVERY_START = "recovery.round_start"
#: Recovery walk finished; fields say how many were recovered vs skipped.
EV_RECOVERY_FINISH = "recovery.round_finish"
#: Recovery walk parked waiting on another core's NOT_INIT log slot.
EV_RECOVERY_BLOCKED = "recovery.blocked_wait"
#: Lock/atomic serialization stall on a shared-state engine.
EV_LOCK_WAIT = "lock.wait"
#: One MLFFR binary-search probe: offered rate and measured loss.
EV_MLFFR_PROBE = "mlffr.probe"
#: End-of-run summary from the event simulator (totals, drops, duration).
EV_RUN_SUMMARY = "sim.run"
#: Injected wire→ring loss: admitted by the MAC, never reached its ring.
EV_FAULT_DROP = "fault.drop"
#: Injected ring-pop loss: descriptor consumed, payload discarded.
EV_FAULT_POP_DROP = "fault.pop_drop"
#: Injected duplicate delivery of one frame.
EV_FAULT_DUPLICATE = "fault.duplicate"
#: Injected reordering: a frame displaced behind younger arrivals.
EV_FAULT_REORDER = "fault.reorder"
#: Injected history truncation: the sequencer emitted zeroed history rows.
EV_FAULT_TRUNCATE = "fault.truncate"
#: Injected core stall: a core paused before serving a packet.
EV_FAULT_STALL = "fault.stall"
#: Injected core kill: a core stopped draining its ring permanently.
EV_FAULT_KILL = "fault.kill"
#: The DivergenceMonitor observed replicas disagreeing with the majority.
EV_DIVERGENCE = "fault.divergence"
#: A replica detected a history gap it has no protocol to repair
#: (no-recovery mode): the fork is visible but uncorrected.
EV_GAP_DETECTED = "recovery.gap_detected"
#: A core detected an uncoverable history gap and quarantined its replica.
EV_QUARANTINE = "recovery.quarantine"
#: A quarantined replica resynchronized from an epoch checkpoint.
EV_RESYNC = "recovery.resync"
#: A gap exceeded the sequencer's bounded replay log; the replica is dead.
EV_UNRECOVERABLE = "recovery.unrecoverable"


class Event:
    """One trace record: (ts_ns, kind, core, dur_ns, fields)."""

    __slots__ = ("ts_ns", "kind", "core", "dur_ns", "fields")

    def __init__(
        self,
        ts_ns: float,
        kind: str,
        core: Optional[int] = None,
        dur_ns: Optional[float] = None,
        fields: Optional[dict] = None,
    ) -> None:
        self.ts_ns = ts_ns
        self.kind = kind
        self.core = core
        self.dur_ns = dur_ns
        self.fields = fields or {}

    def to_dict(self) -> dict:
        d = {"ts_ns": self.ts_ns, "kind": self.kind}
        if self.core is not None:
            d["core"] = self.core
        if self.dur_ns is not None:
            d["dur_ns"] = self.dur_ns
        if self.fields:
            d.update(self.fields)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging cosmetics
        return (f"Event({self.ts_ns:.0f}ns {self.kind}"
                f"{'' if self.core is None else f' core={self.core}'})")


class EventTracer:
    """Ring-buffered event sink; disabled instances retain nothing.

    ``emit`` is the only hot-path method: when ``enabled`` is False it
    returns immediately (hot loops may also hoist the flag check).  The
    ring is a ``deque(maxlen=capacity)`` — appends from the threaded
    engine's worker threads are safe under the GIL.
    """

    __slots__ = ("enabled", "capacity", "_ring", "type_counts", "emitted", "_tick")

    def __init__(self, capacity: int = 100_000, enabled: bool = True) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        #: per-kind counts over the whole run (not just the retained ring).
        self.type_counts: Dict[str, int] = {}
        self.emitted = 0
        self._tick = 0.0

    def emit(
        self,
        kind: str,
        ts_ns: Optional[float] = None,
        core: Optional[int] = None,
        dur_ns: Optional[float] = None,
        **fields,
    ) -> None:
        if not self.enabled:
            return
        if ts_ns is None:
            self._tick += 1.0
            ts_ns = self._tick
        elif ts_ns > self._tick:
            self._tick = ts_ns
        self._ring.append(Event(ts_ns, kind, core, dur_ns, fields))
        self.type_counts[kind] = self.type_counts.get(kind, 0) + 1
        self.emitted += 1

    # -- reading back -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(list(self._ring))

    def events(self) -> List[Event]:
        """Retained events, oldest first (at most ``capacity``)."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (emitted but no longer retained)."""
        return self.emitted - len(self._ring)

    def cores_seen(self) -> List[int]:
        return sorted({e.core for e in self._ring if e.core is not None})

    def clear(self) -> None:
        self._ring.clear()
        self.type_counts = {}
        self.emitted = 0
        self._tick = 0.0


#: The shared disabled tracer every layer defaults to.  Emitting to it is a
#: single attribute check — the "cheap when disabled" fast path.
NULL_TRACER = EventTracer(capacity=0, enabled=False)
