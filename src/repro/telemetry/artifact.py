"""Run artifacts: one directory per measured run, reloadable later.

An artifact directory holds everything needed to re-interpret a run
without re-running it:

* ``manifest.json`` — command, config, git SHA, creation time, metrics
  snapshot, per-event-type counts, and the names of the sibling files;
* ``events.jsonl``  — the retained event ring, sorted by timestamp;
* ``trace.json``    — the same events in Chrome ``trace_event`` format
  (one track per simulated core — open in chrome://tracing or Perfetto);
* ``metrics.prom``  — the registry in Prometheus text format.

:class:`Telemetry` bundles the registry + tracer that the layers write
into and knows how to produce the artifact.  The disabled singleton
:data:`NULL_TELEMETRY` makes "no telemetry" the zero-cost default.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .events import EventTracer
from .exporters import events_to_chrome_trace, events_to_jsonl
from .metrics import MetricsRegistry

__all__ = [
    "MANIFEST_NAME",
    "EVENTS_NAME",
    "TRACE_NAME",
    "PROM_NAME",
    "RunArtifact",
    "Telemetry",
    "NULL_TELEMETRY",
    "current_git_sha",
]

MANIFEST_NAME = "manifest.json"
EVENTS_NAME = "events.jsonl"
TRACE_NAME = "trace.json"
PROM_NAME = "metrics.prom"


def current_git_sha(cwd: Optional[Union[str, Path]] = None) -> str:
    """The repo HEAD SHA, or "unknown" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


@dataclass
class RunArtifact:
    """The manifest half of an artifact directory (JSON-safe throughout)."""

    command: str
    config: dict
    git_sha: str = "unknown"
    created_utc: str = ""
    metrics: dict = field(default_factory=dict)
    event_type_counts: dict = field(default_factory=dict)
    events_retained: int = 0
    events_emitted: int = 0
    num_cores: Optional[int] = None
    files: dict = field(default_factory=dict)
    #: SLO section (repro.obs.slo schema); None for fault-free runs and
    #: for artifacts written before the section existed.
    slo: Optional[dict] = None

    def to_dict(self) -> dict:
        d = {
            "schema": "scr-repro/run-artifact/v1",
            "command": self.command,
            "config": self.config,
            "git_sha": self.git_sha,
            "created_utc": self.created_utc,
            "metrics": self.metrics,
            "event_type_counts": self.event_type_counts,
            "events_retained": self.events_retained,
            "events_emitted": self.events_emitted,
            "num_cores": self.num_cores,
            "files": self.files,
        }
        if self.slo is not None:
            d["slo"] = self.slo
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        return cls(
            command=data.get("command", ""),
            config=data.get("config", {}),
            git_sha=data.get("git_sha", "unknown"),
            created_utc=data.get("created_utc", ""),
            metrics=data.get("metrics", {}),
            event_type_counts=data.get("event_type_counts", {}),
            events_retained=data.get("events_retained", 0),
            events_emitted=data.get("events_emitted", 0),
            num_cores=data.get("num_cores"),
            files=data.get("files", {}),
            slo=data.get("slo"),
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "RunArtifact":
        path = Path(directory)
        if path.is_dir():
            path = path / MANIFEST_NAME
        with path.open() as fh:
            return cls.from_dict(json.load(fh))


class Telemetry:
    """The per-run bundle: one metrics registry + one event tracer.

    Layers take a :class:`Telemetry` (or just its ``tracer``) and emit into
    it; at the end of the run :meth:`write_artifact` snapshots everything
    into a directory.  A disabled instance hands out no-op instruments and
    a disabled tracer, so threading it through costs nothing.
    """

    def __init__(self, enabled: bool = True, ring_capacity: int = 100_000) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = EventTracer(capacity=ring_capacity if enabled else 0,
                                  enabled=enabled)
        #: Optional :class:`repro.obs.spans.SpanEmitter` attached by the
        #: CLI's ``--trace-sample``; None keeps telemetry obs-free.
        self.spans = None

    def clear(self) -> None:
        self.registry = MetricsRegistry(enabled=self.enabled)
        self.tracer.clear()

    def write_artifact(
        self,
        directory: Union[str, Path],
        command: str,
        config: Optional[dict] = None,
        extra_metrics: Optional[dict] = None,
        num_cores: Optional[int] = None,
    ) -> RunArtifact:
        """Snapshot this run into ``directory`` and return the manifest.

        ``extra_metrics`` merges layer-provided snapshots (for example
        ``{"counters": system_counters.snapshot()}``) alongside the
        registry's own ``{"registry": ...}`` section.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        events = self.tracer.events()
        events_to_jsonl(events, directory / EVENTS_NAME)
        events_to_chrome_trace(events, directory / TRACE_NAME,
                               num_cores=num_cores)
        (directory / PROM_NAME).write_text(self.registry.to_prometheus())
        metrics = {"registry": self.registry.snapshot()}
        if extra_metrics:
            metrics.update(extra_metrics)
        slo = None
        if any(k.startswith(("fault.", "recovery.")) or k == "sim.injected_loss"
               for k in self.tracer.type_counts):
            # Lazy import: telemetry must not depend on repro.obs at module
            # load (obs.spans imports telemetry.events).
            from ..obs.slo import compute_slo
            slo = compute_slo(e.to_dict() for e in events)
        artifact = RunArtifact(
            command=command,
            config=config or {},
            git_sha=current_git_sha(),
            created_utc=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            metrics=metrics,
            event_type_counts=dict(self.tracer.type_counts),
            events_retained=len(self.tracer),
            events_emitted=self.tracer.emitted,
            num_cores=num_cores,
            files={
                "events": EVENTS_NAME,
                "trace": TRACE_NAME,
                "prometheus": PROM_NAME,
            },
            slo=slo,
        )
        with (directory / MANIFEST_NAME).open("w") as fh:
            json.dump(artifact.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return artifact


#: Shared disabled bundle — the default everywhere telemetry is optional.
NULL_TELEMETRY = Telemetry(enabled=False)
