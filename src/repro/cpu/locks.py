"""Serialization-point models: per-key spinlocks and hardware atomics.

Both model the same primitive — a point in time before which the next
update of a key cannot begin — differing only in hold time.  An atomic RMW
holds the line for one cross-core transfer; a spinlock holds it for the
lock operations plus the guarded update plus handoff traffic that grows
with the number of spinning contenders (``ContentionParams.lock_hold_ns``).

The evaluation's baselines map onto these directly: eBPF spinlocks [10] for
programs whose updates are too complex for atomics, ``__sync`` atomics [25]
for the counter programs (Table 1).
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = ["SerializationTable"]


class SerializationTable:
    """Per-key monotonic "next free time" table.

    ``acquire(key, start, hold)`` returns the wait endured by an update
    arriving at ``start`` that needs the key exclusively for ``hold`` ns,
    and advances the key's free time.  This captures the throughput ceiling
    of a serialization point (1/hold updates per second) and the spin time
    that inflates per-packet cost under contention.
    """

    def __init__(self) -> None:
        self._free_at: Dict[Hashable, float] = {}
        self.total_wait_ns = 0.0
        self.acquisitions = 0
        self.contended = 0

    def acquire(self, key: Hashable, start_ns: float, hold_ns: float) -> float:
        """Returns the wait (ns) before the update could begin."""
        if hold_ns < 0:
            raise ValueError("hold time must be non-negative")
        free_at = self._free_at.get(key, 0.0)
        wait = free_at - start_ns if free_at > start_ns else 0.0
        self._free_at[key] = start_ns + wait + hold_ns
        self.acquisitions += 1
        if wait > 0:
            self.contended += 1
        self.total_wait_ns += wait
        return wait

    @property
    def contention_ratio(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contended / self.acquisitions

    def reset(self) -> None:
        self._free_at.clear()
        self.total_wait_ns = 0.0
        self.acquisitions = 0
        self.contended = 0
