"""Discrete-event multicore packet-processing simulator.

This is the performance layer's engine: the device under test from §4.1,
reduced to the quantities that determine throughput.  Packets are offered at
a fixed rate (the replayer's TX rate), admitted through a serializing wire,
steered to bounded per-core RX rings, and drained by cores whose per-packet
service time comes from a :class:`PerfEngine` (one per scaling technique in
``repro.parallel``).  Loss — the MLFFR search signal — arises naturally when
rings overflow or the wire saturates.

For speed, traces are preprocessed once into :class:`PerfTrace` — a
struct-of-arrays container (interned key ids, the three Toeplitz hashes,
wire lengths, validity flags as numpy columns); each simulated rate then
only rescales timestamps.  Runs execute on the columnar hot path
(``repro.cpu.columnar``) when possible and on the scalar event loop below
otherwise — the scalar loop is the reference oracle the columnar path must
match bit-for-bit (``--hotpath scalar``; see docs/HOTPATH.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..nic.nic import ETHERNET_OVERHEAD_BYTES, MIN_FRAME_BYTES
from ..nic.queues import DEFAULT_DESCRIPTORS
from ..nic.rss import SYMMETRIC_RSS_KEY, hash_input_l4, toeplitz_hash, toeplitz_hash_batch
from ..programs.base import PacketProgram
from ..telemetry.events import (
    EV_FAULT_DROP,
    EV_FAULT_DUPLICATE,
    EV_FAULT_KILL,
    EV_FAULT_POP_DROP,
    EV_FAULT_REORDER,
    EV_FAULT_STALL,
    EV_INJECTED_LOSS,
    EV_PCIE_DROP,
    EV_RING_DROP,
    EV_RUN_SUMMARY,
    EV_SERVICE,
    EV_WIRE_DROP,
    NULL_TRACER,
    EventTracer,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..faults.plan import FaultPlan
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..obs.spans import NULL_SPANS, SpanEmitter
from ..telemetry.metrics import Histogram
from ..traffic.trace import Trace
from .counters import SystemCounters

__all__ = ["PerfPacket", "PerfTrace", "PerfEngine", "SimResult", "simulate"]

#: Frames of backlog the MAC will absorb before dropping on a saturated wire.
_WIRE_SLACK_FRAMES = 64

#: Per-packet descriptor + completion bytes across the host interconnect.
_PCIE_DESCRIPTOR_BYTES = 16


@dataclass(frozen=True)
class PerfPacket:
    """Precomputed per-packet record used by the performance simulator."""

    index: int
    key: object  # program state key (already normalized where applicable)
    hash_l3: int  # Toeplitz over src+dst IP
    hash_l4: int  # Toeplitz over the 4-tuple
    hash_sym: int  # symmetric-key Toeplitz over the 4-tuple
    wire_len: int
    valid: bool  # does this packet touch program state at all?
    touches_global: bool = False  # does it update globally-shared state?


class PerfTrace:
    """A trace lowered to per-packet *columns* for one program.

    Struct-of-arrays container: ``key_ids`` (int64 indices into the
    ``key_table`` of interned program state keys), the three Toeplitz
    hashes (uint32), ``wire_lens`` (int64), and ``valid`` /
    ``touches_global`` (bool) — what the columnar hot path consumes
    directly.  The legacy row-major view (:attr:`records`, a list of
    :class:`PerfPacket`) is rebuilt lazily for scalar consumers.  The
    columns are read-only; pickling round-trips columns only (the trace
    cache's ``CACHE_SCHEMA`` was bumped for this layout).
    """

    _COLUMN_STATE = (
        "program_name", "name", "key_table", "key_ids",
        "hash_l3", "hash_l4", "hash_sym", "wire_lens",
        "valid", "touches_global",
    )

    def __init__(self, records: Sequence[PerfPacket], program_name: str, name: str):
        records = list(records)
        n = len(records)
        key_table: List[object] = []
        key_index: Dict[object, int] = {}
        key_ids = np.empty(n, dtype=np.int64)
        for i, r in enumerate(records):
            kid = key_index.get(r.key)
            if kid is None:
                kid = len(key_table)
                key_index[r.key] = kid
                key_table.append(r.key)
            key_ids[i] = kid
        self._bind_columns(
            program_name=program_name,
            name=name,
            key_table=key_table,
            key_ids=key_ids,
            hash_l3=np.fromiter((r.hash_l3 for r in records), dtype=np.uint32, count=n),
            hash_l4=np.fromiter((r.hash_l4 for r in records), dtype=np.uint32, count=n),
            hash_sym=np.fromiter((r.hash_sym for r in records), dtype=np.uint32, count=n),
            wire_lens=np.fromiter((r.wire_len for r in records), dtype=np.int64, count=n),
            valid=np.fromiter((r.valid for r in records), dtype=bool, count=n),
            touches_global=np.fromiter(
                (r.touches_global for r in records), dtype=bool, count=n),
        )
        self._records: Optional[List[PerfPacket]] = records

    def _bind_columns(
        self,
        program_name: str,
        name: str,
        key_table: List[object],
        key_ids: np.ndarray,
        hash_l3: np.ndarray,
        hash_l4: np.ndarray,
        hash_sym: np.ndarray,
        wire_lens: np.ndarray,
        valid: np.ndarray,
        touches_global: np.ndarray,
    ) -> None:
        self.program_name = program_name
        self.name = name
        self.key_table = key_table
        self.key_ids = key_ids
        self.hash_l3 = hash_l3
        self.hash_l4 = hash_l4
        self.hash_sym = hash_sym
        self.wire_lens = wire_lens
        self.valid = valid
        self.touches_global = touches_global
        for column in (key_ids, hash_l3, hash_l4, hash_sym,
                       wire_lens, valid, touches_global):
            column.setflags(write=False)
        self._unique_keys: Optional[int] = None

    @classmethod
    def from_columns(
        cls,
        program_name: str,
        name: str,
        key_table: List[object],
        key_ids: np.ndarray,
        hash_l3: np.ndarray,
        hash_l4: np.ndarray,
        hash_sym: np.ndarray,
        wire_lens: np.ndarray,
        valid: np.ndarray,
        touches_global: np.ndarray,
    ) -> "PerfTrace":
        """Build directly from columns (the vectorized lowering path)."""
        pt = cls.__new__(cls)
        pt._bind_columns(
            program_name=program_name, name=name, key_table=key_table,
            key_ids=key_ids, hash_l3=hash_l3, hash_l4=hash_l4,
            hash_sym=hash_sym, wire_lens=wire_lens, valid=valid,
            touches_global=touches_global,
        )
        pt._records = None
        return pt

    def __len__(self) -> int:
        return len(self.key_ids)

    @property
    def records(self) -> List[PerfPacket]:
        """Row-major :class:`PerfPacket` view, rebuilt lazily on demand."""
        if self._records is None:
            table = self.key_table
            self._records = [
                PerfPacket(index=i, key=table[kid], hash_l3=h3, hash_l4=h4,
                           hash_sym=hs, wire_len=wl, valid=v, touches_global=tg)
                for i, (kid, h3, h4, hs, wl, v, tg) in enumerate(zip(
                    self.key_ids.tolist(), self.hash_l3.tolist(),
                    self.hash_l4.tolist(), self.hash_sym.tolist(),
                    self.wire_lens.tolist(), self.valid.tolist(),
                    self.touches_global.tolist()))
            ]
        return self._records

    @property
    def unique_keys(self) -> int:
        """Distinct state keys among valid packets (lazy, cached)."""
        if self._unique_keys is None:
            ids = self.key_ids[self.valid]
            self._unique_keys = int(np.unique(ids).size) if ids.size else 0
        return self._unique_keys

    def __getstate__(self) -> Dict[str, object]:
        return {f: getattr(self, f) for f in self._COLUMN_STATE}

    def __setstate__(self, state: Dict[str, object]) -> None:
        if set(state) != set(self._COLUMN_STATE):
            raise ValueError("incompatible PerfTrace pickle (pre-columnar layout)")
        kwargs = dict(state)
        self._bind_columns(**kwargs)  # type: ignore[arg-type]
        self._records = None

    @classmethod
    def from_trace(
        cls, trace: Trace, program: PacketProgram,
        hotpath: Optional[str] = None,
    ) -> "PerfTrace":
        from .columnar import resolve_hotpath

        mode = resolve_hotpath(hotpath)
        key_table: List[object] = []
        key_index: Dict[object, int] = {}
        key_ids: List[int] = []
        wire_lens: List[int] = []
        valid: List[bool] = []
        touches: List[bool] = []
        packed: List[bytes] = []
        for pkt in trace:
            meta = program.extract_metadata(pkt)
            key = program.key(meta)
            kid = key_index.get(key)
            if kid is None:
                kid = len(key_table)
                key_index[key] = kid
                key_table.append(key)
            key_ids.append(kid)
            # One packed 4-tuple hash input per packet, shared by all three
            # hashes: the L3 input (src+dst IP) is its 8-byte prefix.
            packed.append(hash_input_l4(pkt.five_tuple()))
            wire_lens.append(pkt.wire_len)
            # "valid" mirrors the program's control dependency: packets that
            # cannot touch state (wrong protocol) still cost dispatch.
            valid.append(pkt.is_ipv4)
            touches.append(program.touches_global(meta))
        n = len(key_ids)
        if mode == "columnar" and n:
            mat = np.frombuffer(b"".join(packed), dtype=np.uint8).reshape(n, 12)
            l3 = toeplitz_hash_batch(mat[:, :8])
            l4 = toeplitz_hash_batch(mat)
            sym = toeplitz_hash_batch(mat, key=SYMMETRIC_RSS_KEY)
        else:
            l3 = np.fromiter(
                (toeplitz_hash(p[:8]) for p in packed), dtype=np.uint32, count=n)
            l4 = np.fromiter(
                (toeplitz_hash(p) for p in packed), dtype=np.uint32, count=n)
            sym = np.fromiter(
                (toeplitz_hash(p, key=SYMMETRIC_RSS_KEY) for p in packed),
                dtype=np.uint32, count=n)
        return cls.from_columns(
            program_name=program.name,
            name=trace.name,
            key_table=key_table,
            key_ids=np.asarray(key_ids, dtype=np.int64),
            hash_l3=l3,
            hash_l4=l4,
            hash_sym=sym,
            wire_lens=np.asarray(wire_lens, dtype=np.int64),
            valid=np.asarray(valid, dtype=bool),
            touches_global=np.asarray(touches, dtype=bool),
        )


class PerfEngine(Protocol):
    """What a scaling technique must provide to the simulator."""

    name: str
    num_cores: int
    counters: SystemCounters

    def reset(self) -> None:
        """Clear all run state (called by :func:`simulate`)."""

    def wire_len(self, pp: PerfPacket) -> int:
        """Bytes this packet occupies on the wire (SCR adds history)."""

    # Engines may additionally define ``dma_len(pp)`` — bytes crossing the
    # host interconnect, which can exceed wire bytes when a NIC-resident
    # sequencer appends history after the MAC (§4.2 PCIe overheads).  The
    # simulator falls back to ``wire_len`` when absent.
    #
    # Engines may also opt into the columnar hot path by providing the
    # batched row-math hooks (``columnar_eligible`` / ``wire_len_batch`` /
    # ``dma_len_batch`` / ``steer_batch`` / ``service_rows`` /
    # ``service_batch`` / ``commit_steer_batch`` / ``history_cap``) —
    # ``repro.parallel.base.BaseEngine`` carries conservative defaults,
    # including a scalar ``service_batch`` shim that loops ``service_ns``,
    # so subclasses only override what they can batch.  Engines without
    # the hooks (or reporting ineligible) run on the scalar event loop
    # below unchanged (see docs/HOTPATH.md).

    def steer(self, pp: PerfPacket) -> int:
        """RX queue / core index for this packet."""

    def pre_enqueue(self, pp: PerfPacket, core: int) -> bool:
        """Admission hook; returning False models loss before the core."""

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        """Per-packet service time; must also charge the core's counters."""


@dataclass
class SimResult:
    """Outcome of one fixed-rate simulation run."""

    offered: int
    processed: int
    wire_dropped: int
    ring_dropped: int
    injected_lost: int
    #: packets still queued when the post-stream grace period expired.
    unfinished: int
    duration_ns: float
    rate_pps: float
    counters: SystemCounters
    #: packets dropped because the host interconnect (PCIe) saturated.
    pcie_dropped: int = 0
    per_core_packets: List[int] = field(default_factory=list)
    #: per-packet sojourn times (arrival → service completion), ns; only
    #: populated when simulate() is called with collect_latency=True.
    latency_samples_ns: Optional[List[float]] = None
    #: log-bucketed sojourn-time distribution; populated alongside the raw
    #: samples, bounded memory, the source for the p50/p90/p99/p999 views.
    latency_histogram: Optional[Histogram] = None
    #: injector summary (counts per fault kind) when the run had a fault
    #: plan; None on fault-free runs so old artifacts stay byte-identical.
    fault_stats: Optional[Dict[str, object]] = None
    #: elephant/mice placement counters (promotions, migrations, quota
    #: drops) when the engine exposes ``placement_summary`` (the hybrid
    #: technique); None otherwise so old artifacts stay byte-identical.
    placement_stats: Optional[Dict[str, object]] = None

    def latency_percentile_ns(self, q: float) -> float:
        """The q-quantile (0..1) of per-packet sojourn time (exact samples)."""
        if not self.latency_samples_ns:
            raise ValueError("run simulate(collect_latency=True) first")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        ordered = sorted(self.latency_samples_ns)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def latency_percentiles_ns(self) -> dict:
        """{"p50": ..., "p90": ..., "p99": ..., "p99_9": ...} from the
        log-bucketed histogram (each within one bucket width, ~9 %)."""
        if self.latency_histogram is None:
            raise ValueError("run simulate(collect_latency=True) first")
        return self.latency_histogram.percentiles()

    @property
    def latency_p50_ns(self) -> float:
        return self.latency_percentiles_ns()["p50"]

    @property
    def latency_p90_ns(self) -> float:
        return self.latency_percentiles_ns()["p90"]

    @property
    def latency_p99_ns(self) -> float:
        return self.latency_percentiles_ns()["p99"]

    @property
    def latency_p999_ns(self) -> float:
        return self.latency_percentiles_ns()["p99_9"]

    @property
    def total_busy_ns(self) -> float:
        """All-core busy time — the denominator of cycle attribution."""
        return sum(c.busy_ns for c in self.counters.cores)

    def core_utilization(self) -> List[float]:
        """Per-core busy / wall-clock fraction over the run."""
        if self.duration_ns <= 0:
            return [0.0 for _ in self.counters.cores]
        return [min(1.0, c.busy_ns / self.duration_ns) for c in self.counters.cores]

    @property
    def loss_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return 1.0 - self.processed / self.offered

    @property
    def achieved_pps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.processed / self.duration_ns * 1e9

    @property
    def achieved_mpps(self) -> float:
        return self.achieved_pps / 1e6


def _wire_time_ns(wire_len: int, line_rate_bps: float) -> float:
    frame = max(MIN_FRAME_BYTES, wire_len) + ETHERNET_OVERHEAD_BYTES
    return frame * 8 / line_rate_bps * 1e9


def simulate(
    perf_trace: PerfTrace,
    rate_pps: float,
    engine: PerfEngine,
    line_rate_gbps: float = 100.0,
    ring_capacity: int = DEFAULT_DESCRIPTORS,
    burst_size: int = 1,
    grace_fraction: float = 0.0,
    grace_min_ns: float = 1_000.0,
    pcie_rate_gbps: float = 252.0,
    collect_latency: bool = False,
    tracer: EventTracer = NULL_TRACER,
    faults: Optional["FaultPlan"] = None,
    spans: SpanEmitter = NULL_SPANS,
    hostprof: PhaseClock = NULL_HOSTPROF,
    hotpath: Optional[str] = None,
) -> SimResult:
    """Offer ``perf_trace`` at ``rate_pps`` to ``engine`` and measure.

    Packets arrive at fixed spacing (or in back-to-back bursts of
    ``burst_size`` sharing an arrival slot), pass the line-rate wire model,
    get steered to per-core rings, and are drained in arrival order by each
    core.  Time advances with arrivals; each arrival first lets every core
    drain work that completes before it.

    After the offered stream ends, cores get a short grace period
    (``grace_fraction`` of the stream duration, at least ``grace_min_ns``)
    to finish their backlog; whatever is still queued counts as lost.
    Without this cutoff an overloaded run would eventually forward
    everything and MLFFR would be meaningless (RFC 2544 likewise only
    counts frames received within a timeout).

    ``pcie_rate_gbps`` models the host interconnect (default: effective
    PCIe 4.0 x16 throughput, §4.1's system bus).  Each packet's DMA bytes
    (``engine.dma_len``, falling back to ``wire_len``) plus descriptor
    traffic must fit; SCR's history enlarges DMA even when a NIC-resident
    sequencer leaves the wire untouched (§4.2).

    ``tracer`` receives typed events (per-packet service spans, every drop
    with its cause, a run summary); the default disabled tracer costs one
    branch per packet.

    ``faults`` attaches a seeded :class:`repro.faults.plan.FaultPlan`:
    wire→ring drops and ring-pop drops become loss the engine is told
    about (``note_fault_drop``, so SCR charges gap recovery), duplicates
    cost a dispatch without counting as forwarded, in-ring reordering
    perturbs service order, and core stalls/kills model a slow or dead
    replica.  Fault decisions key on the packet *index*, never on probe
    rate or arrival order, so every MLFFR probe sees the same schedule.

    ``spans`` emits causal ``span.*`` events for deterministically sampled
    packet indices (NIC arrival → ring enqueue → core pop, plus the fault
    path); the default disabled emitter costs one attribute read, and
    emission never moves simulated time.

    ``hotpath`` picks the execution strategy (``scalar`` | ``columnar``;
    default: the ``REPRO_HOTPATH`` env var, else columnar).  The columnar
    driver is bit-identical to the scalar loop and silently falls back to
    it whenever a run needs per-event fidelity (drops, faults, tracing).
    """
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    engine.reset()
    from .columnar import resolve_hotpath

    if resolve_hotpath(hotpath) == "columnar":
        from .columnar import simulate_columnar

        columnar_result = simulate_columnar(
            perf_trace, rate_pps, engine,
            line_rate_gbps=line_rate_gbps,
            ring_capacity=ring_capacity,
            burst_size=burst_size,
            grace_fraction=grace_fraction,
            grace_min_ns=grace_min_ns,
            pcie_rate_gbps=pcie_rate_gbps,
            collect_latency=collect_latency,
            tracer=tracer,
            faults=faults,
            spans=spans,
            hostprof=hostprof,
        )
        if columnar_result is not None:
            return columnar_result
    k = engine.num_cores
    interval = 1e9 / rate_pps
    line_rate_bps = line_rate_gbps * 1e9
    pcie_rate_bps = pcie_rate_gbps * 1e9
    dma_len = getattr(engine, "dma_len", engine.wire_len)
    sf = None
    if faults is not None and faults.any_faults:
        from ..faults.inject import SimFaults

        sf = SimFaults(faults, k)
    #: engines that model per-core gap recovery expose note_fault_drop.
    note_fault_drop = getattr(engine, "note_fault_drop", None)
    #: a duplicate costs one dispatch, not a full service (the replica
    #: rejects it by sequence number right after dispatch); engines built
    #: on CostParams expose .costs, bare Protocol engines fall back to a
    #: full service charge.
    engine_costs = getattr(engine, "costs", None)

    #: ring entries: (arrival_ns, packet, is_injected_duplicate)
    rings: List[Deque[Tuple[float, PerfPacket, bool]]] = [deque() for _ in range(k)]
    dead = [False] * k
    busy = [0.0] * k
    per_core_packets = [0] * k
    processed = 0
    wire_dropped = 0
    ring_dropped = 0
    injected_lost = 0
    pcie_dropped = 0
    wire_free = 0.0
    wire_slack_ns = 0.0
    pcie_free = 0.0
    pcie_slack_ns = 0.0
    last_finish = 0.0

    latency_samples: Optional[List[float]] = [] if collect_latency else None
    latency_hist = Histogram("latency_ns") if collect_latency else None
    #: bind the emit method once; the disabled tracer's emit is a no-op but
    #: the per-packet guard below avoids even the call overhead.
    tracing = tracer.enabled
    emit = tracer.emit
    spans_on = spans.enabled
    #: host wall profiling, hoisted like the tracer/span guards; wall
    #: readings never touch simulated timestamps (`busy`, `now`, ...).
    hp_on = hostprof.enabled

    def drain(core: int, horizon: float) -> None:
        nonlocal processed, last_finish
        if dead[core]:
            return
        ring = rings[core]
        while ring and busy[core] <= horizon:
            arrival, pp, dup = ring[0]
            start = busy[core] if busy[core] > arrival else arrival
            if start > horizon:
                break
            ring.popleft()
            if sf is not None:
                if sf.killed(core, pp.index):
                    # Everything still queued on a dead core is lost.
                    dead[core] = True
                    if tracing:
                        emit(EV_FAULT_KILL, ts_ns=start, core=core,
                             index=pp.index)
                    return
                stall = sf.stall_ns(core, pp.index)
                if stall > 0.0:
                    if tracing:
                        emit(EV_FAULT_STALL, ts_ns=start, core=core,
                             dur_ns=stall, index=pp.index)
                    start += stall
                    busy[core] = start
                    if start > horizon:
                        ring.appendleft((arrival, pp, dup))
                        break
                if not dup and sf.pop_drop(pp.index):
                    # Descriptor consumed, payload discarded: the replica
                    # never sees this packet and must recover the gap.
                    if note_fault_drop is not None:
                        note_fault_drop(core, pp)
                    if tracing:
                        emit(EV_FAULT_POP_DROP, ts_ns=start, core=core,
                             index=pp.index)
                    continue
            if dup:
                # Stale sequence number: rejected right after dispatch.
                service = (engine_costs.d if engine_costs is not None
                           else engine.service_ns(core, pp, start))
                busy[core] = start + service
                if busy[core] > last_finish:
                    last_finish = busy[core]
                continue
            if spans_on and spans.sampled(pp.index):
                spans.emit("core_pop", pp.index, ts_ns=start, core=core)
            if hp_on:
                hostprof.push("engine.service")
            service = engine.service_ns(core, pp, start)
            if hp_on:
                hostprof.pop()
            busy[core] = start + service
            per_core_packets[core] += 1
            processed += 1
            if latency_samples is not None:
                latency_samples.append(busy[core] - arrival)
                latency_hist.observe(busy[core] - arrival)
            if tracing:
                emit(EV_SERVICE, ts_ns=start, core=core, dur_ns=service,
                     index=pp.index)
            if busy[core] > last_finish:
                last_finish = busy[core]

    records = perf_trace.records
    offered = len(records)
    for i, pp in enumerate(records):
        now = (i // burst_size) * burst_size * interval
        if hp_on:
            hostprof.push("sim.drain")
        for core in range(k):
            drain(core, now)
        if hp_on:
            hostprof.pop()
        pp_sampled = spans_on and spans.sampled(pp.index)
        if pp_sampled:
            spans.emit("nic_arrival", pp.index, ts_ns=now,
                       wire_len=pp.wire_len)
        wl = engine.wire_len(pp)
        wt = _wire_time_ns(wl, line_rate_bps)
        if i == 0:
            wire_slack_ns = wt * _WIRE_SLACK_FRAMES
        if wire_free - now > wire_slack_ns:
            wire_dropped += 1
            if tracing:
                emit(EV_WIRE_DROP, ts_ns=now, index=pp.index,
                     backlog_ns=wire_free - now)
            continue
        wire_free = (wire_free if wire_free > now else now) + wt
        # Host interconnect: DMA payload + descriptor + completion traffic.
        dt = (dma_len(pp) + _PCIE_DESCRIPTOR_BYTES) * 8 / pcie_rate_bps * 1e9
        if i == 0:
            pcie_slack_ns = dt * _WIRE_SLACK_FRAMES
        if pcie_free - now > pcie_slack_ns:
            pcie_dropped += 1
            if tracing:
                emit(EV_PCIE_DROP, ts_ns=now, index=pp.index,
                     backlog_ns=pcie_free - now)
            continue
        pcie_free = (pcie_free if pcie_free > now else now) + dt
        core = engine.steer(pp)
        if sf is not None and sf.drop(pp.index):
            # Admitted by the MAC (wire already charged) but lost on the
            # way to the ring; the replica sees a history gap.
            if note_fault_drop is not None:
                note_fault_drop(core, pp)
            if tracing:
                emit(EV_FAULT_DROP, ts_ns=now, core=core, index=pp.index)
            if pp_sampled:
                spans.emit("fault_drop", pp.index, ts_ns=now, core=core)
            continue
        if not engine.pre_enqueue(pp, core):
            injected_lost += 1
            if tracing:
                emit(EV_INJECTED_LOSS, ts_ns=now, core=core, index=pp.index)
            continue
        ring = rings[core]
        if len(ring) >= ring_capacity:
            ring_dropped += 1
            if tracing:
                emit(EV_RING_DROP, ts_ns=now, core=core, index=pp.index,
                     depth=len(ring))
            continue
        if sf is not None:
            offset = sf.reorder_offset(pp.index)
            if offset > 0 and ring:
                # Jump ahead of up to ``offset`` already-queued frames:
                # the queued ones are delivered late relative to this one.
                slot = len(ring) - offset
                ring.insert(slot if slot > 0 else 0, (now, pp, False))
                sf.note_reorder(pp.index)
                if tracing:
                    emit(EV_FAULT_REORDER, ts_ns=now, core=core,
                         index=pp.index, offset=offset)
            else:
                ring.append((now, pp, False))
            if sf.duplicate(pp.index):
                if tracing:
                    emit(EV_FAULT_DUPLICATE, ts_ns=now, core=core,
                         index=pp.index)
                if len(ring) < ring_capacity:
                    ring.append((now, pp, True))
        else:
            ring.append((now, pp, False))
        if pp_sampled:
            spans.emit("ring_enqueue", pp.index, ts_ns=now, core=core,
                       depth=len(ring))

    stream_end = offered * interval
    horizon = stream_end + max(grace_min_ns, grace_fraction * stream_end)
    unfinished = 0
    if hp_on:
        hostprof.push("sim.drain")
    for core in range(k):
        drain(core, horizon)
        unfinished += len(rings[core])
    if hp_on:
        hostprof.pop()

    duration = max(last_finish, stream_end)
    fault_stats: Optional[Dict[str, object]] = None
    if sf is not None:
        fault_stats = sf.summary()
        recovery = getattr(engine, "fault_summary", None)
        if recovery is not None:
            fault_stats.update(recovery())
    placement_stats: Optional[Dict[str, object]] = None
    placement = getattr(engine, "placement_summary", None)
    if placement is not None:
        placement_stats = placement()
    if tracing:
        summary_fields = dict(
            engine=getattr(engine, "name", "?"),
            rate_pps=rate_pps,
            offered=offered,
            processed=processed,
            wire_dropped=wire_dropped,
            ring_dropped=ring_dropped,
            pcie_dropped=pcie_dropped,
            injected_lost=injected_lost,
            unfinished=unfinished,
        )
        if fault_stats is not None:
            summary_fields["fault_stats"] = fault_stats
        if placement_stats is not None:
            summary_fields["placement_stats"] = placement_stats
        emit(EV_RUN_SUMMARY, ts_ns=duration, **summary_fields)
    return SimResult(
        offered=offered,
        processed=processed,
        wire_dropped=wire_dropped,
        ring_dropped=ring_dropped,
        injected_lost=injected_lost,
        unfinished=unfinished,
        duration_ns=duration,
        rate_pps=rate_pps,
        counters=engine.counters,
        pcie_dropped=pcie_dropped,
        per_core_packets=per_core_packets,
        latency_samples_ns=latency_samples,
        latency_histogram=latency_hist,
        fault_stats=fault_stats,
        placement_stats=placement_stats,
    )
