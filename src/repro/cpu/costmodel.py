"""Per-packet CPU cost parameters, calibrated to the paper's Table 4.

Appendix A decomposes the per-packet CPU time of each program into:

* ``d``  — dispatch: driver/framework labor to present the packet to the
  program and signal transmission (the dominant cost, §3.1);
* ``c1`` — program compute over the current packet;
* ``c2`` — state transition over one piggybacked history item (a subset of
  ``c1``, so ``c2 < c1``);
* ``t = d + c1`` — the full single-packet service time.

All values are nanoseconds measured by the authors on a 3.6 GHz Ice Lake
core (Table 4); we reuse their measurements directly, which Appendix A shows
predict the measured throughput well (Figure 11).

The contention constants model the hardware effects the paper attributes the
baselines' failures to: cross-core cache-line transfers (~an LLC round trip),
spinlock handoff degradation with more contenders, and L2 capacity spill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "CostParams",
    "TABLE4_PARAMS",
    "ContentionParams",
    "DEFAULT_CONTENTION",
    "CPU_FREQ_GHZ",
    "L2_BYTES",
    "STATE_ENTRY_BYTES",
]

#: The DUT runs at a fixed 3.6 GHz (§4.1).
CPU_FREQ_GHZ = 3.6

#: Ice Lake SP (Xeon Gold 6334) private L2 per core.
L2_BYTES = 1_280_000

#: Memory footprint charged per tracked flow: one cache line for the entry
#: plus amortized table overhead.
STATE_ENTRY_BYTES = 96


@dataclass(frozen=True)
class CostParams:
    """Table 4 row: all values in nanoseconds at 3.6 GHz."""

    t: float  # d + c1, full single-packet service time
    c2: float  # per-history-item state transition
    d: float  # dispatch
    c1: float  # compute over the current packet

    def scr_service_ns(self, history_items: int) -> float:
        """SCR per-packet service: t + (history items) * c2 (Appendix A)."""
        if history_items < 0:
            raise ValueError("history_items must be non-negative")
        return self.t + history_items * self.c2


#: Measured parameters from Table 4 (nanoseconds).  The forwarder row is
#: derived from Figure 2: ~14 Mpps single-core (t ≈ 71 ns) with a measured
#: XDP latency of ~14 ns (c1), leaving d ≈ 57 ns; it is stateless so c2 = 0.
TABLE4_PARAMS: Dict[str, CostParams] = {
    "ddos": CostParams(t=114.0, c2=15.0, d=104.0, c1=10.0),
    "heavy_hitter": CostParams(t=145.0, c2=15.0, d=110.0, c1=35.0),
    "token_bucket": CostParams(t=156.0, c2=21.0, d=104.0, c1=53.0),
    "port_knocking": CostParams(t=107.0, c2=18.0, d=97.0, c1=11.0),
    "conntrack": CostParams(t=152.0, c2=35.0, d=80.0, c1=73.0),
    "forwarder": CostParams(t=71.0, c2=0.0, d=57.0, c1=14.0),
    # Extension program (not in the paper's Table 4): our estimate, sized
    # like the token bucket plus a second map update for the port pool.
    "nat": CostParams(t=168.0, c2=26.0, d=104.0, c1=64.0),
    "sampler": CostParams(t=150.0, c2=18.0, d=110.0, c1=40.0),
    "load_balancer": CostParams(t=160.0, c2=24.0, d=104.0, c1=56.0),
    # Commutative-family extensions: the victim monitor mirrors the ddos
    # counter exactly; the peak meter is a lone compare-and-swap max (a
    # shade under heavy_hitter's two adds); the spreader is a shift+OR on
    # a 9-byte metadata record.
    "victim_monitor": CostParams(t=114.0, c2=15.0, d=104.0, c1=10.0),
    "peak_meter": CostParams(t=138.0, c2=14.0, d=110.0, c1=28.0),
    "spreader": CostParams(t=118.0, c2=12.0, d=104.0, c1=14.0),
}


@dataclass(frozen=True)
class ContentionParams:
    """Constants for the shared-state contention and memory models."""

    #: Cross-core dirty cache-line transfer (LLC round trip), ns.
    line_transfer_ns: float = 70.0
    #: Uncontended atomic read-modify-write beyond plain compute, ns.
    atomic_ns: float = 10.0
    #: Uncontended spinlock acquire + release, ns.
    lock_ns: float = 20.0
    #: Extra lock-handoff cost per additional contending core: spinning
    #: readers keep stealing the lock line, so handing off under k-way
    #: contention costs ~``lock_handoff_factor * (k-1)`` extra transfers.
    lock_handoff_factor: float = 0.35
    #: Extra per-access latency once a core's state spills out of L2, ns.
    l2_spill_ns: float = 18.0
    #: Per-log-entry write cost for SCR's loss-recovery logging (§4.2), ns.
    log_write_ns: float = 9.0
    #: Spin-probe cost of reading another core's log during recovery, ns.
    recovery_probe_ns: float = 70.0
    #: Fetching an epoch checkpoint from the sequencer during a quarantine
    #: resync: a DMA round trip for a snapshot region, amortized per
    #: resync.  Dominated by the host-interconnect latency, not size.
    checkpoint_fetch_ns: float = 1_800.0

    def lock_hold_ns(self, c1: float, contenders: int) -> float:
        """Time the lock is held per update under ``contenders``-way contention.

        The critical section covers the state update (``c1``) plus, when
        other cores contend, the lock-word and state-line transfers — which
        grow with the number of spinning cores fighting for the line.  A
        single core pays only the lock instructions.
        """
        if contenders < 1:
            raise ValueError("contenders must be >= 1")
        if contenders == 1:
            return self.lock_ns + c1
        handoff = self.line_transfer_ns * (1 + self.lock_handoff_factor * (contenders - 2))
        return self.lock_ns + c1 + handoff

    def atomic_hold_ns(self) -> float:
        """Exclusive-ownership time per contended atomic RMW."""
        return self.line_transfer_ns


DEFAULT_CONTENTION = ContentionParams()
