"""Cache behaviour models: L2 capacity and cross-core line bouncing.

Two effects dominate the paper's Figure 8 story:

* **Bouncing** — a state cache line written by one core and then accessed by
  another must travel through the LLC (a "bounce"), stalling the accessor.
  Shared-state techniques bounce on nearly every packet of a hot flow;
  sharded and SCR techniques never do.
* **Capacity spill** — a core whose resident state outgrows its private L2
  pays extra latency per access (SCR replicates *all* flows onto every core,
  so it feels this first — scaling limit (ii) in §3.1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set, Tuple

from .costmodel import L2_BYTES, STATE_ENTRY_BYTES

__all__ = ["L2Model", "BounceTracker"]


class L2Model:
    """Per-core L2 occupancy: compulsory misses + probabilistic capacity spill.

    The first touch of a key on a core is a compulsory miss.  Once the
    number of resident entries exceeds the L2's capacity in entries, each
    access misses with probability ``1 - capacity/resident`` (random
    replacement approximation) and pays ``spill_ns`` when it does.  Misses
    are accounted fractionally to keep the model deterministic.
    """

    def __init__(
        self,
        num_cores: int,
        l2_bytes: int = L2_BYTES,
        entry_bytes: int = STATE_ENTRY_BYTES,
        spill_ns: float = 18.0,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.capacity_entries = max(1, l2_bytes // entry_bytes)
        self.spill_ns = spill_ns
        self._resident: Tuple[Set[Hashable], ...] = tuple(set() for _ in range(num_cores))

    def access(self, core: int, key: Hashable) -> Tuple[float, float]:
        """Touch ``key`` on ``core``; returns (miss fraction, stall ns)."""
        resident = self._resident[core]
        if key not in resident:
            resident.add(key)
            return 1.0, self.spill_ns
        excess = len(resident) - self.capacity_entries
        if excess <= 0:
            return 0.0, 0.0
        miss_prob = excess / len(resident)
        return miss_prob, miss_prob * self.spill_ns

    def install(self, core: int, keys: Iterable[Hashable]) -> None:
        """Bulk-mark ``keys`` resident on ``core``.

        The columnar hot path computes miss fractions for a whole run with
        array math (:func:`repro.cpu.columnar.l2_spill_rows`) and then
        commits the end state here — equivalent to touching each key once.
        """
        self._resident[core].update(keys)

    def resident_entries(self, core: int) -> int:
        return len(self._resident[core])

    def reset(self) -> None:
        for s in self._resident:
            s.clear()


class BounceTracker:
    """Tracks which core last wrote each state line to detect bounces."""

    def __init__(self, transfer_ns: float = 70.0) -> None:
        self.transfer_ns = transfer_ns
        self._last_writer: Dict[Hashable, int] = {}
        self.bounces = 0
        self.accesses = 0

    def access(self, core: int, key: Hashable) -> Tuple[bool, float]:
        """Access ``key`` from ``core``; returns (bounced, stall ns)."""
        self.accesses += 1
        last = self._last_writer.get(key)
        self._last_writer[key] = core
        if last is not None and last != core:
            self.bounces += 1
            return True, self.transfer_ns
        return False, 0.0

    def forget(self, key: Hashable) -> None:
        self._last_writer.pop(key, None)

    def reset(self) -> None:
        self._last_writer.clear()
        self.bounces = 0
        self.accesses = 0
