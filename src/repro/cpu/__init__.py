"""Multicore CPU performance-simulation substrate."""

from .cache import BounceTracker, L2Model
from .costmodel import (
    CPU_FREQ_GHZ,
    DEFAULT_CONTENTION,
    L2_BYTES,
    STATE_ENTRY_BYTES,
    TABLE4_PARAMS,
    ContentionParams,
    CostParams,
)
from .counters import (
    INSNS_PER_COMPUTE_NS,
    INSNS_PER_DISPATCH,
    POLL_IPC,
    CoreCounters,
    SystemCounters,
)
from .locks import SerializationTable
from .simulator import PerfEngine, PerfPacket, PerfTrace, SimResult, simulate

__all__ = [
    "BounceTracker",
    "L2Model",
    "CPU_FREQ_GHZ",
    "DEFAULT_CONTENTION",
    "L2_BYTES",
    "STATE_ENTRY_BYTES",
    "TABLE4_PARAMS",
    "ContentionParams",
    "CostParams",
    "INSNS_PER_COMPUTE_NS",
    "INSNS_PER_DISPATCH",
    "POLL_IPC",
    "CoreCounters",
    "SystemCounters",
    "SerializationTable",
    "PerfEngine",
    "PerfPacket",
    "PerfTrace",
    "SimResult",
    "simulate",
]
