"""Simulated performance counters (the PCM / BPF-profiling stand-in, Fig. 8).

The event simulator attributes every nanosecond of core time to one of:
useful program work, dispatch, lock/atomic waiting, or cache-line transfer
stalls.  From those the counters derive the three metrics Figure 8 plots:

* **compute latency** — the XDP-program portion only (excludes dispatch),
* **L2 hit ratio** — per-state-access hits vs misses (bounces + spills),
* **IPC** — retired instructions over busy cycles; stall cycles retire
  nothing, so waiting and bouncing depress IPC exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .costmodel import CPU_FREQ_GHZ

__all__ = [
    "CoreCounters",
    "SystemCounters",
    "INSNS_PER_DISPATCH",
    "INSNS_PER_COMPUTE_NS",
    "POLL_IPC",
]

#: Retired-instruction estimates: dispatch code is a long straight path,
#: program compute retires ~3 instructions per ns at 3.6 GHz when unstalled.
INSNS_PER_DISPATCH = 250
INSNS_PER_COMPUTE_NS = 3.0

#: XDP drivers busy-poll their RX rings; an "idle" core spins on an empty
#: ring retiring a trickle of instructions.  This is why PCM reports low
#: IPC on under-loaded cores (Fig. 8's sharding error bars).
POLL_IPC = 0.3


@dataclass
class CoreCounters:
    """Everything one simulated core accumulates during a run."""

    core_id: int = 0
    packets: int = 0
    #: time spent in the XDP program portion (compute + history), ns.
    compute_ns: float = 0.0
    #: the subset of ``compute_ns`` spent fast-forwarding piggybacked
    #: history items (the Appendix A ``(k-1)·c2`` term); the remainder of
    #: ``compute_ns`` is current-packet work (``c1`` plus memory effects).
    history_ns: float = 0.0
    #: time spent in dispatch, ns.
    dispatch_ns: float = 0.0
    #: time stalled waiting on locks/atomics, ns.
    wait_ns: float = 0.0
    #: time stalled on cross-core cache-line transfers, ns.
    transfer_ns: float = 0.0
    #: state-map accesses and the subset that missed L2 (fractional misses
    #: come from the probabilistic capacity-spill model).
    l2_accesses: int = 0
    l2_misses: float = 0.0
    #: retired instructions (estimated).
    instructions: float = 0.0
    #: time attributed to the XDP program itself (compute + in-program
    #: stalls like lock spinning) — what BPF profiling measures (Fig. 8).
    program_ns: float = 0.0

    @property
    def busy_ns(self) -> float:
        return self.compute_ns + self.dispatch_ns + self.wait_ns + self.transfer_ns

    @property
    def l2_hit_ratio(self) -> float:
        if self.l2_accesses == 0:
            return 1.0
        return 1.0 - self.l2_misses / self.l2_accesses

    @property
    def ipc(self) -> float:
        cycles = self.busy_ns * CPU_FREQ_GHZ
        if cycles <= 0:
            return 0.0
        return self.instructions / cycles

    def ipc_wall(self, duration_ns: float) -> float:
        """IPC over wall-clock time, the way PCM sees a busy-polling core.

        Idle time still retires :data:`POLL_IPC` instructions per cycle from
        ring polling, so an under-loaded core shows low (not zero) IPC.
        """
        if duration_ns <= 0:
            return 0.0
        total_cycles = duration_ns * CPU_FREQ_GHZ
        idle_ns = max(0.0, duration_ns - self.busy_ns)
        retired = self.instructions + idle_ns * CPU_FREQ_GHZ * POLL_IPC
        return retired / total_cycles

    @property
    def mean_compute_latency_ns(self) -> float:
        """Average per-packet XDP-program latency (the Fig. 8 latency rows)."""
        if self.packets == 0:
            return 0.0
        return self.program_ns / self.packets

    def charge_packet(
        self,
        dispatch_ns: float,
        compute_ns: float,
        wait_ns: float = 0.0,
        transfer_ns: float = 0.0,
        state_accesses: int = 1,
        l2_misses: float = 0.0,
        program_ns: Optional[float] = None,
        history_ns: float = 0.0,
    ) -> None:
        """Attribute one processed packet's time to the counter buckets.

        ``program_ns`` is the packet's XDP-program latency as profiling
        would see it; by default compute plus in-program stalls.
        ``history_ns`` carves out the fast-forward portion of
        ``compute_ns`` (it must not exceed it) so the profiler can split
        ``c1`` from ``(k-1)·c2`` after the fact.
        """
        if history_ns > compute_ns:
            raise ValueError("history_ns is a subset of compute_ns")
        self.packets += 1
        self.dispatch_ns += dispatch_ns
        self.compute_ns += compute_ns
        self.history_ns += history_ns
        self.wait_ns += wait_ns
        self.transfer_ns += transfer_ns
        self.l2_accesses += state_accesses
        self.l2_misses += l2_misses
        if program_ns is None:
            program_ns = compute_ns + wait_ns + transfer_ns
        self.program_ns += program_ns
        self.instructions += INSNS_PER_DISPATCH + compute_ns * INSNS_PER_COMPUTE_NS

    def charge_batch(
        self,
        dispatch_ns: "np.ndarray",
        compute_ns: "np.ndarray",
        wait_ns: Optional["np.ndarray"] = None,
        transfer_ns: Optional["np.ndarray"] = None,
        state_accesses: Optional["np.ndarray"] = None,
        l2_misses: Optional["np.ndarray"] = None,
        program_ns: Optional["np.ndarray"] = None,
        history_ns: Optional["np.ndarray"] = None,
    ) -> None:
        """Attribute a whole burst of packets at once (columnar hot path).

        Per-row semantics match :meth:`charge_packet` exactly; array
        arguments are per-packet columns in service order, omitted ones
        default like the scalar call.  Floats fold sequentially
        (``np.add.accumulate`` is left-to-right, never pairwise), so the
        totals are bit-identical to charging each packet in a loop —
        provided the counter starts from zero, which it does: the hot path
        commits exactly once per freshly-reset run.
        """
        count = len(dispatch_ns)
        if count == 0:
            return
        zeros = np.zeros(count, dtype=np.float64)
        wait_ns = zeros if wait_ns is None else wait_ns
        transfer_ns = zeros if transfer_ns is None else transfer_ns
        l2_misses = zeros if l2_misses is None else l2_misses
        history_ns = zeros if history_ns is None else history_ns
        if program_ns is None:
            program_ns = compute_ns + wait_ns + transfer_ns
        if bool(np.any(history_ns > compute_ns)):
            raise ValueError("history_ns is a subset of compute_ns")

        def fold(column: "np.ndarray") -> float:
            return float(np.add.accumulate(column)[-1])

        self.packets += count
        self.dispatch_ns += fold(dispatch_ns)
        self.compute_ns += fold(compute_ns)
        self.history_ns += fold(history_ns)
        self.wait_ns += fold(wait_ns)
        self.transfer_ns += fold(transfer_ns)
        if state_accesses is None:
            self.l2_accesses += count
        else:
            self.l2_accesses += int(np.sum(state_accesses))
        self.l2_misses += fold(l2_misses)
        self.program_ns += fold(program_ns)
        self.instructions += fold(
            INSNS_PER_DISPATCH + compute_ns * INSNS_PER_COMPUTE_NS)

    def snapshot(self) -> dict:
        """This core's accumulators plus derived metrics, JSON-safe.

        The schema is what the telemetry exporters embed in run artifacts:
        the four attribution buckets always sum to ``busy_ns``.
        """
        return {
            "core_id": self.core_id,
            "packets": self.packets,
            "dispatch_ns": self.dispatch_ns,
            "compute_ns": self.compute_ns,
            "history_ns": self.history_ns,
            "wait_ns": self.wait_ns,
            "transfer_ns": self.transfer_ns,
            "busy_ns": self.busy_ns,
            "program_ns": self.program_ns,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "l2_hit_ratio": self.l2_hit_ratio,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "mean_compute_latency_ns": self.mean_compute_latency_ns,
        }


@dataclass
class SystemCounters:
    """Aggregate view across cores (means + min/max for Fig. 8 error bars)."""

    cores: List[CoreCounters] = field(default_factory=list)

    def mean_l2_hit_ratio(self) -> float:
        active = [c for c in self.cores if c.l2_accesses]
        if not active:
            return 1.0
        return sum(c.l2_hit_ratio for c in active) / len(active)

    def mean_ipc(self) -> float:
        active = [c for c in self.cores if c.busy_ns > 0]
        if not active:
            return 0.0
        return sum(c.ipc for c in active) / len(active)

    def ipc_min_max(self) -> tuple:
        active = [c for c in self.cores if c.busy_ns > 0]
        if not active:
            return (0.0, 0.0)
        values = [c.ipc for c in active]
        return (min(values), max(values))

    def mean_ipc_wall(self, duration_ns: float) -> float:
        if not self.cores:
            return 0.0
        return sum(c.ipc_wall(duration_ns) for c in self.cores) / len(self.cores)

    def ipc_wall_min_max(self, duration_ns: float) -> tuple:
        if not self.cores:
            return (0.0, 0.0)
        values = [c.ipc_wall(duration_ns) for c in self.cores]
        return (min(values), max(values))

    def mean_compute_latency_ns(self) -> float:
        active = [c for c in self.cores if c.packets]
        if not active:
            return 0.0
        return sum(c.mean_compute_latency_ns for c in active) / len(active)

    def total_packets(self) -> int:
        return sum(c.packets for c in self.cores)

    def snapshot(self) -> dict:
        """Aggregate + per-core dicts in the run-artifact metrics schema.

        Existing aggregate properties (``mean_ipc`` etc.) stay thin views
        over the per-core accumulators; this is the one serialization
        point the exporters use.
        """
        cores = [c.snapshot() for c in self.cores]
        return {
            "cores": cores,
            "totals": {
                "packets": self.total_packets(),
                "busy_ns": sum(c["busy_ns"] for c in cores),
                "dispatch_ns": sum(c["dispatch_ns"] for c in cores),
                "compute_ns": sum(c["compute_ns"] for c in cores),
                "history_ns": sum(c["history_ns"] for c in cores),
                "wait_ns": sum(c["wait_ns"] for c in cores),
                "transfer_ns": sum(c["transfer_ns"] for c in cores),
                "mean_l2_hit_ratio": self.mean_l2_hit_ratio(),
                "mean_ipc": self.mean_ipc(),
                "mean_compute_latency_ns": self.mean_compute_latency_ns(),
            },
        }
