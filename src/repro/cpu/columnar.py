"""The columnar (struct-of-arrays) hot path of the performance simulator.

:func:`repro.cpu.simulator.simulate` dispatches here when the ``columnar``
hot path is selected (the default; see :func:`resolve_hotpath`).  The
driver *speculates* that no packet is dropped, solves the whole run with
numpy cumulative arithmetic, and verifies the speculation afterwards:

* **admission** — the serializing wire and the PCIe descriptor budget are
  max-plus recurrences ``free_j = max(free_{j-1}, now_j) + t_j``, solved
  exactly by :func:`_chain`; any backlog beyond the slack window would
  have dropped a packet, so the driver falls back to the event loop;
* **steering** — eligible engines expose ``steer_batch`` (round-robin row
  math for SCR, an indirection-table gather for RSS);
* **core drain** — per-core FIFO service is the same max-plus recurrence
  over (arrival, service) rows.  SCR's history depth reads the global
  steer counter at *service* time, so the first ``k-1`` packets are
  resolved by an exact scalar prefix walk and every later packet is in
  steady state (``h = k-1``); ring occupancy is checked after the fact
  and any overflow falls back to the event loop;
* **commit** — counters, the L2 model, and engine steer state are updated
  once, in batch, through ``engine.service_batch`` /
  ``CoreCounters.charge_batch``, in the exact scalar accumulation order.

Every float is added in the same order as the scalar reference
(``np.add.accumulate`` is sequential left-to-right), so the result is
**bit-identical** to the event loop — the parity tests and the scalar
oracle (``--hotpath scalar``) pin this.  See docs/HOTPATH.md.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

import numpy as np

from ..nic.nic import ETHERNET_OVERHEAD_BYTES, MIN_FRAME_BYTES
from ..telemetry.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..faults.plan import FaultPlan
    from ..hostprof.clock import PhaseClock
    from ..obs.spans import SpanEmitter
    from ..telemetry.events import EventTracer
    from .cache import L2Model
    from .simulator import PerfEngine, PerfTrace, SimResult

__all__ = [
    "HOTPATH_ENV",
    "HOTPATH_MODES",
    "resolve_hotpath",
    "use_hotpath",
    "l2_spill_rows",
    "simulate_columnar",
]

#: Environment variable selecting the hot path (``scalar`` | ``columnar``).
#: The CLI ``--hotpath`` flag sets it so ``--jobs N`` workers inherit it.
HOTPATH_ENV = "REPRO_HOTPATH"

HOTPATH_MODES = ("scalar", "columnar")

#: Mirrors of the admission constants in ``repro.cpu.simulator`` (kept
#: there as the source of truth; re-importing them at call time would put
#: the import in the hot path).
_WIRE_SLACK_FRAMES = 64
_PCIE_DESCRIPTOR_BYTES = 16


def resolve_hotpath(explicit: Optional[str] = None) -> str:
    """The active hot-path mode: ``explicit`` arg > env var > columnar."""
    mode = explicit or os.environ.get(HOTPATH_ENV) or "columnar"
    if mode not in HOTPATH_MODES:
        raise ValueError(
            f"unknown hotpath {mode!r}; expected one of {', '.join(HOTPATH_MODES)}"
        )
    return mode


@contextmanager
def use_hotpath(mode: str) -> Iterator[None]:
    """Temporarily pin the hot-path mode (process-wide, via the env var)."""
    if mode not in HOTPATH_MODES:
        raise ValueError(
            f"unknown hotpath {mode!r}; expected one of {', '.join(HOTPATH_MODES)}"
        )
    previous = os.environ.get(HOTPATH_ENV)
    os.environ[HOTPATH_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(HOTPATH_ENV, None)
        else:
            os.environ[HOTPATH_ENV] = previous


# -- exact max-plus chain solver ------------------------------------------------


def _chain_scalar(arrivals: np.ndarray, services: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reference python loop for ``b_j = max(b_{j-1}, a_j) + s_j``."""
    n = len(arrivals)
    start = np.empty(n, dtype=np.float64)
    finish = np.empty(n, dtype=np.float64)
    a = arrivals.tolist()
    s = services.tolist()
    busy = 0.0
    for j in range(n):
        st = busy if busy > a[j] else a[j]
        busy = st + s[j]
        start[j] = st
        finish[j] = busy
    return start, finish


def _chain(arrivals: np.ndarray, services: np.ndarray,
           max_rounds: int = 64) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``b_j = max(b_{j-1}, a_j) + s_j`` (``b_{-1} = 0``) exactly.

    Iterative reset-point detection: hypothesize which packets start a
    fresh busy period (initially all — the pointwise-minimal solution),
    recompute finishes per busy period with a sequential
    ``np.add.accumulate`` (bit-identical to the scalar left-to-right
    adds), and repeat until the hypothesis reproduces itself.  Underload
    converges in one round (every packet resets); overload merges busy
    periods monotonically.  The round cap only bounds the loop — on the
    (never observed) non-converged path the exact scalar walk answers.
    """
    n = len(arrivals)
    if n == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty
    base = arrivals + services
    finish = base.copy()
    reset = np.empty(n, dtype=bool)
    for _ in range(max_rounds):
        reset[0] = True
        reset[1:] = finish[:-1] <= arrivals[1:]
        new_finish = base.copy()
        seg_start = np.flatnonzero(reset)
        seg_end = np.append(seg_start[1:], n)
        long_segs = seg_end - seg_start > 1
        for s0, s1 in zip(seg_start[long_segs].tolist(), seg_end[long_segs].tolist()):
            tmp = services[s0:s1].copy()
            tmp[0] = base[s0]
            np.add.accumulate(tmp, out=tmp)
            new_finish[s0:s1] = tmp
        if np.array_equal(new_finish, finish):
            prev = np.concatenate((np.zeros(1), new_finish[:-1]))
            start = np.where(reset, arrivals, prev)
            return start, new_finish
        finish = new_finish
    return _chain_scalar(arrivals, services)


# -- vectorized L2 model --------------------------------------------------------


def l2_spill_rows(
    l2: "L2Model",
    trace: "PerfTrace",
    rows: np.ndarray,
    cores: np.ndarray,
    num_cores: int,
    commit: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched :meth:`~repro.cpu.cache.L2Model.access` over ``rows``.

    ``rows``/``cores`` list packets in service order (per-core order is
    what matters — cores never share L2 state).  Returns per-row
    ``(miss_frac, spill_ns)`` arrays, zero for invalid packets (which
    never touch state).  With ``commit=True`` the touched keys are also
    installed into the model's resident sets, completing the state the
    scalar loop would have built.  Assumes the model was just reset —
    the hot path always runs right after ``engine.reset()``.
    """
    key_ids = trace.key_ids[rows]
    valid = trace.valid[rows]
    miss_frac = np.zeros(len(rows), dtype=np.float64)
    spill = np.zeros(len(rows), dtype=np.float64)
    for core in range(num_cores):
        sel = np.flatnonzero((cores == core) & valid)
        if len(sel) == 0:
            continue
        ids = key_ids[sel]
        uniq, first_idx = np.unique(ids, return_index=True)
        first = np.zeros(len(ids), dtype=bool)
        first[first_idx] = True
        resident = np.cumsum(first)
        excess = resident - l2.capacity_entries
        over = excess > 0
        frac = np.where(
            first, 1.0,
            np.where(over, excess / np.maximum(resident, 1), 0.0),
        )
        miss_frac[sel] = frac
        spill[sel] = frac * l2.spill_ns
        if commit:
            table = trace.key_table
            l2.install(core, (table[int(i)] for i in uniq))
    return miss_frac, spill


# -- the columnar driver --------------------------------------------------------


def simulate_columnar(
    perf_trace: "PerfTrace",
    rate_pps: float,
    engine: "PerfEngine",
    line_rate_gbps: float,
    ring_capacity: int,
    burst_size: int,
    grace_fraction: float,
    grace_min_ns: float,
    pcie_rate_gbps: float,
    collect_latency: bool,
    tracer: "EventTracer",
    faults: Optional["FaultPlan"],
    spans: "SpanEmitter",
    hostprof: "PhaseClock",
) -> Optional["SimResult"]:
    """One fixed-rate run on the columnar hot path, or ``None`` to fall
    back to the scalar event loop.

    Fallback triggers (see module docstring): per-packet telemetry or
    spans enabled, a fault plan attached, an engine without batched row
    math, or the no-drop speculation failing (wire/PCIe backlog beyond
    slack, or a ring backing up past capacity).  The engine is only
    mutated after every check passes, so the scalar rerun starts from the
    same freshly-reset state.
    """
    if tracer.enabled or spans.enabled:
        return None
    if faults is not None and faults.any_faults:
        return None
    eligible = getattr(engine, "columnar_eligible", None)
    if not callable(eligible) or not eligible():
        return None
    n = len(perf_trace)
    if n == 0:
        return None

    hp_on = hostprof.enabled
    if hp_on:
        hostprof.push("sim.columnar")
    try:
        return _run(perf_trace, rate_pps, engine, line_rate_gbps,
                    ring_capacity, burst_size, grace_fraction, grace_min_ns,
                    pcie_rate_gbps, collect_latency)
    finally:
        if hp_on:
            hostprof.pop()


def _run(
    trace: "PerfTrace",
    rate_pps: float,
    engine: "PerfEngine",
    line_rate_gbps: float,
    ring_capacity: int,
    burst_size: int,
    grace_fraction: float,
    grace_min_ns: float,
    pcie_rate_gbps: float,
    collect_latency: bool,
) -> Optional["SimResult"]:
    from .simulator import SimResult

    n = len(trace)
    k = engine.num_cores
    interval = 1e9 / rate_pps
    line_rate_bps = line_rate_gbps * 1e9
    pcie_rate_bps = pcie_rate_gbps * 1e9

    #: arrival timestamps: fixed spacing, bursts share a slot (the exact
    #: integer-then-float arithmetic of the scalar loop).
    slot = (np.arange(n, dtype=np.int64) // burst_size) * burst_size
    now = slot.astype(np.float64) * interval

    # Wire admission: free_j = max(free_{j-1}, now_j) + wt_j; a packet is
    # dropped when the *preceding* backlog exceeds the slack window.
    wire_len = engine.wire_len_batch(trace)
    frame = np.maximum(wire_len, MIN_FRAME_BYTES) + ETHERNET_OVERHEAD_BYTES
    wt = (frame * 8) / line_rate_bps * 1e9
    wire_slack_ns = float(wt[0]) * _WIRE_SLACK_FRAMES
    _, wire_free = _chain(now, wt)
    backlog = np.concatenate((np.zeros(1), wire_free[:-1])) - now
    if bool(np.any(backlog > wire_slack_ns)):
        return None

    # Host interconnect: DMA payload + descriptor + completion traffic.
    dma_len = engine.dma_len_batch(trace)
    dt = ((dma_len + _PCIE_DESCRIPTOR_BYTES) * 8) / pcie_rate_bps * 1e9
    pcie_slack_ns = float(dt[0]) * _WIRE_SLACK_FRAMES
    _, pcie_free = _chain(now, dt)
    backlog = np.concatenate((np.zeros(1), pcie_free[:-1])) - now
    if bool(np.any(backlog > pcie_slack_ns)):
        return None

    cores = np.asarray(engine.steer_batch(trace), dtype=np.int64)

    # Pure per-row L2 outcome (per-core first-touch + capacity spill; the
    # service-order restriction of each core equals its FIFO order).
    all_rows = np.arange(n, dtype=np.int64)
    miss_frac, spill = l2_spill_rows(engine.l2, trace, all_rows, cores, k)

    # History depth: h_j = min(seq_at_service - 1, cap).  In steady state
    # (arrival index >= cap) the steer counter has always advanced past
    # cap, so only the first ``cap`` packets need the exact prefix walk.
    cap = engine.history_cap()
    h = np.full(n, cap, dtype=np.int64)
    if cap > 0:
        _resolve_history_prefix(trace, engine, now, cores, miss_frac, spill,
                                h, cap)

    services = engine.service_rows(trace, all_rows, miss_frac, spill, h)

    # Per-core FIFO drain: the same max-plus recurrence per core.
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    order = np.argsort(cores, kind="stable")
    core_of_sorted = cores[order]
    boundaries = np.flatnonzero(np.diff(core_of_sorted)) + 1
    for rows_c in np.split(order, boundaries):
        s, f = _chain(now[rows_c], services[rows_c])
        starts[rows_c] = s
        finishes[rows_c] = f

    # Pop events: packet j leaves its ring at the first arrival i > j with
    # now_i >= start_j (every arrival drains all cores first), or at the
    # final grace drain (m = n).  ``searchsorted`` is exact because the
    # arrival grid is nondecreasing.
    m = np.searchsorted(now, starts, side="left")
    m = np.maximum(m, all_rows + 1)

    # Ring occupancy at each enqueue: FIFO position minus how many of the
    # core's earlier packets popped at or before this arrival.  Any ring
    # at capacity means the scalar loop would have dropped — fall back.
    for rows_c in np.split(order, boundaries):
        m_c = m[rows_c]
        popped_before = np.searchsorted(m_c, rows_c, side="right")
        occupancy = np.arange(len(rows_c)) - popped_before
        if bool(np.any(occupancy >= ring_capacity)):
            return None

    # Speculation holds: no drops anywhere.  Commit.
    stream_end = n * interval
    horizon = stream_end + max(grace_min_ns, grace_fraction * stream_end)
    popped = starts <= horizon
    processed = int(np.count_nonzero(popped))
    unfinished = n - processed

    engine.commit_steer_batch(n)
    pop_rows = np.flatnonzero(popped)
    # Scalar pop order: by drain event, then core (drained 0..k-1), then
    # FIFO position (== arrival index within a core).
    pop_rows = pop_rows[np.lexsort(
        (pop_rows, cores[pop_rows], m[pop_rows])
    )]
    committed = engine.service_batch(
        trace, pop_rows, cores[pop_rows], starts[pop_rows], m[pop_rows]
    )

    per_core_packets = np.bincount(cores[pop_rows], minlength=k).tolist()
    last_finish = float(np.max(finishes[pop_rows])) if processed else 0.0
    duration = max(last_finish, stream_end)

    latency_samples: Optional[List[float]] = None
    latency_hist: Optional[Histogram] = None
    if collect_latency:
        latency_hist = Histogram("latency_ns")
        samples = (starts[pop_rows] + committed) - now[pop_rows]
        latency_samples = samples.tolist()
        for value in latency_samples:
            latency_hist.observe(value)

    return SimResult(
        offered=n,
        processed=processed,
        wire_dropped=0,
        ring_dropped=0,
        injected_lost=0,
        unfinished=unfinished,
        duration_ns=duration,
        rate_pps=rate_pps,
        counters=engine.counters,
        pcie_dropped=0,
        per_core_packets=per_core_packets,
        latency_samples_ns=latency_samples,
        latency_histogram=latency_hist,
        fault_stats=None,
    )


def _resolve_history_prefix(
    trace: "PerfTrace",
    engine: "PerfEngine",
    now: np.ndarray,
    cores: np.ndarray,
    miss_frac: np.ndarray,
    spill: np.ndarray,
    h: np.ndarray,
    cap: int,
) -> None:
    """Exact history depths for the first ``cap`` packets, in place.

    Each prefix packet's start time depends only on earlier prefix
    packets on its core, so a short scalar walk resolves the order
    dependence the steady state is free of: pop event
    ``m = max(first arrival >= start, j+1)`` gives ``h = min(m-1, cap)``.
    """
    n = len(now)
    prefix = min(cap, n)
    core_busy = [0.0] * engine.num_cores
    row = np.empty(1, dtype=np.int64)
    h_row = np.empty(1, dtype=np.int64)
    for j in range(prefix):
        core = int(cores[j])
        arrival = float(now[j])
        busy = core_busy[core]
        start = busy if busy > arrival else arrival
        m = int(np.searchsorted(now, start, side="left"))
        if m < j + 1:
            m = j + 1
        hj = m - 1
        if hj > cap:
            hj = cap
        h[j] = hj
        row[0] = j
        h_row[0] = hj
        service = engine.service_rows(
            trace, row, miss_frac[j:j + 1], spill[j:j + 1], h_row
        )
        core_busy[core] = start + float(service[0])
