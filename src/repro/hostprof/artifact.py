"""Schema-versioned host-profile artifact (``scr-repro/hostprof/v1``).

A :class:`HostProfile` freezes one profiled run: the PhaseClock aggregate
(per-phase calls / cumulative / self wall ns), the optional deep-capture
section, and the same provenance stamp BENCH artifacts carry (git SHA,
python, platform, creation time) so a profile is triageable standalone.
``save`` writes three files side by side:

* ``hostprof.json`` — the artifact itself (sorted keys, trailing newline);
* ``profile.folded`` — folded-stack text for flamegraph.pl-style tools;
* ``profile.speedscope.json`` — importable at https://www.speedscope.app.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import platform as platform_mod
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..telemetry.artifact import current_git_sha
from .clock import PATH_SEP, PhaseClock
from .export import to_folded, to_speedscope

HOSTPROF_SCHEMA = "scr-repro/hostprof/v1"
HOSTPROF_JSON = "hostprof.json"
FOLDED_NAME = "profile.folded"
SPEEDSCOPE_NAME = "profile.speedscope.json"


@dataclass
class HostProfile:
    """One profiled run's host wall-clock breakdown."""

    command: str = ""
    config: Dict[str, Any] = field(default_factory=dict)
    phases: Dict[str, Dict[str, int]] = field(default_factory=dict)
    deep: Optional[Dict[str, Any]] = None
    git_sha: str = "unknown"
    created_utc: str = ""
    python: str = ""
    platform: str = ""
    schema: str = HOSTPROF_SCHEMA

    @classmethod
    def create(
        cls,
        command: str,
        config: Dict[str, Any],
        clock: PhaseClock,
        deep: Optional[Dict[str, Any]] = None,
    ) -> "HostProfile":
        """Freeze ``clock`` with the standard provenance stamp.

        Wall-clock provenance stamping is sanctioned here exactly as in
        ``BenchArtifact.create`` — it never feeds simulated time.
        """
        created = datetime.datetime.now(  # scrlint: disable=SCR004,SCR006
            datetime.timezone.utc
        ).isoformat()
        return cls(
            command=command,
            config=dict(config),
            phases=clock.snapshot(),
            deep=deep,
            git_sha=current_git_sha(),
            created_utc=created,
            python=sys.version.split()[0],
            platform=platform_mod.platform(),
        )

    # -- derived views ------------------------------------------------------

    def total_wall_ns(self) -> int:
        """Total accounted wall ns (sum of self over every phase; equals the
        sum of root-phase cumulative time for a fully nested tree)."""
        return sum(int(e["self_ns"]) for e in self.phases.values())

    def pareto(self) -> List[Dict[str, Any]]:
        """Phases sorted by self wall ns, descending, with share of total."""
        total = self.total_wall_ns() or 1
        rows = sorted(
            self.phases.items(), key=lambda kv: (-int(kv[1]["self_ns"]), kv[0])
        )
        return [
            {
                "path": path,
                "calls": int(e["calls"]),
                "total_ns": int(e["total_ns"]),
                "self_ns": int(e["self_ns"]),
                "self_share": int(e["self_ns"]) / total,
            }
            for path, e in rows
        ]

    def pareto_lines(self, top: int = 12) -> List[str]:
        """Human-readable Pareto, widest offenders first (CLI output)."""
        rows = self.pareto()[:top]
        if not rows:
            return ["(no phases recorded)"]
        width = max(len(r["path"]) for r in rows)
        lines = [
            f"{'phase':<{width}}  {'calls':>9}  {'total':>10}  {'self':>10}  self%"
        ]
        for r in rows:
            lines.append(
                f"{r['path']:<{width}}  {r['calls']:>9}  "
                f"{_fmt_ns(r['total_ns']):>10}  {_fmt_ns(r['self_ns']):>10}  "
                f"{r['self_share'] * 100:5.1f}"
            )
        return lines

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        # schema first for greppability; json.dump(sort_keys=True) re-sorts.
        return {"schema": data.pop("schema"), **data}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostProfile":
        schema = data.get("schema", "")
        if not str(schema).startswith("scr-repro/hostprof/"):
            raise ValueError(f"not a hostprof artifact (schema={schema!r})")
        return cls(
            command=str(data.get("command", "")),
            config=dict(data.get("config", {})),
            phases={
                str(path): {k: int(v) for k, v in entry.items()}
                for path, entry in dict(data.get("phases", {})).items()
            },
            deep=data.get("deep"),
            git_sha=str(data.get("git_sha", "unknown")),
            created_utc=str(data.get("created_utc", "")),
            python=str(data.get("python", "")),
            platform=str(data.get("platform", "")),
            schema=str(schema),
        )

    def save(self, directory: Union[str, Path]) -> Path:
        """Write hostprof.json + folded + speedscope exports; returns the
        hostprof.json path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / HOSTPROF_JSON
        with path.open("w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        (directory / FOLDED_NAME).write_text(
            to_folded(self.phases), encoding="utf-8"
        )
        with (directory / SPEEDSCOPE_NAME).open("w", encoding="utf-8") as fh:
            json.dump(
                to_speedscope(self.phases, name=f"scr-repro {self.command}"),
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "HostProfile":
        """Load from a hostprof.json file or a directory containing one."""
        path = Path(path)
        if path.is_dir():
            path = path / HOSTPROF_JSON
        with path.open("r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def phase_depth(path: str) -> int:
    """Nesting depth of a phase path (roots are depth 0)."""
    return path.count(PATH_SEP)
