"""Host wall-clock observability: phase profiling, flamegraphs, artifacts.

The simulated-time planes (telemetry, spans, SLOs) say where *modeled*
cycles go; ``repro.hostprof`` says where the harness's *real* Python wall
time goes, so the ROADMAP's hot-path optimization work is measurable and
un-regressable.  Layered beside — never inside — simulated time: a wall
reading can never move a simulated clock (see docs/PROFILING.md).
"""

from .artifact import (
    FOLDED_NAME,
    HOSTPROF_JSON,
    HOSTPROF_SCHEMA,
    SPEEDSCOPE_NAME,
    HostProfile,
)
from .clock import NULL_HOSTPROF, PATH_SEP, PhaseClock
from .deep import DeepCapture
from .export import (
    SPEEDSCOPE_SCHEMA,
    parse_folded,
    parse_speedscope,
    to_folded,
    to_speedscope,
)

__all__ = [
    "HOSTPROF_SCHEMA",
    "HOSTPROF_JSON",
    "FOLDED_NAME",
    "SPEEDSCOPE_NAME",
    "SPEEDSCOPE_SCHEMA",
    "PATH_SEP",
    "PhaseClock",
    "NULL_HOSTPROF",
    "DeepCapture",
    "HostProfile",
    "to_folded",
    "parse_folded",
    "to_speedscope",
    "parse_speedscope",
]
