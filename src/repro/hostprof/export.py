"""Flamegraph exporters: folded-stack text and speedscope JSON.

Both formats weight stacks by **self** wall ns, so weights sum to total
wall and re-stacking tools (Brendan Gregg's ``flamegraph.pl``, the
speedscope web app) reconstruct the cumulative tree exactly.  Parsers are
provided so tests can assert lossless round-trips without external tools.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from .clock import PATH_SEP

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def to_folded(phases: Mapping[str, Mapping[str, int]]) -> str:
    """Folded-stack text: one ``a;b;c <self_ns>`` line per phase path.

    Zero-self interior phases are omitted (their time lives in children),
    matching the collapsed-stack convention.
    """
    lines = []
    for path in sorted(phases):
        weight = int(phases[path]["self_ns"])
        if weight > 0:
            lines.append(f"{path} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> Dict[str, int]:
    """Inverse of :func:`to_folded`: path -> self_ns."""
    out: Dict[str, int] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        path, _, weight = line.rpartition(" ")
        if not path:
            raise ValueError(f"malformed folded line: {line!r}")
        out[path] = out.get(path, 0) + int(weight)
    return out


def to_speedscope(
    phases: Mapping[str, Mapping[str, int]], name: str = "scr-repro hostprof"
) -> Dict[str, Any]:
    """Speedscope ``sampled`` profile: one sample per phase path, weighted by
    self wall ns (unit ``nanoseconds``).  Deterministic: frames appear in
    first-use order over sorted paths."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[int] = []
    for path in sorted(phases):
        weight = int(phases[path]["self_ns"])
        if weight <= 0:
            continue
        stack = []
        for segment in path.split(PATH_SEP):
            idx = frame_index.get(segment)
            if idx is None:
                idx = len(frames)
                frame_index[segment] = idx
                frames.append({"name": segment})
            stack.append(idx)
        samples.append(stack)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "scr-repro hostprof",
    }


def parse_speedscope(doc: Mapping[str, Any]) -> Dict[str, int]:
    """Inverse of :func:`to_speedscope`: path -> self_ns (first profile)."""
    if doc.get("$schema") != SPEEDSCOPE_SCHEMA:
        raise ValueError(f"not a speedscope document: {doc.get('$schema')!r}")
    profiles = doc.get("profiles") or []
    if not profiles:
        raise ValueError("speedscope document has no profiles")
    profile = profiles[0]
    if profile.get("type") != "sampled":
        raise ValueError(f"expected a sampled profile, got {profile.get('type')!r}")
    frames = doc["shared"]["frames"]
    samples = profile["samples"]
    weights = profile["weights"]
    if len(samples) != len(weights):
        raise ValueError("samples/weights length mismatch")
    out: Dict[str, int] = {}
    for stack, weight in zip(samples, weights):
        path = PATH_SEP.join(frames[idx]["name"] for idx in stack)
        out[path] = out.get(path, 0) + int(weight)
    return out
