"""Nested host wall-clock phase scopes (``PhaseClock``).

Everything else in the repo measures *simulated* time; this module is the
one sanctioned place that reads the host's ``perf_counter_ns`` so the
harness itself can be profiled.  The design mirrors the telemetry plane's
disabled-singleton idiom: hot paths hoist ``clock.enabled`` into a local
boolean and the shared :data:`NULL_HOSTPROF` instance makes every call a
cheap early return, so dormant guards never perturb simulated results
(pinned by tests/hostprof/test_determinism.py).

Phases form a stack; an entry is keyed by its ``;``-joined path (the same
shape as folded-stack flamegraph lines, see :mod:`repro.hostprof.export`)
and accumulates call count, cumulative wall ns (``total_ns``) and self
wall ns (``self_ns`` = total minus time attributed to child phases).
Snapshots merge associatively via :meth:`PhaseClock.merge_snapshot`, the
same fold shape ``MetricsRegistry.merge_snapshot`` uses for ``--jobs N``
worker telemetry.
"""

from __future__ import annotations

import time
from typing import ContextManager, Dict, List, Mapping, Optional, Protocol

PATH_SEP = ";"


class DeepHook(Protocol):
    """Push/pop callbacks for deep capture (see :mod:`repro.hostprof.deep`)."""

    def on_push(self) -> None: ...

    def on_pop(self, path: str) -> None: ...


class _NullScope:
    """Shared no-op context manager returned by disabled clocks."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


class _PhaseScope:
    """Context manager that pops the phase pushed by :meth:`PhaseClock.phase`."""

    __slots__ = ("_clock",)

    def __init__(self, clock: "PhaseClock") -> None:
        self._clock = clock

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        self._clock.pop()
        return False


_NULL_SCOPE = _NullScope()


class PhaseClock:
    """Hierarchical wall-clock phase accumulator.

    Cold paths use ``with clock.phase("name"):``; hot loops hoist
    ``enabled`` and pair :meth:`push`/:meth:`pop` (nesting) or
    :meth:`now`/:meth:`charge` (leaf charge) explicitly.
    """

    __slots__ = ("enabled", "deep", "_names", "_starts", "_child", "_entries")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.deep: Optional[DeepHook] = None
        self._names: List[str] = []
        self._starts: List[int] = []
        self._child: List[int] = []
        # path -> [calls, total_ns, self_ns]
        self._entries: Dict[str, List[int]] = {}

    # -- hot-path primitives ------------------------------------------------

    def now(self) -> int:
        """Raw host timestamp (0 when disabled, so guards stay one branch)."""
        if not self.enabled:
            return 0
        return time.perf_counter_ns()  # scrlint: disable=SCR004,SCR006

    def push(self, name: str) -> None:
        """Open a nested phase.  Reads the clock last so bookkeeping is charged
        to the parent, not the child."""
        if not self.enabled:
            return
        if self.deep is not None:
            self.deep.on_push()
        self._names.append(name)
        self._child.append(0)
        self._starts.append(time.perf_counter_ns())  # scrlint: disable=SCR004,SCR006

    def pop(self) -> None:
        """Close the innermost phase and fold its wall time into the tree."""
        if not self.enabled:
            return
        end = time.perf_counter_ns()  # scrlint: disable=SCR004,SCR006
        path = PATH_SEP.join(self._names)
        self._names.pop()
        start = self._starts.pop()
        child = self._child.pop()
        dt = end - start
        entry = self._entries.get(path)
        if entry is None:
            self._entries[path] = [1, dt, dt - child]
        else:
            entry[0] += 1
            entry[1] += dt
            entry[2] += dt - child
        if self._child:
            self._child[-1] += dt
        if self.deep is not None:
            self.deep.on_pop(path)

    def charge(self, name: str, t0: int) -> None:
        """Record ``now() - t0`` as a leaf phase under the current path.

        The hot-loop idiom (one hoisted boolean, two calls)::

            hp_on = clock.enabled
            ...
            t0 = clock.now() if hp_on else 0
            do_work()
            if hp_on:
                clock.charge("work", t0)
        """
        if not self.enabled:
            return
        dt = time.perf_counter_ns() - t0  # scrlint: disable=SCR004,SCR006
        if self._names:
            path = PATH_SEP.join(self._names) + PATH_SEP + name
        else:
            path = name
        entry = self._entries.get(path)
        if entry is None:
            self._entries[path] = [1, dt, dt]
        else:
            entry[0] += 1
            entry[1] += dt
            entry[2] += dt
        if self._child:
            self._child[-1] += dt

    # -- cold-path API ------------------------------------------------------

    def phase(self, name: str) -> ContextManager[None]:
        """``with clock.phase("trace.synthesize"): ...`` scope helper."""
        if not self.enabled:
            return _NULL_SCOPE
        self.push(name)
        return _PhaseScope(self)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Associatively mergeable per-phase aggregate (JSON-ready)."""
        return {
            path: {"calls": e[0], "total_ns": e[1], "self_ns": e[2]}
            for path, e in self._entries.items()
        }

    def merge_snapshot(
        self,
        snapshot: Mapping[str, Mapping[str, int]],
        prefix: Optional[str] = None,
    ) -> None:
        """Fold another clock's snapshot into this one (PR-4 fold shape).

        ``prefix`` reroots the incoming paths (the executor folds worker
        snapshots under ``worker`` so cross-process CPU time never masquerades
        as parent wall time).
        """
        if not self.enabled:
            return
        for path, agg in snapshot.items():
            key = prefix + PATH_SEP + path if prefix else path
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = [
                    int(agg["calls"]),
                    int(agg["total_ns"]),
                    int(agg["self_ns"]),
                ]
            else:
                entry[0] += int(agg["calls"])
                entry[1] += int(agg["total_ns"])
                entry[2] += int(agg["self_ns"])

    def total_self_ns(self) -> int:
        """Sum of self time over every phase (== sum of root totals when the
        tree is fully nested; the Pareto share denominator)."""
        return sum(e[2] for e in self._entries.values())

    def depth(self) -> int:
        """Current nesting depth (0 outside any phase)."""
        return len(self._names)


NULL_HOSTPROF = PhaseClock(enabled=False)
"""Shared disabled singleton: the default for every ``hostprof=`` parameter."""
