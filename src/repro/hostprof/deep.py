"""Optional deep capture: cProfile function stats + tracemalloc phase peaks.

``cProfile`` is process-global and cannot be nested per phase, so it runs
for the whole capture window and exports top functions by self time; the
phase-resolved view comes from :class:`~repro.hostprof.clock.PhaseClock`.
``tracemalloc`` peaks *are* phase-resolved: the capture hooks into the
clock's push/pop stream, resets the allocator peak at each boundary and
propagates each child's peak to its parent, so a phase's recorded peak is
the true maximum over its whole subtree.

Both captures are stdlib-only and add real overhead — deep capture is for
interactive ``scr-repro profile --deep`` runs, never for gated benches.
"""

from __future__ import annotations

import cProfile
import tracemalloc
from typing import Any, Dict, List, Optional

from .clock import PhaseClock


class DeepCapture:
    """Attachable deep-capture backend for a :class:`PhaseClock`."""

    def __init__(
        self, functions: bool = True, memory: bool = True, top: int = 40
    ) -> None:
        self.functions = functions
        self.memory = memory
        self.top = top
        self._profile: Optional[cProfile.Profile] = None
        self._function_rows: List[Dict[str, Any]] = []
        self._seg_peaks: List[int] = []
        self._phase_peaks: Dict[str, int] = {}
        self._active = False

    def attach(self, clock: PhaseClock) -> None:
        """Register this capture as the clock's push/pop hook."""
        clock.deep = self

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        if self.memory:
            tracemalloc.start()
            tracemalloc.reset_peak()
        if self.functions:
            self._profile = cProfile.Profile()
            self._profile.enable()

    def stop(self) -> None:
        if not self._active:
            return
        self._active = False
        if self._profile is not None:
            self._profile.disable()
            self._function_rows = _top_functions(self._profile, self.top)
            self._profile = None
        if self.memory and tracemalloc.is_tracing():
            tracemalloc.stop()

    # -- PhaseClock hook protocol -------------------------------------------

    def on_push(self) -> None:
        if not (self._active and self.memory):
            return
        peak = tracemalloc.get_traced_memory()[1]
        if self._seg_peaks:
            # The segment just ended belongs to the parent phase.
            if peak > self._seg_peaks[-1]:
                self._seg_peaks[-1] = peak
        self._seg_peaks.append(0)
        tracemalloc.reset_peak()

    def on_pop(self, path: str) -> None:
        if not (self._active and self.memory):
            return
        peak = tracemalloc.get_traced_memory()[1]
        frame_peak = max(self._seg_peaks.pop(), peak)
        if self._phase_peaks.get(path, -1) < frame_peak:
            self._phase_peaks[path] = frame_peak
        if self._seg_peaks and frame_peak > self._seg_peaks[-1]:
            # A child's peak is also a peak of every enclosing phase.
            self._seg_peaks[-1] = frame_peak
        tracemalloc.reset_peak()

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready deep section for the hostprof artifact."""
        return {
            "functions": list(self._function_rows),
            "memory_peak_bytes": dict(sorted(self._phase_peaks.items())),
        }


def _top_functions(profile: cProfile.Profile, top: int) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for entry in profile.getstats():  # type: ignore[attr-defined]
        code = entry.code
        if isinstance(code, str):
            name = code
        else:
            name = f"{code.co_filename}:{code.co_firstlineno}:{code.co_name}"
        rows.append(
            {
                "function": name,
                "ncalls": int(entry.callcount),
                "tottime_ns": int(entry.inlinetime * 1e9),
                "cumtime_ns": int(entry.totaltime * 1e9),
            }
        )
    rows.sort(key=lambda r: (-int(r["tottime_ns"]), str(r["function"])))
    return rows[:top]
