"""Program registry: look up evaluated programs by name (Table 1)."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import PacketProgram
from .conntrack import ConnectionTracker
from .ddos import DDoSMitigator, VictimMonitor
from .forwarder import StatelessForwarder
from .heavy_hitter import HeavyHitterMonitor
from .load_balancer import MaglevLoadBalancer
from .nat import NatGateway
from .peak_meter import PeakMeter
from .port_knocking import PortKnockingFirewall
from .sampler import TelemetrySampler
from .spreader import SuperSpreaderDetector
from .token_bucket import TokenBucketPolicer

__all__ = [
    "PROGRAM_FACTORIES",
    "PAPER_PROGRAMS",
    "make_program",
    "program_names",
    "table1_rows",
]

PROGRAM_FACTORIES: Dict[str, Callable[[], PacketProgram]] = {
    "ddos": DDoSMitigator,
    "heavy_hitter": HeavyHitterMonitor,
    "conntrack": ConnectionTracker,
    "token_bucket": TokenBucketPolicer,
    "port_knocking": PortKnockingFirewall,
    "forwarder": StatelessForwarder,
    "nat": NatGateway,  # extension: global state (§2.2), not in Table 1
    "sampler": TelemetrySampler,  # extension: deterministic randomness (§3.4)
    "load_balancer": MaglevLoadBalancer,  # extension: the §1 motivating app
    # Extensions covering the commutative-update families the technique
    # advisor distinguishes (see docs/ADVISOR.md): a dst-keyed counter, a
    # monotone max-accumulator, and an OR-accumulated bitmap.
    "victim_monitor": VictimMonitor,
    "peak_meter": PeakMeter,
    "spreader": SuperSpreaderDetector,
}

#: The five stateful programs the paper evaluates (Table 1).
PAPER_PROGRAMS = (
    "ddos",
    "heavy_hitter",
    "conntrack",
    "token_bucket",
    "port_knocking",
)


def make_program(name: str, **kwargs: object) -> PacketProgram:
    """Instantiate a registered program by name."""
    try:
        factory = PROGRAM_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; known: {sorted(PROGRAM_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def program_names(stateful_only: bool = False) -> List[str]:
    """All registered programs; ``stateful_only`` restricts to Table 1's."""
    if stateful_only:
        return sorted(PAPER_PROGRAMS)
    return sorted(PROGRAM_FACTORIES)


def table1_rows() -> List[Dict[str, object]]:
    """Regenerate the Table 1 inventory from the implementations themselves."""
    rows = []
    for name in sorted(PAPER_PROGRAMS):
        prog = make_program(name)
        rows.append(
            {
                "program": name,
                "metadata_bytes": prog.metadata_size,
                "rss_fields": prog.rss_fields,
                "atomics_or_locks": "Locks" if prog.needs_locks else "Atomic HW",
                "bidirectional": prog.bidirectional,
            }
        )
    return rows
