"""NF service chains: several stateful programs composed on one datapath.

Middleboxes rarely run alone — a firewall feeds a rate limiter feeds a
monitor (the NFV setting of the frameworks in §5 [44, 51, 64]).  A chain
is itself a deterministic stateful program, so SCR replicates it like any
other.  What a chain uniquely exposes is §2.2's sharding-granularity
problem: its stages may key their state on *incomparable* fields (one per
source IP, one per destination IP), and then **no** RSS configuration can
place every stage's state correctly — while replication does not care.

Semantics: stages run in order; a DROP verdict short-circuits the rest
(a dropped packet never reaches later NFs).  Each stage's state lives
under a namespaced key, so two stages keying on the same field type do not
collide.  The chain's metadata is the concatenation of the stages'
metadata, which keeps it a fixed-size, sequencer-carriable ``f(p)``.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from ..packet import Packet
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["ChainMetadata", "ProgramChain"]


class ChainMetadata(PacketMetadata):
    """Concatenated stage metadata.  Subclassed dynamically per chain
    geometry (stage metadata classes fix the layout)."""

    #: stage metadata classes, set on the dynamic subclass.
    STAGE_CLASSES: Tuple[type, ...] = ()

    __slots__ = ("stages",)

    def __init__(self, stages: Sequence[PacketMetadata]) -> None:
        if len(stages) != len(self.STAGE_CLASSES):
            raise ValueError("stage count mismatch")
        self.stages = tuple(stages)

    @classmethod
    def size(cls) -> int:
        return sum(c.size() for c in cls.STAGE_CLASSES)

    def pack(self) -> bytes:
        return b"".join(m.pack() for m in self.stages)

    @classmethod
    def unpack(cls, data: bytes) -> "ChainMetadata":
        stages = []
        offset = 0
        for stage_cls in cls.STAGE_CLASSES:
            stages.append(stage_cls.unpack(data[offset : offset + stage_cls.size()]))
            offset += stage_cls.size()
        return cls(stages)

    def astuple(self) -> Tuple[Any, ...]:
        return tuple(m.astuple() for m in self.stages)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.astuple() == other.astuple()

    def __hash__(self) -> int:
        return hash(self.astuple())

    def __repr__(self) -> str:
        return f"ChainMetadata({', '.join(repr(m) for m in self.stages)})"


class ProgramChain(PacketProgram):
    """Run ``stages`` in order with DROP short-circuiting (§5 NFV chains)."""

    def __init__(self, stages: Sequence[PacketProgram]) -> None:
        if not stages:
            raise ValueError("a chain needs at least one stage")
        for stage in stages:
            if type(stage).apply is not PacketProgram.apply:
                raise ValueError(
                    f"stage {stage.name!r} overrides apply(); chains compose "
                    "transition-based programs only"
                )
        self.stages: List[PacketProgram] = list(stages)
        self.name = "chain(" + "+".join(s.name for s in stages) + ")"
        self.needs_locks = any(s.needs_locks for s in stages)
        self.bidirectional = any(s.bidirectional for s in stages)
        self.has_global_state = any(
            getattr(s, "has_global_state", False) for s in stages
        )
        self.rss_fields = "composite: " + "; ".join(s.rss_fields for s in stages)
        # Dynamic metadata class fixing this chain's layout.
        self.metadata_cls = type(
            "ChainMetadata_" + "_".join(s.name for s in stages),
            (ChainMetadata,),
            {"STAGE_CLASSES": tuple(s.metadata_cls for s in stages)},
        )

    # -- PacketProgram interface ---------------------------------------------------

    def extract_metadata(self, pkt: Packet) -> ChainMetadata:
        return self.metadata_cls([s.extract_metadata(pkt) for s in self.stages])

    def key(self, meta: PacketMetadata) -> Hashable:
        """The chain has no single key; expose the first stage's for
        steering heuristics (the point is precisely that no one key
        covers every stage)."""
        return (0, self.stages[0].key(meta.stages[0]))

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        raise NotImplementedError(
            "a chain updates one entry per stage; use apply()"
        )

    def apply(self, state: StateMap, meta: ChainMetadata) -> Verdict:
        final = Verdict.PASS
        for i, (stage, stage_meta) in enumerate(zip(self.stages, meta.stages)):
            key = (i, stage.key(stage_meta))
            old = state.lookup(key)
            new, verdict = stage.transition(old, stage_meta)
            if new is None:
                if old is not None:
                    state.delete(key)
            else:
                state.update(key, new)
            if verdict == Verdict.DROP:
                return Verdict.DROP  # later stages never see the packet
            if verdict == Verdict.TX:
                final = Verdict.TX
        return final

    def touches_global(self, meta: PacketMetadata) -> bool:
        return any(
            stage.touches_global(stage_meta)
            for stage, stage_meta in zip(self.stages, meta.stages)
        )

    # -- introspection ---------------------------------------------------------------

    def stage_state(self, state: StateMap, index: int) -> dict:
        """One stage's slice of the chain's state map."""
        return {
            k[1]: v for k, v in state.items()
            if isinstance(k, tuple) and len(k) == 2 and k[0] == index
        }
