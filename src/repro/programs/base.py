"""Program abstractions: deterministic stateful packet programs + metadata.

Every evaluated program (Table 1) is expressed in the same shape so a single
SCR engine, sharding engine, and shared-state engine can run all of them:

* ``extract_metadata(pkt)`` — the per-packet metadata ``f(p)`` (§3.2): the
  exact packet bits the program's state transition depends on, including
  *control* dependencies like "was this IPv4/TCP at all" (App. C).  The
  metadata packs to a fixed number of bytes (Table 1's "metadata size"),
  which is what the sequencer stores and piggybacks.
* ``key(meta)`` — which state entry this packet reads/updates.
* ``transition(value, meta)`` — the pure, deterministic state transition:
  old value (None when absent) → (new value, verdict).  Returning a new
  value of None deletes the entry.  Determinism is what makes replication
  correct (Principle #1); timestamps come from the metadata, never from a
  local clock (§3.4).

``process`` composes these into the single-threaded reference semantics that
every parallelization must match.
"""

from __future__ import annotations

import enum
import struct
from abc import ABC, abstractmethod
from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..state.maps import StateMap

__all__ = [
    "Verdict",
    "PacketMetadata",
    "PacketProgram",
    "SCR_DETERMINISTIC_METHODS",
    "SCR_PURE_METHODS",
    "SCR_META_READER_METHODS",
    "SCR_COMMUTATIVE_FIELDS_ATTR",
]

#: Name of the per-program commutativity marker (see PacketProgram).  The
#: dataflow layer (``repro.analysis.dataflow``) classifies every written
#: state field; rule SCR007 cross-checks the declaration against that
#: classification in both directions, so the marker can never drift from
#: the code.
SCR_COMMUTATIVE_FIELDS_ATTR = "SCR_COMMUTATIVE_FIELDS"

# -- machine-readable SCR contract ------------------------------------------
#
# The replication-correctness contract stated in the class docstrings below,
# in a form tooling can consume.  ``repro.analysis`` (the ``scr-repro lint``
# static analyzer) reads these to decide which methods it must prove
# deterministic (SCR001), pure (SCR002), and metadata-complete (SCR003).
# Extending a program with a new contract method?  Add it here and the
# analyzer follows.

#: Methods that must be deterministic functions of their arguments alone
#: (Principle #1, §3.4): no clocks, no RNGs, no hidden module state.
#: ``transition`` helpers reached via ``self.helper()`` inherit the
#: obligation transitively.
SCR_DETERMINISTIC_METHODS: Tuple[str, ...] = (
    "extract_metadata",
    "key",
    "transition",
    "apply",
    "fast_forward",
    "touches_global",
)

#: Methods that must also be *pure*: no mutation of ``self``, no I/O, and
#: no direct StateMap access — all state flows through the ``value``
#: argument so every replica computes the same update (§3.2).
SCR_PURE_METHODS: Tuple[str, ...] = ("transition",)

#: Methods whose reads of the ``meta`` parameter must stay within the
#: declared ``FIELDS`` — the metadata-completeness obligation of App. C
#: (every packet bit the transition depends on is captured by ``f(p)``).
SCR_META_READER_METHODS: Tuple[str, ...] = (
    "key",
    "transition",
    "apply",
    "touches_global",
)


class Verdict(enum.IntEnum):
    """XDP-style per-packet verdicts."""

    DROP = 1
    PASS = 2
    TX = 3


class PacketMetadata:
    """Fixed-format per-packet metadata ``f(p)``.

    Subclasses (one per program) declare a struct format and field names;
    ``pack``/``unpack`` round-trip through exactly ``size()`` bytes.  The
    sequencer's history rows and the SCR packet format carry these bytes.
    """

    #: struct format (network byte order); subclasses override.
    FORMAT = "!"
    #: field names in FORMAT order; subclasses override.
    FIELDS: Tuple[str, ...] = ()

    __slots__ = ()

    def __init__(self, **kwargs: Any) -> None:
        for name in self.FIELDS:
            setattr(self, name, kwargs.get(name, 0))

    @classmethod
    def size(cls) -> int:
        return struct.calcsize(cls.FORMAT)

    def pack(self) -> bytes:
        return struct.pack(self.FORMAT, *(getattr(self, f) for f in self.FIELDS))

    @classmethod
    def unpack(cls, data: bytes) -> "PacketMetadata":
        values = struct.unpack(cls.FORMAT, data[: cls.size()])
        return cls(**dict(zip(cls.FIELDS, values)))

    def astuple(self) -> Tuple[Any, ...]:
        return tuple(getattr(self, f) for f in self.FIELDS)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.astuple() == other.astuple()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self.astuple())

    def __repr__(self) -> str:
        fields = ", ".join(f"{f}={getattr(self, f)!r}" for f in self.FIELDS)
        return f"{type(self).__name__}({fields})"


class PacketProgram(ABC):
    """A deterministic stateful packet-processing program (Table 1 row)."""

    #: short identifier used by the registry / benches.
    name: str = "program"
    #: metadata class; its packed size is Table 1's "metadata size".
    metadata_cls: type = PacketMetadata
    #: which header fields RSS must hash on for correct sharding (Table 1).
    rss_fields: str = "5-tuple"
    #: whether the update fits hardware atomics or needs locks (Table 1).
    needs_locks: bool = True
    #: True when both directions of a connection share one state entry,
    #: requiring symmetric RSS [70] for the sharding baselines.
    bidirectional: bool = False
    #: True when some packets update state shared by ALL packets (e.g. a
    #: NAT's free-port pool, §2.2) — state that sharding cannot place.
    has_global_state: bool = False
    #: State-value fields whose updates are *commutative* (pure
    #: accumulate-add / OR / max with no read-modify-write branching), so
    #: replicas converge under any interleaving.  Relaxed SCR prunes the
    #: piggybacked history to one merged delta for such programs
    #: ("Relaxing constraints in stateful network data plane design"); the
    #: declaration is machine-checked against the dataflow classification
    #: by scrlint rule SCR007.  Scalar-valued programs use the single
    #: field name ``"value"``.
    SCR_COMMUTATIVE_FIELDS: Tuple[str, ...] = ()

    def touches_global(self, meta: "PacketMetadata") -> bool:
        """Does this packet update the program's global state (if any)?

        Used by the shared-state performance engines to serialize on the
        global entry, and by correctness arguments about sharding.
        """
        return False

    # -- the three pure pieces ----------------------------------------------

    @abstractmethod
    def extract_metadata(self, pkt: Packet) -> PacketMetadata:
        """Compute ``f(p)``: every packet bit the transition depends on."""

    @abstractmethod
    def key(self, meta: PacketMetadata) -> Hashable:
        """The state-map key this packet touches (None-like keys not allowed)."""

    @abstractmethod
    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        """Pure state transition: (old value | None) → (new value | None, verdict)."""

    # -- composed reference semantics ---------------------------------------

    @property
    def metadata_size(self) -> int:
        return self.metadata_cls.size()

    def apply(self, state: StateMap, meta: PacketMetadata) -> Verdict:
        """Run one transition against ``state`` and return the verdict."""
        k = self.key(meta)
        old = state.lookup(k)
        new, verdict = self.transition(old, meta)
        if new is None:
            if old is not None:
                state.delete(k)
        else:
            state.update(k, new)
        return verdict

    def fast_forward(self, state: StateMap, meta: PacketMetadata) -> None:
        """Apply a *historic* packet's transition, discarding its verdict.

        This is the body of the App. C catch-up loop: historic packets only
        evolve the state; no verdict is emitted for them.
        """
        self.apply(state, meta)

    def process(self, state: StateMap, pkt: Packet) -> Verdict:
        """Single-threaded reference: extract, transition, verdict."""
        return self.apply(state, self.extract_metadata(pkt))
