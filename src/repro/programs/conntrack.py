"""TCP connection state tracker.

Table 1 row: key = 5-tuple (bidirectional), value = (TCP state, timestamp,
sequence number), metadata = 30 bytes/packet, RSS = symmetric 5-tuple hashing
[70], update too complex for atomics → locks for the shared baseline.

The tracker follows the conntrack design sketched in [39]: both directions of
a connection share one state entry keyed by the normalized 5-tuple; the
three-way handshake walks SYN_SENT → SYN_RECV → ESTABLISHED; FIN exchanges
walk FIN_WAIT → CLOSING → closed (entry deleted); RST tears the entry down
immediately.  Deleting on close is what lets the evaluation replay traces
whose flows all begin with SYN and end with FIN (§4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Hashable, Optional, Tuple

from ..packet import IPPROTO_TCP, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN, Packet
from ..packet.flow import FiveTuple
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["TcpState", "ConnEntry", "ConntrackMetadata", "ConnectionTracker"]


class TcpState(enum.IntEnum):
    """Connection states tracked per normalized 5-tuple."""

    SYN_SENT = 1
    SYN_RECV = 2
    ESTABLISHED = 3
    FIN_WAIT = 4  # one side has sent FIN
    CLOSING = 5  # both sides have sent FIN, awaiting final ACK


@dataclass(frozen=True)
class ConnEntry:
    """The tracked value: state, originator identity, last seq + timestamp."""

    state: TcpState
    orig_src_ip: int
    orig_src_port: int
    last_seq: int
    last_ts: int
    fin_from_orig: bool = False
    fin_from_resp: bool = False


class ConntrackMetadata(PacketMetadata):
    """30 bytes: 5-tuple (13), TCP flags (1), seq (4), ack (4), timestamp (8)."""

    FORMAT = "!IIHHBBIIQ"
    FIELDS = (
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "proto",
        "flags",
        "seq",
        "ack",
        "timestamp",
    )
    __slots__ = FIELDS


class ConnectionTracker(PacketProgram):
    """Track TCP connection establishment and teardown per connection.

    ``idle_timeout_ns`` (optional) evicts entries whose last packet is
    older than the timeout, lazily, when the next packet of the same
    connection arrives.  The age is computed from the *sequencer* timestamp
    carried in the metadata — never a core-local clock — so expiry is
    deterministic and replicates correctly (§3.4).
    """

    name = "conntrack"
    metadata_cls = ConntrackMetadata
    rss_fields = "5-tuple (symmetric)"
    needs_locks = True
    bidirectional = True

    def __init__(self, idle_timeout_ns: Optional[int] = None) -> None:
        if idle_timeout_ns is not None and idle_timeout_ns <= 0:
            raise ValueError("idle_timeout_ns must be positive")
        self.idle_timeout_ns = idle_timeout_ns

    def extract_metadata(self, pkt: Packet) -> ConntrackMetadata:
        if not (pkt.is_ipv4 and pkt.is_tcp):
            return ConntrackMetadata(proto=0)
        ft = pkt.five_tuple()
        return ConntrackMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            flags=pkt.l4.flags,
            seq=pkt.l4.seq,
            ack=pkt.l4.ack,
            timestamp=pkt.timestamp_ns,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        ft = FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port, meta.proto)
        return ft.normalized()

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if meta.proto != IPPROTO_TCP:
            return value, Verdict.PASS

        entry: Optional[ConnEntry] = value
        if (
            entry is not None
            and self.idle_timeout_ns is not None
            and meta.timestamp - entry.last_ts > self.idle_timeout_ns
        ):
            # Idle expiry (deterministic: sequencer timestamps only).  The
            # stale entry is treated as absent; the packet is judged fresh.
            entry = None
        flags = meta.flags
        syn = bool(flags & TCP_SYN)
        fin = bool(flags & TCP_FIN)
        rst = bool(flags & TCP_RST)
        ack = bool(flags & TCP_ACK)

        if rst:
            # RST tears down whatever state exists; the packet itself passes
            # so the peer also sees the reset.
            return None, Verdict.TX

        if entry is None:
            if syn and not ack:
                entry = ConnEntry(
                    state=TcpState.SYN_SENT,
                    orig_src_ip=meta.src_ip,
                    orig_src_port=meta.src_port,
                    last_seq=meta.seq,
                    last_ts=meta.timestamp,
                )
                return entry, Verdict.TX
            # Mid-stream packet for an untracked connection.
            return None, Verdict.DROP

        from_orig = (
            meta.src_ip == entry.orig_src_ip and meta.src_port == entry.orig_src_port
        )
        state = entry.state
        new_state = state
        fin_orig, fin_resp = entry.fin_from_orig, entry.fin_from_resp

        if state is TcpState.SYN_SENT:
            if syn and ack and not from_orig:
                new_state = TcpState.SYN_RECV
            elif syn and not ack and from_orig:
                new_state = TcpState.SYN_SENT  # SYN retransmission
            else:
                return entry, Verdict.DROP
        elif state is TcpState.SYN_RECV:
            if ack and not syn and from_orig:
                new_state = TcpState.ESTABLISHED
            elif syn and ack and not from_orig:
                new_state = TcpState.SYN_RECV  # SYN/ACK retransmission
            else:
                return entry, Verdict.DROP
        elif state is TcpState.ESTABLISHED:
            if fin:
                new_state = TcpState.FIN_WAIT
                fin_orig = fin_orig or from_orig
                fin_resp = fin_resp or not from_orig
        elif state is TcpState.FIN_WAIT:
            if fin:
                fin_orig = fin_orig or from_orig
                fin_resp = fin_resp or not from_orig
                if fin_orig and fin_resp:
                    new_state = TcpState.CLOSING
        elif state is TcpState.CLOSING:
            if ack and not fin:
                # Final ACK: connection fully closed, delete the entry.
                return None, Verdict.TX

        new_entry = replace(
            entry,
            state=new_state,
            last_seq=meta.seq,
            last_ts=meta.timestamp,
            fin_from_orig=fin_orig,
            fin_from_resp=fin_resp,
        )
        return new_entry, Verdict.TX
