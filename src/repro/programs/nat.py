"""NAT gateway — an extension program with *global* shared state.

§2.2 motivates exactly this case: "there may be parts of the program state
that are shared across all packets, such as a list of free external ports
in a Network Address Translation (NAT) application".  No flow-sharding
scheme can place such state correctly — every core needs to update the one
port pool.  Under SCR, the pool is just more replicated state: every core
replays every allocation in the same order and converges to identical
bindings, with no synchronization.

The program keeps two kinds of entries in one map:

* ``("bind", five_tuple)`` → allocated external port, per connection;
* ``NAT_POOL_KEY`` → the global allocator: (next fresh index, free list),
  kept as plain tuples so replicas are bit-identical.

Allocation is deterministic: released ports are reused LIFO, then fresh
ports are handed out in order.  SYN allocates, FIN/RST releases.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import IPPROTO_TCP, TCP_FIN, TCP_RST, TCP_SYN, Packet
from ..packet.flow import FiveTuple
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["NatMetadata", "NatGateway", "NAT_POOL_KEY"]

#: The single global allocator entry every packet may touch.
NAT_POOL_KEY = "_nat_port_pool"


class NatMetadata(PacketMetadata):
    """15 bytes: 5-tuple (13), TCP flags (1), validity (1)."""

    FORMAT = "!IIHHBBB"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "flags", "valid")
    __slots__ = FIELDS


class NatGateway(PacketProgram):
    """Source NAT with a global free-port pool (extension, not in Table 1)."""

    name = "nat"
    metadata_cls = NatMetadata
    rss_fields = "5-tuple"
    needs_locks = True
    #: the free-port pool is one entry shared by ALL packets — the case
    #: where sharding cannot even be configured correctly (§2.2).
    has_global_state = True

    def __init__(self, port_base: int = 40_000, port_count: int = 1024) -> None:
        if port_count < 1:
            raise ValueError("need at least one external port")
        if not 1 <= port_base <= 65_535 - port_count:
            raise ValueError("port range must fit in 16 bits")
        self.port_base = port_base
        self.port_count = port_count

    def extract_metadata(self, pkt: Packet) -> NatMetadata:
        if not (pkt.is_ipv4 and pkt.is_tcp):
            return NatMetadata(valid=0)
        ft = pkt.five_tuple()
        return NatMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            flags=pkt.l4.flags,
            valid=1,
        )

    def touches_global(self, meta: PacketMetadata) -> bool:
        """SYN allocates from and FIN/RST releases to the shared pool."""
        return bool(meta.valid) and bool(meta.flags & (TCP_SYN | TCP_FIN | TCP_RST))

    def key(self, meta: PacketMetadata) -> Hashable:
        return (
            "bind",
            FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                      IPPROTO_TCP),
        )

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        raise NotImplementedError(
            "NAT updates two entries per packet (binding + global pool); "
            "use apply()"
        )

    # NAT overrides apply() because one packet may touch both its flow
    # binding and the global pool; apply remains pure in (state, meta).
    def apply(self, state: StateMap, meta: NatMetadata) -> Verdict:
        if not meta.valid:
            return Verdict.PASS
        flow_key = self.key(meta)
        binding = state.lookup(flow_key)
        syn = bool(meta.flags & TCP_SYN)
        closing = bool(meta.flags & (TCP_FIN | TCP_RST))

        if binding is None:
            if not syn:
                # mid-stream packet with no binding: cannot translate.
                return Verdict.DROP
            port = self._allocate(state)
            if port is None:
                return Verdict.DROP  # pool exhausted
            state.update(flow_key, port)
            binding = port

        if closing:
            self._release(state, binding)
            state.delete(flow_key)
        return Verdict.TX

    # -- the global allocator -------------------------------------------------

    def _pool(self, state: StateMap) -> Tuple[int, tuple]:
        return state.lookup(NAT_POOL_KEY) or (0, ())

    def _allocate(self, state: StateMap) -> Optional[int]:
        next_fresh, free = self._pool(state)
        if free:
            port, free = free[-1], free[:-1]  # LIFO reuse
        elif next_fresh < self.port_count:
            port = self.port_base + next_fresh
            next_fresh += 1
        else:
            return None
        state.update(NAT_POOL_KEY, (next_fresh, free))
        return port

    def _release(self, state: StateMap, port: int) -> None:
        next_fresh, free = self._pool(state)
        state.update(NAT_POOL_KEY, (next_fresh, free + (port,)))

    # -- introspection ----------------------------------------------------------

    def bindings(self, state: StateMap) -> dict:
        return {
            k[1]: v for k, v in state.items()
            if isinstance(k, tuple) and k[0] == "bind"
        }

    def ports_in_use(self, state: StateMap) -> int:
        next_fresh, free = self._pool(state)
        return next_fresh - len(free)
