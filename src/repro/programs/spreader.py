"""Super-spreader detector: per-source destination bitmap (OR-accumulate).

Extension program for the OR-accumulate commutative update family: a
source scanning many destinations sets bits in a 64-bucket destination
bitmap.  Bitwise OR commutes and is idempotent, so replicas applying the
same packets in any order — or even applying one packet twice during
recovery — converge to the same bitmap.  This is the sketch-style state
real scan detectors keep per source.

Key = source IP (cross-flow: one entry aggregates every flow the source
opens), value = 64-bit bitmap, update fits a hardware fetch-OR, always
forwards; sources above a fan-out threshold are read out of the map by the
control plane.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["SpreaderMetadata", "SuperSpreaderDetector"]

#: destination-bitmap width; 64 buckets ≈ the distinct-count granularity a
#: per-source scan detector needs.
_BUCKETS = 64


class SpreaderMetadata(PacketMetadata):
    """9 bytes: source IP (4), destination IP (4), validity flag (1)."""

    FORMAT = "!IIB"
    FIELDS = ("src_ip", "dst_ip", "valid")
    __slots__ = FIELDS


class SuperSpreaderDetector(PacketProgram):
    """Accumulate a per-source bitmap of destination buckets touched."""

    name = "spreader"
    metadata_cls = SpreaderMetadata
    rss_fields = "src & dst IP"
    needs_locks = False  # bitmap union fits a hardware fetch-OR
    #: OR-accumulate: commutative and idempotent, so deltas merge freely.
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def __init__(self, fanout_threshold: int = 32) -> None:
        if not 1 <= fanout_threshold <= _BUCKETS:
            raise ValueError(f"fanout_threshold must be in [1, {_BUCKETS}]")
        self.fanout_threshold = fanout_threshold

    def extract_metadata(self, pkt: Packet) -> SpreaderMetadata:
        if not pkt.is_ipv4:
            return SpreaderMetadata(valid=0)
        return SpreaderMetadata(src_ip=pkt.ip.src, dst_ip=pkt.ip.dst, valid=1)

    def key(self, meta: PacketMetadata) -> Hashable:
        return meta.src_ip

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        bits = (value or 0) | (1 << (meta.dst_ip % _BUCKETS))
        return bits, Verdict.TX

    def fanout(self, bitmap: int) -> int:
        """Distinct destination buckets a bitmap covers."""
        return bin(bitmap).count("1")

    def spreaders(self, state: StateMap) -> Tuple[Hashable, ...]:
        """Sources above the fan-out threshold (control-plane helper)."""
        return tuple(k for k, v in state.items()
                     if self.fanout(v) >= self.fanout_threshold)
