"""Token-bucket policer: per-flow rate limiting with sequencer timestamps.

Table 1 row: key = 5-tuple, value = (last packet timestamp, tokens),
metadata = 18 bytes/packet, RSS = 5-tuple, locks for the shared baseline.

Determinism (§3.4): the refill computation never reads a local clock — it
uses the timestamp the sequencer stamped into the packet metadata, so every
replica computes the same token balance.  Token arithmetic is integer
(milli-tokens) to keep replicas bit-identical.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..packet.flow import FiveTuple
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["TokenBucketMetadata", "TokenBucketPolicer", "BucketState"]

#: tokens are accounted in 1/1000ths so refill math stays integral.
MILLI = 1000

_TS_BITS = 32
_TS_MOD = 1 << _TS_BITS


class TokenBucketMetadata(PacketMetadata):
    """18 bytes: 5-tuple (13), 32-bit µs timestamp (4), validity (1)."""

    FORMAT = "!IIHHBIB"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "timestamp_us", "valid")
    __slots__ = FIELDS


class BucketState(tuple):
    """(last_timestamp_us, milli_tokens) value tuple."""

    __slots__ = ()

    def __new__(cls, last_ts_us: int = 0, milli_tokens: int = 0) -> "BucketState":
        return super().__new__(cls, (last_ts_us, milli_tokens))

    @property
    def last_ts_us(self) -> int:
        return self[0]

    @property
    def milli_tokens(self) -> int:
        return self[1]


class TokenBucketPolicer(PacketProgram):
    """Police each flow to ``rate_pps`` packets/s with ``burst`` packet burst."""

    name = "token_bucket"
    metadata_cls = TokenBucketMetadata
    rss_fields = "5-tuple"
    needs_locks = True

    def __init__(self, rate_pps: int = 10_000, burst: int = 32) -> None:
        if rate_pps < 1 or burst < 1:
            raise ValueError("rate and burst must be positive")
        self.rate_pps = rate_pps
        self.burst = burst
        self._capacity_milli = burst * MILLI
        # milli-tokens accrued per microsecond, kept as a rational to avoid
        # floating point: refill = elapsed_us * rate_pps * MILLI / 1e6.
        self._refill_num = rate_pps * MILLI
        self._refill_den = 1_000_000

    def extract_metadata(self, pkt: Packet) -> TokenBucketMetadata:
        if not pkt.is_ipv4:
            return TokenBucketMetadata(valid=0)
        ft = pkt.five_tuple()
        return TokenBucketMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            timestamp_us=(pkt.timestamp_ns // 1000) % _TS_MOD,
            valid=1,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port, meta.proto)

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        now = meta.timestamp_us
        if value is None:
            # New flows start with a full bucket and spend one token.
            tokens = self._capacity_milli - MILLI
            return BucketState(now, tokens), Verdict.TX
        elapsed = (now - value.last_ts_us) % _TS_MOD
        refill = elapsed * self._refill_num // self._refill_den
        tokens = min(self._capacity_milli, value.milli_tokens + refill)
        if tokens >= MILLI:
            return BucketState(now, tokens - MILLI), Verdict.TX
        return BucketState(now, tokens), Verdict.DROP
