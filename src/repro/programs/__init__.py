"""The evaluated packet-processing programs (Table 1) and their abstractions."""

from .base import PacketMetadata, PacketProgram, Verdict
from .chain import ChainMetadata, ProgramChain
from .conntrack import ConnectionTracker, ConnEntry, ConntrackMetadata, TcpState
from .ddos import DDoSMetadata, DDoSMitigator, VictimMetadata, VictimMonitor
from .forwarder import ForwarderMetadata, StatelessForwarder
from .heavy_hitter import FlowStats, HeavyHitterMetadata, HeavyHitterMonitor
from .load_balancer import LoadBalancerMetadata, MaglevLoadBalancer, MaglevTable
from .nat import NAT_POOL_KEY, NatGateway, NatMetadata
from .peak_meter import PeakMeter, PeakMeterMetadata
from .port_knocking import KnockState, PortKnockingFirewall, PortKnockingMetadata
from .registry import (
    PAPER_PROGRAMS,
    PROGRAM_FACTORIES,
    make_program,
    program_names,
    table1_rows,
)
from .sampler import SamplerMetadata, SampleStats, TelemetrySampler
from .spreader import SpreaderMetadata, SuperSpreaderDetector
from .token_bucket import BucketState, TokenBucketMetadata, TokenBucketPolicer

__all__ = [
    "PacketMetadata",
    "PacketProgram",
    "Verdict",
    "ChainMetadata",
    "ProgramChain",
    "VictimMetadata",
    "VictimMonitor",
    "ConnectionTracker",
    "ConnEntry",
    "ConntrackMetadata",
    "TcpState",
    "DDoSMetadata",
    "DDoSMitigator",
    "ForwarderMetadata",
    "StatelessForwarder",
    "FlowStats",
    "HeavyHitterMetadata",
    "HeavyHitterMonitor",
    "KnockState",
    "PortKnockingFirewall",
    "PortKnockingMetadata",
    "LoadBalancerMetadata",
    "MaglevLoadBalancer",
    "MaglevTable",
    "NAT_POOL_KEY",
    "NatGateway",
    "NatMetadata",
    "PeakMeter",
    "PeakMeterMetadata",
    "SpreaderMetadata",
    "SuperSpreaderDetector",
    "PAPER_PROGRAMS",
    "PROGRAM_FACTORIES",
    "make_program",
    "program_names",
    "table1_rows",
    "SamplerMetadata",
    "SampleStats",
    "TelemetrySampler",
    "BucketState",
    "TokenBucketMetadata",
    "TokenBucketPolicer",
]
