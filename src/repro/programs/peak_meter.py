"""Peak meter: per-flow maximum packet size (a monotone max-accumulator).

Extension program exercising the third commutative update family the
relaxed-replication literature identifies ("Relaxing constraints in
stateful network data plane design"): alongside accumulate-add (ddos) and
OR-accumulate (spreader), a running ``max`` commutes — replicas applying
the same packet set in any order converge to the same peak.  Jumbo-frame
detection and MTU auditing keep exactly this state: the largest packet
seen per flow.

Key = 5-tuple, value = peak wire length (scalar), update fits a hardware
compare-and-swap loop (atomic max), always forwards.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..packet.flow import FiveTuple
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["PeakMeterMetadata", "PeakMeter"]


class PeakMeterMetadata(PacketMetadata):
    """18 bytes: the 5-tuple (13), packet length (4), validity flag (1)."""

    FORMAT = "!IIHHBIB"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "pkt_len", "valid")
    __slots__ = FIELDS


class PeakMeter(PacketProgram):
    """Track the largest packet seen per flow."""

    name = "peak_meter"
    metadata_cls = PeakMeterMetadata
    rss_fields = "5-tuple"
    needs_locks = False  # a running max fits an atomic CAS loop
    #: max-accumulate: order-independent, so replicas may merge deltas.
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def extract_metadata(self, pkt: Packet) -> PeakMeterMetadata:
        if not pkt.is_ipv4:
            return PeakMeterMetadata(valid=0)
        ft = pkt.five_tuple()
        return PeakMeterMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            pkt_len=pkt.wire_len,
            valid=1,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                         meta.proto)

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        peak = max(value or 0, meta.pkt_len)
        return peak, Verdict.TX

    def peaks_above(self, state: StateMap, floor: int) -> Tuple[Hashable, ...]:
        """Flows whose peak exceeds ``floor`` (control-plane helper)."""
        return tuple(k for k, v in state.items() if v > floor)
