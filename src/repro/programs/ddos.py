"""DDoS mitigator: per-source-IP packet counter with a drop threshold.

Table 1 row: key = source IP, value = count, metadata = 4 bytes/packet,
RSS hash fields = src & dst IP, update fits hardware atomics (fetch-add).
Modeled on XDP-based DDoS mitigation [42]: sources exceeding a packet-count
threshold get their traffic dropped.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Tuple

from ..packet import Packet
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["DDoSMetadata", "DDoSMitigator", "VictimMetadata", "VictimMonitor"]


class DDoSMetadata(PacketMetadata):
    """4 bytes: the source IP.  A zero source IP encodes "not IPv4"."""

    FORMAT = "!I"
    FIELDS = ("src_ip",)
    __slots__ = ("src_ip",)


class DDoSMitigator(PacketProgram):
    """Count packets per source; drop sources above ``threshold`` packets."""

    name = "ddos"
    metadata_cls = DDoSMetadata
    rss_fields = "src & dst IP"
    needs_locks = False  # count increment fits a hardware atomic
    #: the counter is pure accumulate-add: replicas may merge deltas.
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def __init__(self, threshold: int = 10_000) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def extract_metadata(self, pkt: Packet) -> DDoSMetadata:
        src = pkt.ip.src if pkt.is_ipv4 else 0
        return DDoSMetadata(src_ip=src)

    def key(self, meta: PacketMetadata) -> Hashable:
        return meta.src_ip

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if meta.src_ip == 0:
            # Non-IPv4 traffic is passed through untouched and untracked.
            return value, Verdict.PASS
        count = (value or 0) + 1
        verdict = Verdict.DROP if count > self.threshold else Verdict.TX
        return count, verdict


class VictimMetadata(PacketMetadata):
    """4 bytes: the destination IP.  Zero encodes "not IPv4"."""

    FORMAT = "!I"
    FIELDS = ("dst_ip",)
    __slots__ = ("dst_ip",)


class VictimMonitor(PacketProgram):
    """Count packets per *destination* (inbound-attack victim detection).

    The mirror image of :class:`DDoSMitigator`: keyed on the destination
    IP.  Chaining the two (service chain, §5) produces state keyed on
    incomparable fields — per-source and per-destination — which no single
    RSS configuration can shard correctly (§2.2); SCR replicates both.
    The monitor never drops; hot victims are flagged in state.
    """

    name = "victim_monitor"
    metadata_cls = VictimMetadata
    rss_fields = "src & dst IP"
    needs_locks = False
    #: same accumulate-add counter as the mitigator, keyed on dst.
    SCR_COMMUTATIVE_FIELDS = ("value",)

    def __init__(self, threshold: int = 10_000) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def extract_metadata(self, pkt: Packet) -> VictimMetadata:
        return VictimMetadata(dst_ip=pkt.ip.dst if pkt.is_ipv4 else 0)

    def key(self, meta: PacketMetadata) -> Hashable:
        return meta.dst_ip

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if meta.dst_ip == 0:
            return value, Verdict.PASS
        return (value or 0) + 1, Verdict.TX

    def hot_victims(self, state: StateMap) -> List[Hashable]:
        return [k for k, v in state.items() if v > self.threshold]
