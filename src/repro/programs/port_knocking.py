"""Port-knocking firewall — the running example of App. C.

Table 1 row: key = source IP, value = knocking state, metadata = 8 bytes,
RSS = src & dst IP, locks for the shared baseline.

A source that sends TCP packets to the secret ports in order
(PORT_1, PORT_2, PORT_3) moves CLOSED_1 → CLOSED_2 → CLOSED_3 → OPEN; only
OPEN sources may pass.  Any out-of-sequence knock resets to CLOSED_1, and
non-IPv4/TCP packets are dropped outright, exactly as the App. C listing.
"""

from __future__ import annotations

import enum
from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["KnockState", "PortKnockingMetadata", "PortKnockingFirewall"]


class KnockState(enum.IntEnum):
    CLOSED_1 = 1
    CLOSED_2 = 2
    CLOSED_3 = 3
    OPEN = 4


class PortKnockingMetadata(PacketMetadata):
    """8 bytes: src IP (4), TCP dst port (2), validity (1), pad (1).

    ``valid`` carries the App. C control dependency (l3proto/l4proto check):
    the state transition must know whether the packet was IPv4/TCP at all.
    """

    FORMAT = "!IHBB"
    FIELDS = ("src_ip", "dst_port", "valid", "_pad")
    __slots__ = FIELDS


class PortKnockingFirewall(PacketProgram):
    """The App. C port-knocking state machine, one automaton per source IP."""

    name = "port_knocking"
    metadata_cls = PortKnockingMetadata
    rss_fields = "src & dst IP"
    needs_locks = True

    def __init__(self, ports: Tuple[int, int, int] = (7001, 7002, 7003)) -> None:
        if len(ports) != 3 or len(set(ports)) != 3:
            raise ValueError("need three distinct knock ports")
        self.ports = tuple(ports)

    def extract_metadata(self, pkt: Packet) -> PortKnockingMetadata:
        if not (pkt.is_ipv4 and pkt.is_tcp):
            return PortKnockingMetadata(valid=0)
        return PortKnockingMetadata(
            src_ip=pkt.ip.src, dst_port=pkt.l4.dport, valid=1
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return meta.src_ip

    def next_state(self, current: KnockState, dport: int) -> KnockState:
        """The ``get_new_state`` function from the App. C listing."""
        if current == KnockState.CLOSED_1 and dport == self.ports[0]:
            return KnockState.CLOSED_2
        if current == KnockState.CLOSED_2 and dport == self.ports[1]:
            return KnockState.CLOSED_3
        if current == KnockState.CLOSED_3 and dport == self.ports[2]:
            return KnockState.OPEN
        if current == KnockState.OPEN:
            return KnockState.OPEN
        return KnockState.CLOSED_1

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            # App. C drops non-IPv4/TCP packets without touching state.
            return value, Verdict.DROP
        current = value if value is not None else KnockState.CLOSED_1
        new_state = self.next_state(current, meta.dst_port)
        verdict = Verdict.TX if new_state == KnockState.OPEN else Verdict.DROP
        return new_state, verdict
