"""Telemetry sampler — extension exercising §3.4's determinism rules.

A 1-in-N packet sampler (sFlow-style telemetry) normally draws random
numbers per packet.  Naive per-core PRNGs would make replicas diverge —
§3.4's second non-determinism concern.  The paper's fix is to make the
randomness a deterministic function shared by all replicas ("fixing the
seed of the pseudorandom number generator used across cores"); we go one
step further and derive each packet's coin flip from a keyed hash of the
packet's own metadata, so the decision is independent of processing order
and identical on every replica by construction.

State per flow: (packets seen, packets sampled).  Sampled packets are
marked PASS (punted to the collector, like XDP_PASS to the stack); the
rest are forwarded.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..packet.flow import FiveTuple
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["SamplerMetadata", "TelemetrySampler", "SampleStats"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _keyed_hash(data: bytes, seed: int) -> int:
    value = _FNV_OFFSET ^ seed
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    # FNV's low bits diffuse poorly on structured inputs (counters,
    # timestamps); a splitmix64-style finalizer fixes the bias the modulo
    # in should_sample() would otherwise see.
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


class SamplerMetadata(PacketMetadata):
    """21 bytes: 5-tuple (13), IP ident (2), sequencer timestamp (4),
    packet length (1 slot of the hash input), validity (1).

    The ident+timestamp fields make successive packets of one flow hash
    differently, so sampling is per *packet*, not per flow.
    """

    FORMAT = "!IIHHBHIHB"
    FIELDS = (
        "src_ip", "dst_ip", "src_port", "dst_port", "proto",
        "ident", "timestamp_us", "pkt_len", "valid",
    )
    __slots__ = FIELDS


class SampleStats(tuple):
    """(packets, sampled) value tuple."""

    __slots__ = ()

    def __new__(cls, packets: int = 0, sampled: int = 0) -> "SampleStats":
        return super().__new__(cls, (packets, sampled))

    @property
    def packets(self) -> int:
        return self[0]

    @property
    def sampled(self) -> int:
        return self[1]


class TelemetrySampler(PacketProgram):
    """Sample ~1-in-``rate`` packets with replica-identical randomness."""

    name = "sampler"
    metadata_cls = SamplerMetadata
    rss_fields = "5-tuple"
    needs_locks = False  # counter updates fit atomics
    #: both counters accumulate-add (the coin flip reads only metadata).
    SCR_COMMUTATIVE_FIELDS = ("packets", "sampled")

    def __init__(self, rate: int = 64, seed: int = 0x5EED) -> None:
        if rate < 1:
            raise ValueError("sampling rate must be >= 1")
        self.rate = rate
        self.seed = seed

    def extract_metadata(self, pkt: Packet) -> SamplerMetadata:
        if not pkt.is_ipv4:
            return SamplerMetadata(valid=0)
        ft = pkt.five_tuple()
        return SamplerMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            ident=pkt.ip.ident,
            timestamp_us=(pkt.timestamp_ns // 1000) & 0xFFFFFFFF,
            pkt_len=min(0xFFFF, pkt.wire_len),
            valid=1,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                         meta.proto)

    def should_sample(self, meta: SamplerMetadata) -> bool:
        """The deterministic coin flip: keyed hash of the packet metadata.

        Every replica computes the same bit for the same packet regardless
        of which core processes it or in what interleaving (§3.4).
        """
        return _keyed_hash(meta.pack(), self.seed) % self.rate == 0

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        old = value or SampleStats()
        sampled = self.should_sample(meta)
        new = SampleStats(old.packets + 1, old.sampled + (1 if sampled else 0))
        return new, (Verdict.PASS if sampled else Verdict.TX)
