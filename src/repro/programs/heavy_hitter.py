"""Heavy-hitter monitor: per-5-tuple flow-size accounting.

Table 1 row: key = 5-tuple, value = flow size, metadata = 18 bytes/packet,
RSS hash fields = 5-tuple, update fits hardware atomics.  The monitor always
forwards; flows whose byte count exceeds ``threshold_bytes`` are flagged in
their state entry so the control plane can read heavy hitters out of the map.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from ..packet.flow import FiveTuple
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["HeavyHitterMetadata", "HeavyHitterMonitor", "FlowStats"]


class HeavyHitterMetadata(PacketMetadata):
    """18 bytes: the 5-tuple (13), packet length (4), validity flag (1)."""

    FORMAT = "!IIHHBIB"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "pkt_len", "valid")
    __slots__ = FIELDS


class FlowStats(tuple):
    """(packets, bytes, is_heavy) — a value tuple kept hash/eq friendly."""

    __slots__ = ()

    def __new__(
        cls, packets: int = 0, nbytes: int = 0, is_heavy: bool = False
    ) -> "FlowStats":
        return super().__new__(cls, (packets, nbytes, bool(is_heavy)))

    @property
    def packets(self) -> int:
        return self[0]

    @property
    def nbytes(self) -> int:
        return self[1]

    @property
    def is_heavy(self) -> bool:
        return self[2]


class HeavyHitterMonitor(PacketProgram):
    """Track per-flow sizes; flag flows above ``threshold_bytes``."""

    name = "heavy_hitter"
    metadata_cls = HeavyHitterMetadata
    rss_fields = "5-tuple"
    needs_locks = False  # size accumulation fits a hardware atomic
    #: packet/byte counts accumulate-add; is_heavy is a monotone threshold
    #: over the byte accumulator, so it commutes with it.
    SCR_COMMUTATIVE_FIELDS = ("packets", "nbytes", "is_heavy")

    def __init__(self, threshold_bytes: int = 1_000_000) -> None:
        if threshold_bytes < 1:
            raise ValueError("threshold_bytes must be positive")
        self.threshold_bytes = threshold_bytes

    def extract_metadata(self, pkt: Packet) -> HeavyHitterMetadata:
        if not pkt.is_ipv4:
            return HeavyHitterMetadata(valid=0)
        ft = pkt.five_tuple()
        return HeavyHitterMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            pkt_len=pkt.wire_len,
            valid=1,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port, meta.proto)

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        old = value or FlowStats()
        nbytes = old.nbytes + meta.pkt_len
        new = FlowStats(
            packets=old.packets + 1,
            nbytes=nbytes,
            is_heavy=nbytes > self.threshold_bytes,
        )
        return new, Verdict.TX

    def heavy_hitters(self, state: StateMap) -> Tuple[Hashable, ...]:
        """Read the flagged flows out of a state map (control-plane helper)."""
        return tuple(k for k, v in state.items() if v.is_heavy)
