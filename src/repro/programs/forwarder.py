"""Stateless packet forwarder, used to characterize dispatch cost (Fig. 2, 9).

The forwarder swaps Ethernet source/destination and transmits the packet
back out — the "hairpin" flow of §2.1.  It keeps no state, so all per-packet
CPU work is dispatch plus whatever artificial compute latency an experiment
configures (``extra_compute_ns`` drives the Figure 9 sweep in the
performance layer).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from ..packet import Packet
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["ForwarderMetadata", "StatelessForwarder"]


class ForwarderMetadata(PacketMetadata):
    """Zero bytes: a stateless program has nothing to replicate."""

    FORMAT = "!"
    FIELDS = ()
    __slots__ = ()


class StatelessForwarder(PacketProgram):
    """MAC-swap-and-transmit with configurable artificial compute latency."""

    name = "forwarder"
    metadata_cls = ForwarderMetadata
    rss_fields = "none"
    needs_locks = False

    def __init__(self, extra_compute_ns: int = 0) -> None:
        if extra_compute_ns < 0:
            raise ValueError("extra_compute_ns must be non-negative")
        self.extra_compute_ns = extra_compute_ns

    def extract_metadata(self, pkt: Packet) -> ForwarderMetadata:
        return ForwarderMetadata()

    def key(self, meta: PacketMetadata) -> Hashable:
        return 0

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        return None, Verdict.TX

    def forward(self, pkt: Packet) -> Packet:
        """Swap MAC addresses in place and return the packet (the XDP body)."""
        pkt.eth.dst, pkt.eth.src = pkt.eth.src, pkt.eth.dst
        return pkt
