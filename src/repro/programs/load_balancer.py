"""Layer-4 load balancer — the paper's opening motivation (§1, [41], [8]).

Software load balancers (Google's Maglev [41], Meta's Katran [8]) are the
first application §1 names.  This extension implements one faithfully:

* **Maglev consistent hashing** — the real table-population algorithm from
  the Maglev paper: each backend gets a (offset, skip) permutation of the
  table; backends take turns claiming their next preferred slot until the
  table fills.  Minimal disruption on backend changes, near-equal shares.
* **Connection table** — per-5-tuple stickiness: the first packet of a
  flow consults the Maglev table and records the chosen backend; later
  packets follow the recorded binding even if the backend set has changed
  (connection affinity, the property LBs exist to preserve).

Under SCR the connection table is ordinary replicated state; the Maglev
table is read-only configuration, identical on every core.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from ..packet import TCP_FIN, TCP_RST, TCP_SYN, Packet
from ..packet.flow import FiveTuple
from ..state.maps import StateMap
from .base import PacketMetadata, PacketProgram, Verdict

__all__ = ["MaglevTable", "LoadBalancerMetadata", "MaglevLoadBalancer"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _hash(data: bytes, seed: int) -> int:
    value = _FNV_OFFSET ^ seed
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    value ^= value >> 33
    return value


class MaglevTable:
    """The Maglev lookup table: size-M consistent hashing over backends."""

    def __init__(self, backends: Sequence[int], table_size: int = 65537) -> None:
        """``table_size`` should be prime (the Maglev paper uses 65537)."""
        if not backends:
            raise ValueError("need at least one backend")
        if len(set(backends)) != len(backends):
            raise ValueError("backends must be distinct")
        if table_size < len(backends):
            raise ValueError("table must have at least one slot per backend")
        self.backends = list(backends)
        self.table_size = table_size
        self.table = self._populate()

    def _populate(self) -> List[int]:
        m = self.table_size
        n = len(self.backends)
        offsets = []
        skips = []
        for backend in self.backends:
            name = backend.to_bytes(4, "big")
            offsets.append(_hash(name, seed=0xB1) % m)
            skips.append(_hash(name, seed=0xB2) % (m - 1) + 1)
        # Each backend walks its permutation claiming free slots in turn.
        next_index = [0] * n
        table = [-1] * m
        filled = 0
        while filled < m:
            for i in range(n):
                if filled >= m:
                    break
                while True:
                    slot = (offsets[i] + next_index[i] * skips[i]) % m
                    next_index[i] += 1
                    if table[slot] < 0:
                        table[slot] = self.backends[i]
                        filled += 1
                        break
        return table

    def lookup(self, flow_hash: int) -> int:
        return self.table[flow_hash % self.table_size]

    def shares(self) -> dict:
        """Fraction of table slots per backend (≈ equal by construction)."""
        counts: dict = {}
        for backend in self.table:
            counts[backend] = counts.get(backend, 0) + 1
        return {b: c / self.table_size for b, c in counts.items()}

    def disruption(self, other: "MaglevTable") -> float:
        """Fraction of slots mapping differently in ``other`` (minimal-
        disruption property: removing one of n backends should remap only
        ≈ 1/n of slots)."""
        if other.table_size != self.table_size:
            raise ValueError("tables must be the same size")
        changed = sum(1 for a, b in zip(self.table, other.table) if a != b)
        return changed / self.table_size


class LoadBalancerMetadata(PacketMetadata):
    """15 bytes: 5-tuple (13), TCP flags (1), validity (1)."""

    FORMAT = "!IIHHBBB"
    FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto", "flags", "valid")
    __slots__ = FIELDS


class MaglevLoadBalancer(PacketProgram):
    """Consistent-hash L4 load balancing with per-connection affinity."""

    name = "load_balancer"
    metadata_cls = LoadBalancerMetadata
    rss_fields = "5-tuple"
    needs_locks = True

    def __init__(
        self,
        backends: Sequence[int] = (1, 2, 3, 4),
        table_size: int = 251,
    ) -> None:
        self.maglev = MaglevTable(backends, table_size=table_size)

    def extract_metadata(self, pkt: Packet) -> LoadBalancerMetadata:
        if not (pkt.is_ipv4 and pkt.is_tcp):
            return LoadBalancerMetadata(valid=0)
        ft = pkt.five_tuple()
        return LoadBalancerMetadata(
            src_ip=ft.src_ip,
            dst_ip=ft.dst_ip,
            src_port=ft.src_port,
            dst_port=ft.dst_port,
            proto=ft.proto,
            flags=pkt.l4.flags,
            valid=1,
        )

    def key(self, meta: PacketMetadata) -> Hashable:
        return FiveTuple(meta.src_ip, meta.dst_ip, meta.src_port, meta.dst_port,
                         meta.proto)

    def pick_backend(self, meta: LoadBalancerMetadata) -> int:
        flow_bytes = meta.pack()[:13]  # the 5-tuple fields
        return self.maglev.lookup(_hash(flow_bytes, seed=0x1B))

    def transition(
        self, value: Optional[Any], meta: PacketMetadata
    ) -> Tuple[Optional[Any], Verdict]:
        if not meta.valid:
            return value, Verdict.PASS
        backend = value
        if backend is None:
            if not meta.flags & TCP_SYN:
                # mid-flow packet with no connection entry: in Maglev this
                # still lands consistently via the table, so forward it —
                # but do not create state for it.
                return None, Verdict.TX
            backend = self.pick_backend(meta)
        if meta.flags & (TCP_FIN | TCP_RST):
            return None, Verdict.TX  # connection over: reap the entry
        return backend, Verdict.TX

    def connections_per_backend(self, state: StateMap) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for _key, backend in state.items():
            counts[backend] = counts.get(backend, 0) + 1
        return counts
