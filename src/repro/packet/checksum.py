"""Internet checksum (RFC 1071) used by IPv4, TCP and UDP headers.

The checksum is the 16-bit ones' complement of the ones' complement sum of
all 16-bit words in the covered data.  Odd-length payloads are padded with a
zero byte, per the RFC.
"""

from __future__ import annotations

__all__ = ["internet_checksum", "pseudo_header", "verify_checksum"]


def internet_checksum(data: bytes) -> int:
    """Return the RFC 1071 internet checksum of ``data`` as a 16-bit integer.

    The caller is expected to have zeroed the checksum field in ``data``
    before calling this function when computing a checksum for insertion.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, proto: int, length: int) -> bytes:
    """Return the IPv4 pseudo-header used by TCP/UDP checksums.

    ``src_ip``/``dst_ip`` are 32-bit integers, ``proto`` is the IP protocol
    number, and ``length`` is the TCP/UDP segment length in bytes.
    """
    return (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + b"\x00"
        + proto.to_bytes(1, "big")
        + length.to_bytes(2, "big")
    )


def verify_checksum(data: bytes) -> bool:
    """Return True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
