"""The Packet object shared by the traffic, NIC, sequencer, and program layers.

A :class:`Packet` carries parsed headers plus bookkeeping (arrival timestamp in
nanoseconds, original wire length).  ``to_bytes``/``from_bytes`` round-trip the
packet through its exact wire representation; the functional SCR layer uses
the byte form, while the performance simulator works on the parsed form for
speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .flow import FiveTuple
from .headers import (
    ETH_HLEN,
    ETH_P_IP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4_HLEN,
    TCP_HLEN,
    UDP_HLEN,
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
)

__all__ = ["Packet", "make_tcp_packet", "make_udp_packet"]


@dataclass
class Packet:
    """A parsed packet plus metadata used by the simulation layers."""

    eth: EthernetHeader = field(default_factory=EthernetHeader)
    ip: Optional[IPv4Header] = None
    l4: Optional[Union[TCPHeader, UDPHeader]] = None
    payload: bytes = b""
    #: Arrival timestamp in nanoseconds (assigned by trace / sequencer).
    timestamp_ns: int = 0
    #: Length on the wire in bytes; may exceed the carried bytes when the
    #: trace was truncated to stress packets-per-second (§4.2).
    wire_len: int = 0

    def __post_init__(self) -> None:
        if self.wire_len == 0:
            self.wire_len = self.header_len + len(self.payload)

    @property
    def header_len(self) -> int:
        length = ETH_HLEN
        if self.ip is not None:
            length += IPV4_HLEN
        if isinstance(self.l4, TCPHeader):
            length += TCP_HLEN
        elif isinstance(self.l4, UDPHeader):
            length += UDP_HLEN
        return length

    @property
    def is_ipv4(self) -> bool:
        return self.ip is not None

    @property
    def is_tcp(self) -> bool:
        return isinstance(self.l4, TCPHeader)

    @property
    def is_udp(self) -> bool:
        return isinstance(self.l4, UDPHeader)

    def five_tuple(self) -> FiveTuple:
        """The directional 5-tuple; ports are zero for non-TCP/UDP packets."""
        if self.ip is None:
            return FiveTuple()
        sport = dport = 0
        if self.l4 is not None:
            sport, dport = self.l4.sport, self.l4.dport
        return FiveTuple(
            src_ip=self.ip.src,
            dst_ip=self.ip.dst,
            src_port=sport,
            dst_port=dport,
            proto=self.ip.proto,
        )

    def to_bytes(self) -> bytes:
        """Serialize to the exact wire representation."""
        out = [self.eth.pack()]
        if self.ip is not None:
            l4_bytes = b""
            if isinstance(self.l4, TCPHeader):
                l4_bytes = self.l4.pack()
            elif isinstance(self.l4, UDPHeader):
                l4_bytes = self.l4.pack()
            # Keep the IP total_length consistent with what we serialize.
            self.ip.total_length = IPV4_HLEN + len(l4_bytes) + len(self.payload)
            out.append(self.ip.pack())
            out.append(l4_bytes)
        out.append(self.payload)
        return b"".join(out)

    @classmethod
    def from_bytes(cls, data: bytes, timestamp_ns: int = 0, wire_len: int = 0) -> "Packet":
        """Parse a packet from its wire representation.

        Non-IPv4 packets keep everything past the Ethernet header as payload;
        non-TCP/UDP IPv4 packets keep everything past the IP header.
        """
        eth = EthernetHeader.unpack(data)
        offset = ETH_HLEN
        ip: Optional[IPv4Header] = None
        l4: Optional[Union[TCPHeader, UDPHeader]] = None
        if eth.ethertype == ETH_P_IP and len(data) >= offset + IPV4_HLEN:
            ip = IPv4Header.unpack(data[offset:])
            offset += IPV4_HLEN
            if ip.proto == IPPROTO_TCP and len(data) >= offset + TCP_HLEN:
                l4 = TCPHeader.unpack(data[offset:])
                offset += TCP_HLEN
            elif ip.proto == IPPROTO_UDP and len(data) >= offset + UDP_HLEN:
                l4 = UDPHeader.unpack(data[offset:])
                offset += UDP_HLEN
        return cls(
            eth=eth,
            ip=ip,
            l4=l4,
            payload=data[offset:],
            timestamp_ns=timestamp_ns,
            wire_len=wire_len or len(data),
        )

    def truncated(self, size: int) -> "Packet":
        """Return a copy truncated to ``size`` bytes on the wire.

        Headers are always preserved (the evaluation truncates packets to
        192/256/64 bytes while keeping them parseable); only the payload is
        cut, and ``wire_len`` records the truncated size.
        """
        keep = max(0, size - self.header_len)
        return Packet(
            eth=self.eth,
            ip=self.ip,
            l4=self.l4,
            payload=self.payload[:keep],
            timestamp_ns=self.timestamp_ns,
            wire_len=max(size, self.header_len),
        )


def make_tcp_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    flags: int,
    seq: int = 0,
    ack: int = 0,
    payload: bytes = b"",
    timestamp_ns: int = 0,
    wire_len: int = 0,
) -> Packet:
    """Convenience constructor for an Ethernet/IPv4/TCP packet."""
    ip = IPv4Header(src=src_ip, dst=dst_ip, proto=IPPROTO_TCP)
    tcp = TCPHeader(sport=src_port, dport=dst_port, seq=seq, ack=ack, flags=flags)
    return Packet(ip=ip, l4=tcp, payload=payload, timestamp_ns=timestamp_ns, wire_len=wire_len)


def make_udp_packet(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    timestamp_ns: int = 0,
    wire_len: int = 0,
) -> Packet:
    """Convenience constructor for an Ethernet/IPv4/UDP packet."""
    ip = IPv4Header(src=src_ip, dst=dst_ip, proto=IPPROTO_UDP)
    udp = UDPHeader(sport=src_port, dport=dst_port, length=UDP_HLEN + len(payload))
    return Packet(ip=ip, l4=udp, payload=payload, timestamp_ns=timestamp_ns, wire_len=wire_len)
