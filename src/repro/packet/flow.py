"""Flow identity: 5-tuples and direction-normalized (bidirectional) keys.

Programs shard and key their state on flows.  A :class:`FiveTuple` identifies
one direction of a connection; :meth:`FiveTuple.normalized` produces a
canonical key shared by both directions, which is what the TCP connection
tracker (and symmetric RSS, [70]) requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from .headers import IPPROTO_TCP, int_to_ip

__all__ = ["FiveTuple"]


@dataclass(frozen=True, order=True)
class FiveTuple:
    """A directional (src_ip, dst_ip, src_port, dst_port, proto) tuple."""

    src_ip: int = 0
    dst_ip: int = 0
    src_port: int = 0
    dst_port: int = 0
    proto: int = IPPROTO_TCP

    def reversed(self) -> "FiveTuple":
        """The same connection seen from the opposite direction."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            proto=self.proto,
        )

    def normalized(self) -> "FiveTuple":
        """Canonical bidirectional key: both directions map to the same value.

        The lexicographically smaller (ip, port) endpoint is placed first, so
        ``p.normalized() == p.reversed().normalized()`` always holds.
        """
        a = (self.src_ip, self.src_port)
        b = (self.dst_ip, self.dst_port)
        if a <= b:
            return self
        return self.reversed()

    def is_forward(self) -> bool:
        """True when this tuple already equals its normalized form."""
        return self == self.normalized()

    def __str__(self) -> str:
        return (
            f"{int_to_ip(self.src_ip)}:{self.src_port} -> "
            f"{int_to_ip(self.dst_ip)}:{self.dst_port} proto={self.proto}"
        )
