"""Byte-exact protocol header definitions.

Each header is a small dataclass with ``pack()`` and ``unpack()`` methods that
round-trip through network byte order.  These are the wire formats used by the
traffic synthesizers, the NIC model, and the SCR sequencer's packet format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .checksum import internet_checksum, pseudo_header

__all__ = [
    "ETH_HLEN",
    "IPV4_HLEN",
    "TCP_HLEN",
    "UDP_HLEN",
    "ETH_P_IP",
    "ETH_P_SCR",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "TCP_FIN",
    "TCP_SYN",
    "TCP_RST",
    "TCP_PSH",
    "TCP_ACK",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "mac_to_bytes",
    "bytes_to_mac",
    "ip_to_int",
    "int_to_ip",
]

ETH_HLEN = 14
IPV4_HLEN = 20
TCP_HLEN = 20
UDP_HLEN = 8

ETH_P_IP = 0x0800
#: EtherType used by the sequencer's dummy Ethernet header (§3.3.1).  We use
#: a value from the experimental/local range so real stacks would ignore it.
ETH_P_SCR = 0x88B5

IPPROTO_TCP = 6
IPPROTO_UDP = 17

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


def mac_to_bytes(mac: str) -> bytes:
    """Convert ``"aa:bb:cc:dd:ee:ff"`` to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def bytes_to_mac(data: bytes) -> str:
    """Convert 6 raw bytes to ``"aa:bb:cc:dd:ee:ff"``."""
    if len(data) != 6:
        raise ValueError("MAC addresses are exactly 6 bytes")
    return ":".join(f"{b:02x}" for b in data)


def ip_to_int(ip: str) -> int:
    """Convert dotted-quad ``"10.0.0.1"`` to a 32-bit integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {ip!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("IPv4 addresses are 32-bit")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class EthernetHeader:
    """Ethernet II MAC header (14 bytes)."""

    dst: bytes = b"\x00" * 6
    src: bytes = b"\x00" * 6
    ethertype: int = ETH_P_IP

    _FMT = "!6s6sH"

    def pack(self) -> bytes:
        return struct.pack(self._FMT, self.dst, self.src, self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < ETH_HLEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = struct.unpack(cls._FMT, data[:ETH_HLEN])
        return cls(dst=dst, src=src, ethertype=ethertype)


@dataclass
class IPv4Header:
    """IPv4 header without options (20 bytes)."""

    src: int = 0
    dst: int = 0
    proto: int = IPPROTO_TCP
    total_length: int = IPV4_HLEN
    ttl: int = 64
    tos: int = 0
    ident: int = 0
    flags_frag: int = 0
    checksum: int = 0

    _FMT = "!BBHHHBBHII"

    def pack(self, fill_checksum: bool = True) -> bytes:
        """Serialize; when ``fill_checksum`` the header checksum is computed."""
        version_ihl = (4 << 4) | 5
        raw = struct.pack(
            self._FMT,
            version_ihl,
            self.tos,
            self.total_length,
            self.ident,
            self.flags_frag,
            self.ttl,
            self.proto,
            0,
            self.src,
            self.dst,
        )
        if fill_checksum:
            csum = internet_checksum(raw)
            raw = raw[:10] + csum.to_bytes(2, "big") + raw[12:]
        return raw

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < IPV4_HLEN:
            raise ValueError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            proto,
            checksum,
            src,
            dst,
        ) = struct.unpack(cls._FMT, data[:IPV4_HLEN])
        if version_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 packet (version={version_ihl >> 4})")
        return cls(
            src=src,
            dst=dst,
            proto=proto,
            total_length=total_length,
            ttl=ttl,
            tos=tos,
            ident=ident,
            flags_frag=flags_frag,
            checksum=checksum,
        )

    @property
    def header_length(self) -> int:
        return IPV4_HLEN


@dataclass
class TCPHeader:
    """TCP header without options (20 bytes)."""

    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = TCP_ACK
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    _FMT = "!HHIIBBHHH"

    def pack(self) -> bytes:
        data_offset = (TCP_HLEN // 4) << 4
        return struct.pack(
            self._FMT,
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            data_offset,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    def pack_with_checksum(self, src_ip: int, dst_ip: int, payload: bytes = b"") -> bytes:
        """Serialize with a valid checksum over the IPv4 pseudo-header."""
        raw = self.pack() + payload
        pseudo = pseudo_header(src_ip, dst_ip, IPPROTO_TCP, len(raw))
        csum = internet_checksum(pseudo + raw[:16] + b"\x00\x00" + raw[18:])
        return raw[:16] + csum.to_bytes(2, "big") + raw[18:]

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < TCP_HLEN:
            raise ValueError("truncated TCP header")
        (
            sport,
            dport,
            seq,
            ack,
            _offset,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack(cls._FMT, data[:TCP_HLEN])
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )

    def has_flag(self, flag: int) -> bool:
        return bool(self.flags & flag)


@dataclass
class UDPHeader:
    """UDP header (8 bytes)."""

    sport: int = 0
    dport: int = 0
    length: int = UDP_HLEN
    checksum: int = 0

    _FMT = "!HHHH"

    def pack(self) -> bytes:
        return struct.pack(self._FMT, self.sport, self.dport, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < UDP_HLEN:
            raise ValueError("truncated UDP header")
        sport, dport, length, checksum = struct.unpack(cls._FMT, data[:UDP_HLEN])
        return cls(sport=sport, dport=dport, length=length, checksum=checksum)
