"""State-Compute Replication (SCR): an NSDI 2025 reproduction.

A Python library reproducing "State-Compute Replication: Parallelizing
High-Speed Stateful Packet Processing".  Two layers share one set of packet
programs:

* the **functional layer** (``repro.core``, ``repro.sequencer``) runs real
  bytes end-to-end — sequencer, SCR packet format, per-core replicas,
  Algorithm 1 loss recovery — and is the correctness oracle;
* the **performance layer** (``repro.cpu``, ``repro.parallel``,
  ``repro.bench``) is a discrete-event multicore simulator calibrated to
  the paper's Table 4 cost parameters, regenerating every evaluation
  figure and table.

Quickstart::

    from repro.core import ScrFunctionalEngine, reference_run
    from repro.programs import make_program
    from repro.traffic import single_flow_trace

    trace = single_flow_trace(1000)
    engine = ScrFunctionalEngine(make_program("conntrack"), num_cores=4)
    result = engine.run(trace)
    assert result.replicas_consistent
"""

__version__ = "1.0.0"

# Convenience re-exports for the quickstart path.
from .core import (  # noqa: E402
    ScrFunctionalEngine,
    ThreadedScrEngine,
    reference_run,
    validate_program,
)
from .programs import make_program, program_names  # noqa: E402


__all__ = [
    "ScrFunctionalEngine",
    "ThreadedScrEngine",
    "reference_run",
    "validate_program",
    "make_program",
    "program_names",
    "bench",
    "core",
    "cpu",
    "nic",
    "packet",
    "parallel",
    "programs",
    "sequencer",
    "state",
    "traffic",
]
