"""Functional (byte-level) execution of the baseline techniques.

``repro.core`` runs SCR functionally; this module does the same for the
baselines so correctness — not just throughput — can be compared:

* :class:`ShardedFunctionalEngine` — real Toeplitz steering through an
  indirection table into per-core, shared-nothing state maps (the RSS
  deployment of §2.2).  Correct exactly when every state key is a function
  of the fields RSS can hash on; programs with global state (NAT) come out
  wrong, which `tests` and the NAT bench demonstrate.
* :class:`SharedFunctionalEngine` — every core processes against one
  shared map (order serialized, as a lock would).  Always correct,
  arbitrarily slow in hardware — the §2.2 trade-off.

Both spray/steer per packet and report per-core packet counts, so skew is
observable functionally too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..nic.nic import Nic, SteeringMode
from ..programs.base import PacketProgram, Verdict
from ..state.maps import SharedStateMap, StateMap
from ..traffic.trace import Trace

__all__ = [
    "FunctionalRunResult",
    "ShardedFunctionalEngine",
    "SharedFunctionalEngine",
]


@dataclass
class FunctionalRunResult:
    """Outcome of a functional baseline run."""

    verdicts: Dict[int, Verdict] = field(default_factory=dict)
    per_core_packets: List[int] = field(default_factory=list)
    offered: int = 0

    @property
    def max_core_share(self) -> float:
        """Fraction of packets handled by the busiest core (skew metric)."""
        if self.offered == 0:
            return 0.0
        return max(self.per_core_packets) / self.offered


def _steering_mode(program: PacketProgram) -> SteeringMode:
    """The RSS configuration Table 1 prescribes for this program."""
    if program.bidirectional:
        return SteeringMode.RSS_SYMMETRIC
    if program.rss_fields == "src & dst IP":
        return SteeringMode.RSS_L3
    return SteeringMode.RSS_L4


class ShardedFunctionalEngine:
    """Shared-nothing sharding: RSS steering into per-core private maps."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        state_capacity: int = 4096,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.program = program
        self.num_cores = num_cores
        self.nic = Nic(num_cores, mode=_steering_mode(program))
        self.states = [StateMap(capacity=state_capacity) for _ in range(num_cores)]

    def run(self, trace: Trace) -> FunctionalRunResult:
        result = FunctionalRunResult(per_core_packets=[0] * self.num_cores)
        for i, pkt in enumerate(trace, start=1):
            result.offered += 1
            core = self.nic.steer(pkt)
            result.per_core_packets[core] += 1
            result.verdicts[i] = self.program.process(self.states[core], pkt)
        return result

    def merged_state(self) -> Dict:
        """Union of the shards (keys are disjoint when sharding is correct)."""
        merged: Dict = {}
        for state in self.states:
            merged.update(state.snapshot())
        return merged

    def shards_are_disjoint(self) -> bool:
        """True when no state key appears on two cores — the precondition
        for sharding to be correct at all."""
        seen: set = set()
        for state in self.states:
            keys = set(state.snapshot())
            if keys & seen:
                return False
            seen |= keys
        return True


class SharedFunctionalEngine:
    """Shared state: spray across cores, one map, serialized updates."""

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        state_capacity: int = 4096,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.program = program
        self.num_cores = num_cores
        self.state = SharedStateMap(capacity=state_capacity)
        self._rr = 0

    def run(self, trace: Trace) -> FunctionalRunResult:
        result = FunctionalRunResult(per_core_packets=[0] * self.num_cores)
        for i, pkt in enumerate(trace, start=1):
            result.offered += 1
            core = self._rr
            self._rr = (self._rr + 1) % self.num_cores
            result.per_core_packets[core] += 1
            # Track cross-core traffic on the entry this packet touches,
            # then run the ordinary (serialized) update.
            meta = self.program.extract_metadata(pkt)
            key = self.program.key(meta)
            self.state.lookup_from_core(core, key)
            result.verdicts[i] = self.program.process(self.state, pkt)
            self.state.note_writer(core, key)
        return result

    @property
    def bounce_ratio(self) -> float:
        return self.state.bounce_ratio
