"""The SCR performance engine (§3).

Round-robin spraying, per-core private replicas — no serialization points,
no bouncing.  What SCR pays instead:

* **history fast-forward**: each packet's service grows by ``h × c2``
  where ``h`` is the number of piggybacked history items (``k-1`` in steady
  state) — the Appendix A model ``t + (k-1)·c2``;
* **bytes**: the sequencer's prefix enlarges every frame on the wire and
  across PCIe, which is what eventually caps scaling at the NIC
  (Figure 10a) — ``wire_len`` reports the enlarged frame;
* **memory**: every core holds *all* flows, so SCR's replicas spill out of
  L2 before a sharded layout would (scaling limit (ii), §3.1);
* optionally, **loss-recovery costs** (Figure 10b): per-packet log writes,
  and — when losses are injected — spinning on other cores' logs plus the
  catch-up transitions for each recovered sequence.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.packet_format import ScrPacketCodec
from ..cpu.costmodel import CPU_FREQ_GHZ
from ..cpu.simulator import PerfPacket
from ..telemetry.events import (
    EV_FAST_FORWARD,
    EV_HISTORY_DEPTH,
    EV_QUARANTINE,
    EV_RESYNC,
    EV_SPRAY,
)
from .base import BaseEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.simulator import PerfTrace

__all__ = ["ScrEngine"]


class ScrEngine(BaseEngine):
    """Performance model of state-compute replication across cores."""

    name = "scr"

    def __init__(
        self,
        *args,
        num_slots: Optional[int] = None,
        dummy_eth: bool = True,
        with_recovery: bool = False,
        loss_rate: float = 0.0,
        seed: int = 0,
        extra_compute_ns: float = 0.0,
        count_wire_overhead: bool = True,
        fault_epoch_len: int = 32,
        **kwargs,
    ) -> None:
        """``extra_compute_ns`` inflates both ``c1`` and ``c2`` — the knob the
        Figure 9 compute-latency sweep turns.

        ``count_wire_overhead`` controls whether the sequencer's prefix adds
        to each frame's wire size.  The Figure 6/7 methodology truncates
        packets to a fixed size *including* the piggybacked history ("the
        packet size limits the number of items of history metadata", §4.2),
        so those sweeps pass False; Figure 10a feeds bare 64-byte packets
        and lets SCR alone inflate them, so it keeps the default True.

        ``fault_epoch_len`` is the sequencer's checkpoint epoch for the
        quarantine-resync cost model (see ``note_fault_drop``): a
        resyncing core replays on average half an epoch past the gap.
        """
        super().__init__(*args, **kwargs)
        if loss_rate and not with_recovery:
            raise ValueError("loss injection requires with_recovery=True")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.num_slots = num_slots if num_slots is not None else self.num_cores
        if self.num_slots < self.num_cores:
            raise ValueError("history slots must cover the core count")
        self.codec = ScrPacketCodec(
            meta_size=self.program.metadata_size,
            num_slots=self.num_slots,
            dummy_eth=dummy_eth,
        )
        self.count_wire_overhead = count_wire_overhead
        self.with_recovery = with_recovery
        self.loss_rate = loss_rate
        self.seed = seed
        self.extra_compute_ns = extra_compute_ns
        if fault_epoch_len < 1:
            raise ValueError("fault_epoch_len must be >= 1")
        self.fault_epoch_len = fault_epoch_len
        self._rng = random.Random(seed)
        self._rr = 0
        self._seq = 0
        #: per-core count of sequences lost ahead of the next delivery;
        #: their recovery cost lands on that next packet's service.
        self._pending_lost = [0] * self.num_cores
        self.injected = 0
        #: per-core count of *fault-injected* drops (repro.faults) awaiting
        #: gap handling on the core's next service.
        self._fault_gap = [0] * self.num_cores
        self.fault_gaps = 0
        self.fault_gaps_covered = 0
        self.quarantines = 0
        self.resyncs = 0
        self.resync_replayed = 0
        self.resync_ns_total = 0.0

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._rr = 0
        self._seq = 0
        self._pending_lost = [0] * self.num_cores
        self.injected = 0
        self._fault_gap = [0] * self.num_cores
        self.fault_gaps = 0
        self.fault_gaps_covered = 0
        self.quarantines = 0
        self.resyncs = 0
        self.resync_replayed = 0
        self.resync_ns_total = 0.0

    # -- protocol -----------------------------------------------------------------

    def fits_in_frame(self, frame_bytes: int) -> bool:
        """Can this core count's history ride inside a fixed frame size?"""
        return self.codec.overhead_bytes <= frame_bytes

    def wire_len(self, pp: PerfPacket) -> int:
        if not self.count_wire_overhead:
            return pp.wire_len
        return pp.wire_len + self.codec.overhead_bytes

    def dma_len(self, pp: PerfPacket) -> int:
        """Bytes crossing the host interconnect per packet.

        With a ToR-switch sequencer the wire and PCIe see the same frame.
        With a NIC-resident sequencer (``dummy_eth=False``) the history is
        appended *after* the MAC, so PCIe carries it even when the wire
        does not — the §4.2 PCIe-transaction overhead.
        """
        if self.count_wire_overhead:
            return self.wire_len(pp)
        if not self.codec.dummy_eth:  # NIC-resident sequencer
            return pp.wire_len + self.codec.overhead_bytes
        return pp.wire_len

    def steer(self, pp: PerfPacket) -> int:
        self._seq += 1
        core = self._rr
        self._rr = (self._rr + 1) % self.num_cores
        if self.tracer.enabled:
            self.tracer.emit(EV_SPRAY, core=core, seq=self._seq, index=pp.index)
        return core

    def pre_enqueue(self, pp: PerfPacket, core: int) -> bool:
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self._pending_lost[core] += 1
            self.injected += 1
            return False
        return True

    def note_fault_drop(self, core: int, pp: PerfPacket) -> None:
        """A repro.faults drop stole a packet already sprayed to ``core``.

        The replica will see a sequence hole on its next delivery; the
        recovery work (window catch-up, or an epoch-checkpoint resync
        when the hole exceeds the history window) is charged to that
        next packet's service time.
        """
        self._fault_gap[core] += 1

    def fault_summary(self) -> dict:
        """Recovery-cost counters for SimResult.fault_stats."""
        return {
            "fault_gaps": self.fault_gaps,
            "fault_gaps_covered": self.fault_gaps_covered,
            "quarantines": self.quarantines,
            "resyncs": self.resyncs,
            "resync_replayed": self.resync_replayed,
            "resync_ns_total": self.resync_ns_total,
            "resync_cycles_total": self.resync_ns_total * CPU_FREQ_GHZ,
        }

    def _history_items(self) -> int:
        """Fast-forward work per packet: k-1 in steady state, fewer early."""
        return min(max(self._seq - 1, 0), self.num_cores - 1)

    # -- columnar hot-path hooks (docs/HOTPATH.md) --------------------------------

    def columnar_eligible(self) -> bool:
        """Batched replay is exact unless loss injection draws from the RNG
        (injected losses change which packets reach the rings); recovery
        *logging* alone is pure row math and stays eligible."""
        return self.loss_rate == 0.0

    def wire_len_batch(self, trace: "PerfTrace") -> np.ndarray:
        if not self.count_wire_overhead:
            return trace.wire_lens
        return trace.wire_lens + self.codec.overhead_bytes

    def dma_len_batch(self, trace: "PerfTrace") -> np.ndarray:
        if self.count_wire_overhead:
            return self.wire_len_batch(trace)
        if not self.codec.dummy_eth:  # NIC-resident sequencer
            return trace.wire_lens + self.codec.overhead_bytes
        return trace.wire_lens

    def steer_batch(self, trace: "PerfTrace") -> np.ndarray:
        """Round-robin spraying as pure row math (state advances in
        :meth:`commit_steer_batch`)."""
        offsets = np.arange(len(trace), dtype=np.int64)
        return (self._rr + offsets) % self.num_cores

    def commit_steer_batch(self, count: int) -> None:
        self._seq += count
        self._rr = (self._rr + count) % self.num_cores

    def history_cap(self) -> int:
        return self.num_cores - 1

    def service_rows(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        miss_frac: np.ndarray,
        spill_ns: np.ndarray,
        history_items: np.ndarray,
    ) -> np.ndarray:
        """Batched history fast-forward: the Appendix A row math
        ``d + c1 + h·c2 (+ spill + log)`` over whole arrays, adding floats
        in the exact order :meth:`service_ns` does."""
        c = self.costs
        extra = self.extra_compute_ns
        history = history_items * (c.c2 + extra)
        compute = (c.c1 + extra) + history
        total = (c.d + compute) + spill_ns
        if self.with_recovery:
            total = total + (history_items + 1) * self.contention.log_write_ns
        return np.where(trace.valid[rows], total, c.d + c.c1 + extra)

    def service_batch(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        cores: np.ndarray,
        start_ns: np.ndarray,
        steered_before: np.ndarray,
    ) -> np.ndarray:
        from ..cpu.columnar import l2_spill_rows

        c = self.costs
        extra = self.extra_compute_ns
        h = np.minimum(np.maximum(steered_before - 1, 0), self.history_cap())
        miss_frac, spill = l2_spill_rows(
            self.l2, trace, rows, cores, self.num_cores, commit=True)
        services = self.service_rows(trace, rows, miss_frac, spill, h)
        valid = trace.valid[rows]
        history = h * (c.c2 + extra)
        charge = ((c.c1 + extra) + history) + spill
        if self.with_recovery:
            charge = charge + (h + 1) * self.contention.log_write_ns
        compute_col = np.where(valid, charge, c.c1 + extra)
        history_col = np.where(valid, history, 0.0)
        dispatch_col = np.full(len(rows), c.d, dtype=np.float64)
        accesses = valid.astype(np.int64)
        for core in range(self.num_cores):
            sel = np.flatnonzero(cores == core)
            if len(sel) == 0:
                continue
            self.counters.cores[core].charge_batch(
                dispatch_ns=dispatch_col[sel],
                compute_ns=compute_col[sel],
                state_accesses=accesses[sel],
                l2_misses=miss_frac[sel],
                program_ns=compute_col[sel],
                history_ns=history_col[sel],
            )
        return services

    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        c = self.costs
        counters = self.counters.cores[core]
        extra = self.extra_compute_ns
        if not pp.valid:
            counters.charge_packet(dispatch_ns=c.d, compute_ns=c.c1 + extra, state_accesses=0)
            return c.d + c.c1 + extra
        h = self._history_items()
        if self.tracer.enabled:
            self.tracer.emit(EV_HISTORY_DEPTH, ts_ns=start_ns, core=core, depth=h)
        history = h * (c.c2 + extra)
        compute = (c.c1 + extra) + history
        spans = self.spans
        pp_sampled = spans.enabled and spans.sampled(pp.index)
        if pp_sampled:
            # Observational only: span timestamps re-derive the cost model's
            # own intervals, they never feed back into service time.
            spans.emit("history_ff", pp.index, ts_ns=start_ns + c.d,
                       dur_ns=history, core=core, depth=h)
            spans.emit("transition", pp.index,
                       ts_ns=start_ns + c.d + history,
                       dur_ns=c.c1 + extra, core=core)
        # Every core holds every flow, so spill is judged against the full
        # (replicated) working set.
        miss_frac, spill = self.l2.access(core, pp.key)
        log_ns = 0.0
        recovery_transfer_ns = 0.0
        recovery_misses = 0.0
        if self.with_recovery:
            # Logging the h history items plus the packet's own entry.
            log_ns = (h + 1) * self.contention.log_write_ns
            lost = self._pending_lost[core]
            if lost:
                if self.tracer.enabled:
                    self.tracer.emit(EV_FAST_FORWARD, ts_ns=start_ns, core=core,
                                     length=lost)
                # Reading another core's log line (a cross-core transfer per
                # probe) and fast-forwarding through each recovered sequence.
                probes = 1 + (self.num_cores - 1) / 2
                recovery_transfer_ns = lost * probes * self.contention.recovery_probe_ns
                catchup = lost * (c.c2 + extra)
                log_ns += catchup
                # Catch-up transitions are fast-forward work too.
                history += catchup
                recovery_misses = float(lost)
                self._pending_lost[core] = 0
        gap = self._fault_gap[core]
        if gap:
            hp = self.hostprof
            hp_t0 = hp.now() if hp.enabled else 0
            self._fault_gap[core] = 0
            self.fault_gaps += 1
            # Round-robin spraying turns ``gap`` stolen packets into
            # (gap+1)*k - 1 sequences the replica must account for.
            missed = (gap + 1) * self.num_cores - 1
            if missed <= self.num_slots:
                # A widened history window (num_slots > k) still covers
                # the hole: extra fast-forward items beyond the natural h.
                self.fault_gaps_covered += 1
                catchup = (missed - h) * (c.c2 + extra)
                if self.tracer.enabled:
                    self.tracer.emit(EV_FAST_FORWARD, ts_ns=start_ns,
                                     core=core, length=missed - h)
            else:
                # Quarantine: fetch the sequencer's newest epoch
                # checkpoint and replay, on average, half an epoch of
                # logged metadata on top of the missed sequences.
                self.quarantines += 1
                self.resyncs += 1
                replay = missed + self.fault_epoch_len // 2
                catchup = replay * (c.c2 + extra)
                recovery_transfer_ns += self.contention.checkpoint_fetch_ns
                recovery_misses += 1.0  # the restored snapshot is cold
                self.resync_replayed += replay
                fetch = self.contention.checkpoint_fetch_ns
                self.resync_ns_total += catchup + fetch
                if self.tracer.enabled:
                    self.tracer.emit(EV_QUARANTINE, ts_ns=start_ns,
                                     core=core, gap=gap, missed=missed)
                    self.tracer.emit(EV_RESYNC, ts_ns=start_ns, core=core,
                                     dur_ns=catchup + fetch, replayed=replay)
                if pp_sampled:
                    spans.emit("quarantine", pp.index, ts_ns=start_ns,
                               core=core, gap=gap, missed=missed)
                    spans.emit("checkpoint_fetch", pp.index, ts_ns=start_ns,
                               dur_ns=fetch, core=core)
                    spans.emit("replay", pp.index, ts_ns=start_ns + fetch,
                               dur_ns=catchup, core=core, replayed=replay)
                    spans.emit("resync", pp.index,
                               ts_ns=start_ns + fetch + catchup, core=core)
            compute += catchup
            history += catchup
            if hp.enabled:
                # Wall cost of gap-recovery fast-forward/resync modeling
                # (steady-state history replay is pure arithmetic above).
                hp.charge("scr.history_ff", hp_t0)
        total = c.d + compute + spill + log_ns + recovery_transfer_ns
        counters.charge_packet(
            dispatch_ns=c.d,
            compute_ns=compute + spill + log_ns,
            transfer_ns=recovery_transfer_ns,
            state_accesses=1,
            l2_misses=miss_frac + recovery_misses,
            program_ns=compute + spill + log_ns + recovery_transfer_ns,
            history_ns=history,
        )
        return total
