"""Common machinery for the scaling-technique performance engines.

Each engine implements the :class:`~repro.cpu.simulator.PerfEngine` protocol
for one technique from §2/§3: shared state (atomics or locks), sharding (RSS
or RSS++), or SCR.  The engines translate a technique's mechanism into
per-packet service time and counter charges using the Table 4 cost
parameters and the contention constants in ``repro.cpu.costmodel``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..cpu.cache import L2Model
from ..cpu.costmodel import (
    DEFAULT_CONTENTION,
    TABLE4_PARAMS,
    ContentionParams,
    CostParams,
)
from ..cpu.counters import CoreCounters, SystemCounters
from ..cpu.simulator import PerfPacket
from ..hostprof.clock import NULL_HOSTPROF, PhaseClock
from ..obs.spans import NULL_SPANS, SpanEmitter
from ..programs.base import PacketProgram
from ..telemetry.events import NULL_TRACER, EventTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cpu.simulator import PerfTrace

__all__ = ["BaseEngine", "hash_for_program", "hash_column_for_program"]


def hash_for_program(program: PacketProgram, pp: PerfPacket) -> int:
    """The RSS hash a NIC would use to shard this program correctly.

    Table 1's "RSS hash fields" column: IP-pair programs hash L3 only;
    5-tuple programs hash L4; bidirectional programs need the symmetric key
    so both directions land on one core [70].
    """
    if program.bidirectional:
        return pp.hash_sym
    if program.rss_fields == "src & dst IP":
        return pp.hash_l3
    return pp.hash_l4


def hash_column_for_program(program: PacketProgram, trace: "PerfTrace") -> np.ndarray:
    """Column twin of :func:`hash_for_program`: the whole trace's RSS
    hashes under the program's configured hash fields."""
    if program.bidirectional:
        return trace.hash_sym
    if program.rss_fields == "src & dst IP":
        return trace.hash_l3
    return trace.hash_l4


class BaseEngine(ABC):
    """Shared state for the per-technique engines."""

    name = "base"

    def __init__(
        self,
        program: PacketProgram,
        num_cores: int,
        costs: Optional[CostParams] = None,
        contention: ContentionParams = DEFAULT_CONTENTION,
        tracer: EventTracer = NULL_TRACER,
        spans: SpanEmitter = NULL_SPANS,
        hostprof: PhaseClock = NULL_HOSTPROF,
    ) -> None:
        if num_cores < 1:
            raise ValueError("need at least one core")
        self.program = program
        self.num_cores = num_cores
        #: telemetry event sink; the default disabled tracer is free.
        self.tracer = tracer
        #: causal span emitter for sampled packets (disabled by default).
        self.spans = spans
        #: host wall-clock phase sink (disabled by default; never feeds
        #: simulated time — see docs/PROFILING.md).
        self.hostprof = hostprof
        if costs is None:
            try:
                costs = TABLE4_PARAMS[program.name]
            except KeyError:
                raise KeyError(
                    f"no Table 4 cost parameters for program {program.name!r}; "
                    "pass costs= explicitly"
                ) from None
        self.costs = costs
        self.contention = contention
        self.counters = SystemCounters()
        self.l2 = L2Model(num_cores, spill_ns=contention.l2_spill_ns)
        self._build_counters()

    def _build_counters(self) -> None:
        self.counters.cores = [CoreCounters(core_id=i) for i in range(self.num_cores)]

    def reset(self) -> None:
        """Clear run state; subclasses extend."""
        self._build_counters()
        self.l2.reset()

    # Default protocol pieces; engines override what differs. ------------------

    def wire_len(self, pp: PerfPacket) -> int:
        return pp.wire_len

    def pre_enqueue(self, pp: PerfPacket, core: int) -> bool:
        return True

    def note_fault_drop(self, core: int, pp: PerfPacket) -> None:
        """The simulator fault-dropped a packet already steered to ``core``.

        Techniques with per-core replicas (SCR) override this to charge
        gap recovery on the core's next service; for shared-state and
        sharded techniques a lost packet is just a lost packet.
        """

    @abstractmethod
    def steer(self, pp: PerfPacket) -> int:
        ...

    @abstractmethod
    def service_ns(self, core: int, pp: PerfPacket, start_ns: float) -> float:
        ...

    # Columnar hot-path hooks (see repro.cpu.columnar / docs/HOTPATH.md).
    # Conservative defaults: an engine is ineligible until it opts in, and
    # ``service_batch`` falls back to a scalar shim over ``service_ns`` so
    # every technique keeps working unchanged when called in bursts.

    def columnar_eligible(self) -> bool:
        """Can whole runs be replayed as batched row math?

        Only true when steering and service time are pure functions of the
        packet row (plus replay-invariant engine state) — no time-dependent
        contention, no RNG, no mutable steering tables.
        """
        return False

    def wire_len_batch(self, trace: "PerfTrace") -> np.ndarray:
        """Per-packet wire bytes for the whole trace (``wire_len`` rowwise)."""
        return trace.wire_lens

    def dma_len_batch(self, trace: "PerfTrace") -> np.ndarray:
        """Per-packet host-interconnect bytes (defaults to wire bytes,
        mirroring the simulator's scalar ``dma_len -> wire_len`` fallback)."""
        return self.wire_len_batch(trace)

    def steer_batch(self, trace: "PerfTrace") -> np.ndarray:
        """Target core per packet for the whole trace, without mutating
        steer state (the driver calls :meth:`commit_steer_batch` once the
        speculative run is known to commit)."""
        raise NotImplementedError(f"{self.name} has no batched steering")

    def commit_steer_batch(self, count: int) -> None:
        """Advance steer state as if ``count`` packets were steered."""

    def history_cap(self) -> int:
        """Upper bound on piggybacked history items per packet (0 for
        techniques that carry no history)."""
        return 0

    def service_rows(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        miss_frac: np.ndarray,
        spill_ns: np.ndarray,
        history_items: np.ndarray,
    ) -> np.ndarray:
        """Pure service times (ns) for ``rows``, given each row's L2
        outcome and history depth; charges nothing."""
        raise NotImplementedError(f"{self.name} has no batched service math")

    def service_batch(
        self,
        trace: "PerfTrace",
        rows: np.ndarray,
        cores: np.ndarray,
        start_ns: np.ndarray,
        steered_before: np.ndarray,
    ) -> np.ndarray:
        """Service a burst of packets and charge counters, returning each
        packet's service time.  ``rows`` are trace indices in service
        order; ``steered_before`` is how many packets had been steered
        when each one reached its core (what SCR's history depth reads).

        Default: a scalar shim over :meth:`service_ns`, so engines without
        batched row math behave identically when driven in bursts.
        """
        records = trace.records
        out = np.empty(len(rows), dtype=np.float64)
        for i in range(len(rows)):
            out[i] = self.service_ns(
                int(cores[i]), records[int(rows[i])], float(start_ns[i]))
        return out
